#!/bin/sh
# Smoke test for the exploration service: start a server on a fresh
# Unix socket, drive one session over the wire, stop the server with
# SIGTERM (must exit cleanly and unlink the socket), then restart it
# over the same journal directory and resume the session from its
# journal.  Exercises exactly the recovery path DESIGN.md section 11
# promises.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

dune build bin/dse.exe
dse=_build/default/bin/dse.exe

work=$(mktemp -d)
sock="$work/dse.sock"
journal="$work/journal"
trap 'rm -rf "$work"' EXIT

start_server() {
    "$dse" serve --socket "$sock" --journal-dir "$journal" \
        > "$work/server.log" 2>&1 &
    server=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server did not come up" >&2
            cat "$work/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stop_server() {
    kill -TERM "$server"
    if ! wait "$server"; then
        echo "FAIL: server did not exit cleanly on SIGTERM" >&2
        cat "$work/server.log" >&2
        exit 1
    fi
    if [ -e "$sock" ]; then
        echo "FAIL: socket not unlinked on shutdown" >&2
        exit 1
    fi
}

expect() {
    file=$1
    shift
    for fragment in "$@"; do
        if ! grep -q -- "$fragment" "$file"; then
            echo "FAIL: expected $fragment in $file:" >&2
            cat "$file" >&2
            exit 1
        fi
    done
    if grep -q '"ok":false' "$file"; then
        echo "FAIL: a request failed:" >&2
        cat "$file" >&2
        exit 1
    fi
}

# Round 1: open a session, make two decisions, read the candidates.
start_server
"$dse" client --socket "$sock" \
    '{"op":"open","session":"smoke","layer":"crypto"}' \
    '{"op":"decide","session":"smoke","name":"Operator Family","value":"modular"}' \
    '{"op":"decide","session":"smoke","name":"Modular Operator","value":"multiplier"}' \
    '{"op":"set","session":"smoke","name":"Effective Operand Length","value":512}' \
    '{"op":"set","session":"smoke","name":"Latency Single Operation","value":8}' \
    '{"op":"candidates","session":"smoke"}' \
    > "$work/round1.log"
expect "$work/round1.log" '"session":"smoke"' '"count":'
sig_before=$(grep -o '"signature":"[0-9a-f]*"' "$work/round1.log" | tail -1)

# Telemetry: `dse trace` must reconstruct the session's pruning story
# from span data alone (DESIGN.md 13), and the raw span dump is the CI
# trace artifact.  `dse top` must render the metrics registries.
"$dse" trace smoke --socket "$sock" > "$work/trace.txt"
for fragment in 'open layer=crypto' 'decision Operator Family := modular' 'sweep:'; do
    if ! grep -q -- "$fragment" "$work/trace.txt"; then
        echo "FAIL: expected '$fragment' in dse trace output:" >&2
        cat "$work/trace.txt" >&2
        exit 1
    fi
done
"$dse" trace smoke --json --socket "$sock" > "$work/trace_spans.jsonl"
for fragment in '"name":"op.open"' '"name":"session.set"' '"name":"engine.sweep"'; do
    if ! grep -q -- "$fragment" "$work/trace_spans.jsonl"; then
        echo "FAIL: expected $fragment span in trace dump:" >&2
        head -40 "$work/trace_spans.jsonl" >&2
        exit 1
    fi
done
artifact=${SMOKE_TRACE_ARTIFACT:-_build/serve_smoke_trace.jsonl}
mkdir -p "$(dirname "$artifact")"
cp "$work/trace_spans.jsonl" "$artifact"
"$dse" top --socket "$sock" -n 1 > "$work/top.txt"
if ! grep -q 'dse_request_us' "$work/top.txt"; then
    echo "FAIL: dse top did not render request latency histograms:" >&2
    cat "$work/top.txt" >&2
    exit 1
fi
stop_server

# Round 2: a fresh server over the same journal dir resumes the
# session — both decisions replayed, same candidate signature.
start_server
"$dse" client --socket "$sock" \
    '{"op":"open","session":"smoke","resume":true}' \
    '{"op":"candidates","session":"smoke"}' \
    '{"op":"close","session":"smoke"}' \
    > "$work/round2.log"
expect "$work/round2.log" '"resumed":true' '"replayed":4' '"closed":"smoke"'
sig_after=$(grep -o '"signature":"[0-9a-f]*"' "$work/round2.log" | tail -1)
if [ "$sig_before" != "$sig_after" ]; then
    echo "FAIL: replay diverged: $sig_before vs $sig_after" >&2
    exit 1
fi
stop_server

echo "serve smoke OK (resume verified, $sig_after; trace artifact at $artifact)"
