#!/bin/sh
# Smoke test for the sharded fleet (DESIGN.md section 16): start a
# router over 4 supervised worker processes, spread sessions across the
# shards, then SIGKILL one worker mid-round and assert that
#   - clients only ever see structured, retryable protocol errors
#     (never a hung or torn connection),
#   - the supervisor restarts the dead worker in place,
#   - the restarted worker resumes its sessions from its journal
#     directory with bit-identical candidate signatures.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

dune build bin/dse.exe
dse=_build/default/bin/dse.exe

work=$(mktemp -d)
sock="$work/router.sock"
fleet_dir="$work/fleet"
trap 'kill "$fleet" 2>/dev/null || true; rm -rf "$work"' EXIT

"$dse" fleet serve -n 4 --socket "$sock" --dir "$fleet_dir" \
    > "$work/fleet.log" 2>&1 &
fleet=$!

i=0
until "$dse" client --socket "$sock" '{"op":"healthz"}' 2>/dev/null \
        | grep -q '"status":"ok"'; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "FAIL: fleet did not report healthy" >&2
        cat "$work/fleet.log" >&2
        exit 1
    fi
    sleep 0.2
done

# Spread 32 sessions over the ring and bind one acknowledged decision
# in each: 32 over 4 shards makes an empty shard vanishingly unlikely,
# and `stats` verifies the victim actually holds sessions before the
# kill.  The sessions that land on the victim exercise journal resume;
# the rest are controls.
sessions=$(seq 0 31 | sed 's/^/fs/')
for s in $sessions; do
    "$dse" client --socket "$sock" \
        "{\"op\":\"open\",\"session\":\"$s\",\"layer\":\"idct\"}" \
        "{\"op\":\"set\",\"session\":\"$s\",\"name\":\"Word Size\",\"value\":16}" \
        >> "$work/open.log"
done
if grep -q '"ok":false' "$work/open.log"; then
    echo "FAIL: open round had failures:" >&2
    grep '"ok":false' "$work/open.log" >&2
    exit 1
fi

"$dse" client --socket "$sock" '{"op":"stats"}' > "$work/stats.json"
if ! grep -q '"sessions":32' "$work/stats.json"; then
    echo "FAIL: merged stats do not show all 32 sessions:" >&2
    cat "$work/stats.json" >&2
    exit 1
fi

read_signatures() {
    : > "$1"
    for s in $sessions; do
        "$dse" client --socket "$sock" \
            "{\"op\":\"signature\",\"session\":\"$s\"}" \
            | grep -o '"signature":"[0-9a-f]*"' >> "$1" || echo "MISSING $s" >> "$1"
    done
}
read_signatures "$work/sig_before.txt"
if grep -q MISSING "$work/sig_before.txt"; then
    echo "FAIL: could not read all signatures before the kill" >&2
    exit 1
fi

# Mid-round SIGKILL: find the w0 worker process by its socket argv,
# kill it, and keep a round of mixed traffic — alternating one-shot
# requests and whole batches — running across the kill window.  Every
# reply must be either ok or a structured retryable error — anything
# else (torn line, hang, a half-executed batch surfacing as an
# unstructured failure) fails.
victim_pid=$(pgrep -f "fleet worker --socket $fleet_dir/w0.sock" | head -1)
if [ -z "$victim_pid" ]; then
    echo "FAIL: cannot find the w0 worker process" >&2
    exit 1
fi
kill -KILL "$victim_pid"

: > "$work/round.log"
: > "$work/batch.log"
for pass in 1 2 3; do
    for s in $sessions; do
        "$dse" client --socket "$sock" \
            "{\"op\":\"set\",\"session\":\"$s\",\"name\":\"Precision\",\"value\":12}" \
            "{\"op\":\"candidates\",\"session\":\"$s\",\"max\":8}" \
            "{\"op\":\"retract\",\"session\":\"$s\",\"name\":\"Precision\"}" \
            >> "$work/round.log" || true
        # The same mix as one batch: executed under a single slot-lock
        # and a single group commit on the owning shard, so the kill
        # lands while whole batches are in flight.
        "$dse" client --socket "$sock" --batch \
            "{\"op\":\"set\",\"session\":\"$s\",\"name\":\"Precision\",\"value\":12}" \
            "{\"op\":\"candidates\",\"session\":\"$s\",\"max\":8}" \
            "{\"op\":\"retract\",\"session\":\"$s\",\"name\":\"Precision\"}" \
            >> "$work/batch.log" || true
    done
done
bad=$(grep '"ok":false' "$work/round.log" "$work/batch.log" \
    | grep -v -e '"code":"session_unavailable"' -e '"code":"shutting_down"' \
              -e '"code":"rejected"' || true)
if [ -n "$bad" ]; then
    echo "FAIL: kill window produced non-retryable client-visible errors:" >&2
    echo "$bad" >&2
    exit 1
fi
# Batches either fail whole with a retryable code (checked above) or
# come back as one ordered results array — at least the control shards
# must have answered some, and no reply may be a torn prefix.
if ! grep -q '"results":\[' "$work/batch.log"; then
    echo "FAIL: no batch reply carried a results array:" >&2
    tail -5 "$work/batch.log" >&2
    exit 1
fi

# Wait for the supervisor to restart the victim and the fleet to report
# healthy again, then verify the restart was logged and every signature
# (including the victim's resumed sessions) is bit-identical.
i=0
until "$dse" client --socket "$sock" '{"op":"healthz"}' 2>/dev/null \
        | grep -q '"status":"ok"'; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "FAIL: fleet did not recover after the kill" >&2
        cat "$work/fleet.log" >&2
        exit 1
    fi
    sleep 0.2
done
if ! grep -q 'restarted worker w0' "$work/fleet.log"; then
    echo "FAIL: supervisor did not log the w0 restart:" >&2
    cat "$work/fleet.log" >&2
    exit 1
fi

read_signatures "$work/sig_after.txt"
if ! cmp -s "$work/sig_before.txt" "$work/sig_after.txt"; then
    echo "FAIL: signatures diverged across the kill/restart:" >&2
    diff "$work/sig_before.txt" "$work/sig_after.txt" >&2 || true
    exit 1
fi

# Merged telemetry still answers across all shards after the restart.
"$dse" client --socket "$sock" '{"op":"metrics"}' > "$work/metrics.json"
for fragment in '"workers":4' '"registries"' '"router"'; do
    if ! grep -q -- "$fragment" "$work/metrics.json"; then
        echo "FAIL: merged metrics missing $fragment" >&2
        exit 1
    fi
done

kill -TERM "$fleet"
wait "$fleet" || true

echo "fleet smoke OK (32 sessions over 4 shards, w0 SIGKILL with batches in flight + resume verified)"
