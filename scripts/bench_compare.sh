#!/bin/sh
# Throughput regression gate for the exploration service benches.
#
# Shapes understood:
#   - BENCH_PR4.json:  "requests_per_second" at the top level
#   - BENCH_PR7.json:  the serve leg nested under "serve"
#   - BENCH_PR8.json:  the fleet bench ("bench":"fleet") — its top-level
#     requests_per_second is the aggregate across every shard
#   - BENCH_PR9.json:  the fleet bench plus a "pipeline" depth sweep;
#     "pipeline".best.requests_per_second is the deepest-point headline
#   - BENCH_PR10.json: the fleet tracing-overhead bench
#     ("bench":"fleet-tracing-overhead") — gated on its own recorded
#     overhead_pct, not on throughput
#
# Gates:
#   - serve vs serve: fail on a drop of more than BENCH_ALLOWED_DROP
#     (20% by default — generous because CI machines vary, tight enough
#     to catch a reintroduced global lock, which costs ~3-8x);
#   - when the current file carries "headline".speedup_at_100k, it must
#     stay at or above SWEEP_MIN_SPEEDUP (default 5);
#   - fleet vs serve: the sharded aggregate must reach at least
#     FLEET_MIN_SPEEDUP (default 2) times the single-server baseline.
#     A --smoke fleet run reports the ratio but does not gate — smoke
#     sizes are too small to saturate the shards;
#   - fleet vs fleet (baseline is itself a fleet bench and the current
#     file carries "pipeline"): the best pipelined throughput must reach
#     at least PIPELINE_MIN_SPEEDUP (default 2.5) times the baseline
#     lockstep aggregate — the PR 9 data-plane gate.  Smoke runs report
#     the ratio without gating.
#   - tracing overhead: when the current file is the tracing-overhead
#     bench, its overhead_pct (median of adjacent off/on pair
#     overheads) must stay at or below OBS_FLEET_MAX_OVERHEAD (default
#     3%).  Smoke runs (one pair, tiny load) report without gating.
#
# Usage: sh scripts/bench_compare.sh [baseline.json] [current.json]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

baseline=${1:-BENCH_PR3.json}
current=${2:-BENCH_PR4.json}
allowed_drop=${BENCH_ALLOWED_DROP:-0.20}
min_speedup=${SWEEP_MIN_SPEEDUP:-5}
fleet_min_speedup=${FLEET_MIN_SPEEDUP:-2}
pipeline_min_speedup=${PIPELINE_MIN_SPEEDUP:-2.5}
obs_fleet_max_overhead=${OBS_FLEET_MAX_OVERHEAD:-3.0}

if [ ! -f "$baseline" ]; then
  echo "bench-compare: baseline $baseline not found; pass the committed baseline JSON as the first argument" >&2
  exit 2
fi
if [ ! -f "$current" ]; then
  echo "bench-compare: $current not found; run 'dune exec bench/main.exe -- serve --json --smoke' (or 'bench fleet --json') first" >&2
  exit 2
fi

python3 - "$baseline" "$current" "$allowed_drop" "$min_speedup" "$fleet_min_speedup" "$pipeline_min_speedup" "$obs_fleet_max_overhead" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
allowed_drop, min_speedup = float(sys.argv[3]), float(sys.argv[4])
fleet_min_speedup = float(sys.argv[5])
pipeline_min_speedup = float(sys.argv[6])
obs_fleet_max_overhead = float(sys.argv[7])

def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"bench-compare: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench-compare: {path} is not valid JSON ({e.msg} at line {e.lineno})")

def rps(data, path):
    value = data.get("requests_per_second")
    if value is None:
        # BENCH_PR7 shape: the serve leg is nested under "serve"
        value = data.get("serve", {}).get("requests_per_second")
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"bench-compare: no usable requests_per_second in {path} "
                 f"(expected it at the top level or under \"serve\")")
    return float(value)

current_data = load(current_path)
baseline_data = load(baseline_path)

if current_data.get("bench") == "fleet-tracing-overhead":
    # tracing-overhead gate: self-contained — the bench records the
    # median per-pair overhead of telemetry-on vs telemetry-off fleets
    overhead = current_data.get("overhead_pct")
    if not isinstance(overhead, (int, float)):
        sys.exit(f"bench-compare: no usable overhead_pct in {current_path}")
    rate = current_data.get("trace_sample")
    depth = current_data.get("depth")
    smoke = bool(current_data.get("smoke"))
    print(f"bench-compare: fleet tracing overhead {overhead:+.2f}% at depth {depth}, "
          f"sampling {rate} ({current_path}); budget {obs_fleet_max_overhead:g}%")
    if smoke:
        print("bench-compare: OK (smoke tracing run — one pair, informational, not gated)")
    elif overhead > obs_fleet_max_overhead:
        sys.exit(f"bench-compare: FAIL — tracing overhead {overhead:.2f}% exceeds "
                 f"the {obs_fleet_max_overhead:g}% budget")
    else:
        print("bench-compare: OK")
    sys.exit(0)

old = rps(baseline_data, baseline_path)
new = rps(current_data, current_path)

if (current_data.get("bench") == "fleet" and baseline_data.get("bench") == "fleet"
        and isinstance(current_data.get("pipeline"), dict)):
    # data-plane gate: the best pipelined aggregate vs the baseline
    # fleet's lockstep aggregate
    best = current_data["pipeline"].get("best", {})
    best_rps = best.get("requests_per_second")
    best_depth = best.get("depth")
    if not isinstance(best_rps, (int, float)) or best_rps <= 0:
        sys.exit(f"bench-compare: no usable pipeline.best.requests_per_second in {current_path}")
    ratio = best_rps / old
    smoke = bool(current_data.get("smoke"))
    print(f"bench-compare: pipelined fleet {best_rps:.1f} req/s at depth {best_depth} "
          f"({current_path}) vs fleet baseline {old:.1f} req/s ({baseline_path}): "
          f"{ratio:.2f}x (floor {pipeline_min_speedup:g}x)")
    if smoke:
        print("bench-compare: OK (smoke fleet run — ratio is informational, not gated)")
    elif ratio < pipeline_min_speedup:
        sys.exit(f"bench-compare: FAIL — pipelined aggregate {best_rps:.1f} req/s is below "
                 f"{pipeline_min_speedup:g}x the fleet baseline "
                 f"({old * pipeline_min_speedup:.1f} req/s)")
    else:
        print("bench-compare: OK")
    sys.exit(0)

if current_data.get("bench") == "fleet":
    # sharding gate: the fleet aggregate vs the single-server baseline
    ratio = new / old
    smoke = bool(current_data.get("smoke"))
    print(f"bench-compare: fleet {new:.1f} req/s ({current_path}) vs serve baseline "
          f"{old:.1f} req/s ({baseline_path}): {ratio:.2f}x (floor {fleet_min_speedup:g}x)")
    if smoke:
        print("bench-compare: OK (smoke fleet run — ratio is informational, not gated)")
    elif ratio < fleet_min_speedup:
        sys.exit(f"bench-compare: FAIL — fleet aggregate {new:.1f} req/s is below "
                 f"{fleet_min_speedup:g}x the serve baseline ({old * fleet_min_speedup:.1f} req/s)")
    else:
        print("bench-compare: OK")
    sys.exit(0)

floor = old * (1.0 - allowed_drop)
change = (new - old) / old * 100.0
print(f"bench-compare: baseline {old:.1f} req/s ({baseline_path}), "
      f"current {new:.1f} req/s ({current_path}), change {change:+.1f}%")
if new < floor:
    sys.exit(f"bench-compare: FAIL — current throughput {new:.1f} req/s is below "
             f"the allowed floor {floor:.1f} req/s ({allowed_drop:.0%} drop from baseline)")

speedup = current_data.get("headline", {}).get("speedup_at_100k")
if isinstance(speedup, (int, float)):
    print(f"bench-compare: columnar cold-sweep speedup at 10^5 cores: {speedup:.2f}x "
          f"(floor {min_speedup:g}x)")
    if speedup < min_speedup:
        sys.exit(f"bench-compare: FAIL — columnar sweep speedup {speedup:.2f}x is below "
                 f"the {min_speedup:g}x floor")
print("bench-compare: OK")
EOF
