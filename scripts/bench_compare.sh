#!/bin/sh
# Throughput regression gate for the exploration service: compare the
# freshly-written BENCH_PR4.json headline (requests per second over 8
# concurrent clients) against the committed BENCH_PR3.json baseline and
# fail on a regression of more than the allowed fraction (20% by
# default — generous because CI machines vary, tight enough to catch a
# reintroduced global lock, which costs ~3-8x).
#
# Also understands the BENCH_PR7.json shape (columnar-sweep bench): the
# serve throughput lives under "serve".requests_per_second there, and
# when the current file carries a "headline".speedup_at_100k figure the
# gate additionally requires it to stay at or above SWEEP_MIN_SPEEDUP
# (default 5 — the columnar-vs-classic cold-sweep acceptance floor).
#
# Usage: sh scripts/bench_compare.sh [baseline.json] [current.json]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

baseline=${1:-BENCH_PR3.json}
current=${2:-BENCH_PR4.json}
allowed_drop=${BENCH_ALLOWED_DROP:-0.20}
min_speedup=${SWEEP_MIN_SPEEDUP:-5}

if [ ! -f "$current" ]; then
  echo "bench-compare: $current not found; run 'dune exec bench/main.exe -- serve --json --smoke' first" >&2
  exit 2
fi

python3 - "$baseline" "$current" "$allowed_drop" "$min_speedup" <<'EOF'
import json
import sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
allowed_drop, min_speedup = float(sys.argv[3]), float(sys.argv[4])

def load(path):
    with open(path) as f:
        return json.load(f)

def rps(data, path):
    value = data.get("requests_per_second")
    if value is None:
        # BENCH_PR7 shape: the serve leg is nested under "serve"
        value = data.get("serve", {}).get("requests_per_second")
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"bench-compare: no usable requests_per_second in {path}")
    return float(value)

current_data = load(current_path)
old = rps(load(baseline_path), baseline_path)
new = rps(current_data, current_path)
floor = old * (1.0 - allowed_drop)
change = (new - old) / old * 100.0
print(f"bench-compare: baseline {old:.1f} req/s ({baseline_path}), "
      f"current {new:.1f} req/s ({current_path}), change {change:+.1f}%")
if new < floor:
    sys.exit(f"bench-compare: FAIL — current throughput {new:.1f} req/s is below "
             f"the allowed floor {floor:.1f} req/s ({allowed_drop:.0%} drop from baseline)")

speedup = current_data.get("headline", {}).get("speedup_at_100k")
if isinstance(speedup, (int, float)):
    print(f"bench-compare: columnar cold-sweep speedup at 10^5 cores: {speedup:.2f}x "
          f"(floor {min_speedup:g}x)")
    if speedup < min_speedup:
        sys.exit(f"bench-compare: FAIL — columnar sweep speedup {speedup:.2f}x is below "
                 f"the {min_speedup:g}x floor")
print("bench-compare: OK")
EOF
