#!/bin/sh
# Throughput regression gate for the exploration service: compare the
# freshly-written BENCH_PR4.json headline (requests per second over 8
# concurrent clients) against the committed BENCH_PR3.json baseline and
# fail on a regression of more than the allowed fraction (20% by
# default — generous because CI machines vary, tight enough to catch a
# reintroduced global lock, which costs ~3-8x).
#
# Usage: sh scripts/bench_compare.sh [baseline.json] [current.json]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

baseline=${1:-BENCH_PR3.json}
current=${2:-BENCH_PR4.json}
allowed_drop=${BENCH_ALLOWED_DROP:-0.20}

if [ ! -f "$current" ]; then
  echo "bench-compare: $current not found; run 'dune exec bench/main.exe -- serve --json --smoke' first" >&2
  exit 2
fi

python3 - "$baseline" "$current" "$allowed_drop" <<'EOF'
import json
import sys

baseline_path, current_path, allowed_drop = sys.argv[1], sys.argv[2], float(sys.argv[3])

def rps(path):
    with open(path) as f:
        data = json.load(f)
    value = data.get("requests_per_second")
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"bench-compare: no usable requests_per_second in {path}")
    return float(value)

old = rps(baseline_path)
new = rps(current_path)
floor = old * (1.0 - allowed_drop)
change = (new - old) / old * 100.0
print(f"bench-compare: baseline {old:.1f} req/s ({baseline_path}), "
      f"current {new:.1f} req/s ({current_path}), change {change:+.1f}%")
if new < floor:
    sys.exit(f"bench-compare: FAIL — current throughput {new:.1f} req/s is below "
             f"the allowed floor {floor:.1f} req/s ({allowed_drop:.0%} drop from baseline)")
print("bench-compare: OK")
EOF
