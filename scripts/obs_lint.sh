#!/bin/sh
# Structural lint for telemetry spans (DESIGN.md 13): every
# [Obs.span_begin] call site must reach [Obs.span_end] on all paths,
# or the span stack leaks and parentage goes wrong for everything
# recorded after an exception.  We accept either
#
#   - a [Fun.protect] within the next $WINDOW lines (the idiom used
#     everywhere: close the span in ~finally), or
#   - an explicit `(* obs-lint: ... *)` waiver within the same window,
#     stating why the region between begin and end cannot raise
#     (e.g. journal.ml's fsync leader, where guard_io catches).
#
# lib/obs itself is excluded: it defines the primitive.  test/ is
# excluded: tests deliberately exercise unclosed and double-closed
# spans.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

WINDOW=12
status=0

for f in $(find lib bin -name '*.ml' ! -path 'lib/obs/*' | sort); do
    bad=$(awk -v w="$WINDOW" '
        /Obs\.span_begin/ { open[NR] = 1 }
        # l is an array key, i.e. a string: force numeric comparison
        # (+0) or "100" >= "96" is decided lexically and fails
        /Fun\.protect/ || /obs-lint:/ {
            for (l in open) if (NR >= l + 0 && NR - l <= w) delete open[l]
        }
        END { for (l in open) print l }
    ' "$f" | sort -n)
    for line in $bad; do
        echo "obs-lint: $f:$line: Obs.span_begin without Fun.protect or an (* obs-lint: ... *) waiver within $WINDOW lines" >&2
        status=1
    done
done

# Rule 2 (fleet code only): a span opened in router/fleet code runs on
# threads whose stack may hold a *suppressed* or unrelated span from a
# different request — implicit parenting there silently grafts hop
# spans onto whatever happens to be open.  Every [Obs.span_begin] in
# lib/fleet must either be the remote-parent constructor
# ([span_begin_remote]) or pass an explicit [~parent].
for f in $(find lib/fleet -name '*.ml' | sort); do
    bad=$(grep -n 'Obs\.span_begin' "$f" \
        | grep -v 'span_begin_remote' \
        | grep -v '~parent' \
        | cut -d: -f1 || true)
    for line in $bad; do
        echo "obs-lint: $f:$line: Obs.span_begin in fleet code without an explicit ~parent (use span_begin_remote or ~parent)" >&2
        status=1
    done
done

if [ "$status" -eq 0 ]; then
    echo "obs lint OK (span_begin sites all protected or waived; fleet spans explicitly parented)"
fi
exit $status
