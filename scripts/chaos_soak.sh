#!/bin/sh
# Chaos soak: the crash-recovery gate for the durability layer.
#
# Rounds of seeded mixed traffic against a live server with I/O fault
# injection armed (DSE_IO_FAULTS: fsync EIO, short writes, torn
# renames), a small session table (forced eviction/rehydration), and
# auto-compaction — while the server is SIGKILLed mid-traffic and
# restarted under the driver, which reconnects and keeps going.
#
# After the chaos: a clean no-fault server settles every session's
# candidate signature (settle.json), then the offline verifier resumes
# every journal twice — the production path (snapshot fast path) and
# the sequential no-fault oracle (full-history replay) — and requires
# bit-identical state between both paths and the settled signatures,
# within a resume-latency budget.  Nonzero exit on any divergence.
#
# Usage: scripts/chaos_soak.sh [--smoke] [--seed N]
#   --smoke   1 short round (PR-gate speed); default is 3 full rounds
#   --seed N  base PRNG seed for traffic + fault injection (default 1)
#
# Artifacts (chaos_report.json, settle.json, server logs) land in
# $CHAOS_ARTIFACT_DIR (default _build/chaos).
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

smoke=0
seed=1
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) smoke=1 ;;
        --seed) shift; seed=$1 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

if [ "$smoke" -eq 1 ]; then
    rounds=1; iters=25; kill_gap=0.1; pace=5
    faults='fsync=eio:0.02,write=short:0.01,rename=torn:0.05'
else
    rounds=3; iters=50; kill_gap=1.0; pace=10
    faults='fsync=eio:0.03,write=short:0.02,rename=torn:0.10'
fi
sessions=4

dune build bin/dse.exe bench/main.exe
dse=_build/default/bin/dse.exe
bench=_build/default/bench/main.exe

work=$(mktemp -d)
sock="$work/dse.sock"
journal="$work/journal"
artifacts=${CHAOS_ARTIFACT_DIR:-_build/chaos}
mkdir -p "$artifacts"
trap 'kill -9 "$server" 2>/dev/null || true; cp "$work"/server_*.log "$work"/drive_*.log "$artifacts"/ 2>/dev/null || true; rm -rf "$work"' EXIT

server=
start_server() {
    # $1: fault spec ('' = clean), $2: fault seed, $3: log tag
    if [ -n "$1" ]; then
        DSE_IO_FAULTS=$1 DSE_IO_FAULT_SEED=$2 \
            "$dse" serve --socket "$sock" --journal-dir "$journal" \
            --sync --capacity 2 --compact-after 8 \
            >> "$work/server_$3.log" 2>&1 &
    else
        "$dse" serve --socket "$sock" --journal-dir "$journal" \
            --compact-after 8 \
            >> "$work/server_$3.log" 2>&1 &
    fi
    server=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server did not come up" >&2
            cat "$work/server_$3.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

round=0
while [ "$round" -lt "$rounds" ]; do
    round=$((round + 1))
    echo "chaos round $round/$rounds (seed $((seed + round)), faults $faults)"
    start_server "$faults" "$((seed + round))" "round$round"

    "$bench" soak --drive --socket "$sock" --pace "$pace" \
        --sessions "$sessions" --iters "$iters" --seed "$((seed + round))" \
        > "$work/drive_round$round.log" 2>&1 &
    drive=$!

    # SIGKILL the server under live traffic, then bring it back while
    # the driver is still retrying — the crash it must not notice
    sleep "$kill_gap"
    kill -9 "$server" 2>/dev/null || true
    wait "$server" 2>/dev/null || true
    start_server "$faults" "$((seed + round + 1000))" "round$round"

    if ! wait "$drive"; then
        echo "FAIL: soak driver died in round $round" >&2
        cat "$work/drive_round$round.log" >&2
        cat "$work/server_round$round.log" >&2
        exit 1
    fi
    cat "$work/drive_round$round.log"

    # end the round the hard way: no clean shutdown, journals as-is
    kill -9 "$server" 2>/dev/null || true
    wait "$server" 2>/dev/null || true
done

# settle: a clean, fault-free server answers for every session's state
start_server '' 0 settle
"$bench" soak --settle --socket "$sock" --sessions "$sessions" --out "$work/settle.json"
kill -TERM "$server"
wait "$server" || { echo "FAIL: clean server did not exit on SIGTERM" >&2; exit 1; }

# verify: offline, production resume vs no-fault oracle vs settled state
"$bench" soak --verify --dir "$journal" --settle-file "$work/settle.json" \
    --out "$work/chaos_report.json"

cp "$work/settle.json" "$work/chaos_report.json" "$artifacts"/
echo "chaos soak OK ($rounds rounds, report at $artifacts/chaos_report.json)"
