(* dse: command-line front end to the design space layer.

   Commands:
     dse tree        [--layer crypto|idct|idct-abs]
     dse properties  NODE            (node path "a.b.c" or abbreviation)
     dse constraints
     dse cores       [--eol N] [--library NAME]
     dse explore     [--eol N] [--latency US] [--set "Name=value"]...
     dse export      [--eol N] DIR
     dse check       FILE            (validate a reuse-library file)

   Examples:
     dse explore --set "Implementation Style=hardware" --set "Algorithm=Montgomery"
     dse properties OMM-H
     dse export /tmp/libs *)

open Cmdliner
open Ds_layer
module CL = Ds_domains.Crypto_layer
module N = Ds_domains.Names

let printf = Printf.printf

(* ----- shared arguments ------------------------------------------------ *)

let eol_arg =
  Arg.(value & opt int 768 & info [ "eol" ] ~docv:"BITS" ~doc:"Effective operand length.")

let layer_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("crypto", `Crypto); ("idct", `Idct); ("idct-abs", `Idct_abs); ("video", `Video);
           ])
        `Crypto
    & info [ "layer" ] ~docv:"LAYER"
        ~doc:"Which design space layer: crypto, idct, idct-abs or video.")

let hierarchy_of = function
  | `Crypto -> CL.hierarchy
  | `Idct -> Ds_domains.Idct_layer.generalization_first
  | `Idct_abs -> Ds_domains.Idct_layer.abstraction_first
  | `Video -> Ds_domains.Video_layer.hierarchy

(* ----- tree ------------------------------------------------------------ *)

let tree_cmd =
  let run layer =
    Format.printf "%a@." Hierarchy.pp_tree (hierarchy_of layer);
    0
  in
  Cmd.v (Cmd.info "tree" ~doc:"Print the CDO generalization hierarchy.")
    Term.(const run $ layer_arg)

(* ----- properties ------------------------------------------------------ *)

let properties_cmd =
  let node =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NODE"
           ~doc:"Node path (dot-separated) or abbreviation (e.g. OMM-H).")
  in
  let run layer node_name =
    let hierarchy = hierarchy_of layer in
    let resolved =
      match Hierarchy.find_by_abbrev hierarchy node_name with
      | Some (path, cdo) -> Some (path, cdo)
      | None -> (
        let path = String.split_on_char '.' node_name in
        match Hierarchy.find hierarchy path with
        | Some cdo -> Some (path, cdo)
        | None -> None)
    in
    match resolved with
    | None ->
      Printf.eprintf "unknown node %S\n" node_name;
      1
    | Some (path, _) ->
      printf "properties visible at %s (own and inherited):\n" (String.concat "." path);
      List.iter
        (fun (defined_at, prop) ->
          Format.printf "  [%s] %a@." (String.concat "." defined_at) Property.pp prop)
        (Hierarchy.visible_properties hierarchy path);
      0
  in
  Cmd.v
    (Cmd.info "properties" ~doc:"List the properties visible at a CDO (Fig 8 / Fig 11 view).")
    Term.(const run $ layer_arg $ node)

(* ----- constraints ------------------------------------------------------ *)

let constraints_cmd =
  let run () =
    List.iter (fun cc -> Format.printf "%a@." Consistency.pp cc) CL.constraints;
    0
  in
  Cmd.v (Cmd.info "constraints" ~doc:"Print the consistency constraints (Fig 13).")
    Term.(const run $ const ())

(* ----- cores ------------------------------------------------------------ *)

let cores_cmd =
  let library =
    Arg.(value & opt (some string) None & info [ "library" ] ~docv:"NAME"
           ~doc:"Restrict to one library (hw-lib, sw-lib, arith-lib).")
  in
  let run eol library =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let libs =
      match library with
      | None -> Ds_reuse.Registry.libraries registry
      | Some name -> (
        match Ds_reuse.Registry.library registry ~name with
        | Some lib -> [ lib ]
        | None ->
          Printf.eprintf "unknown library %S\n" name;
          exit 1)
    in
    List.iter
      (fun lib ->
        printf "== %s (%d cores) ==\n" lib.Ds_reuse.Library.name (Ds_reuse.Library.size lib);
        List.iter
          (fun core -> Format.printf "  %a@." Ds_reuse.Core.pp core)
          lib.Ds_reuse.Library.cores)
      libs;
    0
  in
  Cmd.v (Cmd.info "cores" ~doc:"List the generated reuse-library cores.")
    Term.(const run $ eol_arg $ library)

(* ----- explore ---------------------------------------------------------- *)

(* Print per-constraint health when anything is non-healthy (silent for
   a fault-free run, keeping its output identical to the unguarded
   tool). *)
let print_health session =
  match List.filter (fun (_, s) -> s <> Guard.Healthy) (Session.health session) with
  | [] -> ()
  | faulty ->
    printf "\nconstraint health:\n";
    List.iter
      (fun (name, status) ->
        match status with
        | Guard.Quarantined { reason; _ } -> printf "  %-6s quarantined: %s\n" name reason
        | status -> printf "  %-6s %s\n" name (Guard.status_label status))
      faulty

let explore_cmd =
  let latency =
    Arg.(value & opt float 8.0 & info [ "latency" ] ~docv:"US"
           ~doc:"Latency requirement in microseconds.")
  in
  let sets =
    Arg.(value & opt_all string [] & info [ "set"; "s" ] ~docv:"NAME=VALUE"
           ~doc:"Decide a design issue (repeatable, applied in order).")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Write a markdown exploration report.")
  in
  let injects =
    Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"CC=MODE"
           ~doc:"Fault-inject a constraint before exploring (MODE is raise, nan or diverge; \
                 repeatable) to exercise guarded evaluation.")
  in
  let run eol latency sets report injects =
    match Faultsim.parse_plan injects with
    | Error msg ->
      Printf.eprintf "bad --inject: %s\n" msg;
      1
    | Ok plan ->
    let known name = List.exists (fun cc -> String.equal cc.Consistency.name name) CL.constraints in
    (match List.find_opt (fun (name, _) -> not (known name)) plan with
    | Some (name, _) ->
      Printf.eprintf "bad --inject: no constraint named %S (see `dse constraints`)\n" name;
      exit 1
    | None -> ());
    let constraints =
      if plan = [] then CL.constraints else Faultsim.wrap_plan ~plan CL.constraints
    in
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let session =
      Session.create ~hierarchy:CL.hierarchy ~constraints
        ~cores:(Ds_reuse.Registry.all_cores registry) ()
    in
    let show label session =
      printf "%-50s candidates %3d" label (Session.candidate_count session);
      (match Session.merit_range session ~merit:N.m_latency_ns with
      | Some (lo, hi) -> printf "  latency %9.0f..%9.0f ns" lo hi
      | None -> ());
      printf "\n"
    in
    let reqs =
      List.map
        (fun (name, v) ->
          if String.equal name N.effective_operand_length then (name, Value.int eol)
          else if String.equal name N.latency_single_operation then (name, Value.real latency)
          else (name, v))
        CL.coprocessor_requirements
    in
    let parse_set spec =
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "expected NAME=VALUE, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let raw = String.sub spec (i + 1) (String.length spec - i - 1) in
        let v =
          match int_of_string_opt raw with
          | Some n -> Value.int n
          | None -> (
            match float_of_string_opt raw with
            | Some f -> Value.real f
            | None -> Value.str raw)
        in
        Ok (name, v)
    in
    let ( >>= ) r f = Result.bind r f in
    let result =
      CL.navigate_to_omm session
      >>= fun s ->
      show "focused on OMM" s;
      CL.apply_requirements s reqs
      >>= fun s ->
      show "requirements entered" s;
      List.fold_left
        (fun acc spec ->
          acc
          >>= fun s ->
          parse_set spec
          >>= fun (name, v) ->
          Session.set s name v
          >>= fun s ->
          show (Printf.sprintf "%s := %s" name (Value.to_string v)) s;
          Ok s)
        (Ok s) sets
    in
    match result with
    | Error msg ->
      Printf.eprintf "exploration stopped: %s\n" msg;
      1
    | Ok s -> (
      printf "\nremaining candidates:\n";
      List.iter (fun (qid, _) -> printf "  %s\n" qid) (Session.candidates s);
      print_health s;
      printf "\ntrace:\n";
      Format.printf "%a@." Session.pp_trace s;
      match report with
      | None -> 0
      | Some path -> (
        match
          Report.save s ~path
            ~title:"Modular multiplier exploration"
            ~merits:[ N.m_latency_ns; N.m_area_um2 ]
            ~pareto:(N.m_latency_ns, N.m_area_um2)
        with
        | Ok () ->
          printf "report written to %s\n" path;
          0
        | Error msg ->
          Printf.eprintf "report failed: %s\n" msg;
          1))
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Run a scripted exploration of the cryptography layer.")
    Term.(const run $ eol_arg $ latency $ sets $ report $ injects)

(* ----- preview ----------------------------------------------------------- *)

let preview_cmd =
  let issue =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ISSUE"
           ~doc:"Design issue to preview (e.g. \"Algorithm\").")
  in
  let sets =
    Arg.(value & opt_all string [] & info [ "set"; "s" ] ~docv:"NAME=VALUE"
           ~doc:"Decisions to apply before previewing (repeatable).")
  in
  let merit =
    Arg.(value & opt string Ds_domains.Names.m_latency_ns & info [ "merit" ] ~docv:"MERIT"
           ~doc:"Figure of merit for the per-option ranges.")
  in
  let run eol issue sets merit =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let session = CL.session ~cores:(Ds_reuse.Registry.all_cores registry) in
    let ( >>= ) r f = Result.bind r f in
    let apply_one s spec =
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "expected NAME=VALUE, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let raw = String.sub spec (i + 1) (String.length spec - i - 1) in
        let v =
          match int_of_string_opt raw with
          | Some n -> Value.int n
          | None -> (
            match float_of_string_opt raw with
            | Some f -> Value.real f
            | None -> Value.str raw)
        in
        Session.set s name v
    in
    let result =
      CL.navigate_to_omm session
      >>= fun s ->
      CL.apply_requirements s CL.coprocessor_requirements
      >>= fun s ->
      List.fold_left (fun acc spec -> acc >>= fun s -> apply_one s spec) (Ok s) sets
      >>= fun s -> Session.preview_options s ~issue ~merit
    in
    match result with
    | Error msg ->
      Printf.eprintf "preview failed: %s\n" msg;
      1
    | Ok previews ->
      printf "what each option of %S would leave (%s):\n" issue merit;
      List.iter
        (fun pv ->
          match pv.Session.outcome with
          | `Explored (n, Some (lo, hi)) ->
            printf "  %-16s %3d candidates, %s %.0f..%.0f\n" pv.Session.option_value n merit lo hi
          | `Explored (n, None) -> printf "  %-16s %3d candidates (no %s data)\n" pv.Session.option_value n merit
          | `Rejected reason -> printf "  %-16s rejected: %s\n" pv.Session.option_value reason)
        previews;
      0
  in
  Cmd.v
    (Cmd.info "preview" ~doc:"Show what each option of a design issue would leave (what-if).")
    Term.(const run $ eol_arg $ issue $ sets $ merit)

(* ----- export / check --------------------------------------------------- *)

let export_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let run eol dir =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.fold_left
      (fun status lib ->
        let path = Filename.concat dir (lib.Ds_reuse.Library.name ^ ".reuselib") in
        match Ds_reuse.Library.save lib ~path with
        | Ok () ->
          printf "wrote %s (%d cores)\n" path (Ds_reuse.Library.size lib);
          status
        | Error msg ->
          Printf.eprintf "failed to write %s: %s\n" path msg;
          1)
      0
      (Ds_reuse.Registry.libraries registry)
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the generated reuse libraries to text files.")
    Term.(const run $ eol_arg $ dir)

let check_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    match Ds_reuse.Library.load ~path:file with
    | Ok lib ->
      printf "%s: OK (%s, %d cores)\n" file lib.Ds_reuse.Library.name (Ds_reuse.Library.size lib);
      0
    | Error msg ->
      Printf.eprintf "%s: INVALID (%s)\n" file msg;
      1
  in
  Cmd.v (Cmd.info "check" ~doc:"Validate a reuse-library text file.")
    Term.(const run $ file)

(* ----- document ---------------------------------------------------------- *)

let document_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  let run layer out =
    let hierarchy = hierarchy_of layer in
    let constraints =
      match layer with
      | `Crypto -> CL.constraints
      | `Video -> Ds_domains.Video_layer.constraints
      | `Idct | `Idct_abs -> []
    in
    let title =
      match layer with
      | `Crypto -> "Design Space Layer for Cryptography Applications"
      | `Idct -> "IDCT Design Space Layer (generalization-first)"
      | `Idct_abs -> "IDCT Design Space Layer (abstraction-first)"
      | `Video -> "Design Space Layer for the MPEG IDCT Subsystem"
    in
    match out with
    | None ->
      print_string (Document.render ~title ~constraints hierarchy);
      0
    | Some path -> (
      match Document.save ~title ~constraints hierarchy ~path with
      | Ok () ->
        printf "wrote %s\n" path;
        0
      | Error msg ->
        Printf.eprintf "failed: %s\n" msg;
        1)
  in
  Cmd.v
    (Cmd.info "document" ~doc:"Emit the layer's self-documentation as markdown.")
    Term.(const run $ layer_arg $ out)

(* ----- netlist ----------------------------------------------------------- *)

let netlist_cmd =
  let label =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LABEL"
           ~doc:"Design label from Table 1, e.g. \"#2_64\".")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  let run eol label out =
    match Ds_rtl.Modmul_design.parse_label label with
    | None ->
      Printf.eprintf "bad design label %S (expected e.g. \"#2_64\")\n" label;
      1
    | Some (design_no, slice_width) -> (
      let cfg = Ds_rtl.Modmul_design.design design_no ~slice_width in
      match out with
      | None -> (
        match Ds_rtl.Netlist.to_structure cfg ~eol with
        | Ok text ->
          print_string text;
          0
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          1)
      | Some path -> (
        match Ds_rtl.Netlist.save cfg ~eol ~path with
        | Ok () ->
          printf "wrote %s\n" path;
          0
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          1))
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Emit the structural view of a Table 1 design.")
    Term.(const run $ eol_arg $ label $ out)

(* ----- coproc ------------------------------------------------------------ *)

let coproc_cmd =
  let ops =
    Arg.(value & opt float 100.0 & info [ "ops" ] ~docv:"N"
           ~doc:"Target exponentiations per second.")
  in
  let recoding =
    Arg.(value & opt string "binary" & info [ "recoding" ] ~docv:"R"
           ~doc:"Exponent recoding: binary, window-2 or window-4.")
  in
  let run eol ops recoding =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let cores = Ds_reuse.Registry.all_cores registry in
    let ( >>= ) r f = Result.bind r f in
    let result =
      CL.navigate_to_exponentiator (CL.session ~cores)
      >>= fun s ->
      Session.set s N.effective_operand_length (Value.int eol)
      >>= fun s ->
      Session.set s N.exponent_length (Value.int eol)
      >>= fun s ->
      Session.set s N.operations_per_second (Value.real ops)
      >>= fun s ->
      Session.set s N.exponent_recoding (Value.str recoding)
      >>= fun s ->
      (match
         ( Session.value_of s N.multiplications_per_operation,
           Session.value_of s N.multiplication_budget )
       with
      | Some m, Some b ->
        printf "CC7: %s multiplications per exponentiation\n" (Value.to_string m);
        printf "CC8: %s us latency budget per multiplication\n" (Value.to_string b)
      | _ -> ());
      CL.multiplier_requirements_from_exponentiator s
      >>= fun reqs ->
      CL.navigate_to_omm (CL.session ~cores)
      >>= fun m ->
      CL.apply_requirements m reqs
      >>= fun m ->
      Session.set m N.implementation_style (Value.str N.hardware)
      >>= fun m -> Session.set m N.algorithm (Value.str N.montgomery)
    in
    match result with
    | Error msg ->
      Printf.eprintf "failed: %s\n" msg;
      1
    | Ok m ->
      printf "multiplier candidates under the derived budget:\n";
      List.iter
        (fun (qid, core) ->
          printf "  %-18s %8.1f ns\n" qid
            (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_latency_ns)))
        (Session.candidates m);
      0
  in
  Cmd.v
    (Cmd.info "coproc" ~doc:"Explore the exponentiation coprocessor and derive the multiplier budget.")
    Term.(const run $ eol_arg $ ops $ recoding)

(* ----- lint -------------------------------------------------------------- *)

let lint_cmd =
  let run layer =
    let hierarchy = hierarchy_of layer in
    let constraints =
      match layer with
      | `Crypto -> CL.constraints
      | `Video -> Ds_domains.Video_layer.constraints
      | `Idct | `Idct_abs -> []
    in
    let findings = Lint.check ~constraints hierarchy in
    if findings = [] then begin
      printf "no findings\n";
      0
    end
    else begin
      List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
      if Lint.is_clean ~constraints hierarchy then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Check the layer definition for dangling references and smells.")
    Term.(const run $ layer_arg)

(* ----- shell ------------------------------------------------------------- *)

let shell_cmd =
  let run eol =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let session = ref (CL.session ~cores:(Ds_reuse.Registry.all_cores registry)) in
    let parse_value raw =
      match int_of_string_opt raw with
      | Some n -> Value.int n
      | None -> (
        match float_of_string_opt raw with Some f -> Value.real f | None -> Value.str raw)
    in
    let apply label = function
      | Ok s ->
        session := s;
        printf "%s -> focus %s, %d candidates\n" label
          (String.concat "." (Session.focus s))
          (Session.candidate_count s)
      | Error msg -> printf "error: %s\n" msg
    in
    let help () =
      print_string
        "commands:\n\
        \  set NAME=VALUE    bind a requirement or decide an issue\n\
        \  default NAME      bind a property to its declared default\n\
        \  retract NAME      undo a decision (dependents re-assessed)\n\
        \  preview ISSUE     what each option would leave\n\
        \  issues            unbound design issues at the focus\n\
        \  candidates        surviving cores\n\
        \  ranges            figure-of-merit ranges\n\
        \  trace             the session log\n\
        \  health            per-constraint health and guard diagnostics\n\
        \  script            the replayable decision script\n\
        \  report FILE       write a markdown exploration report\n\
        \  quit              leave\n"
    in
    printf "design space layer shell (eol %d, %d cores); 'help' lists commands\n" eol
      (Session.candidate_count !session);
    let running = ref true in
    while !running do
      printf "dse> %!";
      match In_channel.input_line stdin with
      | None -> running := false
      | Some line -> (
        let line = String.trim line in
        match String.index_opt line ' ' with
        | _ when String.equal line "" -> ()
        | _ when String.equal line "quit" || String.equal line "exit" -> running := false
        | _ when String.equal line "help" -> help ()
        | _ when String.equal line "issues" ->
          List.iter
            (fun (prop, eligible) ->
              printf "  %-28s %s%s\n" prop.Property.name
                (Domain.describe prop.Property.domain)
                (if eligible then "" else "  [blocked by constraint ordering]"))
            (Session.open_issues !session)
        | _ when String.equal line "candidates" ->
          List.iter (fun (qid, _) -> printf "  %s\n" qid) (Session.candidates !session)
        | _ when String.equal line "ranges" ->
          List.iter
            (fun merit ->
              match Session.merit_range !session ~merit with
              | Some (lo, hi) -> printf "  %-12s %10.1f .. %10.1f\n" merit lo hi
              | None -> ())
            [ N.m_latency_ns; N.m_area_um2; N.m_power_mw; N.m_energy_nj ]
        | _ when String.equal line "trace" -> Format.printf "%a@." Session.pp_trace !session
        | _ when String.equal line "health" ->
          List.iter
            (fun (name, status) ->
              printf "  %-6s %s%s\n" name (Guard.status_label status)
                (match status with
                | Guard.Quarantined { reason; _ } -> ": " ^ reason
                | Guard.Healthy | Guard.Degraded -> ""))
            (Session.health !session);
          List.iter
            (fun d -> printf "  # %s\n" (Guard.describe_diag d))
            (Session.diagnostics !session)
        | _ when String.equal line "script" ->
          List.iter
            (fun (name, v) -> printf "  set %s=%s\n" name (Value.to_string v))
            (Session.script !session)
        | None -> printf "unknown command %S; try 'help'\n" line
        | Some i -> (
          let cmd = String.sub line 0 i in
          let arg = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          match cmd with
          | "set" -> (
            match String.index_opt arg '=' with
            | None -> printf "usage: set NAME=VALUE\n"
            | Some j ->
              let name = String.sub arg 0 j in
              let raw = String.sub arg (j + 1) (String.length arg - j - 1) in
              apply ("set " ^ name) (Session.set !session name (parse_value raw)))
          | "default" -> apply ("default " ^ arg) (Session.set_default !session arg)
          | "retract" -> apply ("retract " ^ arg) (Session.retract !session arg)
          | "preview" -> (
            match Session.preview_options !session ~issue:arg ~merit:N.m_latency_ns with
            | Error msg -> printf "error: %s\n" msg
            | Ok previews ->
              List.iter
                (fun pv ->
                  match pv.Session.outcome with
                  | `Explored (n, Some (lo, hi)) ->
                    printf "  %-16s %3d candidates, latency %.0f..%.0f ns\n"
                      pv.Session.option_value n lo hi
                  | `Explored (n, None) -> printf "  %-16s %3d candidates\n" pv.Session.option_value n
                  | `Rejected reason -> printf "  %-16s rejected: %s\n" pv.Session.option_value reason)
                previews)
          | "report" -> (
            match
              Report.save !session ~path:arg ~merits:[ N.m_latency_ns; N.m_area_um2 ]
                ~pareto:(N.m_latency_ns, N.m_area_um2)
            with
            | Ok () -> printf "wrote %s\n" arg
            | Error msg -> printf "error: %s\n" msg)
          | _ -> printf "unknown command %S; try 'help'\n" cmd))
    done;
    0
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive exploration (reads commands from stdin).")
    Term.(const run $ eol_arg)

(* ----- main ------------------------------------------------------------- *)

let () =
  let doc = "early design space exploration for core-based designs (DATE 1999 reproduction)" in
  let info = Cmd.info "dse" ~version:"1.0.0" ~doc in
  (* [~catch:false] so an escaped exception (malformed input, a layer
     that fails to construct) becomes one error line and a non-zero exit
     instead of cmdliner's backtrace dump. *)
  match
    Cmd.eval'~catch:false
      (Cmd.group info
         [
           tree_cmd; properties_cmd; constraints_cmd; cores_cmd; explore_cmd; preview_cmd;
           coproc_cmd; document_cmd; netlist_cmd; lint_cmd; shell_cmd; export_cmd; check_cmd;
         ])
  with
  | code -> exit code
  | exception e ->
    Printf.eprintf "dse: fatal error: %s\n" (Printexc.to_string e);
    exit 125
