(* dse: command-line front end to the design space layer.

   Commands:
     dse tree        [--layer crypto|idct|idct-abs]
     dse properties  NODE            (node path "a.b.c" or abbreviation)
     dse constraints
     dse cores       [--eol N] [--library NAME]
     dse explore     [--eol N] [--latency US] [--set "Name=value"]...
     dse export      [--eol N] DIR
     dse check       FILE            (validate a reuse-library file)
     dse serve       [--socket PATH] [--journal-dir DIR] [--pool N]
     dse client      [--socket PATH] [REQUEST...]

   Examples:
     dse explore --set "Implementation Style=hardware" --set "Algorithm=Montgomery"
     dse properties OMM-H
     dse export /tmp/libs *)

open Cmdliner
open Ds_layer
module CL = Ds_domains.Crypto_layer
module N = Ds_domains.Names
module SV = Ds_serve.Service
module SP = Ds_serve.Protocol
module SJ = Ds_serve.Jsonx
module Obs = Ds_obs.Obs

(* One service configuration for every front end (shell, serve, client
   tests): the full layer catalogue, the four crypto figures of merit,
   and the latency/area Pareto axes the reports use. *)
let service_config ?journal_dir ?(journal_sync = false) ?(capacity = 64) ?compact_after ~eol () =
  SV.config ?journal_dir ~journal_sync ~capacity ?compact_after ~default_eol:eol
    ~default_merits:[ N.m_latency_ns; N.m_area_um2; N.m_power_mw; N.m_energy_nj ]
    ~report_pareto:(N.m_latency_ns, N.m_area_um2)
    ~layers:Ds_domains.Catalog.factories ()

let printf = Printf.printf

(* ----- shared arguments ------------------------------------------------ *)

let eol_arg =
  Arg.(value & opt int 768 & info [ "eol" ] ~docv:"BITS" ~doc:"Effective operand length.")

let layer_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("crypto", `Crypto); ("idct", `Idct); ("idct-abs", `Idct_abs); ("video", `Video);
           ])
        `Crypto
    & info [ "layer" ] ~docv:"LAYER"
        ~doc:"Which design space layer: crypto, idct, idct-abs or video.")

let hierarchy_of = function
  | `Crypto -> CL.hierarchy
  | `Idct -> Ds_domains.Idct_layer.generalization_first
  | `Idct_abs -> Ds_domains.Idct_layer.abstraction_first
  | `Video -> Ds_domains.Video_layer.hierarchy

(* ----- tree ------------------------------------------------------------ *)

let tree_cmd =
  let run layer =
    Format.printf "%a@." Hierarchy.pp_tree (hierarchy_of layer);
    0
  in
  Cmd.v (Cmd.info "tree" ~doc:"Print the CDO generalization hierarchy.")
    Term.(const run $ layer_arg)

(* ----- properties ------------------------------------------------------ *)

let properties_cmd =
  let node =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NODE"
           ~doc:"Node path (dot-separated) or abbreviation (e.g. OMM-H).")
  in
  let run layer node_name =
    let hierarchy = hierarchy_of layer in
    let resolved =
      match Hierarchy.find_by_abbrev hierarchy node_name with
      | Some (path, cdo) -> Some (path, cdo)
      | None -> (
        let path = String.split_on_char '.' node_name in
        match Hierarchy.find hierarchy path with
        | Some cdo -> Some (path, cdo)
        | None -> None)
    in
    match resolved with
    | None ->
      Printf.eprintf "unknown node %S\n" node_name;
      1
    | Some (path, _) ->
      printf "properties visible at %s (own and inherited):\n" (String.concat "." path);
      List.iter
        (fun (defined_at, prop) ->
          Format.printf "  [%s] %a@." (String.concat "." defined_at) Property.pp prop)
        (Hierarchy.visible_properties hierarchy path);
      0
  in
  Cmd.v
    (Cmd.info "properties" ~doc:"List the properties visible at a CDO (Fig 8 / Fig 11 view).")
    Term.(const run $ layer_arg $ node)

(* ----- constraints ------------------------------------------------------ *)

let constraints_cmd =
  let run () =
    List.iter (fun cc -> Format.printf "%a@." Consistency.pp cc) CL.constraints;
    0
  in
  Cmd.v (Cmd.info "constraints" ~doc:"Print the consistency constraints (Fig 13).")
    Term.(const run $ const ())

(* ----- cores ------------------------------------------------------------ *)

let cores_cmd =
  let library =
    Arg.(value & opt (some string) None & info [ "library" ] ~docv:"NAME"
           ~doc:"Restrict to one library (hw-lib, sw-lib, arith-lib).")
  in
  let run eol library =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let libs =
      match library with
      | None -> Ds_reuse.Registry.libraries registry
      | Some name -> (
        match Ds_reuse.Registry.library registry ~name with
        | Some lib -> [ lib ]
        | None ->
          Printf.eprintf "unknown library %S\n" name;
          exit 1)
    in
    List.iter
      (fun lib ->
        printf "== %s (%d cores) ==\n" lib.Ds_reuse.Library.name (Ds_reuse.Library.size lib);
        List.iter
          (fun core -> Format.printf "  %a@." Ds_reuse.Core.pp core)
          lib.Ds_reuse.Library.cores)
      libs;
    0
  in
  Cmd.v (Cmd.info "cores" ~doc:"List the generated reuse-library cores.")
    Term.(const run $ eol_arg $ library)

(* ----- explore ---------------------------------------------------------- *)

(* Print per-constraint health when anything is non-healthy (silent for
   a fault-free run, keeping its output identical to the unguarded
   tool). *)
let print_health session =
  match List.filter (fun (_, s) -> s <> Guard.Healthy) (Session.health session) with
  | [] -> ()
  | faulty ->
    printf "\nconstraint health:\n";
    List.iter
      (fun (name, status) ->
        match status with
        | Guard.Quarantined { reason; _ } -> printf "  %-6s quarantined: %s\n" name reason
        | status -> printf "  %-6s %s\n" name (Guard.status_label status))
      faulty

let explore_cmd =
  let latency =
    Arg.(value & opt float 8.0 & info [ "latency" ] ~docv:"US"
           ~doc:"Latency requirement in microseconds.")
  in
  let sets =
    Arg.(value & opt_all string [] & info [ "set"; "s" ] ~docv:"NAME=VALUE"
           ~doc:"Decide a design issue (repeatable, applied in order).")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Write a markdown exploration report.")
  in
  let injects =
    Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"CC=MODE"
           ~doc:"Fault-inject a constraint before exploring (MODE is raise, nan or diverge; \
                 repeatable) to exercise guarded evaluation.")
  in
  let run eol latency sets report injects =
    match Faultsim.parse_plan injects with
    | Error msg ->
      Printf.eprintf "bad --inject: %s\n" msg;
      1
    | Ok plan ->
    let known name = List.exists (fun cc -> String.equal cc.Consistency.name name) CL.constraints in
    (match List.find_opt (fun (name, _) -> not (known name)) plan with
    | Some (name, _) ->
      Printf.eprintf "bad --inject: no constraint named %S (see `dse constraints`)\n" name;
      exit 1
    | None -> ());
    let constraints =
      if plan = [] then CL.constraints else Faultsim.wrap_plan ~plan CL.constraints
    in
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let session =
      Session.create ~hierarchy:CL.hierarchy ~constraints
        ~cores:(Ds_reuse.Registry.all_cores registry) ()
    in
    let show label session =
      printf "%-50s candidates %3d" label (Session.candidate_count session);
      (match Session.merit_range session ~merit:N.m_latency_ns with
      | Some (lo, hi) -> printf "  latency %9.0f..%9.0f ns" lo hi
      | None -> ());
      printf "\n"
    in
    let reqs =
      List.map
        (fun (name, v) ->
          if String.equal name N.effective_operand_length then (name, Value.int eol)
          else if String.equal name N.latency_single_operation then (name, Value.real latency)
          else (name, v))
        CL.coprocessor_requirements
    in
    let parse_set spec =
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "expected NAME=VALUE, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let raw = String.sub spec (i + 1) (String.length spec - i - 1) in
        let v =
          match int_of_string_opt raw with
          | Some n -> Value.int n
          | None -> (
            match float_of_string_opt raw with
            | Some f -> Value.real f
            | None -> Value.str raw)
        in
        Ok (name, v)
    in
    let ( >>= ) r f = Result.bind r f in
    let result =
      CL.navigate_to_omm session
      >>= fun s ->
      show "focused on OMM" s;
      CL.apply_requirements s reqs
      >>= fun s ->
      show "requirements entered" s;
      List.fold_left
        (fun acc spec ->
          acc
          >>= fun s ->
          parse_set spec
          >>= fun (name, v) ->
          Session.set s name v
          >>= fun s ->
          show (Printf.sprintf "%s := %s" name (Value.to_string v)) s;
          Ok s)
        (Ok s) sets
    in
    match result with
    | Error msg ->
      Printf.eprintf "exploration stopped: %s\n" msg;
      1
    | Ok s -> (
      printf "\nremaining candidates:\n";
      List.iter (fun (qid, _) -> printf "  %s\n" qid) (Session.candidates s);
      print_health s;
      printf "\ntrace:\n";
      Format.printf "%a@." Session.pp_trace s;
      match report with
      | None -> 0
      | Some path -> (
        match
          Report.save s ~path
            ~title:"Modular multiplier exploration"
            ~merits:[ N.m_latency_ns; N.m_area_um2 ]
            ~pareto:(N.m_latency_ns, N.m_area_um2)
        with
        | Ok () ->
          printf "report written to %s\n" path;
          0
        | Error msg ->
          Printf.eprintf "report failed: %s\n" msg;
          1))
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Run a scripted exploration of the cryptography layer.")
    Term.(const run $ eol_arg $ latency $ sets $ report $ injects)

(* ----- preview ----------------------------------------------------------- *)

let preview_cmd =
  let issue =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ISSUE"
           ~doc:"Design issue to preview (e.g. \"Algorithm\").")
  in
  let sets =
    Arg.(value & opt_all string [] & info [ "set"; "s" ] ~docv:"NAME=VALUE"
           ~doc:"Decisions to apply before previewing (repeatable).")
  in
  let merit =
    Arg.(value & opt string Ds_domains.Names.m_latency_ns & info [ "merit" ] ~docv:"MERIT"
           ~doc:"Figure of merit for the per-option ranges.")
  in
  let run eol issue sets merit =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let session = CL.session ~cores:(Ds_reuse.Registry.all_cores registry) in
    let ( >>= ) r f = Result.bind r f in
    let apply_one s spec =
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "expected NAME=VALUE, got %S" spec)
      | Some i ->
        let name = String.sub spec 0 i in
        let raw = String.sub spec (i + 1) (String.length spec - i - 1) in
        let v =
          match int_of_string_opt raw with
          | Some n -> Value.int n
          | None -> (
            match float_of_string_opt raw with
            | Some f -> Value.real f
            | None -> Value.str raw)
        in
        Session.set s name v
    in
    let result =
      CL.navigate_to_omm session
      >>= fun s ->
      CL.apply_requirements s CL.coprocessor_requirements
      >>= fun s ->
      List.fold_left (fun acc spec -> acc >>= fun s -> apply_one s spec) (Ok s) sets
      >>= fun s -> Session.preview_options s ~issue ~merit
    in
    match result with
    | Error msg ->
      Printf.eprintf "preview failed: %s\n" msg;
      1
    | Ok previews ->
      printf "what each option of %S would leave (%s):\n" issue merit;
      List.iter
        (fun pv ->
          match pv.Session.outcome with
          | `Explored (n, Some (lo, hi)) ->
            printf "  %-16s %3d candidates, %s %.0f..%.0f\n" pv.Session.option_value n merit lo hi
          | `Explored (n, None) -> printf "  %-16s %3d candidates (no %s data)\n" pv.Session.option_value n merit
          | `Rejected reason -> printf "  %-16s rejected: %s\n" pv.Session.option_value reason)
        previews;
      0
  in
  Cmd.v
    (Cmd.info "preview" ~doc:"Show what each option of a design issue would leave (what-if).")
    Term.(const run $ eol_arg $ issue $ sets $ merit)

(* ----- export / check --------------------------------------------------- *)

let export_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let run eol dir =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.fold_left
      (fun status lib ->
        let path = Filename.concat dir (lib.Ds_reuse.Library.name ^ ".reuselib") in
        match Ds_reuse.Library.save lib ~path with
        | Ok () ->
          printf "wrote %s (%d cores)\n" path (Ds_reuse.Library.size lib);
          status
        | Error msg ->
          Printf.eprintf "failed to write %s: %s\n" path msg;
          1)
      0
      (Ds_reuse.Registry.libraries registry)
  in
  Cmd.v (Cmd.info "export" ~doc:"Write the generated reuse libraries to text files.")
    Term.(const run $ eol_arg $ dir)

let check_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run file =
    match Ds_reuse.Library.load ~path:file with
    | Ok lib ->
      printf "%s: OK (%s, %d cores)\n" file lib.Ds_reuse.Library.name (Ds_reuse.Library.size lib);
      0
    | Error msg ->
      Printf.eprintf "%s: INVALID (%s)\n" file msg;
      1
  in
  Cmd.v (Cmd.info "check" ~doc:"Validate a reuse-library text file.")
    Term.(const run $ file)

(* ----- document ---------------------------------------------------------- *)

let document_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  let run layer out =
    let hierarchy = hierarchy_of layer in
    let constraints =
      match layer with
      | `Crypto -> CL.constraints
      | `Video -> Ds_domains.Video_layer.constraints
      | `Idct | `Idct_abs -> []
    in
    let title =
      match layer with
      | `Crypto -> "Design Space Layer for Cryptography Applications"
      | `Idct -> "IDCT Design Space Layer (generalization-first)"
      | `Idct_abs -> "IDCT Design Space Layer (abstraction-first)"
      | `Video -> "Design Space Layer for the MPEG IDCT Subsystem"
    in
    match out with
    | None ->
      print_string (Document.render ~title ~constraints hierarchy);
      0
    | Some path -> (
      match Document.save ~title ~constraints hierarchy ~path with
      | Ok () ->
        printf "wrote %s\n" path;
        0
      | Error msg ->
        Printf.eprintf "failed: %s\n" msg;
        1)
  in
  Cmd.v
    (Cmd.info "document" ~doc:"Emit the layer's self-documentation as markdown.")
    Term.(const run $ layer_arg $ out)

(* ----- netlist ----------------------------------------------------------- *)

let netlist_cmd =
  let label =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LABEL"
           ~doc:"Design label from Table 1, e.g. \"#2_64\".")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write to a file instead of stdout.")
  in
  let run eol label out =
    match Ds_rtl.Modmul_design.parse_label label with
    | None ->
      Printf.eprintf "bad design label %S (expected e.g. \"#2_64\")\n" label;
      1
    | Some (design_no, slice_width) -> (
      let cfg = Ds_rtl.Modmul_design.design design_no ~slice_width in
      match out with
      | None -> (
        match Ds_rtl.Netlist.to_structure cfg ~eol with
        | Ok text ->
          print_string text;
          0
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          1)
      | Some path -> (
        match Ds_rtl.Netlist.save cfg ~eol ~path with
        | Ok () ->
          printf "wrote %s\n" path;
          0
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          1))
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Emit the structural view of a Table 1 design.")
    Term.(const run $ eol_arg $ label $ out)

(* ----- coproc ------------------------------------------------------------ *)

let coproc_cmd =
  let ops =
    Arg.(value & opt float 100.0 & info [ "ops" ] ~docv:"N"
           ~doc:"Target exponentiations per second.")
  in
  let recoding =
    Arg.(value & opt string "binary" & info [ "recoding" ] ~docv:"R"
           ~doc:"Exponent recoding: binary, window-2 or window-4.")
  in
  let run eol ops recoding =
    let registry = Ds_domains.Populate.standard_registry ~eol () in
    let cores = Ds_reuse.Registry.all_cores registry in
    let ( >>= ) r f = Result.bind r f in
    let result =
      CL.navigate_to_exponentiator (CL.session ~cores)
      >>= fun s ->
      Session.set s N.effective_operand_length (Value.int eol)
      >>= fun s ->
      Session.set s N.exponent_length (Value.int eol)
      >>= fun s ->
      Session.set s N.operations_per_second (Value.real ops)
      >>= fun s ->
      Session.set s N.exponent_recoding (Value.str recoding)
      >>= fun s ->
      (match
         ( Session.value_of s N.multiplications_per_operation,
           Session.value_of s N.multiplication_budget )
       with
      | Some m, Some b ->
        printf "CC7: %s multiplications per exponentiation\n" (Value.to_string m);
        printf "CC8: %s us latency budget per multiplication\n" (Value.to_string b)
      | _ -> ());
      CL.multiplier_requirements_from_exponentiator s
      >>= fun reqs ->
      CL.navigate_to_omm (CL.session ~cores)
      >>= fun m ->
      CL.apply_requirements m reqs
      >>= fun m ->
      Session.set m N.implementation_style (Value.str N.hardware)
      >>= fun m -> Session.set m N.algorithm (Value.str N.montgomery)
    in
    match result with
    | Error msg ->
      Printf.eprintf "failed: %s\n" msg;
      1
    | Ok m ->
      printf "multiplier candidates under the derived budget:\n";
      List.iter
        (fun (qid, core) ->
          printf "  %-18s %8.1f ns\n" qid
            (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_latency_ns)))
        (Session.candidates m);
      0
  in
  Cmd.v
    (Cmd.info "coproc" ~doc:"Explore the exponentiation coprocessor and derive the multiplier budget.")
    Term.(const run $ eol_arg $ ops $ recoding)

(* ----- lint -------------------------------------------------------------- *)

let lint_cmd =
  let run layer =
    let hierarchy = hierarchy_of layer in
    let constraints =
      match layer with
      | `Crypto -> CL.constraints
      | `Video -> Ds_domains.Video_layer.constraints
      | `Idct | `Idct_abs -> []
    in
    let findings = Lint.check ~constraints hierarchy in
    if findings = [] then begin
      printf "no findings\n";
      0
    end
    else begin
      List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
      if Lint.is_clean ~constraints hierarchy then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Check the layer definition for dangling references and smells.")
    Term.(const run $ layer_arg)

(* ----- shell ------------------------------------------------------------- *)

(* The shell is a thin text veneer over the same protocol handler the
   socket server runs: every command becomes a Protocol.request, every
   display is rendered from the reply payload.  A behaviour seen here
   is the wire behaviour, verbatim. *)
let shell_cmd =
  let layer_name = function
    | `Crypto -> "crypto"
    | `Idct -> "idct"
    | `Idct_abs -> "idct-abs"
    | `Video -> "video"
  in
  let run eol layer =
    let svc = SV.create (service_config ~eol ()) in
    let sid = "shell" in
    let call req = SV.handle svc req in
    let str k payload =
      Option.value ~default:"" (Option.bind (List.assoc_opt k payload) SJ.to_str)
    in
    let int k payload =
      Option.value ~default:0 (Option.bind (List.assoc_opt k payload) SJ.to_int)
    in
    let items k payload =
      Option.value ~default:[] (Option.bind (List.assoc_opt k payload) SJ.to_list)
    in
    let query req k =
      match call req with
      | SP.Failed (_, msg) -> printf "error: %s\n" msg
      | SP.Reply payload -> k payload
    in
    let apply label response =
      match response with
      | SP.Reply payload ->
        printf "%s -> focus %s, %d candidates\n" label (str "focus" payload)
          (int "candidates" payload)
      | SP.Failed (_, msg) -> printf "error: %s\n" msg
    in
    let parse_value raw =
      match int_of_string_opt raw with
      | Some n -> Value.int n
      | None -> (
        match float_of_string_opt raw with Some f -> Value.real f | None -> Value.str raw)
    in
    let help () =
      print_string
        "commands (each is one protocol request -- see DESIGN.md section 11):\n\
        \  set NAME=VALUE    bind a requirement or decide an issue\n\
        \  default NAME      bind a property to its declared default\n\
        \  retract NAME      undo a decision (dependents re-assessed)\n\
        \  annotate TEXT     append a note to the decision trail\n\
        \  preview ISSUE     what each option would leave\n\
        \  issues            unbound design issues at the focus\n\
        \  candidates        surviving cores\n\
        \  ranges            figure-of-merit ranges\n\
        \  signature         digest of the visible exploration state\n\
        \  trace             the session log\n\
        \  health            per-constraint health and guard diagnostics\n\
        \  script            the replayable decision script\n\
        \  report FILE       write a markdown exploration report\n\
        \  quit              leave\n"
    in
    match
      call
        (SP.Open
           { session = Some sid; layer = layer_name layer; eol = Some eol; resume = false })
    with
    | SP.Failed (_, msg) ->
      Printf.eprintf "cannot start shell: %s\n" msg;
      1
    | SP.Reply opened ->
      printf "design space layer shell (eol %d, %d cores); 'help' lists commands\n" eol
        (int "candidates" opened);
      let running = ref true in
      let quit_requested = ref false in
      (* Unknown commands go to stderr and make an EOF-terminated run
         exit non-zero, so a scripted `dse shell < script` cannot
         silently misspell its way to success; an explicit quit still
         exits 0 (the designer saw the message). *)
      let had_error = ref false in
      let unknown what =
        had_error := true;
        Printf.eprintf "unknown command %S; try 'help'\n" what
      in
      while !running do
        printf "dse> %!";
        match In_channel.input_line stdin with
        | None -> running := false
        | Some line -> (
          let line = String.trim line in
          match String.index_opt line ' ' with
          | _ when String.equal line "" -> ()
          | _ when String.equal line "quit" || String.equal line "exit" ->
            quit_requested := true;
            running := false
          | _ when String.equal line "help" -> help ()
          | _ when String.equal line "issues" ->
            query (SP.Issues { session = sid }) (fun payload ->
                List.iter
                  (fun item ->
                    let eligible =
                      Option.value ~default:true
                        (Option.bind (SJ.member "eligible" item) SJ.to_bool)
                    in
                    printf "  %-28s %s%s\n"
                      (Option.value ~default:"?" (SJ.str_member "name" item))
                      (Option.value ~default:"" (SJ.str_member "domain" item))
                      (if eligible then "" else "  [blocked by constraint ordering]"))
                  (items "issues" payload))
          | _ when String.equal line "candidates" ->
            query (SP.Candidates { session = sid; max = None }) (fun payload ->
                List.iter
                  (fun qid -> Option.iter (printf "  %s\n") (SJ.to_str qid))
                  (items "candidates" payload))
          | _ when String.equal line "ranges" ->
            query (SP.Ranges { session = sid; merits = None }) (fun payload ->
                match List.assoc_opt "ranges" payload with
                | Some (SJ.Obj fields) ->
                  List.iter
                    (fun (merit, v) ->
                      match v with
                      | SJ.List [ lo; hi ] -> (
                        match (SJ.to_float lo, SJ.to_float hi) with
                        | Some lo, Some hi -> printf "  %-12s %10.1f .. %10.1f\n" merit lo hi
                        | _ -> ())
                      | _ -> ())
                    fields
                | _ -> ())
          | _ when String.equal line "signature" ->
            query (SP.Signature { session = sid }) (fun payload ->
                printf "  %s\n" (str "signature" payload))
          | _ when String.equal line "trace" ->
            query
              (SP.Trace { session = sid; spans = false; since = None; max_spans = None })
              (fun payload ->
                let trace = str "trace" payload in
                print_string trace;
                if String.length trace = 0 || trace.[String.length trace - 1] <> '\n' then
                  print_newline ())
          | _ when String.equal line "health" ->
            query (SP.Health { session = sid }) (fun payload ->
                List.iter
                  (fun item ->
                    printf "  %-6s %s%s\n"
                      (Option.value ~default:"?" (SJ.str_member "constraint" item))
                      (Option.value ~default:"?" (SJ.str_member "status" item))
                      (match SJ.str_member "reason" item with
                      | Some reason -> ": " ^ reason
                      | None -> ""))
                  (items "health" payload);
                List.iter
                  (fun d -> Option.iter (printf "  # %s\n") (SJ.to_str d))
                  (items "diagnostics" payload))
          | _ when String.equal line "script" ->
            query (SP.Script { session = sid }) (fun payload ->
                List.iter
                  (fun item ->
                    match
                      ( SJ.str_member "name" item,
                        Option.map SP.value_of_json (SJ.member "value" item) )
                    with
                    | Some name, Some (Ok v) -> printf "  set %s=%s\n" name (Value.to_string v)
                    | _ -> ())
                  (items "script" payload))
          | None -> unknown line
          | Some i -> (
            let cmd = String.sub line 0 i in
            let arg = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            match cmd with
            | "set" | "decide" -> (
              match String.index_opt arg '=' with
              | None -> printf "usage: %s NAME=VALUE\n" cmd
              | Some j ->
                let name = String.sub arg 0 j in
                let raw = String.sub arg (j + 1) (String.length arg - j - 1) in
                apply ("set " ^ name)
                  (call
                     (SP.Set
                        {
                          session = sid;
                          name;
                          value = parse_value raw;
                          decide = String.equal cmd "decide";
                        })))
            | "default" ->
              apply ("default " ^ arg) (call (SP.Default { session = sid; name = arg }))
            | "retract" ->
              apply ("retract " ^ arg) (call (SP.Retract { session = sid; name = arg }))
            | "annotate" -> apply "annotate" (call (SP.Annotate { session = sid; text = arg }))
            | "preview" ->
              query (SP.Preview { session = sid; issue = arg; merit = None }) (fun payload ->
                  List.iter
                    (fun item ->
                      let value = Option.value ~default:"?" (SJ.str_member "value" item) in
                      match SJ.str_member "outcome" item with
                      | Some "explored" -> (
                        let n =
                          Option.value ~default:0
                            (Option.bind (SJ.member "candidates" item) SJ.to_int)
                        in
                        match SJ.member "range" item with
                        | Some (SJ.List [ lo; hi ]) -> (
                          match (SJ.to_float lo, SJ.to_float hi) with
                          | Some lo, Some hi ->
                            printf "  %-16s %3d candidates, latency %.0f..%.0f ns\n" value n
                              lo hi
                          | _ -> printf "  %-16s %3d candidates\n" value n)
                        | _ -> printf "  %-16s %3d candidates\n" value n)
                      | _ ->
                        printf "  %-16s rejected: %s\n" value
                          (Option.value ~default:"?" (SJ.str_member "reason" item)))
                    (items "options" payload))
            | "report" ->
              query (SP.Report { session = sid; title = None }) (fun payload ->
                  match
                    Out_channel.with_open_text arg (fun oc ->
                        output_string oc (str "markdown" payload))
                  with
                  | () -> printf "wrote %s\n" arg
                  | exception Sys_error msg -> printf "error: %s\n" msg)
            | _ -> unknown cmd))
      done;
      if !quit_requested || not !had_error then 0 else 1
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:
         "Interactive exploration (reads commands from stdin; drives the same protocol \
          handler as the socket server).")
    Term.(const run $ eol_arg $ layer_arg)

(* ----- serve / client ---------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/dse.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Journal every accepted mutation under \\$(docv) (one file per session) and \
             allow clients to resume sessions with {\"op\":\"open\",\"resume\":true}.")
  in
  let sync =
    Arg.(
      value & flag
      & info [ "sync" ]
          ~doc:"fsync every journal append (survives power loss, not just process death).")
  in
  let pool =
    Arg.(
      value & opt int 8
      & info [ "pool" ] ~docv:"N" ~doc:"Worker domains serving connections (requests execute in parallel).")
  in
  let capacity =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Most sessions held in memory at once (least-recently-used sessions are \
             evicted; with a journal they stay resumable).")
  in
  let compact_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "compact-after" ] ~docv:"N"
          ~doc:
            "Auto-compact a session's journal to a checkpoint once its tail exceeds \\$(docv) \
             entries (resume then replays the short checkpoint script plus the tail, not the \
             whole history).  Without it, compaction happens only on eviction or via the \
             explicit {\"op\":\"compact\"} request.")
  in
  let run eol socket journal_dir sync pool capacity compact_after =
    (match Ds_serve.Iofault.arm_from_env () with
    | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
    | false -> ()
    | true ->
      printf "I/O FAULT INJECTION ARMED from DSE_IO_FAULTS — chaos testing only\n%!");
    let svc =
      SV.create (service_config ?journal_dir ~journal_sync:sync ~capacity ?compact_after ~eol ())
    in
    match Ds_serve.Server.create ~socket ~pool svc with
    | exception Unix.Unix_error (err, _, arg) ->
      Printf.eprintf "cannot listen on %s: %s %s\n" socket (Unix.error_message err) arg;
      1
    | server ->
      Ds_serve.Server.install_signal_handlers server;
      (* the HTTP observability plane (DSE_METRICS_ADDR; DESIGN.md 18) *)
      let http =
        Ds_serve.Httpd.start_from_env
          ~routes:(fun path ->
            match path with
            | "/metrics" ->
              Some
                (Ds_serve.Httpd.ok ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                   (Obs.prometheus [ ("service", SV.registry svc); ("engine", Obs.default) ]
                   ^ "\n"))
            | "/healthz" ->
              Some
                (Ds_serve.Httpd.ok ~content_type:"application/json"
                   (SP.print_response (SV.handle svc SP.Healthz) ^ "\n"))
            | "/tracez" ->
              Some
                (Ds_serve.Httpd.ok ~content_type:"application/json"
                   ("[" ^ String.concat "," (Obs.trace_json_lines ()) ^ "]\n"))
            | _ -> None)
          ()
      in
      printf "dse service listening on %s (layers: %s)%s\n%!" socket
        (String.concat ", " Ds_domains.Catalog.names)
        (match journal_dir with
        | Some dir -> Printf.sprintf ", journaling to %s" dir
        | None -> ", journaling disabled");
      (match http with
      | Some h -> printf "observability plane on http port %d\n%!" (Ds_serve.Httpd.port h)
      | None -> ());
      Ds_serve.Server.serve server;
      Option.iter Ds_serve.Httpd.stop http;
      printf "dse service stopped after %d connections\n"
        (Ds_serve.Server.connections_served server);
      0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the exploration service on a Unix-domain socket (line-delimited JSON; see \
          DESIGN.md section 11).")
    Term.(
      const run $ eol_arg $ socket_arg $ journal_dir $ sync $ pool $ capacity $ compact_after)

let client_cmd =
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"JSON request lines; when omitted, lines are read from stdin until EOF.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Total wall-clock budget for connecting (retries with backoff while the server \
             is starting, then fails fast with a distinct deadline_exceeded error).  \
             Without it, a single connection attempt is made.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Assemble every request line into one batch op against their common session \
             and send it as a single request: the server executes the array under one \
             session-lock hold and one journal group-commit, and the reply carries the \
             ordered per-request results.  All lines must be session-scoped ops against \
             the same session.")
  in
  let run socket deadline batch requests =
    (* a server dying mid-request should report an error, not kill the
       client with an unhandled SIGPIPE *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let connection =
      match deadline with
      | None -> Ds_serve.Client.connect ~socket ()
      | Some d -> Ds_serve.Client.connect_retry ~deadline:d ~socket ()
    in
    match connection with
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      1
    | Ok client ->
      let send ok line =
        match Ds_serve.Client.request_line client line with
        | Ok reply ->
          printf "%s\n%!" reply;
          ok
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          false
      in
      let lines =
        if requests <> [] then requests
        else
          let rec go acc =
            match In_channel.input_line stdin with
            | None -> List.rev acc
            | Some line when String.equal (String.trim line) "" -> go acc
            | Some line -> go (line :: acc)
          in
          go []
      in
      let ok =
        if batch then begin
          let parsed =
            List.fold_left
              (fun acc line ->
                match acc with
                | Error _ as e -> e
                | Ok reqs -> (
                  match Ds_serve.Protocol.parse_request line with
                  | Ok req -> Ok (req :: reqs)
                  | Error (code, msg) ->
                    Error
                      (Printf.sprintf "%s: %s"
                         (Ds_serve.Protocol.error_code_label code)
                         msg)))
              (Ok []) lines
          in
          match
            Result.bind parsed (fun reqs ->
                Ds_serve.Protocol.batch_of_requests (List.rev reqs))
          with
          | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            false
          | Ok batch_req ->
            send true
              (Ds_serve.Jsonx.to_string (Ds_serve.Protocol.json_of_request batch_req))
        end
        else List.fold_left send true lines
      in
      Ds_serve.Client.close client;
      if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send protocol request lines to a running dse service and print the replies.  \
          With $(b,--batch), the lines are sent as one atomic batch op (one \
          session-lock hold, one journal group-commit on the server).")
    Term.(const run $ socket_arg $ deadline $ batch $ requests)

(* ----- top: live service telemetry --------------------------------------- *)

(* One polled [metrics] snapshot, flattened: registry tags are dropped
   because the catalog keeps service and engine names disjoint. *)
type metrics_sample = {
  ms_uptime : float;
  ms_sessions : int;
  ms_counters : (string * int) list;
  ms_gauges : (string * float) list;
  ms_hists : (string * (int * float * int array)) list;  (* count, max, buckets *)
  ms_slow : string list;  (* slow-request log lines (JSON span trees) *)
}

let parse_metrics payload =
  let reg_objects =
    match List.assoc_opt "registries" payload with
    | Some (SJ.Obj regs) -> List.map snd regs
    | _ -> []
  in
  let fold_members key json_of =
    List.concat_map
      (fun reg ->
        match SJ.member key reg with
        | Some (SJ.Obj fields) ->
          List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (json_of v)) fields
        | _ -> [])
      reg_objects
  in
  let hist_of v =
    match (SJ.member "count" v, SJ.member "max" v, SJ.member "buckets" v) with
    | Some c, Some m, Some (SJ.List bs) ->
      let buckets = Array.of_list (List.filter_map SJ.to_int bs) in
      Option.bind (SJ.to_int c) (fun c ->
          Option.map (fun m -> (c, m, buckets)) (SJ.to_float m))
    | _ -> None
  in
  {
    ms_uptime =
      Option.value ~default:0.0
        (Option.bind (List.assoc_opt "uptime_s" payload) SJ.to_float);
    ms_sessions =
      Option.value ~default:0 (Option.bind (List.assoc_opt "sessions" payload) SJ.to_int);
    ms_counters = fold_members "counters" SJ.to_int;
    ms_gauges = fold_members "gauges" SJ.to_float;
    ms_hists = fold_members "histograms" hist_of;
    ms_slow =
      (match List.assoc_opt "slow" payload with
      | Some (SJ.List l) -> List.filter_map SJ.to_str l
      | _ -> []);
  }

(* Window a histogram between two cumulative snapshots by differencing
   the bucket counts, then reuse the registry's own quantile estimator
   over the delta.  The max is cumulative (the wire format carries no
   windowed max); quantiles are windowed.  Deltas clamp at zero
   ({!Obs.window_delta}): a worker restarted in place resets its
   cumulative counters, and a reset must read as "no traffic this
   window", never as a negative rate. *)
let windowed_hist ?prev (count, max_us, buckets) =
  let pcount, pbuckets =
    match prev with Some (c, _, b) -> (c, b) | None -> (0, [||])
  in
  let counts = Obs.window_counts ~prev:pbuckets ~cur:buckets in
  let n = Obs.window_delta ~prev:pcount ~cur:count in
  (n, fun p -> Obs.quantile_of ~counts ~count:n ~max:max_us p)

let print_metrics_screen ~elapsed ~sample:s ~prev =
  let window_label =
    match prev with
    | None -> "cumulative since server start"
    | Some _ -> Printf.sprintf "last %.1fs window" elapsed
  in
  printf "dse top  uptime %.1fs  sessions %d  (%s)\n" s.ms_uptime s.ms_sessions window_label;
  let prev_counters = match prev with Some p -> p.ms_counters | None -> [] in
  let prev_hists = match prev with Some p -> p.ms_hists | None -> [] in
  let dt = if elapsed > 0.0 then elapsed else 1.0 in
  printf "  %-34s %9s %9s %9s %9s %9s\n" "latency (us)" "n" "p50" "p90" "p99" "max";
  List.iter
    (fun (name, h) ->
      let n, q = windowed_hist ?prev:(List.assoc_opt name prev_hists) h in
      if n > 0 then
        let _, max_us, _ = h in
        printf "  %-34s %9d %9.0f %9.0f %9.0f %9.0f\n" name n (q 0.5) (q 0.9) (q 0.99)
          max_us)
    s.ms_hists;
  printf "  %-34s %11s\n" "counters" "rate/s";
  List.iter
    (fun (name, v) ->
      match prev with
      | None -> printf "  %-34s %11s  (total %d)\n" name "-" v
      | Some _ ->
        let prev_v = Option.value ~default:0 (List.assoc_opt name prev_counters) in
        (* clamped: a restart-in-place counter reset shows as silence,
           not a negative rate *)
        if Obs.window_delta ~prev:prev_v ~cur:v > 0 then
          printf "  %-34s %11.1f  (total %d)\n" name
            (Obs.window_rate ~prev:prev_v ~cur:v ~dt)
            v)
    s.ms_counters;
  List.iter (fun (name, v) -> printf "  %-34s %11.1f\n" name v) s.ms_gauges;
  if s.ms_slow <> [] then begin
    printf "  slow requests (over DSE_SLOW_MS; span trees as JSON):\n";
    List.iter (fun line -> printf "    %s\n" line) s.ms_slow
  end;
  print_newline ();
  flush stdout

(* Per-shard payloads riding under ["shards"] in a fleet router's
   merged [metrics] reply — each one a full single-worker metrics
   payload (or an error marker for a shard that did not answer). *)
let parse_shards payload =
  match List.assoc_opt "shards" payload with
  | Some (SJ.Obj shards) ->
    List.map
      (fun (name, v) ->
        match v with
        | SJ.Obj fields -> (
          match List.assoc_opt "error" fields with
          | Some (SJ.Str e) -> (name, Error e)
          | _ -> (name, Ok (parse_metrics fields)))
        | _ -> (name, Error "malformed shard payload"))
      shards
  | _ -> []

(* One line per shard: sessions, windowed request throughput and
   latency quantiles over the shard's [dse_request_us{...}] histograms
   merged bucket-wise (exact: one shared bound table). *)
let print_shard_lines ~elapsed ~shards ~prev_shards =
  if shards <> [] then begin
    printf "  %-10s %9s %9s %9s %9s %9s\n" "shard" "sessions" "req/s" "p50" "p99" "max";
    List.iter
      (fun (name, r) ->
        match r with
        | Error msg -> printf "  %-10s %s\n" name msg
        | Ok (s : metrics_sample) ->
          let request_hists =
            List.filter
              (fun (n, _) -> String.length n >= 14 && String.equal (String.sub n 0 14) "dse_request_us")
              s.ms_hists
          in
          let prev_hists =
            match Option.bind prev_shards (List.assoc_opt name) with
            | Some (Ok (p : metrics_sample)) -> p.ms_hists
            | _ -> []
          in
          let merge (ca, ma, ba) (cb, mb, bb) =
            let n = Stdlib.max (Array.length ba) (Array.length bb) in
            ( ca + cb,
              Float.max ma mb,
              Array.init n (fun i ->
                  (if i < Array.length ba then ba.(i) else 0)
                  + if i < Array.length bb then bb.(i) else 0) )
          in
          let total hists =
            List.fold_left
              (fun acc (_, h) ->
                match acc with None -> Some h | Some a -> Some (merge a h))
              None hists
          in
          let merged = total request_hists in
          let prev_merged =
            total
              (List.filter (fun (n, _) -> List.mem_assoc n request_hists) prev_hists)
          in
          (match merged with
          | None -> printf "  %-10s %9d %9s\n" name s.ms_sessions "-"
          | Some h ->
            let n, q = windowed_hist ?prev:prev_merged h in
            let _, max_us, _ = h in
            let dt = if elapsed > 0.0 then elapsed else 1.0 in
            printf "  %-10s %9d %9.1f %9.0f %9.0f %9.0f\n" name s.ms_sessions
              (float_of_int n /. dt) (q 0.5) (q 0.99) max_us))
      shards;
    print_newline ()
  end

let top_cmd =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"SECS" ~doc:"Seconds between samples.")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "samples"; "n" ] ~docv:"N"
          ~doc:"Stop after $(docv) samples (0 = run until interrupted).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "The socket is a fleet router: besides the merged aggregate view, show one \
             line per shard (sessions, windowed req/s, p50/p99).")
  in
  let run socket interval iterations fleet =
    let fetch () =
      match
        Ds_serve.Client.with_client ~socket (fun c ->
            Ds_serve.Client.request c (SP.Metrics { format = None }))
      with
      | Ok (Ok (SP.Reply payload)) ->
        Ok (parse_metrics payload, if fleet then parse_shards payload else [])
      | Ok (Ok (SP.Failed (_, msg))) | Ok (Error msg) | Error msg -> Error msg
    in
    let rec loop n prev prev_shards t_prev =
      match fetch () with
      | Error msg ->
        Printf.eprintf "dse top: %s\n" msg;
        1
      | Ok (sample, shards) ->
        let now = Unix.gettimeofday () in
        let elapsed = now -. t_prev in
        print_metrics_screen ~elapsed ~sample ~prev;
        if fleet then print_shard_lines ~elapsed ~shards ~prev_shards;
        if iterations > 0 && n + 1 >= iterations then 0
        else begin
          Unix.sleepf interval;
          loop (n + 1) (Some sample) (Some shards) now
        end
    in
    loop 0 None None (Unix.gettimeofday ())
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running dse service's [metrics] op and show windowed request rates and \
          latency quantiles (quantiles are bucket estimates; see DESIGN.md section 13).  \
          With --fleet, also per-shard views from a fleet router's merged reply.")
    Term.(const run $ socket_arg $ interval $ iterations $ fleet)

(* ----- trace: exploration story from exported spans ----------------------- *)

(* A recorded span as shipped by the [trace] op's spans mode.  A fleet
   router's merged stream tags each span with its shard of origin at
   the top level; that tag folds into [ws_attrs] so one parser serves
   both the single-process and the fleet views. *)
type wire_span = {
  ws_seq : int;
  ws_id : int;
  ws_parent : int;
  ws_name : string;
  ws_t0 : float;
  ws_dur_us : float;
  ws_attrs : (string * string) list;
}

let wire_span_of_json json =
  match (SJ.member "seq" json, SJ.member "id" json, SJ.str_member "name" json) with
  | Some seq, Some id, Some name ->
    Option.bind (SJ.to_int seq) (fun ws_seq ->
        Option.map
          (fun ws_id ->
            {
              ws_seq;
              ws_id;
              ws_parent =
                Option.value ~default:(-1)
                  (Option.bind (SJ.member "parent" json) SJ.to_int);
              ws_name = name;
              ws_t0 =
                Option.value ~default:0.0 (Option.bind (SJ.member "t0" json) SJ.to_float);
              ws_dur_us =
                Option.value ~default:0.0
                  (Option.bind (SJ.member "dur_us" json) SJ.to_float);
              ws_attrs =
                (match SJ.str_member "shard" json with
                | Some shard -> [ ("shard", shard) ]
                | None -> [])
                @ (match SJ.member "attrs" json with
                  | Some (SJ.Obj fields) ->
                    List.filter_map
                      (fun (k, v) -> Option.map (fun v -> (k, v)) (SJ.to_str v))
                      fields
                  | _ -> []);
            })
          (SJ.to_int id))
  | _ -> None

(* Drain the span ring through the since-cursor, one page at a time.
   Stops on the first partial page: a full page means more may be
   buffered, while a partial one is the current tail — polling again on
   an idle ring would never drain, because each [trace] request records
   its own [op.trace] span. *)
let fetch_all_spans client =
  let page_size = 512 in
  let rec go since acc dropped raw =
    match
      Ds_serve.Client.request client
        (SP.Trace { session = ""; spans = true; since; max_spans = Some page_size })
    with
    | Error msg | Ok (SP.Failed (_, msg)) -> Error msg
    | Ok (SP.Reply payload) ->
      let page =
        Option.value ~default:[] (Option.bind (List.assoc_opt "spans" payload) SJ.to_list)
      in
      let d =
        Option.value ~default:0 (Option.bind (List.assoc_opt "dropped" payload) SJ.to_int)
      in
      let parsed = List.filter_map wire_span_of_json page in
      let acc = List.rev_append parsed acc
      and raw = List.rev_append page raw
      and dropped = dropped + d in
      if List.length page < page_size then Ok (List.rev acc, dropped, List.rev raw)
      else
        let next =
          Option.value ~default:0 (Option.bind (List.assoc_opt "next" payload) SJ.to_int)
        in
        go (Some next) acc dropped raw
  in
  go None [] 0 []

(* Retell a session's exploration from span data alone: the [op.*]
   roots carry the request, the nested [session.set] / [engine.sweep] /
   [cc.eliminate] / [cc.derive] / [guard.fault] spans carry what the
   engine did with it.  This is the [pp_trace] pruning story, but
   reconstructed client-side from the wire format — no pretty-printer
   involved. *)
let print_trace_story session spans =
  let attr k sp = List.assoc_opt k sp.ws_attrs in
  let children = Hashtbl.create 256 in
  List.iter
    (fun sp ->
      if sp.ws_parent >= 0 then
        Hashtbl.replace children sp.ws_parent
          (sp :: Option.value ~default:[] (Hashtbl.find_opt children sp.ws_parent)))
    spans;
  let rec descendants sp =
    let kids =
      List.sort
        (fun a b -> compare a.ws_seq b.ws_seq)
        (Option.value ~default:[] (Hashtbl.find_opt children sp.ws_id))
    in
    List.concat_map (fun k -> k :: descendants k) kids
  in
  let roots =
    List.filter
      (fun sp ->
        String.length sp.ws_name > 3
        && String.equal (String.sub sp.ws_name 0 3) "op."
        && attr "session" sp = Some session)
      spans
    |> List.sort (fun a b -> compare a.ws_seq b.ws_seq)
  in
  let a ?(def = "?") k sp = Option.value ~default:def (attr k sp) in
  let candidates sp =
    match attr "candidates" sp with Some c -> Printf.sprintf "  candidates %s" c | None -> ""
  in
  List.iter
    (fun root ->
      let deep = descendants root in
      let by_name n = List.filter (fun sp -> String.equal sp.ws_name n) deep in
      (match a "op" root with
      | "open" -> printf "open layer=%s%s\n" (a "layer" root) (candidates root)
      | "set" | "decide" | "default" ->
        let verb = if a "op" root = "decide" then "decision" else "requirement" in
        List.iter
          (fun s ->
            match attr "source" s with
            | Some "default" -> printf "default %s := %s\n" (a "name" s) (a "value" s)
            | _ -> printf "%s %s := %s\n" verb (a "name" s) (a "value" s))
          (List.filter (fun s -> attr "source" s <> None) (by_name "session.set"));
        List.iter
          (fun sweep ->
            printf "  sweep: pool %s -> %s survivors%s\n" (a "pool" sweep)
              (a ~def:"?" "survivors" sweep)
              (if attr "fallback" sweep = Some "true" then "  (serial fallback)" else ""))
          (by_name "engine.sweep");
        List.iter
          (fun e -> printf "    pruned by %s  (-%s)\n" (a "cc" e) (a "eliminated" e))
          (by_name "cc.eliminate");
        List.iter
          (fun d -> printf "  derived %s := %s (by %s)\n" (a "name" d) (a "value" d) (a "cc" d))
          (by_name "cc.derive");
        List.iter
          (fun f ->
            printf "  constraint %s faulted during %s: %s\n" (a "cc" f) (a "op" f)
              (a "fault" f))
          (by_name "guard.fault")
      | "retract" ->
        List.iter
          (fun s -> printf "retracted %s%s\n" (a "name" s) (candidates root))
          (by_name "session.retract")
      | "annotate" -> printf "note (annotate)%s\n" (candidates root)
      | "branch" -> printf "branch -> %s%s\n" (a ~def:"?" "as" root) (candidates root)
      | op -> printf "%s%s\n" op (candidates root));
      if attr "ok" root = Some "false" then
        printf "  !! rejected (%s)\n" (a ~def:"?" "code" root))
    roots;
  if roots = [] then
    printf "no spans recorded for session %S (is telemetry enabled on the server?)\n" session

(* One unpaginated fetch of the whole merged fleet span stream: the
   router fans a [trace spans] request to every worker and appends its
   own ring, so pagination cursors are per-shard and a single full
   fetch is the simple correct read. *)
let fetch_fleet_spans client =
  match
    Ds_serve.Client.request client
      (SP.Trace { session = ""; spans = true; since = None; max_spans = None })
  with
  | Error msg | Ok (SP.Failed (_, msg)) -> Error msg
  | Ok (SP.Reply payload) ->
    let page =
      Option.value ~default:[] (Option.bind (List.assoc_opt "spans" payload) SJ.to_list)
    in
    Ok (List.filter_map wire_span_of_json page, page)

(* Reassemble one distributed request tree from span data alone
   (DESIGN.md 18).  Every process that saw the trace recorded a
   remote-parented local root carrying ["trace"]/["span"]/
   ["parent_span"] attrs; local children hang off integer parent ids
   within their own (shard, process) ring.  The client-minted root span
   id was recorded by no process, so the tree's apex is virtual: roots
   whose [parent_span] names no recorded span sit directly under it,
   while any root whose [parent_span] is another recorded root's
   ["span"] nests beneath that root. *)
let print_fleet_trace tid spans =
  let attr k sp = List.assoc_opt k sp.ws_attrs in
  let shard_of sp = Option.value ~default:"?" (attr "shard" sp) in
  let children : (string * int, wire_span list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun sp ->
      if sp.ws_parent >= 0 then begin
        let key = (shard_of sp, sp.ws_parent) in
        Hashtbl.replace children key
          (sp :: Option.value ~default:[] (Hashtbl.find_opt children key))
      end)
    spans;
  let roots =
    List.filter (fun sp -> attr "trace" sp = Some tid) spans
    |> List.sort (fun a b -> Float.compare a.ws_t0 b.ws_t0)
  in
  let hex_of sp = attr "span" sp in
  let known_hex = List.filter_map hex_of roots in
  let under root =
    List.filter
      (fun sp -> hex_of root <> None && attr "parent_span" sp = hex_of root)
      roots
  in
  let hidden = [ "trace"; "span"; "parent_span"; "shard" ] in
  let attr_line sp =
    String.concat ""
      (List.filter_map
         (fun (k, v) ->
           if List.mem k hidden then None else Some (Printf.sprintf "  %s=%s" k v))
         sp.ws_attrs)
  in
  let rec print_local indent sp =
    printf "%s%s [%s]  %.1fus%s\n" indent sp.ws_name (shard_of sp) sp.ws_dur_us
      (attr_line sp);
    List.iter
      (print_local (indent ^ "  "))
      (List.sort
         (fun a b -> compare a.ws_seq b.ws_seq)
         (Option.value ~default:[] (Hashtbl.find_opt children (shard_of sp, sp.ws_id))))
  in
  let rec print_root indent root =
    print_local indent root;
    List.iter (fun sub -> print_root (indent ^ "  ") sub) (under root)
  in
  match roots with
  | [] ->
    printf
      "no spans for trace %s (is DSE_TELEMETRY=1 on the fleet, and the trace id sampled?)\n"
      tid
  | roots ->
    printf "trace %s  (%d process-local roots)\n" tid (List.length roots);
    List.iter
      (fun root ->
        match attr "parent_span" root with
        | Some p when List.mem p known_hex -> ()  (* printed beneath its parent *)
        | _ -> print_root "  " root)
      roots

let trace_cmd =
  let session_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SESSION"
          ~doc:"Session id to reconstruct (or, with $(b,--fleet), a 32-hex trace id).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump the raw span pages as JSON lines instead of the reconstructed story.")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Treat the argument as a propagated trace id and reassemble the distributed \
             request tree (router hop, worker op, sweep/journal/fsync phases) from the \
             merged fleet span stream (DESIGN.md section 18).")
  in
  let run socket session raw fleet =
    if fleet then begin
      match Ds_serve.Client.with_client ~socket (fun c -> fetch_fleet_spans c) with
      | Error msg | Ok (Error msg) ->
        Printf.eprintf "dse trace: %s\n" msg;
        1
      | Ok (Ok (spans, raw_page)) ->
        if raw then List.iter (fun j -> printf "%s\n" (SJ.to_string j)) raw_page
        else print_fleet_trace session spans;
        0
    end
    else
      match
        Ds_serve.Client.with_client ~socket (fun c -> fetch_all_spans c)
      with
      | Error msg | Ok (Error msg) ->
        Printf.eprintf "dse trace: %s\n" msg;
        1
      | Ok (Ok (spans, dropped, raw_pages)) ->
        if raw then List.iter (fun j -> printf "%s\n" (SJ.to_string j)) raw_pages
        else begin
          if dropped > 0 then
            printf "(ring dropped %d spans before this read; story may be partial)\n" dropped;
          print_trace_story session spans
        end;
        0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Reconstruct a session's exploration story (decisions, pruning, derivations, \
          faults) from the service's exported telemetry spans; with $(b,--fleet), \
          reassemble one distributed trace across router and worker processes.")
    Term.(const run $ socket_arg $ session_arg $ raw $ fleet)

(* ----- fleet: sharded multi-process service ------------------------------ *)

module Fleet = Ds_fleet

(* Worker processes are fresh execs of this binary ([dse fleet worker])
   — never forks: the parent runs a threaded OCaml runtime, and fork
   without exec in a threaded process is a deadlock lottery. *)

let fleet_worker_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket this worker listens on.")
  in
  let journal_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "This worker's private journal directory (restart-in-place resumes sessions \
             from it; two workers must never share one).")
  in
  let pool =
    Arg.(value & opt int 4 & info [ "pool" ] ~docv:"N" ~doc:"Worker threads serving connections.")
  in
  let capacity =
    Arg.(
      value & opt int 8192
      & info [ "capacity" ] ~docv:"N" ~doc:"Resident-session bound of this shard's store.")
  in
  let compact_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "compact-after" ] ~docv:"N" ~doc:"Auto-compact journals past this tail length.")
  in
  let sync =
    Arg.(value & flag & info [ "sync" ] ~doc:"fsync every journal append.")
  in
  let run eol socket journal_dir pool capacity compact_after sync =
    (try Unix.mkdir journal_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let cfg =
      service_config ~journal_dir ~journal_sync:sync ~capacity ?compact_after ~eol ()
    in
    match Fleet.Worker.run ~socket ~pool cfg with
    | () -> 0
    | exception Unix.Unix_error (err, _, arg) ->
      Printf.eprintf "fleet worker: cannot serve on %s: %s %s\n" socket
        (Unix.error_message err) arg;
      1
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run one fleet shard: the single-process service on a private socket and journal \
          directory (spawned by `dse fleet serve`, restartable in place by the supervisor).")
    Term.(const run $ eol_arg $ socket $ journal_dir $ pool $ capacity $ compact_after $ sync)

let fleet_serve_cmd =
  let nworkers =
    Arg.(
      value & opt int 4
      & info [ "n"; "workers" ] ~docv:"N" ~doc:"Worker processes (shards) to run.")
  in
  let dir =
    Arg.(
      value
      & opt string "/tmp/dse-fleet"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Fleet state root: per-worker sockets, journal directories and logs.")
  in
  let pool =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Threads per worker process.  Default: slots + 2 — a worker thread owns a \
             connection for its lifetime, so the pool must exceed the router's persistent \
             slots or routed connections starve in the accept queue; the two spares keep \
             health probes and direct admin clients answerable under full routed load.")
  in
  let capacity =
    Arg.(
      value & opt int 8192
      & info [ "capacity" ] ~docv:"N" ~doc:"Resident-session bound per shard.")
  in
  let slots =
    Arg.(
      value & opt int 8
      & info [ "slots" ] ~docv:"N"
          ~doc:"Router-side persistent connections per worker (bounds in-flight requests per shard).")
  in
  let sync =
    Arg.(value & flag & info [ "sync" ] ~doc:"Workers fsync every journal append.")
  in
  let run eol socket nworkers dir pool capacity slots sync =
    let n = Stdlib.max 1 nworkers in
    let pool = match pool with Some p -> p | None -> slots + 2 in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let specs =
      List.init n (fun i ->
          let name = Printf.sprintf "w%d" i in
          let args =
            [
              Sys.executable_name; "fleet"; "worker";
              "--socket"; Filename.concat dir (name ^ ".sock");
              "--journal-dir"; Filename.concat dir (name ^ ".journal");
              "--pool"; string_of_int pool;
              "--capacity"; string_of_int capacity;
              "--eol"; string_of_int eol;
            ]
            @ (if sync then [ "--sync" ] else [])
          in
          {
            Fleet.Supervisor.w_name = name;
            w_socket = Filename.concat dir (name ^ ".sock");
            w_argv = Array.of_list args;
            w_log = Some (Filename.concat dir (name ^ ".log"));
          })
    in
    let sup =
      Fleet.Supervisor.start
        ~on_restart:(fun name -> Printf.eprintf "fleet: restarted worker %s\n%!" name)
        specs
    in
    match Fleet.Supervisor.await_ready sup with
    | Error msg ->
      Printf.eprintf "fleet: %s\n" msg;
      Fleet.Supervisor.stop sup;
      1
    | Ok () -> (
      match
        Fleet.Router.create ~socket ~workers:(Fleet.Supervisor.workers sup) ~slots ()
      with
      | exception Unix.Unix_error (err, _, arg) ->
        Printf.eprintf "fleet: cannot listen on %s: %s %s\n" socket (Unix.error_message err)
          arg;
        Fleet.Supervisor.stop sup;
        1
      | router ->
        Fleet.Router.install_signal_handlers router;
        (* only the router mounts the HTTP plane: workers inherit this
           environment, and N processes racing to bind DSE_METRICS_ADDR
           is exactly the failure mode to avoid *)
        let http =
          Ds_serve.Httpd.start_from_env ~routes:(Fleet.Router.http_routes router) ()
        in
        printf "dse fleet listening on %s (%d workers under %s)\n%!" socket n dir;
        (match http with
        | Some h -> printf "observability plane on http port %d\n%!" (Ds_serve.Httpd.port h)
        | None -> ());
        Fleet.Router.serve router;
        Option.iter Ds_serve.Httpd.stop http;
        Fleet.Supervisor.stop sup;
        printf "dse fleet stopped after %d connections; worker restarts:%s\n"
          (Fleet.Router.connections_served router)
          (String.concat ""
             (List.map
                (fun (w, r) -> Printf.sprintf " %s=%d" w r)
                (Fleet.Supervisor.restarts sup)));
        0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a sharded fleet: N supervised worker processes behind a consistent-hash \
          router on one socket (DESIGN.md section 16).")
    Term.(
      const run $ eol_arg $ socket_arg $ nworkers $ dir $ pool $ capacity $ slots $ sync)

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:"Sharded multi-process service: router, supervised workers, merged telemetry.")
    [ fleet_serve_cmd; fleet_worker_cmd ]

(* ----- main ------------------------------------------------------------- *)

let () =
  let doc = "early design space exploration for core-based designs (DATE 1999 reproduction)" in
  let info = Cmd.info "dse" ~version:Version.version ~doc in
  (* stamp the Prometheus [dse_build_info] gauge before any exporter
     can run *)
  Obs.set_build_info ~version:Version.version;
  (* [~catch:false] so an escaped exception (malformed input, a layer
     that fails to construct) becomes one error line and a non-zero exit
     instead of cmdliner's backtrace dump. *)
  match
    Cmd.eval'~catch:false
      (Cmd.group info
         [
           tree_cmd; properties_cmd; constraints_cmd; cores_cmd; explore_cmd; preview_cmd;
           coproc_cmd; document_cmd; netlist_cmd; lint_cmd; shell_cmd; export_cmd; check_cmd;
           serve_cmd; client_cmd; top_cmd; trace_cmd; fleet_cmd;
         ])
  with
  | code -> exit code
  | exception e ->
    (* fatal trap: keep the event trail — whatever the telemetry ring
       buffered (sweeps, eliminations, derivations) goes to stderr as
       JSON lines before the process dies *)
    Printf.eprintf "dse: fatal error: %s\n" (Printexc.to_string e);
    Obs.dump_ring_to stderr;
    exit 125
