(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and prints paper-reported values next to measured ones.

   Usage:
     dune exec bench/main.exe            -- run every experiment + micro
     dune exec bench/main.exe table1     -- one experiment
     dune exec bench/main.exe fig6 fig9  -- several
     dune exec bench/main.exe micro --json [--smoke]
                                         -- incremental-pruning baseline
                                            -> BENCH_PR2.json
     dune exec bench/main.exe serve --json [--smoke]
                                         -- exploration-service bench
                                            (socket server, 8 concurrent
                                            clients, worker-pool sweep)
                                            -> BENCH_PR4.json
     dune exec bench/main.exe obs --json [--smoke]
                                         -- telemetry overhead: the
                                            serve bench with tracing
                                            off vs on -> BENCH_PR5.json
     dune exec bench/main.exe sweep --json [--smoke]
                                         -- columnar Eliminate sweep on
                                            generated 10^5/10^6-core
                                            layers, columnar vs classic
                                            -> BENCH_PR7.json
     dune exec bench/main.exe fleet --json [--smoke]
                                         -- sharded fleet: router + 4
                                            worker processes, 256
                                            clients over 20k sessions,
                                            SIGKILL + journal-resume
                                            leg -> BENCH_PR9.json
     dune exec bench/main.exe obs-fleet --json [--smoke]
                                         -- distributed-tracing
                                            overhead: the depth-16
                                            pipelined fleet with
                                            DSE_TELEMETRY off vs on
                                            -> BENCH_PR10.json

   Every JSON bench honours DSE_BENCH_REPS=n (override per-phase
   repetition counts) and writes a gitignored BENCH_PR*-latest.json
   twin next to the pinned file.

   Experiments: table1 fig3 fig6 fig7 fig8 fig9 fig10 fig12 fig13
                casestudy ablation power micro *)

open Ds_layer
module D = Ds_rtl.Modmul_datapath
module Design = Ds_rtl.Modmul_design
module N = Ds_domains.Names
module CL = Ds_domains.Crypto_layer

let printf = Printf.printf
let ok = function Ok v -> v | Error e -> failwith e

let header title =
  printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let opt_f = function Some v -> Printf.sprintf "%8.0f" v | None -> "       ?"
let opt_f2 = function Some v -> Printf.sprintf "%6.2f" v | None -> "     ?"

(* ------------------------------------------------------------------ *)
(* E1: Table 1                                                          *)

let table1 () =
  header "E1 / Table 1: modular multiplier designs (area um2, latency ns, clock ns; EOL = slice width)";
  printf "%-5s %-28s %6s | %-26s | %-26s\n" "dsgn" "configuration" "width" "paper (reconstructed)"
    "measured";
  let ratios = ref [] in
  List.iter
    (fun design_no ->
      List.iter
        (fun slice_width ->
          let cfg = Design.design design_no ~slice_width in
          let m = D.characterize cfg ~eol:slice_width in
          let paper = Ds_paperdata.Paper_data.table1_cell ~design_no ~slice_width in
          let p_area = Option.bind paper (fun c -> c.Ds_paperdata.Paper_data.area) in
          let p_lat = Option.bind paper (fun c -> c.Ds_paperdata.Paper_data.latency) in
          let p_clk = Option.bind paper (fun c -> c.Ds_paperdata.Paper_data.clock) in
          (match p_area with
          | Some a -> ratios := (m.D.char_area_um2 /. a) :: !ratios
          | None -> ());
          printf "#%d    %-28s %6d | %s %s %s | %8.0f %8.0f %6.2f\n" design_no
            (Printf.sprintf "r%d %s %s" (D.radix cfg)
               (Ds_rtl.Adder.name cfg.D.adder)
               (match cfg.D.multiplier with
               | None -> "and-row"
               | Some mul -> Ds_rtl.Multiplier.name mul))
            slice_width (opt_f p_area) (opt_f p_lat) (opt_f2 p_clk) m.D.char_area_um2
            m.D.char_latency_ns m.D.char_clock_ns)
        Design.slice_widths)
    Design.design_numbers;
  let n = List.length !ratios in
  let log_sum = List.fold_left (fun acc r -> acc +. log r) 0.0 !ratios in
  printf "\narea model vs paper: geometric-mean ratio %.2f over %d known cells\n"
    (exp (log_sum /. float_of_int n))
    n;
  printf "shape checks: CSA clock flat (#2: %.2f -> %.2f), CLA clock grows (#1: %.2f -> %.2f)\n"
    (D.clock_ns (Design.design 2 ~slice_width:8))
    (D.clock_ns (Design.design 2 ~slice_width:128))
    (D.clock_ns (Design.design 1 ~slice_width:8))
    (D.clock_ns (Design.design 1 ~slice_width:128))

(* ------------------------------------------------------------------ *)
(* E5: Figs 2 & 3 (IDCT clusters and organisations)                     *)

let fig3 () =
  header "E5 / Figs 2-3: IDCT evaluation-space clusters and layer organisation";
  let points =
    Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 Ds_domains.Idct_layer.cores
  in
  List.iter (fun p -> Format.printf "  %a@." Evaluation.pp_point p) points;
  (match Cluster.suggest_split points with
  | Some (a, b) ->
    let names c = String.concat "," (List.map (fun p -> p.Evaluation.label) c) in
    printf "clusters found: {%s} vs {%s}   (paper: {1,2,5} vs {3,4})\n" (names a) (names b);
    printf "merge-gap ratio: %.2f (values >> 1 mean a clear two-cluster structure)\n"
      (Cluster.silhouette_gap points)
  | None -> printf "no split found\n");
  printf "\nfirst-decision quality (Section 2.1's argument, quantified):\n";
  printf "%-32s %-8s %5s %13s %12s\n" "organisation" "choice" "cores" "delay spread" "area spread";
  List.iter
    (fun r ->
      printf "%-32s %-8s %5d %13.2f %12.2f\n" r.Ds_domains.Idct_layer.organisation
        r.Ds_domains.Idct_layer.option_chosen r.Ds_domains.Idct_layer.candidates_left
        r.Ds_domains.Idct_layer.delay_spread r.Ds_domains.Idct_layer.area_spread)
    (Ds_domains.Idct_layer.first_decision_report ())

(* ------------------------------------------------------------------ *)
(* E2: Fig 6                                                            *)

let fig6 () =
  header "E2 / Fig 6: one 1024-bit modular multiplication, hardware vs software (us)";
  printf "%-12s %10s %10s\n" "design" "paper" "measured";
  List.iter
    (fun (label, paper_us) ->
      match Design.parse_label label with
      | None -> ()
      | Some (design_no, slice_width) ->
        let cfg = Design.design design_no ~slice_width in
        printf "%-12s %10.2f %10.2f\n" label paper_us (D.latency_ns cfg ~eol:1024 /. 1000.0))
    Ds_paperdata.Paper_data.fig6_hardware_us;
  List.iter
    (fun (label, paper_us) ->
      let routine =
        List.find
          (fun r -> String.equal (Ds_swmodel.Pentium.routine_name r) label)
          Ds_swmodel.Pentium.all_routines
      in
      printf "%-12s %10.0f %10.0f\n" label paper_us
        (Ds_swmodel.Pentium.modmul_time_us routine.Ds_swmodel.Pentium.variant
           routine.Ds_swmodel.Pentium.language ~bits:1024))
    Ds_paperdata.Paper_data.fig6_software_us;
  let hw = D.latency_ns (Design.design 5 ~slice_width:16) ~eol:1024 /. 1000.0 in
  let sw =
    Ds_swmodel.Pentium.modmul_time_us Ds_swmodel.Mont_variants.Cios Ds_swmodel.Pentium.Assembler
      ~bits:1024
  in
  printf "\nhardware/software gap: %.0fx (paper: ~400x between #5_16 and CIOS-ASM)\n" (sw /. hw)

(* ------------------------------------------------------------------ *)
(* E6: Figs 4, 5 & 7                                                    *)

let fig7 () =
  header "E6 / Figs 4-5-7: the cryptography CDO hierarchy";
  Format.printf "%a@." Hierarchy.pp_tree CL.hierarchy;
  printf "nodes: %d   depth: %d   leaves: %d\n" (Hierarchy.size CL.hierarchy)
    (Hierarchy.depth CL.hierarchy)
    (List.length (Hierarchy.leaf_paths CL.hierarchy));
  let registry = Ds_domains.Populate.standard_registry ~eol:768 () in
  let cores = Ds_reuse.Registry.all_cores registry in
  printf "\nindexing of the %d-core registry under the hierarchy:\n" (List.length cores);
  let index = Index.build CL.hierarchy cores in
  List.iter
    (fun path ->
      let n = List.length (Index.at index path) in
      if n > 0 then printf "  %-55s %3d cores\n" (String.concat "." path) n)
    (Hierarchy.node_paths CL.hierarchy)

(* ------------------------------------------------------------------ *)
(* E7: Figs 8 & 11                                                      *)

let fig8 () =
  header "E7 / Figs 8 & 11: requirements and design issues of OMM / OMM-H / OMM-HM";
  let show path =
    match Hierarchy.find CL.hierarchy path with
    | None -> ()
    | Some cdo ->
      printf "-- %s%s --\n" (String.concat "." path)
        (match cdo.Cdo.abbrev with None -> "" | Some a -> " (" ^ a ^ ")");
      List.iter (fun p -> Format.printf "  %a@." Property.pp p) (Cdo.all_properties cdo)
  in
  show CL.omm_path;
  show CL.omm_hardware_path;
  show CL.omm_hardware_montgomery_path;
  show CL.omm_software_path

(* ------------------------------------------------------------------ *)
(* E3: Fig 9                                                            *)

let fig9 () =
  header "E3 / Fig 9: Brickell vs Montgomery evaluation space, 768-bit operands";
  let widths = [ 8; 16; 32; 64; 128 ] in
  let series design_no =
    Design.evaluation_points ~eol:768 (List.map (fun w -> (design_no, w)) widths)
  in
  printf "%-8s %12s %12s\n" "label" "delay ns" "area um2";
  let print_series s =
    List.iter
      (fun (label, ch) -> printf "%-8s %12.0f %12.0f\n" label ch.D.char_latency_ns ch.D.char_area_um2)
      s
  in
  let montgomery = series 2 and brickell = series 8 in
  print_series montgomery;
  print_series brickell;
  let alo, ahi = Ds_paperdata.Paper_data.fig9_area_band and dlo, dhi = Ds_paperdata.Paper_data.fig9_delay_band in
  printf "\npaper bands: area %.0f..%.0f um2, delay %.0f..%.0f ns\n" alo ahi dlo dhi;
  let dominated =
    List.for_all2
      (fun (_, m) (_, b) ->
        m.D.char_area_um2 < b.D.char_area_um2 && m.D.char_latency_ns < b.D.char_latency_ns)
      montgomery brickell
  in
  printf "Montgomery consistently superior on both axes at every width: %b (paper: yes)\n" dominated

(* ------------------------------------------------------------------ *)
(* E8: Fig 10                                                           *)

let fig10 () =
  header "E8 / Fig 10: Montgomery behavioral description and decomposition";
  Format.printf "%a@." Ds_estimate.Behavior.pp Ds_estimate.Bd_library.montgomery;
  printf "operator census (behavioral decomposition targets, DI7):\n";
  List.iter
    (fun (op, count) ->
      printf "  %-4s x%d -> explored via the %s CDOs\n"
        (Ds_estimate.Behavior.binop_name op)
        count
        (match op with
        | Ds_estimate.Behavior.Add | Ds_estimate.Behavior.Sub -> "Arithmetic/Adder"
        | Ds_estimate.Behavior.Mul -> "Arithmetic/Multiplier"
        | Ds_estimate.Behavior.Div | Ds_estimate.Behavior.Mod | Ds_estimate.Behavior.Shift_left
        | Ds_estimate.Behavior.Shift_right | Ds_estimate.Behavior.Lt | Ds_estimate.Behavior.Le
        | Ds_estimate.Behavior.Gt | Ds_estimate.Behavior.Ge | Ds_estimate.Behavior.Eq ->
          "operator"))
    (Ds_estimate.Behavior.operators_in_loops Ds_estimate.Bd_library.montgomery);
  printf "\nBehaviorDelayEstimator ranking of the Section 5.1.1 alternatives (n = 768):\n";
  List.iter
    (fun (bd, est) ->
      printf "  %-26s MaxCombDelay %6.2f   total %10.0f\n" bd.Ds_estimate.Behavior.name
        est.Ds_estimate.Delay_estimator.max_comb_delay est.Ds_estimate.Delay_estimator.total_delay)
    (Ds_estimate.Delay_estimator.rank ~hints_for:Ds_estimate.Bd_library.estimator_hints
       ~bindings:[ ("n", 768) ] Ds_estimate.Bd_library.all);
  (* DI7 downward: open the adder operator CDO from the multiplier
     context and explore it with the same machinery *)
  let cores = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let s = ok (CL.navigate_to_omm (CL.session ~cores)) in
  let s = ok (CL.apply_requirements s CL.coprocessor_requirements) in
  let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
  let s = ok (Session.set s N.algorithm (Value.str N.montgomery)) in
  let s = ok (Session.set_default s N.behavioral_description) in
  (match CL.operator_subsession s ~operator:"adder" with
  | Error e -> printf "sub-session failed: %s\n" e
  | Ok sub ->
    printf "\nDI7 sub-session on the loop's adders (%d candidate adder cores):\n"
      (Session.candidate_count sub);
    (match Session.preview_options sub ~issue:N.adder_architecture ~merit:N.m_latency_ns with
    | Ok previews ->
      List.iter
        (fun pv ->
          match pv.Session.outcome with
          | `Explored (n, Some (lo, hi)) ->
            printf "  %-18s %d cores, delay %5.2f..%5.2f ns\n" pv.Session.option_value n lo hi
          | `Explored (n, None) -> printf "  %-18s %d cores\n" pv.Session.option_value n
          | `Rejected reason -> printf "  %-18s rejected: %s\n" pv.Session.option_value reason)
        previews
    | Error e -> printf "  preview failed: %s\n" e);
    let sub = ok (Session.set sub N.adder_architecture (Value.str "carry-save")) in
    match CL.adopt_adder_choice s sub with
    | Ok s' ->
      printf "adopted back into the multiplier session: Adder Implementation = %s\n"
        (Option.value ~default:"?"
           (Option.map Value.to_string (Session.value_of s' N.adder_implementation)))
    | Error e -> printf "adoption failed: %s\n" e)

(* ------------------------------------------------------------------ *)
(* E4: Fig 12                                                           *)

let fig12 () =
  header "E4 / Fig 12: 64-bit Montgomery multipliers with 64-bit slices";
  printf "%-8s | %10s %10s | %10s %10s\n" "label" "paper-area" "paper-dly" "meas-area" "meas-dly";
  List.iter
    (fun (label, (p_area, p_delay)) ->
      match Design.parse_label label with
      | None -> ()
      | Some (design_no, slice_width) ->
        let ch = D.characterize (Design.design design_no ~slice_width) ~eol:64 in
        printf "%-8s | %10.0f %10.0f | %10.0f %10.0f\n" label p_area p_delay ch.D.char_area_um2
          ch.D.char_latency_ns)
    Ds_paperdata.Paper_data.fig12_points;
  (* shape assertions the paper's prose makes about this figure *)
  let ch n = D.characterize (Design.design n ~slice_width:64) ~eol:64 in
  printf "\nradix-4 designs faster than radix-2 (cycles halved): %b\n"
    ((ch 4).D.char_latency_ns < (ch 2).D.char_latency_ns);
  printf "mux-based (#5) smaller than array (#4): %b\n"
    ((ch 5).D.char_area_um2 < (ch 4).D.char_area_um2);
  printf "carry-save (#2) clock faster than CLA (#1): %b\n"
    ((ch 2).D.char_clock_ns < (ch 1).D.char_clock_ns)

(* ------------------------------------------------------------------ *)
(* E9: Fig 13                                                           *)

let fig13 () =
  header "E9 / Fig 13: consistency constraints in action";
  List.iter (fun cc -> Format.printf "%a@." Consistency.pp cc) CL.constraints;
  let cores = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let s0 = ok (CL.navigate_to_omm (CL.session ~cores)) in
  (* CC6 *)
  let s6 = ok (CL.apply_requirements s0 CL.coprocessor_requirements) in
  printf "CC6: %d -> %d candidates after the 8us latency requirement (software eliminated)\n"
    (Session.candidate_count s0) (Session.candidate_count s6);
  (* CC1 *)
  let reqs_even_modulo =
    List.map
      (fun (name, v) ->
        if String.equal name N.modulo_is_odd then (name, Value.str N.not_guaranteed) else (name, v))
      CL.coprocessor_requirements
  in
  let s1 = ok (CL.apply_requirements s0 reqs_even_modulo) in
  let s1 = ok (Session.set s1 N.implementation_style (Value.str N.hardware)) in
  (match Session.set s1 N.algorithm (Value.str N.montgomery) with
  | Error msg -> printf "CC1 fired: %s\n" msg
  | Ok _ -> printf "CC1 FAILED to fire\n");
  (* CC2 *)
  let s2 = ok (Session.set s6 N.implementation_style (Value.str N.hardware)) in
  let s2 = ok (Session.set s2 N.algorithm (Value.str N.montgomery)) in
  let montgomery_survivors = Session.candidate_count s2 in
  let s2 = ok (Session.set s2 N.radix (Value.int 4)) in
  (match Session.value_of s2 N.latency_cycles with
  | Some v ->
    printf "CC2 derived %s = %s for radix 4, EOL 768 (2*EOL/R + 1)\n" N.latency_cycles
      (Value.to_string v)
  | None -> printf "CC2 FAILED\n");
  (* CC3 *)
  let s3 = ok (Session.set_default s2 N.behavioral_description) in
  List.iter
    (fun (tool, metrics) ->
      List.iter (fun (metric, v) -> printf "CC3 estimator %s: %s = %.2f\n" tool metric v) metrics)
    (Session.estimates s3);
  (* CC4/CC5: elimination effect *)
  printf "CC4+CC5: %d Montgomery cores survive of the 20 indexed under OMM-HM\n"
    montgomery_survivors

(* ------------------------------------------------------------------ *)
(* E10: the case study end-to-end                                       *)

let casestudy () =
  header "E10 / Section 5: core selection for the coprocessor of [11]";
  let cores = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let s = CL.session ~cores in
  let step label s =
    printf "%-46s candidates %3d" label (Session.candidate_count s);
    (match Session.merit_range s ~merit:N.m_latency_ns with
    | Some (lo, hi) -> printf "   latency %8.0f..%8.0f ns" lo hi
    | None -> ());
    printf "\n";
    s
  in
  let s = step "start (all libraries)" s in
  let s = step "focus OMM" (ok (CL.navigate_to_omm s)) in
  let s =
    step "requirements entered (CC6 prunes software)"
      (ok (CL.apply_requirements s CL.coprocessor_requirements))
  in
  let s =
    step "Implementation Style := hardware"
      (ok (Session.set s N.implementation_style (Value.str N.hardware)))
  in
  let s =
    step "Algorithm := Montgomery (CC4/CC5 prune)"
      (ok (Session.set s N.algorithm (Value.str N.montgomery)))
  in
  let designs =
    List.sort_uniq String.compare
      (List.filter_map (fun (_, c) -> Ds_reuse.Core.property c N.p_design_no) (Session.candidates s))
  in
  printf "surviving design families: {%s}  (paper's region: {%s})\n"
    (String.concat ", " designs)
    (String.concat ", " (List.map string_of_int Ds_paperdata.Paper_data.case_study_surviving_designs));
  let points = Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 (Session.candidates s) in
  printf "Pareto-optimal cores:\n";
  List.iter (fun p -> Format.printf "  %a@." Evaluation.pp_point p) (Evaluation.pareto_front points);
  (* branch comparison: what Brickell would have looked like *)
  let s_before = step "(branch point: retract Algorithm)" (ok (Session.retract s N.algorithm)) in
  let brickell_branch = ok (Session.set s_before N.algorithm (Value.str N.brickell)) in
  printf "\nMontgomery branch vs Brickell branch:\n";
  Format.printf "%a@."
    Diff.pp
    (Diff.compare ~merits:[ N.m_latency_ns; N.m_area_um2 ] s brickell_branch)

(* ------------------------------------------------------------------ *)
(* Coprocessor level (Section 6)                                        *)

let coproc () =
  header "Section 6: the modular-exponentiation coprocessor over the selected multipliers";
  (* Top-down: the coprocessor's throughput target becomes each
     multiplication's latency budget (CC7/CC8). *)
  let cores = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let explore recoding =
    let s = ok (CL.navigate_to_exponentiator (CL.session ~cores)) in
    let s = ok (Session.set s N.effective_operand_length (Value.int 768)) in
    let s = ok (Session.set s N.exponent_length (Value.int 768)) in
    let s = ok (Session.set s N.operations_per_second (Value.real 100.0)) in
    ok (Session.set s N.exponent_recoding (Value.str recoding))
  in
  List.iter
    (fun recoding ->
      let s = explore recoding in
      let mults =
        match Session.value_of s N.multiplications_per_operation with
        | Some (Value.Int n) -> n
        | _ -> 0
      in
      let budget =
        match Option.bind (Session.value_of s N.multiplication_budget) Value.as_real with
        | Some b -> b
        | None -> nan
      in
      printf "recoding %-9s -> %4d mults/op, budget %.2f us per multiplication (CC7/CC8)\n"
        recoding mults budget)
    [ "binary"; "window-2"; "window-4"; "sliding-4" ];
  (* Bottom-up: characterise the coprocessor over the case study's
     surviving multiplier cores. *)
  printf "\n%-10s %-10s %10s %10s %12s %12s\n" "multiplier" "recoding" "mults" "us/op" "ops/s"
    "area um2";
  List.iter
    (fun (design_no, slice_width) ->
      List.iter
        (fun recoding ->
          let cfg =
            {
              Ds_rtl.Modexp_datapath.multiplier = Design.design design_no ~slice_width;
              recoding;
              bus_width = 32;
            }
          in
          let ch = Ds_rtl.Modexp_datapath.characterize cfg ~eol:768 ~exp_bits:768 in
          printf "#%d_%-7d %-10s %10d %10.1f %12.0f %12.0f\n" design_no slice_width
            (Ds_rtl.Modexp_datapath.recoding_name recoding)
            ch.Ds_rtl.Modexp_datapath.multiplications ch.Ds_rtl.Modexp_datapath.coproc_latency_us
            ch.Ds_rtl.Modexp_datapath.ops_per_second ch.Ds_rtl.Modexp_datapath.coproc_area_um2)
        Ds_rtl.Modexp_datapath.[ Binary; Window 4; Sliding_window 4 ])
    [ (2, 64); (5, 64) ];
  let t r =
    (Ds_rtl.Modexp_datapath.characterize
       {
         Ds_rtl.Modexp_datapath.multiplier = Design.design 5 ~slice_width:64;
         recoding = r;
         bus_width = 32;
       }
       ~eol:768 ~exp_bits:768)
      .Ds_rtl.Modexp_datapath.ops_per_second
  in
  printf
    "\nwindow-4 buys ~%.0f%% throughput for its table area; the sliding form gets\n\
     ~%.0f%% with half the table (odd powers only).\n"
    (100.0 *. ((t (Ds_rtl.Modexp_datapath.Window 4) /. t Ds_rtl.Modexp_datapath.Binary) -. 1.0))
    (100.0
    *. ((t (Ds_rtl.Modexp_datapath.Sliding_window 4) /. t Ds_rtl.Modexp_datapath.Binary) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablation () =
  header "Ablation A: generalization-first vs abstraction-first (IDCT)";
  List.iter
    (fun r ->
      printf "%-32s -> %d cores, delay spread %.2f\n" r.Ds_domains.Idct_layer.organisation
        r.Ds_domains.Idct_layer.candidates_left r.Ds_domains.Idct_layer.delay_spread)
    (Ds_domains.Idct_layer.first_decision_report ());

  header "Ablation B: with vs without the dominance-elimination constraints (CC4/CC5)";
  let cores = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let explore constraints =
    let s = Session.create ~hierarchy:CL.hierarchy ~constraints ~cores () in
    let s = ok (CL.navigate_to_omm s) in
    let s = ok (CL.apply_requirements s CL.coprocessor_requirements) in
    let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
    ok (Session.set s N.algorithm (Value.str N.montgomery))
  in
  let with_cc = explore CL.constraints in
  let without_cc = explore [ CL.cc1; CL.cc2; CL.cc3; CL.cc6 ] in
  let points s = Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 (Session.candidates s) in
  printf "with CC4/CC5:    %2d candidates, Pareto front %d\n" (Session.candidate_count with_cc)
    (List.length (Evaluation.pareto_front (points with_cc)));
  printf "without CC4/CC5: %2d candidates, Pareto front %d\n" (Session.candidate_count without_cc)
    (List.length (Evaluation.pareto_front (points without_cc)));
  (* What the elimination costs and buys: CC4/CC5 encode the designer
     judgment that at large EOL the carry-propagating and array-
     multiplier families are not worth exploring.  That judgment trades
     part of the area-optimal end of the front for a 3x smaller space;
     the performance-optimal end must survive intact. *)
  let front_without = Evaluation.pareto_front (points without_cc) in
  let front_with = Evaluation.pareto_front (points with_cc) in
  let min_delay pts =
    List.fold_left (fun acc p -> Float.min acc p.Evaluation.x) infinity pts
  in
  printf "front shrinks %d -> %d; fastest core retained: %b (%.0f ns vs %.0f ns)\n"
    (List.length front_without) (List.length front_with)
    (min_delay (points with_cc) <= min_delay (points without_cc) +. 1e-9)
    (min_delay (points with_cc)) (min_delay (points without_cc));
  printf "the dropped front points are area-optimal CLA designs the paper's CC4 judges\n";
  printf "inferior on loop performance -- the price of aggressive pruning.\n"

(* ------------------------------------------------------------------ *)
(* Organize extension                                                   *)

let organize () =
  header "Extension: deriving layer organisations from the population (co-existing hierarchies)";
  let all = Ds_reuse.Registry.all_cores (Ds_domains.Populate.standard_registry ~eol:768 ()) in
  let modmul =
    List.filter
      (fun (_, c) -> Ds_reuse.Core.property c N.modular_operator = Some "multiplier")
      all
  in
  printf "issue impact over the %d modular-multiplier cores (latency axis):\n" (List.length modmul);
  List.iter
    (fun imp ->
      printf "  %-26s separation %7.2f  options {%s}\n" imp.Organize.issue imp.Organize.separation
        (String.concat ", " (List.map fst imp.Organize.option_counts)))
    (Organize.rank_issues modmul
       ~issues:
         [
           N.implementation_style; N.algorithm; N.adder_implementation;
           N.multiplier_implementation; N.slice_width; N.scanning_variant;
           N.programmable_platform;
         ]
       ~x:N.m_latency_ns ~y:N.m_latency_ns);
  printf "\nderived hierarchy for the IDCT population (Section 2, automated):\n";
  (match
     Organize.derive_hierarchy ~name:"IDCT-derived" Ds_domains.Idct_layer.cores
       ~issues:
         [ Ds_domains.Idct_layer.algorithm_issue; Ds_domains.Idct_layer.technology_issue ]
       ~x:N.m_latency_ns ~y:N.m_area_um2
   with
  | Ok h ->
    Format.printf "%a@." Hierarchy.pp_tree h;
    printf "first-decision guidance (expected spread, smaller = better):\n";
    printf "  derived:            %.2f\n"
      (Organize.guidance_quality h Ds_domains.Idct_layer.cores ~merit:N.m_latency_ns);
    printf "  abstraction-first:  %.2f\n"
      (Organize.guidance_quality Ds_domains.Idct_layer.abstraction_first
         Ds_domains.Idct_layer.cores ~merit:N.m_latency_ns)
  | Error e -> printf "derivation failed: %s\n" e);
  let hw = List.filter (fun (_, c) -> Ds_reuse.Core.property c N.implementation_style = Some N.hardware) all in
  printf "\nco-existing hierarchies over the %d hardware cores:\n" (List.length hw);
  List.iter
    (fun (label, x, y) ->
      match
        Organize.derive_hierarchy ~name:"HW" hw
          ~issues:[ N.algorithm; N.adder_implementation; N.multiplier_implementation; N.slice_width ]
          ~x ~y
      with
      | Ok h -> (
        match Cdo.generalized_issue (Hierarchy.root h) with
        | Some issue ->
          printf "  %-18s -> first issue: %s (%d nodes)\n" label issue.Property.name
            (Hierarchy.size h)
        | None -> ())
      | Error e -> printf "  %-18s -> %s\n" label e)
    [
      ("performance-first", N.m_latency_ns, N.m_latency_ns);
      ("area-first", N.m_area_um2, N.m_area_um2);
      ("energy-first", N.m_energy_nj, N.m_energy_nj);
    ]

(* ------------------------------------------------------------------ *)
(* Power extension                                                      *)

let power () =
  header "Extension: power as a third figure of merit (the paper's work-in-progress)";
  printf "%-8s %10s %10s %12s\n" "design" "clk ns" "power mW" "energy nJ/op";
  List.iter
    (fun n ->
      let cfg = Design.design n ~slice_width:64 in
      let p = D.power cfg ~eol:768 in
      printf "#%d_64    %10.2f %10.1f %12.1f\n" n (D.clock_ns cfg) p.Ds_tech.Power.dynamic_mw
        p.Ds_tech.Power.energy_per_op_nj)
    Design.design_numbers;
  printf "\nobservations: carry-save redundancy toggles more gates (higher activity);\n";
  printf "radix-4 halves the cycle count so energy per operation drops despite more area.\n";
  let e n = (D.power (Design.design n ~slice_width:64) ~eol:768).Ds_tech.Power.energy_per_op_nj in
  printf "energy(#4, r4) < energy(#2, r2): %b\n" (e 4 < e 2);
  (* the three-merit view: a core can be off both 2-D fronts yet
     3-D Pareto-optimal once energy counts *)
  let cores =
    Ds_reuse.Library.make_exn ~name:"tmp"
      (List.concat_map
         (fun n ->
           List.filter_map
             (fun w ->
               if 768 mod w = 0 then
                 Some (Ds_domains.Populate.hardware_core ~design_no:n ~slice_width:w ~eol:768 ())
               else None)
             Design.slice_widths)
         Design.design_numbers)
  in
  let tagged = List.map (fun c -> (c.Ds_reuse.Core.id, c)) cores.Ds_reuse.Library.cores in
  let front3 =
    Multi_objective.pareto_front
      (Multi_objective.of_cores ~merits:[ N.m_latency_ns; N.m_area_um2; N.m_energy_nj ] tagged)
  in
  let front2 =
    Evaluation.pareto_front (Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 tagged)
  in
  printf "\n3-D Pareto front (latency, area, energy): %d cores of %d (2-D front: %d)\n"
    (List.length front3) (List.length tagged) (List.length front2);
  (match Multi_objective.nearest_to_ideal front3 with
  | Some p -> Format.printf "balanced recommendation: %a@." Multi_objective.pp_point p
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Software platforms                                                   *)

let platforms () =
  header "Extension: the programmable-platform axis (768-bit exponentiation, ms)";
  let module P = Ds_swmodel.Platform in
  let module MV = Ds_swmodel.Mont_variants in
  printf "%-14s %10s %10s %16s\n" "platform" "C" "ASM" "ASM+sqr-aware";
  List.iter
    (fun platform ->
      let t ?squaring_aware lang =
        P.modexp_time_ms ?squaring_aware platform MV.Cios lang ~bits:768
      in
      printf "%-14s %10.0f %10.0f %16.0f\n" platform.P.name (t Ds_swmodel.Pentium.C)
        (t Ds_swmodel.Pentium.Assembler)
        (t ~squaring_aware:true Ds_swmodel.Pentium.Assembler))
    P.all;
  printf
    "\nthe DSP's single-cycle MAC compensates its narrower digits; dedicated\n\
     squaring buys a further ~15%% on every platform.  None comes within two\n\
     orders of magnitude of the hardware family -- Fig 6's gap is structural.\n"

(* ------------------------------------------------------------------ *)
(* Estimator calibration                                                *)

let estimator () =
  header "Extension: does the early estimator agree with the detailed characterisation?";
  (* CC3's justification: the algorithm-level rank should predict the
     RTL-level outcome.  Compare BehaviorDelayEstimator's ranking of the
     algorithm alternatives with the characterised clock/latency of the
     corresponding best designs. *)
  let ranked =
    Ds_estimate.Delay_estimator.rank ~hints_for:Ds_estimate.Bd_library.estimator_hints
      ~bindings:[ ("n", 768) ] Ds_estimate.Bd_library.all
  in
  printf "%-26s %14s | %18s\n" "alternative" "estimator rank" "best RTL latency ns";
  let best_latency algorithm =
    (* the best characterised core of that algorithm at 768 bits *)
    List.filter_map
      (fun design_no ->
        let cfg = Design.design design_no ~slice_width:64 in
        if cfg.D.algorithm = algorithm then
          Some (D.latency_ns cfg ~eol:768)
        else None)
      Design.design_numbers
    |> List.fold_left Float.min infinity
  in
  List.iter
    (fun (bd, est) ->
      let rtl =
        match bd.Ds_estimate.Behavior.name with
        | "montgomery-modmul" -> Printf.sprintf "%.0f" (best_latency D.Montgomery)
        | "brickell-modmul" -> Printf.sprintf "%.0f" (best_latency D.Brickell)
        | _ -> "(not built: the paper rejected it before RTL)"
      in
      printf "%-26s %14.2f | %18s\n" bd.Ds_estimate.Behavior.name
        est.Ds_estimate.Delay_estimator.max_comb_delay rtl)
    ranked;
  let est_ratio =
    match ranked with
    | (_, a) :: (_, b) :: _ ->
      b.Ds_estimate.Delay_estimator.max_comb_delay /. a.Ds_estimate.Delay_estimator.max_comb_delay
    | _ -> nan
  in
  let rtl_ratio = best_latency D.Brickell /. best_latency D.Montgomery in
  printf
    "\nBrickell/Montgomery ratio: estimator %.2f vs RTL %.2f — same ordering, same\n\
     ballpark, which is all CC3 promises (\"values ... used to compare alternative\n\
     solutions\", not absolute numbers).\n"
    est_ratio rtl_ratio

(* ------------------------------------------------------------------ *)
(* Radix sweep extension                                                *)

let radix_sweep () =
  header "Extension: the full Radix design issue (DI3) swept to radix 16";
  printf "%-8s %10s %10s %8s %12s %12s\n" "radix" "area um2" "clk ns" "cycles" "latency ns"
    "energy nJ";
  let base = Design.design 2 ~slice_width:64 in
  List.iter
    (fun radix_bits ->
      let cfg =
        if radix_bits = 1 then base
        else
          {
            base with
            D.radix_bits;
            multiplier = Some Ds_rtl.Multiplier.Mux_select;
          }
      in
      let ch = D.characterize cfg ~eol:768 in
      printf "%-8d %10.0f %10.2f %8d %12.0f %12.1f\n" (D.radix cfg) ch.D.char_area_um2
        ch.D.char_clock_ns ch.D.char_cycles ch.D.char_latency_ns
        ch.D.char_power.Ds_tech.Power.energy_per_op_nj)
    [ 1; 2; 3; 4 ];
  printf
    "\nhigher radices halve the cycles again while the mux trees deepen the clock\n\
     and the precomputed-multiple storage grows exponentially; the paper's designs\n\
     stop at radix 4.\n";
  (* the knee quantified: area-delay product *)
  let adp radix_bits =
    let cfg =
      if radix_bits = 1 then base
      else { base with D.radix_bits; multiplier = Some Ds_rtl.Multiplier.Mux_select }
    in
    let ch = D.characterize cfg ~eol:768 in
    ch.D.char_area_um2 *. ch.D.char_latency_ns
  in
  let best =
    List.fold_left
      (fun (bi, bv) i -> if adp i < bv then (i, adp i) else (bi, bv))
      (1, adp 1) [ 2; 3; 4 ]
  in
  printf "best area-delay product at radix %d\n" (1 lsl fst best)

(* ------------------------------------------------------------------ *)
(* The video layer (second domain)                                      *)

let mpeg () =
  header "Second domain: the MPEG-2 IDCT subsystem layer (intro's 'IDCT blocks, MPEG decoders')";
  let module V = Ds_domains.Video_layer in
  Format.printf "%a@." Hierarchy.pp_tree V.hierarchy;
  let s = V.session () in
  printf "population: %d generated cores (merits from the ds_media models)\n"
    (Session.candidate_count s);
  let s =
    List.fold_left (fun s (n, v) -> ok (Session.set s n v)) s V.mpeg2_main_level_requirements
  in
  printf "MPEG-2 main level (720x576@25, 4:2:0 -> 243,000 blocks/s; 8 exact bits):\n";
  printf "  %d cores survive CCV1 (block rate) and CCV2 (precision)\n"
    (Session.candidate_count s);
  (match Session.preview_options s ~issue:V.di_structure ~merit:V.m_blocks_per_second with
  | Ok previews ->
    List.iter
      (fun pv ->
        match pv.Session.outcome with
        | `Explored (n, Some (lo, hi)) ->
          printf "  structure %-11s -> %2d cores, %8.2e..%8.2e blocks/s\n" pv.Session.option_value
            n lo hi
        | `Explored (n, None) -> printf "  structure %-11s -> %2d cores\n" pv.Session.option_value n
        | `Rejected reason -> printf "  structure %-11s rejected: %s\n" pv.Session.option_value reason)
      previews
  | Error e -> printf "  preview failed: %s\n" e);
  let s = ok (Session.set s V.di_structure (Value.str "row-column")) in
  (* minimise area subject to the requirements already enforced *)
  let best =
    List.fold_left
      (fun best (qid, core) ->
        let area = Option.value ~default:infinity (Ds_reuse.Core.merit core Ds_domains.Names.m_area_um2) in
        match best with
        | Some (_, best_area) when best_area <= area -> best
        | _ -> Some (qid, area))
      None (Session.candidates s)
  in
  (match best with
  | Some (qid, area) -> printf "smallest compliant core: %s (%.0f um2)\n" qid area
  | None -> printf "no compliant core\n");
  printf "the layer framework carried over unchanged: only the domain definition is new.\n"

(* ------------------------------------------------------------------ *)
(* Technology sweep (DI6 explored)                                      *)

let techsweep () =
  header "Extension: the Fabrication Technology issue (DI6) swept across process generations";
  let sweep budget_us =
    printf "latency budget %.1f us:\n" budget_us;
    printf "%-8s | %10s %10s %10s | %s\n" "process" "cands" "min ns" "max ns"
      "surviving design families";
    List.iter
      (fun technology ->
        let registry = Ds_domains.Populate.standard_registry ~technology ~eol:768 () in
        let s = CL.session ~cores:(Ds_reuse.Registry.all_cores registry) in
        let s = ok (CL.navigate_to_omm s) in
        let reqs =
          List.map
            (fun (name, v) ->
              if String.equal name N.latency_single_operation then (name, Value.real budget_us)
              else (name, v))
            CL.coprocessor_requirements
        in
        let s = ok (CL.apply_requirements s reqs) in
        let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
        let s = ok (Session.set s N.algorithm (Value.str N.montgomery)) in
        let families =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (_, c) -> Ds_reuse.Core.property c N.p_design_no)
               (Session.candidates s))
        in
        match Session.merit_range s ~merit:N.m_latency_ns with
        | Some (lo, hi) ->
          printf "%-8s | %10d %10.0f %10.0f | {%s}\n" technology.Ds_tech.Process.name
            (Session.candidate_count s) lo hi
            (String.concat ", " families)
        | None ->
          printf "%-8s | %10d %10s %10s | none meet the budget\n"
            technology.Ds_tech.Process.name (Session.candidate_count s) "-" "-")
      Ds_tech.Process.all;
    printf "\n"
  in
  sweep 8.0;
  sweep 2.5;
  printf
    "the same layer and requirements against libraries in four processes: the paper's\n\
     8 us budget is comfortable everywhere, but a 2.5 us target is only reachable by\n\
     migrating to finer technologies -- DI6 becomes the binding decision.\n"

(* ------------------------------------------------------------------ *)
(* Scalability study                                                    *)

let scale () =
  header "Extension: scalability of the layer (the paper's 'easily scalable' claim, measured)";
  printf "%8s %8s | %12s %12s %12s %12s\n" "cores" "leaves" "index ms" "decide ms" "preview ms"
    "report ms";
  List.iter
    (fun n_cores ->
      let spec = { Ds_domains.Synthetic.default_spec with Ds_domains.Synthetic.cores = n_cores } in
      let time f =
        let t0 = Sys.time () in
        let v = f () in
        (v, (Sys.time () -. t0) *. 1000.0)
      in
      let s, t_index = time (fun () -> Ds_domains.Synthetic.session spec) in
      let s1, t_decide =
        time (fun () ->
            match Session.set s "L1" (Value.str "l1-o0") with Ok s -> s | Error e -> failwith e)
      in
      let _, t_preview =
        time (fun () -> ok (Session.preview_options s1 ~issue:"L2" ~merit:"delay"))
      in
      let _, t_report = time (fun () -> Report.render ~merits:[ "delay" ] s1) in
      let leaves =
        List.length (Hierarchy.leaf_paths (Session.hierarchy s))
      in
      printf "%8d %8d | %12.1f %12.1f %12.1f %12.1f\n" n_cores leaves t_index t_decide t_preview
        t_report)
    [ 1_000; 5_000; 20_000 ];
  printf "\n(depth 3, branching 3, 2 plain issues per node; times are CPU ms)\n"

(* ------------------------------------------------------------------ *)
(* Incremental-pruning baseline (BENCH_PR2.json)                        *)

(* Measures the interactive unit the paper cares about: after a single
   binding change, re-query the candidate family and its merit ranges.
   The naive path (use_cache:false) re-runs every elimination closure
   against every core; the cached path re-runs only the constraint the
   change re-opened and reads the rest from the compliance table. *)

module Syn = Ds_domains.Synthetic

let bench_eliminate_ccs = 10

let bench_spec n = { Syn.default_spec with Syn.cores = n; Syn.eliminate_ccs = bench_eliminate_ccs }

let bench_budget i = 450.0 +. (60.0 *. float_of_int i)

let bind_budgets s =
  let rec go s i =
    if i >= bench_eliminate_ccs then s
    else begin
      match Session.set s (Syn.budget_name i) (Value.real (bench_budget i)) with
      | Ok s -> go s (i + 1)
      | Error e -> failwith ("bench: binding " ^ Syn.budget_name i ^ ": " ^ e)
    end
  in
  go s 0

(* One interactive step: the designer revises budget B0, and the layer
   re-reports the candidate count and both merit ranges. *)
let render s =
  ignore (Session.candidate_count s);
  ignore (Session.merit_summary s ~merit:"delay");
  ignore (Session.merit_summary s ~merit:"cost")

let requery s value =
  let s = ok (Session.retract s (Syn.budget_name 0)) in
  let s = ok (Session.set s (Syn.budget_name 0) (Value.real value)) in
  render s;
  s

let time_ms f =
  let t0 = Sys.time () in
  f ();
  (Sys.time () -. t0) *. 1000.0

(* [DSE_BENCH_REPS=n] overrides every per-phase repetition count of the
   JSON benches — quick local iterations (n=1..3) or extra-stable
   figures (large n) without editing the harness. *)
let env_reps () =
  match Sys.getenv_opt "DSE_BENCH_REPS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | Some _ | None -> None)
  | None -> None

(* Allocator/collector work of one measured phase, from [Gc.quick_stat]
   deltas (words are floats upstream; collections are counts). *)
type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
}

let with_gc f =
  let a = Gc.quick_stat () in
  let r = f () in
  let b = Gc.quick_stat () in
  ( r,
    {
      gd_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      gd_major_words = b.Gc.major_words -. a.Gc.major_words;
      gd_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      gd_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      gd_major_collections = b.Gc.major_collections - a.Gc.major_collections;
    } )

let gc_json d =
  Printf.sprintf
    "{ \"minor_words\": %.0f, \"major_words\": %.0f, \"promoted_words\": %.0f, \
     \"minor_collections\": %d, \"major_collections\": %d }"
    d.gd_minor_words d.gd_major_words d.gd_promoted_words d.gd_minor_collections
    d.gd_major_collections

(* Every JSON bench writes its pinned file (committed, the regression
   baseline) and a [-latest] twin (gitignored) so a local rerun can be
   diffed against the pinned figures without touching them. *)
let write_bench name buf =
  List.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Buffer.contents buf);
      close_out oc)
    [ name ^ ".json"; name ^ "-latest.json" ]

let requery_loop s reps =
  (* alternate the revised bound so every step is a real change *)
  let s = ref s in
  for rep = 1 to reps do
    let delta = if rep mod 2 = 0 then 25.0 else -25.0 in
    s := requery !s (bench_budget 0 +. delta)
  done

let micro_json ?(smoke = false) () =
  header
    (if smoke then "Incremental-pruning bench (smoke) -> BENCH_PR2.json"
     else "Incremental-pruning bench -> BENCH_PR2.json");
  let sizes = if smoke then [ 100; 500 ] else [ 100; 1_000; 10_000 ] in
  let reps_for n =
    match env_reps () with
    | Some r -> r
    | None -> Stdlib.max 5 (if smoke then 20_000 / n else 100_000 / n)
  in
  let rows =
    List.map
      (fun n ->
        let reps = reps_for n in
        let cached = bind_budgets (Syn.session (bench_spec n)) in
        let naive = bind_budgets (Syn.session ~use_cache:false (bench_spec n)) in
        (* the two paths must prune identically *)
        let ids s = List.map fst (Session.candidates s) in
        let equivalent = ids cached = ids naive in
        (* warm both once so the measured loop is steady-state *)
        render cached;
        render naive;
        let naive_ms, naive_gc =
          with_gc (fun () -> time_ms (fun () -> requery_loop naive reps))
        in
        let naive_ms = naive_ms /. float_of_int reps in
        let cached_ms, cached_gc =
          with_gc (fun () -> time_ms (fun () -> requery_loop cached reps))
        in
        let cached_ms = cached_ms /. float_of_int reps in
        (* single uncached candidate query vs a warm cached one *)
        let naive_query_ms =
          time_ms (fun () ->
              for _ = 1 to reps do
                ignore (Session.candidates_naive naive)
              done)
          /. float_of_int reps
        in
        let warm_query_ms, warm_gc =
          with_gc (fun () ->
              time_ms (fun () ->
                  for _ = 1 to reps do
                    ignore (Session.candidates cached)
                  done))
        in
        let warm_query_ms = warm_query_ms /. float_of_int reps in
        let points = Evaluation.of_cores ~x:"delay" ~y:"cost" (Session.population cached) in
        let pareto_reps = Stdlib.max reps 20 in
        let pareto_ms =
          time_ms (fun () ->
              for _ = 1 to pareto_reps do
                ignore (Evaluation.pareto_front points)
              done)
          /. float_of_int pareto_reps
        in
        let front = List.length (Evaluation.pareto_front points) in
        let stats = Session.cache_stats cached in
        printf
          "%8d cores | requery naive %8.3f ms  cached %8.3f ms  speedup %6.2fx | hit rate %.3f%s\n"
          n naive_ms cached_ms (naive_ms /. cached_ms) (Compliance.hit_rate stats)
          (if equivalent then "" else "  [MISMATCH]");
        ( n,
          naive_ms,
          cached_ms,
          naive_query_ms,
          warm_query_ms,
          (List.length points, front, pareto_ms),
          stats,
          equivalent,
          (reps, naive_gc, cached_gc, warm_gc) ))
      sizes
  in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"incremental-candidate-pruning\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"config\": { \"eliminate_ccs\": %d, \"depth\": %d, \"branching\": %d },\n"
    bench_eliminate_ccs Syn.default_spec.Syn.depth Syn.default_spec.Syn.branching;
  add "  \"sizes\": [\n";
  List.iteri
    (fun i
         ( n,
           naive_ms,
           cached_ms,
           naive_query_ms,
           warm_query_ms,
           (points, front, pareto_ms),
           stats,
           eq,
           (reps, naive_gc, cached_gc, warm_gc) ) ->
      add "    {\n";
      add "      \"cores\": %d,\n" n;
      add "      \"reps\": %d,\n" reps;
      add "      \"equivalent_to_naive\": %b,\n" eq;
      add "      \"requery_after_binding_change\": {\n";
      add "        \"naive_ms\": %.4f, \"cached_ms\": %.4f, \"speedup\": %.2f\n" naive_ms cached_ms
        (naive_ms /. cached_ms);
      add "      },\n";
      add "      \"single_candidate_query\": { \"naive_ms\": %.4f, \"warm_cached_ms\": %.4f },\n"
        naive_query_ms warm_query_ms;
      add "      \"pareto\": { \"points\": %d, \"front\": %d, \"ms\": %.4f },\n" points front
        pareto_ms;
      add "      \"cache\": { \"verdict_hits\": %d, \"verdict_misses\": %d, \"hit_rate\": %.4f,\n"
        stats.Compliance.verdict_hits stats.Compliance.verdict_misses (Compliance.hit_rate stats);
      add "                 \"survivor_hits\": %d, \"survivor_misses\": %d, \"generations\": %d },\n"
        stats.Compliance.survivor_hits stats.Compliance.survivor_misses
        stats.Compliance.generations;
      add "      \"gc\": { \"requery_naive\": %s,\n" (gc_json naive_gc);
      add "              \"requery_cached\": %s,\n" (gc_json cached_gc);
      add "              \"warm_query\": %s }\n" (gc_json warm_gc);
      add "    }%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  add "  ],\n";
  let headline =
    match List.rev rows with
    | (n, naive_ms, cached_ms, _, _, _, _, _, _) :: _ -> (n, naive_ms /. cached_ms)
    | [] -> (0, 0.0)
  in
  add "  \"headline\": { \"cores\": %d, \"requery_speedup\": %.2f }\n" (fst headline)
    (snd headline);
  add "}\n";
  write_bench "BENCH_PR2" buf;
  printf "\nwrote BENCH_PR2.json (headline: %.2fx requery speedup at %d cores)\n" (snd headline)
    (fst headline)

(* ------------------------------------------------------------------ *)
(* Exploration-service bench (BENCH_PR4.json)                           *)

(* Measures the service end to end: a real Unix-socket server over the
   10^4-core synthetic layer, N concurrent clients each running the
   interactive requery loop over the wire (set a budget, read the
   candidates and ranges, retract).  Client-side wall-clock per request
   is the figure a designer at a front end would feel; the server's own
   per-op metrics (including the accept-to-dispatch queue wait) ride
   along via the [stats] op.  A worker-scaling sweep re-runs the same
   load at pool sizes 1/2/4/8 so the effect of per-session locking and
   worker parallelism is visible in one file. *)

let serve_bench_clients = 8
let serve_pool_sweep = [ 1; 2; 4; 8 ]
let pipeline_depth_sweep = [ 1; 4; 16 ]

(* Split [l] into consecutive groups of at most [n] — the unit a
   pipelined client keeps in flight. *)
let chunk_list n l =
  let rec go acc cur cnt = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
      if cnt + 1 >= n then go (List.rev (x :: cur) :: acc) [] 0 tl
      else go acc (x :: cur) (cnt + 1) tl
  in
  go [] [] 0 l

(* Latency digest over the shared telemetry histogram type instead of a
   fully sorted sample array: count, mean and max are exact; the
   quantiles are bucket estimates (geometric buckets, ratio 1.25 — at
   most one bucket off, ~±12% with the midpoint interpolation; the
   bounds are documented in DESIGN.md section 13).  This is the same
   estimator the live service exports through the [metrics] op, so the
   bench and a [dse top] session report comparable figures. *)
let serve_latency_stats samples =
  let module Obs = Ds_obs.Obs in
  let h = Obs.histogram (Obs.create_registry ()) "scratch_us" in
  List.iter (Obs.observe h) samples;
  let s = Obs.h_snapshot h in
  let n = s.Obs.h_count in
  let q p = if n = 0 then 0.0 else Obs.quantile s p in
  ( n,
    (if n = 0 then 0.0 else s.Obs.h_sum /. float_of_int n),
    q 0.50,
    q 0.95,
    q 0.99,
    if n = 0 then 0.0 else s.Obs.h_max )

type serve_round = {
  sr_pool : int;
  sr_reps : int;
  sr_requests : int;
  sr_errors : int;
  sr_wall : float;
  sr_samples : (string * float) list;
  sr_queue_wait : (int * float * float) option; (* count, mean us, max us *)
  sr_server_stats : string;
}

let sr_rps r = if r.sr_wall > 0.0 then float_of_int r.sr_requests /. r.sr_wall else 0.0

(* One complete round at a given worker-pool size: fresh server and
   service, [serve_bench_clients] concurrent clients. *)
let serve_round ~pool ~reps ~tag =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dse_bench_%d_%s.sock" (Unix.getpid ()) tag)
  in
  let svc =
    Ds_serve.Service.create
      (Ds_serve.Service.config ~default_merits:[ "delay"; "cost" ]
         ~layers:Ds_domains.Catalog.factories ())
  in
  let server = Ds_serve.Server.create ~socket ~pool svc in
  let server_thread = Thread.create Ds_serve.Server.serve server in
  let errors = Atomic.make 0 in
  let results = Array.make serve_bench_clients [] in
  let run_client i =
    match Ds_serve.Client.connect_retry ~socket () with
    | Error msg ->
      Atomic.incr errors;
      Printf.eprintf "client %d: %s\n" i msg
    | Ok c ->
      let lat = ref [] in
      let timed op line =
        let t0 = Unix.gettimeofday () in
        match Ds_serve.Client.request_line c line with
        | Ok reply when String.length reply >= 10 && String.equal (String.sub reply 0 10) "{\"ok\":true" ->
          lat := (op, (Unix.gettimeofday () -. t0) *. 1.0e6) :: !lat
        | Ok reply ->
          Atomic.incr errors;
          Printf.eprintf "client %d: %s -> %s\n" i op reply
        | Error msg ->
          Atomic.incr errors;
          Printf.eprintf "client %d: %s -> %s\n" i op msg
      in
      let sid = Printf.sprintf "bench%d" i in
      let budget = Syn.budget_name 0 in
      timed "open"
        (Printf.sprintf "{\"op\":\"open\",\"session\":\"%s\",\"layer\":\"synthetic10k\"}" sid);
      for r = 1 to reps do
        let v = bench_budget 0 +. if r mod 2 = 0 then 25.0 else -25.0 in
        timed "set"
          (Printf.sprintf "{\"op\":\"set\",\"session\":\"%s\",\"name\":\"%s\",\"value\":%.1f}"
             sid budget v);
        timed "candidates"
          (Printf.sprintf "{\"op\":\"candidates\",\"session\":\"%s\"}" sid);
        timed "ranges" (Printf.sprintf "{\"op\":\"ranges\",\"session\":\"%s\"}" sid);
        timed "retract"
          (Printf.sprintf "{\"op\":\"retract\",\"session\":\"%s\",\"name\":\"%s\"}" sid budget)
      done;
      timed "close" (Printf.sprintf "{\"op\":\"close\",\"session\":\"%s\"}" sid);
      results.(i) <- !lat;
      Ds_serve.Client.close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init serve_bench_clients (fun i -> Thread.create run_client i) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (* server-side view of the same run, straight off the wire *)
  let server_stats =
    match Ds_serve.Client.connect ~socket () with
    | Error _ -> "null"
    | Ok c ->
      let reply =
        match Ds_serve.Client.request_line c "{\"op\":\"stats\"}" with
        | Ok reply -> reply
        | Error _ -> "null"
      in
      Ds_serve.Client.close c;
      reply
  in
  Ds_serve.Server.shutdown server;
  Thread.join server_thread;
  let queue_wait =
    match Ds_serve.Jsonx.of_string server_stats with
    | Error _ -> None
    | Ok json ->
      Option.bind (Ds_serve.Jsonx.member "queue_wait" json) (fun q ->
          match
            ( Option.bind (Ds_serve.Jsonx.member "count" q) Ds_serve.Jsonx.to_int,
              Option.bind (Ds_serve.Jsonx.member "mean_us" q) Ds_serve.Jsonx.to_float,
              Option.bind (Ds_serve.Jsonx.member "max_us" q) Ds_serve.Jsonx.to_float )
          with
          | Some c, Some m, Some x -> Some (c, m, x)
          | _ -> None)
  in
  let all = Array.to_list results |> List.concat in
  {
    sr_pool = pool;
    sr_reps = reps;
    sr_requests = List.length all;
    sr_errors = Atomic.get errors;
    sr_wall = wall;
    sr_samples = all;
    sr_queue_wait = queue_wait;
    sr_server_stats = server_stats;
  }

(* One pipelined round: same mix and client count as [serve_round],
   but each client keeps [depth] requests in flight via
   {!Ds_serve.Client.pipeline} — one coalesced write per group, the
   replies read back in order.  Depth 1 is the lockstep baseline the
   sweep is normalized against. *)
let serve_pipeline_round ~depth ~reps ~tag =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dse_bench_%d_%s.sock" (Unix.getpid ()) tag)
  in
  let svc =
    Ds_serve.Service.create
      (Ds_serve.Service.config ~default_merits:[ "delay"; "cost" ]
         ~layers:Ds_domains.Catalog.factories ())
  in
  let server = Ds_serve.Server.create ~socket ~pool:serve_bench_clients svc in
  let server_thread = Thread.create Ds_serve.Server.serve server in
  let errors = Atomic.make 0 in
  let counts = Array.make serve_bench_clients 0 in
  let run_client i =
    match Ds_serve.Client.connect_retry ~socket () with
    | Error msg ->
      Atomic.incr errors;
      Printf.eprintf "pipeline client %d: %s\n" i msg
    | Ok c ->
      let sid = Printf.sprintf "bench%d" i in
      let budget = Syn.budget_name 0 in
      let one line =
        match Ds_serve.Client.request_line c line with
        | Ok reply
          when String.length reply >= 10 && String.equal (String.sub reply 0 10) "{\"ok\":true"
          ->
          counts.(i) <- counts.(i) + 1
        | Ok reply ->
          Atomic.incr errors;
          Printf.eprintf "pipeline client %d: %s\n" i reply
        | Error msg ->
          Atomic.incr errors;
          Printf.eprintf "pipeline client %d: %s\n" i msg
      in
      one
        (Printf.sprintf "{\"op\":\"open\",\"session\":\"%s\",\"layer\":\"synthetic10k\"}" sid);
      let mix r =
        let v = bench_budget 0 +. if r mod 2 = 0 then 25.0 else -25.0 in
        [
          Printf.sprintf "{\"op\":\"set\",\"session\":\"%s\",\"name\":\"%s\",\"value\":%.1f}"
            sid budget v;
          Printf.sprintf "{\"op\":\"candidates\",\"session\":\"%s\"}" sid;
          Printf.sprintf "{\"op\":\"ranges\",\"session\":\"%s\"}" sid;
          Printf.sprintf "{\"op\":\"retract\",\"session\":\"%s\",\"name\":\"%s\"}" sid budget;
        ]
      in
      let all = List.concat_map mix (List.init reps (fun r -> r + 1)) in
      List.iter
        (fun group ->
          List.iter
            (fun res ->
              match res with
              | Ok reply
                when String.length reply >= 10
                     && String.equal (String.sub reply 0 10) "{\"ok\":true" ->
                counts.(i) <- counts.(i) + 1
              | Ok reply ->
                Atomic.incr errors;
                Printf.eprintf "pipeline client %d: %s\n" i reply
              | Error msg ->
                Atomic.incr errors;
                Printf.eprintf "pipeline client %d: %s\n" i msg)
            (Ds_serve.Client.pipeline c group))
        (chunk_list depth all);
      one (Printf.sprintf "{\"op\":\"close\",\"session\":\"%s\"}" sid);
      Ds_serve.Client.close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init serve_bench_clients (fun i -> Thread.create run_client i) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Ds_serve.Server.shutdown server;
  Thread.join server_thread;
  (Array.fold_left ( + ) 0 counts, Atomic.get errors, wall)

let serve_json ?(smoke = false) () =
  header
    (if smoke then "Exploration-service bench (smoke) -> BENCH_PR4.json"
     else "Exploration-service bench -> BENCH_PR4.json");
  let reps = match env_reps () with Some r -> r | None -> if smoke then 25 else 250 in
  let sweep_reps =
    match env_reps () with Some r -> r | None -> if smoke then 10 else 100
  in
  printf "worker-scaling sweep, %d clients (pool %s):\n" serve_bench_clients
    (String.concat "/" (List.map string_of_int serve_pool_sweep));
  let sweep =
    List.map
      (fun pool ->
        (* the headline pool gets the full rep count; the sweep points
           a lighter one (same shape, enough to place the knee) *)
        let r =
          serve_round ~pool
            ~reps:(if pool = serve_bench_clients then reps else sweep_reps)
            ~tag:(Printf.sprintf "p%d" pool)
        in
        let qw = match r.sr_queue_wait with Some (_, m, _) -> m | None -> 0.0 in
        printf "  pool %d: %5d req in %6.2f s  %7.0f req/s  queue-wait mean %6.0f us  errors %d\n"
          pool r.sr_requests r.sr_wall (sr_rps r) qw r.sr_errors;
        r)
      serve_pool_sweep
  in
  let headline =
    match List.find_opt (fun r -> r.sr_pool = serve_bench_clients) sweep with
    | Some r -> r
    | None -> List.nth sweep (List.length sweep - 1)
  in
  let all = headline.sr_samples in
  let total = headline.sr_requests in
  let wall = headline.sr_wall in
  let ops =
    List.sort_uniq String.compare (List.map fst all)
    |> List.map (fun op -> (op, List.filter_map (fun (o, us) -> if String.equal o op then Some us else None) all))
  in
  let _, mean, p50, p95, p99, max_us = serve_latency_stats (List.map snd all) in
  printf "\nheadline (pool %d): %d clients x (1 open + %d x 4 ops + 1 close) = %d requests in %.2f s  (%.0f req/s)\n"
    headline.sr_pool serve_bench_clients reps total wall (sr_rps headline);
  printf "latency us: mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f  max %.0f  errors %d\n" mean p50
    p95 p99 max_us headline.sr_errors;
  List.iter
    (fun (op, samples) ->
      let n, mean, p50, p95, p99, max_us = serve_latency_stats samples in
      printf "  %-12s n %5d  mean %8.0f  p50 %8.0f  p95 %8.0f  p99 %8.0f  max %8.0f us\n" op n
        mean p50 p95 p99 max_us)
    ops;
  (match headline.sr_queue_wait with
  | Some (n, qmean, qmax) ->
    printf "server queue wait (accept -> dispatch): n %d  mean %.0f us  max %.0f us\n" n qmean qmax
  | None -> ());
  (* pipelining sweep: same mix, [depth] requests in flight per client *)
  let pipeline_reps = match env_reps () with Some r -> r | None -> if smoke then 10 else 100 in
  printf "\npipeline sweep, %d clients, depth %s:\n" serve_bench_clients
    (String.concat "/" (List.map string_of_int pipeline_depth_sweep));
  let pipeline_rows =
    List.map
      (fun depth ->
        let requests, errs, wall =
          serve_pipeline_round ~depth ~reps:pipeline_reps ~tag:(Printf.sprintf "pd%d" depth)
        in
        let rps = if wall > 0.0 then float_of_int requests /. wall else 0.0 in
        printf "  depth %2d: %5d req in %6.2f s  %7.0f req/s  errors %d\n%!" depth requests wall
          rps errs;
        (depth, requests, errs, wall, rps))
      pipeline_depth_sweep
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"exploration-service\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"layer\": \"synthetic10k\",\n";
  add "  \"cores\": %d,\n" Ds_domains.Catalog.synthetic10k_spec.Syn.cores;
  add "  \"clients\": %d,\n" serve_bench_clients;
  add "  \"pool\": %d,\n" headline.sr_pool;
  add "  \"iterations_per_client\": %d,\n" reps;
  add "  \"requests\": %d,\n" total;
  add "  \"errors\": %d,\n" headline.sr_errors;
  add "  \"wall_s\": %.3f,\n" wall;
  add "  \"requests_per_second\": %.1f,\n" (sr_rps headline);
  add "  \"latency_us\": { \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f },\n"
    mean p50 p95 p99 max_us;
  (match headline.sr_queue_wait with
  | Some (n, qmean, qmax) ->
    add "  \"queue_wait_us\": { \"count\": %d, \"mean\": %.1f, \"max\": %.1f },\n" n qmean qmax
  | None -> add "  \"queue_wait_us\": null,\n");
  add "  \"pool_sweep\": [\n";
  List.iteri
    (fun i r ->
      let qw =
        match r.sr_queue_wait with
        | Some (_, m, _) -> Printf.sprintf "%.1f" m
        | None -> "null"
      in
      add
        "    { \"pool\": %d, \"iterations_per_client\": %d, \"requests\": %d, \"errors\": %d, \
         \"wall_s\": %.3f, \"requests_per_second\": %.1f, \"queue_wait_mean_us\": %s }%s\n"
        r.sr_pool r.sr_reps r.sr_requests r.sr_errors r.sr_wall (sr_rps r) qw
        (if i < List.length sweep - 1 then "," else ""))
    sweep;
  add "  ],\n";
  add "  \"per_op_latency_us\": {\n";
  List.iteri
    (fun i (op, samples) ->
      let n, mean, p50, p95, p99, max_us = serve_latency_stats samples in
      add
        "    \"%s\": { \"count\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f }%s\n"
        op n mean p50 p95 p99 max_us
        (if i < List.length ops - 1 then "," else ""))
    ops;
  add "  },\n";
  add "  \"pipeline\": [\n";
  List.iteri
    (fun i (depth, requests, errs, wall, rps) ->
      add
        "    { \"depth\": %d, \"iterations_per_client\": %d, \"requests\": %d, \"errors\": %d, \
         \"wall_s\": %.3f, \"requests_per_second\": %.1f }%s\n"
        depth pipeline_reps requests errs wall rps
        (if i < List.length pipeline_rows - 1 then "," else ""))
    pipeline_rows;
  add "  ],\n";
  add "  \"server_stats\": %s\n" headline.sr_server_stats;
  add "}\n";
  write_bench "BENCH_PR4" buf;
  printf "\nwrote BENCH_PR4.json (%.0f req/s over %d concurrent clients at pool %d)\n"
    (sr_rps headline) serve_bench_clients headline.sr_pool

(* ------------------------------------------------------------------ *)
(* Telemetry-overhead bench (BENCH_PR5.json)                            *)

(* BENCH_PR4's headline round (pool 8, 8 concurrent clients over the
   10^4-core layer) run under both telemetry settings.  Metrics record
   in both — counters and histograms are always on — so the measured
   delta is the cost of span recording into the trace ring, the budget
   DESIGN.md section 13 caps at 3% of serve throughput.  Each setting
   gets [pairs] rounds and keeps its best (min-noise) figure. *)

let obs_json ?(smoke = false) () =
  let module Obs = Ds_obs.Obs in
  header
    (if smoke then "Telemetry-overhead bench (smoke) -> BENCH_PR5.json"
     else "Telemetry-overhead bench -> BENCH_PR5.json");
  let reps = if smoke then 25 else 250 in
  let pairs = if smoke then 1 else 3 in
  let pool = serve_bench_clients in
  let was_enabled = Obs.enabled () in
  ignore (serve_round ~pool ~reps:(if smoke then 5 else 25) ~tag:"obs_warm");
  let spans_on = ref 0 in
  let round enabled i =
    Obs.set_enabled enabled;
    (* since:max_int returns no spans but the live head cursor, i.e.
       the global count of spans ever recorded *)
    let _, seq0, _ = Obs.trace_read ~since:max_int () in
    let r = serve_round ~pool ~reps ~tag:(Printf.sprintf "obs_%b_%d" enabled i) in
    let _, seq1, _ = Obs.trace_read ~since:max_int () in
    if enabled then spans_on := !spans_on + (seq1 - seq0);
    r
  in
  (* interleave off/on rounds so drift (thermal, page cache) hits both *)
  let rounds = List.init pairs (fun i -> (round false i, round true i)) in
  Obs.set_enabled was_enabled;
  let best side =
    List.fold_left
      (fun best r -> match best with Some b when sr_rps b >= sr_rps r -> best | _ -> Some r)
      None (List.map side rounds)
    |> Option.get
  in
  let off = best fst and on = best snd in
  let digest r =
    let n, mean, p50, p95, p99, max_us = serve_latency_stats (List.map snd r.sr_samples) in
    (n, mean, p50, p95, p99, max_us)
  in
  let show label r =
    let _, mean, p50, _, p99, _ = digest r in
    printf "  %-14s %5d req in %6.2f s  %7.0f req/s  mean %6.0f us  p50 %6.0f  p99 %6.0f  errors %d\n"
      label r.sr_requests r.sr_wall (sr_rps r) mean p50 p99 r.sr_errors
  in
  printf "pool %d, %d clients, %d iterations/client, best of %d round(s) per setting:\n" pool
    serve_bench_clients reps pairs;
  show "telemetry off" off;
  show "telemetry on" on;
  let overhead_pct =
    if sr_rps off > 0.0 then 100.0 *. (1.0 -. (sr_rps on /. sr_rps off)) else 0.0
  in
  let within = overhead_pct <= 3.0 in
  printf "throughput overhead with tracing enabled: %.2f%% (target <= 3%%) %s\n" overhead_pct
    (if within then "" else " [OVER BUDGET]");
  printf "spans recorded during the enabled rounds: %d\n" !spans_on;
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_side key r =
    let n, mean, p50, p95, p99, max_us = digest r in
    add "  \"%s\": {\n" key;
    add "    \"requests\": %d, \"errors\": %d, \"wall_s\": %.3f, \"requests_per_second\": %.1f,\n"
      r.sr_requests r.sr_errors r.sr_wall (sr_rps r);
    add "    \"latency_us\": { \"count\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f }\n"
      n mean p50 p95 p99 max_us;
    add "  },\n"
  in
  add "{\n";
  add "  \"bench\": \"telemetry-overhead\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"layer\": \"synthetic10k\",\n";
  add "  \"clients\": %d,\n" serve_bench_clients;
  add "  \"pool\": %d,\n" pool;
  add "  \"iterations_per_client\": %d,\n" reps;
  add "  \"rounds_per_setting\": %d,\n" pairs;
  add "  \"quantile_estimator\": \"shared histogram buckets (ratio 1.25; see DESIGN.md 13)\",\n";
  add_side "telemetry_off" off;
  add_side "telemetry_on" on;
  add "  \"spans_recorded\": %d,\n" !spans_on;
  add "  \"overhead_pct\": %.2f,\n" overhead_pct;
  add "  \"target_pct\": 3.0,\n";
  add "  \"within_target\": %b\n" within;
  add "}\n";
  let oc = open_out "BENCH_PR5.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  printf "\nwrote BENCH_PR5.json (%.2f%% overhead at pool %d)\n" overhead_pct pool

(* ------------------------------------------------------------------ *)
(* Columnar-sweep bench (BENCH_PR7.json)                                *)

(* Measures the columnar Eliminate sweep on generated large-population
   layers (10^5 and 10^6 cores): layer build cost, the cold
   sweep-everything query under both engines — the columnar default and
   the retained classic per-core-closure path, same run, same machine —
   the warm requery step, and allocator pressure per phase.  A
   PR4-shaped serve round rides along so scripts/bench_compare.sh can
   gate end-to-end serve throughput against the pinned BENCH_PR4
   figures. *)

module Gen = Ds_domains.Generator

let sweep_budget i = 180.0 +. (15.0 *. float_of_int i)

let gen_bind_budgets spec s =
  let rec go s i =
    if i >= spec.Gen.ccs then s
    else begin
      match Session.set s (Gen.budget_name i) (Value.real (sweep_budget i)) with
      | Ok s -> go s (i + 1)
      | Error e -> failwith ("bench: binding " ^ Gen.budget_name i ^ ": " ^ e)
    end
  in
  go s 0

(* Wall clock, not [Sys.time]: the sweep fans out over the domain pool,
   and CPU time would add the workers' time together. *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1000.0

let sweep_json ?(smoke = false) () =
  header
    (if smoke then "Columnar-sweep bench (smoke) -> BENCH_PR7.json"
     else "Columnar-sweep bench -> BENCH_PR7.json");
  let sizes = if smoke then [ 100_000 ] else [ 100_000; 1_000_000 ] in
  let reps_for n =
    match env_reps () with
    | Some r -> r
    | None -> if n >= 1_000_000 then 2 else if smoke then 3 else 5
  in
  (* the serve leg: BENCH_PR4's headline shape (8 clients, pool 8,
     synthetic10k, same rep count) for the throughput gate.  It runs
     FIRST, before the large-layer builds: a 10^6-core layer leaves a
     multi-GB major heap behind, and GC pressure from that heap would
     depress the measured request throughput by ~2x, skewing the
     PR4-vs-PR7 comparison. *)
  let serve_reps = match env_reps () with Some r -> r | None -> if smoke then 25 else 250 in
  let sr = serve_round ~pool:serve_bench_clients ~reps:serve_reps ~tag:"sweep" in
  printf "serve leg: %d req in %.2f s  %.0f req/s  errors %d\n" sr.sr_requests sr.sr_wall
    (sr_rps sr) sr.sr_errors;
  let rows =
    List.map
      (fun n ->
        let spec = { Gen.default_spec with Gen.cores = n } in
        let reps = reps_for n in
        let master = ref None in
        let build_ms, build_gc =
          with_gc (fun () -> wall_ms (fun () -> master := Some (Gen.session spec)))
        in
        let master = Option.get !master in
        let classic_master = Gen.session ~sweep_mode:Session.Classic spec in
        (* cold sweep: fresh lineage (own compliance cache) per rep, so
           every rep pays the full sweep over all [ccs] constraints *)
        let cold mst =
          let survivors = ref 0 in
          let ms, gc =
            with_gc (fun () ->
                wall_ms (fun () ->
                    for _ = 1 to reps do
                      let s = gen_bind_budgets spec (Session.pristine mst) in
                      survivors := Session.candidate_count s
                    done))
          in
          (ms /. float_of_int reps, gc, !survivors)
        in
        let columnar_ms, columnar_gc, survivors = cold master in
        let classic_ms, classic_gc, classic_survivors = cold classic_master in
        let speedup = if columnar_ms > 0.0 then classic_ms /. columnar_ms else 0.0 in
        (* warm requery: revise one budget, re-read count and a range —
           only the revised constraint re-sweeps *)
        let warm = gen_bind_budgets spec (Session.pristine master) in
        ignore (Session.candidate_count warm);
        let warm = ref warm in
        let warm_ms, warm_gc =
          with_gc (fun () ->
              wall_ms (fun () ->
                  for rep = 1 to reps do
                    let delta = if rep mod 2 = 0 then 10.0 else -10.0 in
                    let s = ok (Session.retract !warm (Gen.budget_name 0)) in
                    let s =
                      ok (Session.set s (Gen.budget_name 0) (Value.real (sweep_budget 0 +. delta)))
                    in
                    ignore (Session.candidate_count s);
                    ignore (Session.merit_summary s ~merit:(Gen.merit_name 0));
                    warm := s
                  done))
        in
        let warm_ms = warm_ms /. float_of_int reps in
        (* differential: columnar, classic and uncached-naive candidate
           ids must be identical (checked at the gate size; the
           equivalence suite covers more seeds and shapes) *)
        let equivalent =
          if n > 100_000 then None
          else begin
            let ids s = List.map fst (Session.candidates s) in
            let col = gen_bind_budgets spec (Session.pristine master) in
            let cls = gen_bind_budgets spec (Session.pristine classic_master) in
            let naive = gen_bind_budgets spec (Gen.session ~use_cache:false spec) in
            let ci = ids col in
            let ni = List.map fst (Session.candidates_naive naive) in
            Some (ci = ids cls && ci = ni)
          end
        in
        printf
          "%8d cores | build %8.0f ms | cold sweep columnar %8.2f ms  classic %8.2f ms  speedup %6.2fx | warm %6.3f ms | survivors %d%s\n"
          n build_ms columnar_ms classic_ms speedup warm_ms survivors
          (match equivalent with
          | Some true | None -> if classic_survivors = survivors then "" else "  [MISMATCH]"
          | Some false -> "  [MISMATCH]");
        ( n,
          reps,
          (build_ms, build_gc),
          (columnar_ms, columnar_gc),
          (classic_ms, classic_gc, speedup),
          (warm_ms, warm_gc),
          survivors,
          equivalent ))
      sizes
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"columnar-sweep\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add
    "  \"config\": { \"branching\": %d, \"plain_issues\": %d, \"cardinality\": %d, \
     \"merits\": %d, \"fanin\": %d, \"ccs\": %d, \"seed\": %d },\n"
    Gen.default_spec.Gen.branching Gen.default_spec.Gen.plain_issues
    Gen.default_spec.Gen.cardinality Gen.default_spec.Gen.merits Gen.default_spec.Gen.fanin
    Gen.default_spec.Gen.ccs Gen.default_spec.Gen.seed;
  add "  \"sizes\": [\n";
  List.iteri
    (fun i
         ( n,
           reps,
           (build_ms, build_gc),
           (columnar_ms, columnar_gc),
           (classic_ms, classic_gc, speedup),
           (warm_ms, warm_gc),
           survivors,
           equivalent ) ->
      add "    {\n";
      add "      \"cores\": %d,\n" n;
      add "      \"reps\": %d,\n" reps;
      add "      \"survivors\": %d,\n" survivors;
      (match equivalent with
      | Some eq -> add "      \"equivalent_to_naive\": %b,\n" eq
      | None -> add "      \"equivalent_to_naive\": null,\n");
      add "      \"build\": { \"ms\": %.1f, \"gc\": %s },\n" build_ms (gc_json build_gc);
      add "      \"cold_sweep\": {\n";
      add "        \"columnar_ms\": %.3f, \"classic_ms\": %.3f, \"speedup\": %.2f,\n"
        columnar_ms classic_ms speedup;
      add "        \"columnar_gc\": %s,\n" (gc_json columnar_gc);
      add "        \"classic_gc\": %s\n" (gc_json classic_gc);
      add "      },\n";
      add "      \"warm_requery\": { \"ms\": %.4f, \"gc\": %s }\n" warm_ms (gc_json warm_gc);
      add "    }%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  add "  ],\n";
  let speedup_at_gate =
    List.fold_left
      (fun acc (n, _, _, _, (_, _, sp), _, _, _) -> if n = 100_000 then sp else acc)
      0.0 rows
  in
  let largest, largest_ms =
    match List.rev rows with
    | (n, _, _, (cms, _), _, _, _, _) :: _ -> (n, cms)
    | [] -> (0, 0.0)
  in
  add "  \"headline\": { \"cores\": %d, \"cold_sweep_ms\": %.3f, \"speedup_at_100k\": %.2f },\n"
    largest largest_ms speedup_at_gate;
  add
    "  \"serve\": { \"layer\": \"synthetic10k\", \"clients\": %d, \"pool\": %d, \
     \"iterations_per_client\": %d, \"requests\": %d, \"errors\": %d, \"wall_s\": %.3f, \
     \"requests_per_second\": %.1f }\n"
    serve_bench_clients serve_bench_clients serve_reps sr.sr_requests sr.sr_errors sr.sr_wall
    (sr_rps sr);
  add "}\n";
  write_bench "BENCH_PR7" buf;
  printf
    "\nwrote BENCH_PR7.json (cold sweep %.1f ms over %d cores; columnar %.2fx classic at 10^5)\n"
    largest_ms largest speedup_at_gate

(* ------------------------------------------------------------------ *)
(* Fleet bench (BENCH_PR9.json)                                        *)

(* A sharded fleet (4 workers, consistent-hash router) under a
   20k-session, 256-client load — the multi-process counterpart of the
   serve bench.  Workers are fresh execs of this bench binary (the
   hidden [fleet-worker] argv mode below); the router runs in-process
   so its queueing is part of every measured latency, exactly as a
   front-end client would see it.  Three legs:

   - open: every session opened and given one acknowledged binding;
   - drive: the clients hammer a bounded-candidates poll mix (set, a
     16-id candidates page, signature) over their sessions while one
     worker is SIGKILLed mid-leg.  Clients run Durable connections
     with [retry_failures], so the crash window must surface only as
     retried requests — any client-visible failure fails the bench;
   - verify: once the supervisor has restarted the shard, a held-out
     sample of the victim's sessions (untouched by the drive leg) must
     reproduce their pre-kill signatures bit-identically — journal
     resume checked end to end, through the router.

   Shard attribution is computed bench-side with the same {!Ring} the
   router uses: placement is pure arithmetic over the worker-name set,
   so per-shard latency needs no per-request cooperation from the
   fleet. *)

module Fleet = Ds_fleet
module FP = Ds_serve.Protocol
module Dur = Ds_serve.Client.Durable

(* Hidden argv mode: run one fleet worker in this process.  The
   supervisor spawns workers as fresh execs of [Sys.executable_name];
   in the bench that binary is this one, so the bench carries its own
   worker entry point — the serve bench's service config plus the
   per-worker journal directory that makes restart-in-place work. *)
let fleet_worker rest =
  let socket = ref "" and journal = ref "" in
  let capacity = ref 8192 and pool = ref 4 in
  let rec parse = function
    | "--socket" :: v :: tl ->
      socket := v;
      parse tl
    | "--journal-dir" :: v :: tl ->
      journal := v;
      parse tl
    | "--capacity" :: v :: tl ->
      capacity := int_of_string v;
      parse tl
    | "--pool" :: v :: tl ->
      pool := int_of_string v;
      parse tl
    | [] -> ()
    | a :: _ -> failwith ("fleet-worker: unknown argument " ^ a)
  in
  parse rest;
  if String.equal !socket "" || String.equal !journal "" then
    failwith "fleet-worker: --socket and --journal-dir are required";
  (try Unix.mkdir !journal 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fleet.Worker.run ~socket:!socket ~pool:!pool
    (Ds_serve.Service.config ~journal_dir:!journal ~capacity:!capacity
       ~default_merits:[ "delay"; "cost" ] ~layers:Ds_domains.Catalog.factories ())

let fleet_n_workers = 4
let fleet_victim = "w0"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

module FJ = Ds_serve.Jsonx
module FO = Ds_obs.Obs

(* Hidden argv mode: the fleet's front door in its own process.  On a
   one-core box the router's per-connection threads must not share an
   OCaml runtime lock with the client threads — co-hosting the two
   tiers convoys every reply wake-up behind the lock and collapses
   throughput ~15x, so the bench deploys the router exactly like
   [dse fleet serve] does: as a separate process. *)
let fleet_router rest =
  let socket = ref "" and workers = ref [] and slots = ref 8 in
  let rec parse = function
    | "--socket" :: v :: tl ->
      socket := v;
      parse tl
    | "--workers" :: v :: tl ->
      workers :=
        List.map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
            | None -> failwith "fleet-router: --workers wants name=socket[,name=socket...]")
          (String.split_on_char ',' v);
      parse tl
    | "--slots" :: v :: tl ->
      slots := int_of_string v;
      parse tl
    | [] -> ()
    | a :: _ -> failwith ("fleet-router: unknown argument " ^ a)
  in
  parse rest;
  if String.equal !socket "" || !workers = [] then
    failwith "fleet-router: --socket and --workers are required";
  let router = Ds_fleet.Router.create ~socket:!socket ~workers:!workers ~slots:!slots () in
  Ds_fleet.Router.install_signal_handlers router;
  Ds_fleet.Router.serve router

(* Placement arithmetic shared by the bench and its driver processes:
   rendezvous placement is a pure function of the worker-name set, so
   every process computes identical shard maps and the same held-out
   sample without any coordination. *)
let fleet_ids sessions = Array.init sessions (fun i -> Printf.sprintf "f%05d" i)

let fleet_shards ring ids =
  let tbl = Hashtbl.create (2 * Array.length ids) in
  Array.iter
    (fun id -> Hashtbl.replace tbl id (Option.value (Fleet.Ring.route ring id) ~default:"?"))
    ids;
  tbl

let fleet_sample ~shard ~victim ~target ids =
  Array.to_list ids
  |> List.filter (fun id -> String.equal (Hashtbl.find shard id) victim)
  |> List.filteri (fun i _ -> i < target)

(* Hidden argv mode: one shard of the client load.  256 concurrent
   clients cannot live in one OCaml process on one core (same convoy
   as the router), so the bench spawns several of these, each running
   its slice of the client threads over its own Durable connections.
   The driver buckets every request latency into a per-shard histogram
   (global geometric bounds) and prints one JSON line; the bench
   merges driver histograms bucket-wise — the same
   {!Ds_obs.Obs.merge_hsnapshots} the router uses for metrics fan-out. *)
let fleet_drive rest =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let socket = ref "" and names = ref [] and victim = ref "w0" and phase = ref "drive" in
  let sample_n = ref 0 and nclients = ref 16 and offset = ref 0 and total = ref 16 in
  let sessions = ref 0 and reps = ref 1 and depth = ref 1 in
  let rec parse = function
    | "--socket" :: v :: tl ->
      socket := v;
      parse tl
    | "--workers" :: v :: tl ->
      names := String.split_on_char ',' v;
      parse tl
    | "--victim" :: v :: tl ->
      victim := v;
      parse tl
    | "--sample" :: v :: tl ->
      sample_n := int_of_string v;
      parse tl
    | "--clients" :: v :: tl ->
      nclients := int_of_string v;
      parse tl
    | "--client-offset" :: v :: tl ->
      offset := int_of_string v;
      parse tl
    | "--client-total" :: v :: tl ->
      total := int_of_string v;
      parse tl
    | "--sessions" :: v :: tl ->
      sessions := int_of_string v;
      parse tl
    | "--reps" :: v :: tl ->
      reps := int_of_string v;
      parse tl
    | "--depth" :: v :: tl ->
      depth := int_of_string v;
      parse tl
    | "--phase" :: v :: tl ->
      phase := v;
      parse tl
    | [] -> ()
    | a :: _ -> failwith ("fleet-drive: unknown argument " ^ a)
  in
  parse rest;
  let ring = Fleet.Ring.create !names in
  let ids = fleet_ids !sessions in
  let shard = fleet_shards ring ids in
  let sampled = Hashtbl.create 97 in
  List.iter
    (fun id -> Hashtbl.replace sampled id ())
    (fleet_sample ~shard ~victim:!victim ~target:!sample_n ids);
  (* the paper's IDCT design space: per-session state is the size a
     real exploration session has, so 20k of them fit one host and the
     bench measures fleet dispatch, not sweep compute (PR 7 owns that) *)
  let fleet_layer = "idct" in
  let bound_prop = "Word Size" and drive_prop = "Precision" in
  let errors = Atomic.make 0 in
  let registry = FO.create_registry () in
  let hists =
    List.map (fun w -> (w, FO.histogram registry ("shard_" ^ w))) (Fleet.Ring.nodes ring)
  in
  let conns = Array.init !nclients (fun _ -> Dur.create ~socket:!socket ()) in
  let requests = Array.make !nclients 0 in
  let owned k =
    let rec go i acc = if i >= !sessions then List.rev acc else go (i + !total) (ids.(i) :: acc) in
    go (!offset + k) []
  in
  let fail_err k ctx msg =
    Atomic.incr errors;
    Printf.eprintf "fleet driver client %d: %s: %s\n%!" (!offset + k) ctx msg
  in
  let run_open k =
    let c = conns.(k) in
    let send ctx req =
      match Dur.request ~retry_failures:true c req with
      | Ok (FP.Reply _) -> requests.(k) <- requests.(k) + 1
      | Ok (FP.Failed (code, msg)) -> fail_err k ctx (FP.error_code_label code ^ ": " ^ msg)
      | Error msg -> fail_err k ctx msg
    in
    List.iter
      (fun id ->
        send ("open " ^ id)
          (FP.Open { session = Some id; layer = fleet_layer; eol = None; resume = false });
        send ("set " ^ id)
          (FP.Set { session = id; name = bound_prop; value = Value.int 16; decide = false }))
      (owned k)
  in
  let run_drive k =
    let c = conns.(k) in
    let timed id hist op req =
      let r0 = Dur.retried c in
      let t = Unix.gettimeofday () in
      match Dur.request ~retry_failures:true c req with
      | Ok (FP.Reply _) ->
        requests.(k) <- requests.(k) + 1;
        FO.observe hist ((Unix.gettimeofday () -. t) *. 1.0e6)
      | Ok (FP.Failed (FP.Rejected, _)) when Dur.retried c > r0 ->
        (* an at-least-once artifact of the crash window: the first
           send applied but its ack was lost, so the resend was
           legitimately rejected (set: already bound; retract: not
           bound).  The mutation IS applied — count the request, but
           keep its mostly-backoff duration out of the histogram. *)
        requests.(k) <- requests.(k) + 1
      | Ok (FP.Failed (code, msg)) ->
        fail_err k (op ^ " " ^ id) (FP.error_code_label code ^ ": " ^ msg)
      | Error msg -> fail_err k (op ^ " " ^ id) msg
    in
    let mine = List.filter (fun id -> not (Hashtbl.mem sampled id)) (owned k) in
    for r = 1 to !reps do
      List.iter
        (fun id ->
          let hist = List.assoc (Hashtbl.find shard id) hists in
          let v = if r mod 2 = 0 then 12 else 14 in
          timed id hist "set"
            (FP.Set { session = id; name = drive_prop; value = Value.int v; decide = false });
          timed id hist "candidates" (FP.Candidates { session = id; max = Some 16 });
          timed id hist "signature" (FP.Signature { session = id });
          timed id hist "retract" (FP.Retract { session = id; name = drive_prop }))
        mine
    done
  in
  (* the drive mix, [depth] requests in flight through
     Durable.request_many — one coalesced write per group, replies read
     back in order (suffix-only resend on transport loss) *)
  let run_pipeline k =
    let c = conns.(k) in
    let mine = List.filter (fun id -> not (Hashtbl.mem sampled id)) (owned k) in
    for r = 1 to !reps do
      let reqs =
        List.concat_map
          (fun id ->
            let v = if r mod 2 = 0 then 12 else 14 in
            [
              FP.Set { session = id; name = drive_prop; value = Value.int v; decide = false };
              FP.Candidates { session = id; max = Some 16 };
              FP.Signature { session = id };
              FP.Retract { session = id; name = drive_prop };
            ])
          mine
      in
      List.iter
        (fun group ->
          let r0 = Dur.retried c in
          let results = Dur.request_many ~retry_failures:true c group in
          List.iter
            (fun res ->
              match res with
              | Ok (FP.Reply _) -> requests.(k) <- requests.(k) + 1
              | Ok (FP.Failed (FP.Rejected, _)) when Dur.retried c > r0 ->
                (* same at-least-once artifact as [run_drive] *)
                requests.(k) <- requests.(k) + 1
              | Ok (FP.Failed (code, msg)) ->
                fail_err k "pipeline" (FP.error_code_label code ^ ": " ^ msg)
              | Error msg -> fail_err k "pipeline" msg)
            results)
        (chunk_list !depth reqs)
    done
  in
  let t0 = Unix.gettimeofday () in
  let body =
    match !phase with
    | "open" -> run_open
    | "pipeline" -> run_pipeline
    | _ -> run_drive
  in
  let threads = List.init !nclients (fun k -> Thread.create body k) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let reconnects = Array.fold_left (fun a c -> a + Dur.reconnects c) 0 conns in
  let retried = Array.fold_left (fun a c -> a + Dur.retried c) 0 conns in
  Array.iter Dur.close conns;
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{ \"requests\": %d, \"errors\": %d, \"wall_s\": %.3f, \"reconnects\": %d, \"retried\": %d, \
     \"per_shard\": {"
    (Array.fold_left ( + ) 0 requests)
    (Atomic.get errors) wall reconnects retried;
  List.iteri
    (fun i (w, h) ->
      let s = FO.h_snapshot h in
      add "%s \"%s\": { \"count\": %d, \"sum\": %.1f, \"min\": %.1f, \"max\": %.1f, \"counts\": [%s] }"
        (if i = 0 then "" else ",")
        w s.FO.h_count s.FO.h_sum
        (if s.FO.h_count = 0 then 0.0 else s.FO.h_min)
        (if s.FO.h_count = 0 then 0.0 else s.FO.h_max)
        (String.concat "," (Array.to_list (Array.map string_of_int s.FO.h_counts))))
    hists;
  add " } }\n";
  print_string (Buffer.contents buf)

let fleet_snap_of_json j =
  let count = Option.value (Option.bind (FJ.member "count" j) FJ.to_int) ~default:0 in
  let getf k d = Option.value (Option.bind (FJ.member k j) FJ.to_float) ~default:d in
  let counts =
    match Option.bind (FJ.member "counts" j) FJ.to_list with
    | Some l -> Array.of_list (List.map (fun x -> Option.value (FJ.to_int x) ~default:0) l)
    | None -> Array.make (Array.length FO.bucket_bounds + 1) 0
  in
  {
    FO.h_count = count;
    h_sum = getf "sum" 0.0;
    h_min = (if count = 0 then infinity else getf "min" 0.0);
    h_max = (if count = 0 then neg_infinity else getf "max" 0.0);
    h_counts = counts;
  }

let fleet_snap_stats s =
  let n = s.FO.h_count in
  let q p = if n = 0 then 0.0 else FO.quantile s p in
  ( n,
    (if n = 0 then 0.0 else s.FO.h_sum /. float_of_int n),
    q 0.50,
    q 0.95,
    q 0.99,
    if n = 0 then 0.0 else s.FO.h_max )

(* Spawn every driver, then drain each stdout to EOF and reap.  The
   drivers run concurrently (all spawned before any drain); a driver's
   whole report is one short line, far below the pipe buffer, so the
   sequential drain cannot deadlock. *)
let fleet_run_drivers argvs =
  let procs =
    List.map
      (fun argv ->
        let r, w = Unix.pipe () in
        let pid = Unix.create_process argv.(0) argv Unix.stdin w Unix.stderr in
        Unix.close w;
        (pid, r))
      argvs
  in
  List.map
    (fun (pid, r) ->
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec drain () =
        match Unix.read r chunk 0 65536 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Unix.close r;
      let _, status = Unix.waitpid [] pid in
      (status, Buffer.contents buf))
    procs

let fleet_json ?(smoke = false) () =
  header
    (if smoke then "Fleet bench (smoke) -> BENCH_PR9.json"
     else "Fleet bench -> BENCH_PR9.json");
  (* the kill leg makes EPIPE a working-as-intended event — it must
     come back as an error, not a process death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let clients = if smoke then 32 else 256 in
  let drivers = if smoke then 2 else 8 in
  let per_driver = clients / drivers in
  let sessions = if smoke then 1_024 else 20_000 in
  let reps = match env_reps () with Some r -> r | None -> if smoke then 1 else 4 in
  let dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dse_bench_fleet_%d" (Unix.getpid ()))
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  let specs =
    List.init fleet_n_workers (fun i ->
        let name = Printf.sprintf "w%d" i in
        let sock = Filename.concat dir (name ^ ".sock") in
        {
          Fleet.Supervisor.w_name = name;
          w_socket = sock;
          w_argv =
            (* pool = slots + 2: a worker thread owns a connection for
               its lifetime, so the pool must exceed the router's
               persistent slots or routed connections starve in the
               accept queue (the spares answer health probes) *)
            [|
              Sys.executable_name; "fleet-worker"; "--socket"; sock; "--journal-dir";
              Filename.concat dir (name ^ ".journal"); "--capacity"; "8192"; "--pool"; "10";
            |];
          w_log = Some (Filename.concat dir (name ^ ".log"));
        })
  in
  let sup = Fleet.Supervisor.start specs in
  (match Fleet.Supervisor.await_ready sup with
  | Ok () -> ()
  | Error msg ->
    Fleet.Supervisor.stop sup;
    failwith ("fleet bench: workers not ready: " ^ msg));
  let worker_list = Fleet.Supervisor.workers sup in
  let names = List.map fst worker_list in
  let router_sock = Filename.concat dir "router.sock" in
  let router_pid =
    let log =
      Unix.openfile (Filename.concat dir "router.log")
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close log)
      (fun () ->
        Unix.create_process Sys.executable_name
          [|
            Sys.executable_name; "fleet-router"; "--socket"; router_sock; "--workers";
            String.concat "," (List.map (fun (n, s) -> n ^ "=" ^ s) worker_list); "--slots"; "8";
          |]
          Unix.stdin log log)
  in
  let probe = Dur.create ~socket:router_sock () in
  let healthz_ok () =
    match Dur.request probe FP.Healthz with
    | Ok (FP.Reply fields) -> (
      match Option.bind (List.assoc_opt "status" fields) FJ.to_str with
      | Some "ok" -> true
      | _ -> false)
    | _ -> false
  in
  let await_healthy what timeout =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if healthz_ok () then ()
      else if Unix.gettimeofday () > deadline then failwith ("fleet bench: " ^ what)
      else begin
        Thread.delay 0.2;
        go ()
      end
    in
    go ()
  in
  await_healthy "router did not come up" 30.0;
  let ring = Fleet.Ring.create names in
  let ids = fleet_ids sessions in
  let shard = fleet_shards ring ids in
  let sample_target = if smoke then 16 else 64 in
  let sample = fleet_sample ~shard ~victim:fleet_victim ~target:sample_target ids in
  printf "fleet: %d workers + router up, %d clients in %d driver processes, %d sessions\n%!"
    fleet_n_workers clients drivers sessions;
  let driver_argvs ?(depth = 1) phase =
    List.init drivers (fun d ->
        [|
          Sys.executable_name; "fleet-drive"; "--socket"; router_sock; "--workers";
          String.concat "," names; "--victim"; fleet_victim; "--sample";
          string_of_int sample_target; "--clients"; string_of_int per_driver; "--client-offset";
          string_of_int (d * per_driver); "--client-total"; string_of_int clients; "--sessions";
          string_of_int sessions; "--reps"; string_of_int reps; "--depth"; string_of_int depth;
          "--phase"; phase;
        |])
  in
  let parse_driver (status, out) =
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> failwith "fleet bench: a driver process died");
    match FJ.of_string (String.trim out) with
    | Ok j -> j
    | Error e -> failwith ("fleet bench: unparseable driver report: " ^ e)
  in
  let dint k j = Option.value (Option.bind (FJ.member k j) FJ.to_int) ~default:0 in
  let sum k reports = List.fold_left (fun acc j -> acc + dint k j) 0 reports in
  (* leg 1: open every session, bind one acknowledged budget *)
  let t0 = Unix.gettimeofday () in
  let open_reports = List.map parse_driver (fleet_run_drivers (driver_argvs "open")) in
  let open_wall = Unix.gettimeofday () -. t0 in
  let open_requests = sum "requests" open_reports in
  let open_errors = sum "errors" open_reports in
  printf "open: %d req in %.2f s  (%.0f req/s)  errors %d\n%!" open_requests open_wall
    (float_of_int open_requests /. open_wall)
    open_errors;
  let read_sig id =
    match Dur.request ~retry_failures:true probe (FP.Signature { session = id }) with
    | Ok (FP.Reply fields) -> Option.bind (List.assoc_opt "signature" fields) FJ.to_str
    | _ -> None
  in
  let before = List.map (fun id -> (id, read_sig id)) sample in
  (* leg 2: the drive mix, with a SIGKILL of one worker mid-leg *)
  let kill_after = if smoke then 0.5 else 10.0 in
  let t1 = Unix.gettimeofday () in
  let killed_pid = ref 0 in
  let killer =
    Thread.create
      (fun () ->
        Thread.delay kill_after;
        match Fleet.Supervisor.pid sup fleet_victim with
        | Some pid -> (
          killed_pid := pid;
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ())
      ()
  in
  let drive_reports = List.map parse_driver (fleet_run_drivers (driver_argvs "drive")) in
  let drive_wall = Unix.gettimeofday () -. t1 in
  Thread.join killer;
  let drive_requests = sum "requests" drive_reports in
  let drive_errors = sum "errors" drive_reports in
  let reconnects = sum "reconnects" (open_reports @ drive_reports) in
  let retried = sum "retried" (open_reports @ drive_reports) in
  let drive_rps = if drive_wall > 0.0 then float_of_int drive_requests /. drive_wall else 0.0 in
  printf "drive: %d req in %.2f s  (%.0f req/s)  victim pid %d killed at t+%.1fs  errors %d\n%!"
    drive_requests drive_wall drive_rps !killed_pid kill_after drive_errors;
  (* leg 3: wait for the fleet to report healthy, then verify the
     held-out signatures against their pre-kill values *)
  await_healthy "fleet did not recover after the kill" 60.0;
  let after = List.map (fun id -> (id, read_sig id)) sample in
  let mismatches =
    List.fold_left2
      (fun acc (id, b) (_, a) ->
        match (b, a) with
        | Some b, Some a when String.equal b a -> acc
        | b, a ->
          Printf.eprintf "fleet: signature mismatch for %s: %s -> %s\n%!" id
            (Option.value b ~default:"<none>")
            (Option.value a ~default:"<none>");
          acc + 1)
      0 before after
  in
  let restarts = Fleet.Supervisor.restarts sup in
  let victim_restarts =
    match List.assoc_opt fleet_victim restarts with Some n -> n | None -> 0
  in
  printf "verify: %d sample sessions, %d mismatches; restarts %s\n%!" (List.length sample)
    mismatches
    (String.concat " " (List.map (fun (w, n) -> Printf.sprintf "%s=%d" w n) restarts));
  (* leg 4: the pipelining sweep — the same drive mix with [depth]
     requests in flight per client, run after recovery so no kill
     window perturbs the depth comparison.  Depth 1 is lockstep; the
     deepest point is the PR 9 headline the compare script gates. *)
  let pipeline_rows =
    List.map
      (fun depth ->
        let t = Unix.gettimeofday () in
        let reports =
          List.map parse_driver (fleet_run_drivers (driver_argvs ~depth "pipeline"))
        in
        let wall = Unix.gettimeofday () -. t in
        let requests = sum "requests" reports in
        let errs = sum "errors" reports in
        let rps = if wall > 0.0 then float_of_int requests /. wall else 0.0 in
        printf "pipeline depth %2d: %d req in %.2f s  (%.0f req/s)  errors %d\n%!" depth
          requests wall rps errs;
        (depth, requests, wall, rps, errs))
      pipeline_depth_sweep
  in
  let best_depth, _, _, best_rps, _ =
    List.fold_left
      (fun ((_, _, _, best, _) as acc) ((_, _, _, rps, _) as row) ->
        if rps > best then row else acc)
      (List.hd pipeline_rows) pipeline_rows
  in
  let pipeline_errors = List.fold_left (fun acc (_, _, _, _, e) -> acc + e) 0 pipeline_rows in
  printf "pipeline best: depth %d at %.0f req/s (%.2fx the lockstep drive leg)\n%!" best_depth
    best_rps
    (if drive_rps > 0.0 then best_rps /. drive_rps else 0.0);
  let fleet_stats =
    match Dur.request_line probe "{\"op\":\"stats\"}" with Ok s -> s | Error _ -> "null"
  in
  (* per-shard latency: driver histograms merged bucket-wise *)
  let shard_snap w =
    List.fold_left
      (fun acc j ->
        match Option.bind (FJ.member "per_shard" j) (FJ.member w) with
        | Some sj -> FO.merge_hsnapshots acc (fleet_snap_of_json sj)
        | None -> acc)
      (FO.empty_hsnapshot ()) drive_reports
  in
  let shard_rows =
    List.map
      (fun w ->
        let routed =
          Array.fold_left
            (fun acc id -> if String.equal (Hashtbl.find shard id) w then acc + 1 else acc)
            0 ids
        in
        (w, routed, shard_snap w))
      names
  in
  let agg =
    List.fold_left (fun acc (_, _, s) -> FO.merge_hsnapshots acc s) (FO.empty_hsnapshot ())
      shard_rows
  in
  let _, mean, p50, p95, p99, max_us = fleet_snap_stats agg in
  printf "latency us: mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f  max %.0f\n%!" mean p50 p95 p99
    max_us;
  List.iter
    (fun (w, routed, s) ->
      let n, mean, p50, _, p99, max_us = fleet_snap_stats s in
      printf "  %-4s %5d sessions  n %6d  mean %7.0f  p50 %7.0f  p99 %7.0f  max %8.0f us\n" w
        routed n mean p50 p99 max_us)
    shard_rows;
  printf "client: %d reconnects, %d retried\n%!" reconnects retried;
  (* teardown before writing the report: the numbers above are final *)
  Dur.close probe;
  (try Unix.kill router_pid Sys.sigterm with Unix.Unix_error _ -> ());
  let rec reap_router tries =
    match Unix.waitpid [ Unix.WNOHANG ] router_pid with
    | 0, _ when tries > 0 ->
      Thread.delay 0.1;
      reap_router (tries - 1)
    | 0, _ ->
      (try Unix.kill router_pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] router_pid)
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap_router 50;
  Fleet.Supervisor.stop sup;
  let errors = open_errors + drive_errors + pipeline_errors in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"fleet\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"layer\": \"idct\",\n";
  add "  \"workers\": %d,\n" fleet_n_workers;
  add "  \"clients\": %d,\n" clients;
  add "  \"driver_processes\": %d,\n" drivers;
  add "  \"sessions\": %d,\n" sessions;
  add "  \"reps\": %d,\n" reps;
  add "  \"requests\": %d,\n" (open_requests + drive_requests);
  add "  \"errors\": %d,\n" errors;
  add "  \"wall_s\": %.3f,\n" drive_wall;
  add "  \"requests_per_second\": %.1f,\n" drive_rps;
  add "  \"open\": { \"requests\": %d, \"wall_s\": %.3f, \"requests_per_second\": %.1f },\n"
    open_requests open_wall
    (if open_wall > 0.0 then float_of_int open_requests /. open_wall else 0.0);
  add
    "  \"drive\": { \"requests\": %d, \"wall_s\": %.3f, \"requests_per_second\": %.1f, \
     \"mix\": [\"set\", \"candidates max=16\", \"signature\", \"retract\"] },\n"
    drive_requests drive_wall drive_rps;
  add
    "  \"latency_us\": { \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %.1f },\n"
    mean p50 p95 p99 max_us;
  add "  \"per_shard\": {\n";
  List.iteri
    (fun i (w, routed, s) ->
      let n, mean, p50, p95, p99, max_us = fleet_snap_stats s in
      add
        "    \"%s\": { \"sessions\": %d, \"requests\": %d, \"mean_us\": %.1f, \"p50_us\": %.1f, \
         \"p95_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f }%s\n"
        w routed n mean p50 p95 p99 max_us
        (if i < List.length shard_rows - 1 then "," else ""))
    shard_rows;
  add "  },\n";
  add "  \"pipeline\": {\n";
  add "    \"depths\": [\n";
  List.iteri
    (fun i (depth, requests, wall, rps, errs) ->
      add
        "      { \"depth\": %d, \"requests\": %d, \"errors\": %d, \"wall_s\": %.3f, \
         \"requests_per_second\": %.1f }%s\n"
        depth requests errs wall rps
        (if i < List.length pipeline_rows - 1 then "," else ""))
    pipeline_rows;
  add "    ],\n";
  add "    \"best\": { \"depth\": %d, \"requests_per_second\": %.1f },\n" best_depth best_rps;
  add "    \"mix\": [\"set\", \"candidates max=16\", \"signature\", \"retract\"]\n";
  add "  },\n";
  add "  \"client\": { \"reconnects\": %d, \"retried\": %d },\n" reconnects retried;
  add
    "  \"kill\": { \"victim\": \"%s\", \"after_s\": %.1f, \"victim_restarts\": %d, \
     \"sample_sessions\": %d, \"signature_mismatches\": %d },\n"
    fleet_victim kill_after victim_restarts (List.length sample) mismatches;
  add "  \"restarts\": { %s },\n"
    (String.concat ", " (List.map (fun (w, n) -> Printf.sprintf "\"%s\": %d" w n) restarts));
  add "  \"fleet_stats\": %s\n" fleet_stats;
  add "}\n";
  write_bench "BENCH_PR9" buf;
  printf
    "\nwrote BENCH_PR9.json (%.0f req/s lockstep, %.0f req/s at depth %d, over %d clients, %d \
     sessions, %d shards)\n"
    drive_rps best_rps best_depth clients sessions fleet_n_workers;
  rm_rf dir;
  if errors > 0 then begin
    Printf.eprintf "fleet bench: %d client-visible failures (want structured retryable only)\n"
      errors;
    exit 1
  end;
  if mismatches > 0 then begin
    Printf.eprintf "fleet bench: %d signature mismatches after worker restart\n" mismatches;
    exit 1
  end;
  if victim_restarts < 1 then begin
    Printf.eprintf "fleet bench: victim %s was never restarted (kill leg did not run?)\n"
      fleet_victim;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fleet tracing-overhead bench (BENCH_PR10.json)                      *)

(* The PR 9 pipelined data plane (depth-16 groups through the router's
   pass-through path) run with DSE_TELEMETRY=0 and =1, each over a
   freshly spawned fleet so the setting reaches every process — the
   drivers mint a trace context per sampled request when telemetry is
   on, the router and workers record remote-parented spans under it,
   so the "on" side pays the distributed-tracing path end to end
   (DESIGN.md 18).

   The gated leg runs at the operational head-sampling rate below:
   the sampling decision is taken once at the minting client
   (Obs.mint_trace_sampled), so unsampled requests carry zero tracing
   bytes through the fleet and the overhead scales with the rate —
   which is exactly the knob DSE_TRACE_SAMPLE exists to turn.  The
   compare script gates that leg at <= 3%, the same budget the
   single-process telemetry bench (BENCH_PR5) enforces; full runs also
   measure sample-everything tracing as an uncapped informational
   figure. *)

let obs_fleet_depth = 16
let obs_fleet_sample = 0.02

let obs_fleet_round ~smoke ~telemetry ~sample =
  Unix.putenv "DSE_TELEMETRY" (if telemetry then "1" else "0");
  Unix.putenv "DSE_TRACE_SAMPLE" (Printf.sprintf "%g" sample);
  let clients = if smoke then 8 else 64 in
  let drivers = if smoke then 2 else 4 in
  let per_driver = clients / drivers in
  let sessions = if smoke then 256 else 4_000 in
  let reps = match env_reps () with Some r -> r | None -> if smoke then 1 else 12 in
  let dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dse_bench_obsfleet_%d_%b" (Unix.getpid ()) telemetry)
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  let specs =
    List.init fleet_n_workers (fun i ->
        let name = Printf.sprintf "w%d" i in
        let sock = Filename.concat dir (name ^ ".sock") in
        {
          Fleet.Supervisor.w_name = name;
          w_socket = sock;
          w_argv =
            [|
              Sys.executable_name; "fleet-worker"; "--socket"; sock; "--journal-dir";
              Filename.concat dir (name ^ ".journal"); "--capacity"; "8192"; "--pool"; "10";
            |];
          w_log = Some (Filename.concat dir (name ^ ".log"));
        })
  in
  let sup = Fleet.Supervisor.start specs in
  (match Fleet.Supervisor.await_ready sup with
  | Ok () -> ()
  | Error msg ->
    Fleet.Supervisor.stop sup;
    failwith ("obs-fleet bench: workers not ready: " ^ msg));
  let worker_list = Fleet.Supervisor.workers sup in
  let names = List.map fst worker_list in
  let router_sock = Filename.concat dir "router.sock" in
  let router_pid =
    let log =
      Unix.openfile (Filename.concat dir "router.log")
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close log)
      (fun () ->
        Unix.create_process Sys.executable_name
          [|
            Sys.executable_name; "fleet-router"; "--socket"; router_sock; "--workers";
            String.concat "," (List.map (fun (n, s) -> n ^ "=" ^ s) worker_list); "--slots"; "8";
          |]
          Unix.stdin log log)
  in
  let probe = Dur.create ~socket:router_sock () in
  let healthz_ok () =
    match Dur.request probe FP.Healthz with
    | Ok (FP.Reply fields) -> (
      match Option.bind (List.assoc_opt "status" fields) FJ.to_str with
      | Some "ok" -> true
      | _ -> false)
    | _ -> false
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec wait_up () =
    if healthz_ok () then ()
    else if Unix.gettimeofday () > deadline then failwith "obs-fleet bench: router did not come up"
    else begin
      Thread.delay 0.2;
      wait_up ()
    end
  in
  wait_up ();
  let driver_argvs phase =
    List.init drivers (fun d ->
        [|
          Sys.executable_name; "fleet-drive"; "--socket"; router_sock; "--workers";
          String.concat "," names; "--victim"; fleet_victim; "--sample"; "0"; "--clients";
          string_of_int per_driver; "--client-offset";
          string_of_int (d * per_driver); "--client-total"; string_of_int clients; "--sessions";
          string_of_int sessions; "--reps"; string_of_int reps; "--depth";
          string_of_int obs_fleet_depth; "--phase"; phase;
        |])
  in
  let parse_driver (status, out) =
    (match status with
    | Unix.WEXITED 0 -> ()
    | _ -> failwith "obs-fleet bench: a driver process died");
    match FJ.of_string (String.trim out) with
    | Ok j -> j
    | Error e -> failwith ("obs-fleet bench: unparseable driver report: " ^ e)
  in
  let dint k j = Option.value (Option.bind (FJ.member k j) FJ.to_int) ~default:0 in
  let sum k reports = List.fold_left (fun acc j -> acc + dint k j) 0 reports in
  (* unmeasured: open every session *)
  let open_reports = List.map parse_driver (fleet_run_drivers (driver_argvs "open")) in
  if sum "errors" open_reports > 0 then failwith "obs-fleet bench: open leg saw errors";
  (* measured: the depth-16 pipelined drive mix *)
  let t0 = Unix.gettimeofday () in
  let reports = List.map parse_driver (fleet_run_drivers (driver_argvs "pipeline")) in
  let wall = Unix.gettimeofday () -. t0 in
  let requests = sum "requests" reports in
  let errors = sum "errors" reports in
  let rps = if wall > 0.0 then float_of_int requests /. wall else 0.0 in
  (* proof the traced side actually traced: the merged fleet span
     stream must carry remote-parented spans (and none when off) *)
  let spans =
    match Dur.request_line probe {|{"op":"trace","spans":true}|} with
    | Ok line -> (
      match FJ.of_string line with
      | Ok j -> (
        match Option.bind (FJ.member "spans" j) FJ.to_list with
        | Some l ->
          List.length
            (List.filter
               (fun s -> Option.bind (FJ.member "attrs" s) (FJ.str_member "trace") <> None)
               l)
        | None -> 0)
      | Error _ -> 0)
    | Error _ -> 0
  in
  Dur.close probe;
  (try Unix.kill router_pid Sys.sigterm with Unix.Unix_error _ -> ());
  let rec reap tries =
    match Unix.waitpid [ Unix.WNOHANG ] router_pid with
    | 0, _ when tries > 0 ->
      Thread.delay 0.1;
      reap (tries - 1)
    | 0, _ ->
      (try Unix.kill router_pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] router_pid)
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap 50;
  Fleet.Supervisor.stop sup;
  rm_rf dir;
  printf "tracing %-11s: %d req in %.2f s  (%.0f req/s)  traced spans %d  errors %d\n%!"
    (if telemetry then Printf.sprintf "on @ %g" sample else "off")
    requests wall rps spans errors;
  (requests, wall, rps, errors, spans)

let obs_fleet_json ?(smoke = false) () =
  header
    (if smoke then "Fleet tracing-overhead bench (smoke) -> BENCH_PR10.json"
     else "Fleet tracing-overhead bench -> BENCH_PR10.json");
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let saved_tel = Sys.getenv_opt "DSE_TELEMETRY" in
  let saved_sample = Sys.getenv_opt "DSE_TRACE_SAMPLE" in
  let pairs = if smoke then 1 else 7 in
  (* adjacent off/on pairs, order alternating between pairs, gated on
     the TRIMMED MEAN of per-pair overheads (lowest and highest pair
     dropped): a fresh fleet per round on a shared box makes single
     rounds swing +/-15%, and a per-side best-of turns one lucky
     baseline round into phantom overhead.  Pairing adjacent rounds
     cancels slow drift, and because the noise is one-sided (a load
     burst only ever slows a round down) the median is the right
     robust estimate — a trimmed mean still leans into the skewed
     tail. *)
  let rounds =
    List.init pairs (fun i ->
        if i mod 2 = 0 then begin
          let off = obs_fleet_round ~smoke ~telemetry:false ~sample:obs_fleet_sample in
          let on = obs_fleet_round ~smoke ~telemetry:true ~sample:obs_fleet_sample in
          (off, on)
        end
        else begin
          let on = obs_fleet_round ~smoke ~telemetry:true ~sample:obs_fleet_sample in
          let off = obs_fleet_round ~smoke ~telemetry:false ~sample:obs_fleet_sample in
          (off, on)
        end)
  in
  (* one sample-everything round, reported but not gated: the cost of
     tracing literally every request through every hop *)
  let full_rate =
    if smoke then None else Some (obs_fleet_round ~smoke ~telemetry:true ~sample:1.0)
  in
  Unix.putenv "DSE_TELEMETRY" (Option.value saved_tel ~default:"1");
  Unix.putenv "DSE_TRACE_SAMPLE" (Option.value saved_sample ~default:"1.0");
  let rps_of (_, _, rps, _, _) = rps in
  let pair_overhead ((off, on) : (int * float * float * int * int) * (int * float * float * int * int)) =
    if rps_of off > 0.0 then 100.0 *. (1.0 -. (rps_of on /. rps_of off)) else 0.0
  in
  let overheads = List.sort compare (List.map pair_overhead rounds) in
  let median_overhead = List.nth overheads (List.length overheads / 2) in
  (* the pair closest to the estimate, for the reported absolute figures *)
  let median_pair =
    List.fold_left
      (fun best p ->
        if Float.abs (pair_overhead p -. median_overhead)
           < Float.abs (pair_overhead best -. median_overhead)
        then p
        else best)
      (List.hd rounds) rounds
  in
  let (off_req, off_wall, off_rps, _, _) = fst median_pair in
  let (on_req, on_wall, on_rps, _, on_spans) = snd median_pair in
  let errors =
    List.fold_left
      (fun acc ((_, _, _, e1, _), (_, _, _, e2, _)) -> acc + e1 + e2)
      0 rounds
  in
  if errors > 0 then begin
    Printf.eprintf "obs-fleet bench: %d client-visible failures\n" errors;
    exit 1
  end;
  if on_spans = 0 then begin
    Printf.eprintf "obs-fleet bench: tracing-on round recorded no propagated spans\n";
    exit 1
  end;
  let overhead_pct = median_overhead in
  let within = overhead_pct <= 3.0 in
  printf "fleet tracing overhead at depth %d, sampling %g: %.2f%% median of [%s] (target <= 3%%)%s\n"
    obs_fleet_depth obs_fleet_sample overhead_pct
    (String.concat "; " (List.map (Printf.sprintf "%.2f") overheads))
    (if within then "" else "  [OVER BUDGET]");
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"fleet-tracing-overhead\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"layer\": \"idct\",\n";
  add "  \"workers\": %d,\n" fleet_n_workers;
  add "  \"depth\": %d,\n" obs_fleet_depth;
  add "  \"rounds_per_setting\": %d,\n" pairs;
  add "  \"pair_overheads_pct\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%.2f") overheads));
  add "  \"trace_sample\": %g,\n" obs_fleet_sample;
  add "  \"requests_per_second\": %.1f,\n" on_rps;
  add
    "  \"tracing_off\": { \"requests\": %d, \"wall_s\": %.3f, \"requests_per_second\": %.1f },\n"
    off_req off_wall off_rps;
  add
    "  \"tracing_on\": { \"requests\": %d, \"wall_s\": %.3f, \"requests_per_second\": %.1f, \
     \"propagated_spans\": %d },\n"
    on_req on_wall on_rps on_spans;
  (match full_rate with
  | Some (fr_req, fr_wall, fr_rps, _, fr_spans) ->
    let fr_overhead = if off_rps > 0.0 then 100.0 *. (1.0 -. (fr_rps /. off_rps)) else 0.0 in
    printf "sample-everything tracing overhead (informational): %.2f%%\n" fr_overhead;
    add
      "  \"full_sampling\": { \"trace_sample\": 1.0, \"requests\": %d, \"wall_s\": %.3f, \
       \"requests_per_second\": %.1f, \"propagated_spans\": %d, \"overhead_pct\": %.2f },\n"
      fr_req fr_wall fr_rps fr_spans fr_overhead
  | None -> ());
  add "  \"overhead_pct\": %.2f,\n" overhead_pct;
  add "  \"target_pct\": 3.0,\n";
  add "  \"within_target\": %b\n" within;
  add "}\n";
  write_bench "BENCH_PR10" buf;
  printf "\nwrote BENCH_PR10.json (%.2f%% tracing overhead at depth %d, sampling %g)\n"
    overhead_pct obs_fleet_depth obs_fleet_sample

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per table/figure)           *)

let micro () =
  header "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let registry = Ds_domains.Populate.standard_registry ~eol:768 () in
  let cores = Ds_reuse.Registry.all_cores registry in
  let g = Ds_bignum.Prng.create 42 in
  let m768 =
    let m = Ds_bignum.Prng.nat_bits g 768 in
    if Ds_bignum.Nat.is_even m then Ds_bignum.Nat.succ m else m
  in
  let a768 = Ds_bignum.Prng.nat_below g m768 and b768 = Ds_bignum.Prng.nat_below g m768 in
  let redc = Ds_bignum.Modmul.Redc.make m768 in
  let m64 =
    let m = Ds_bignum.Prng.nat_bits g 64 in
    if Ds_bignum.Nat.is_even m then Ds_bignum.Nat.succ m else m
  in
  let a64 = Ds_bignum.Prng.nat_below g m64 and b64 = Ds_bignum.Prng.nat_below g m64 in
  let sim_cfg = Design.design 2 ~slice_width:16 in
  let base_session = lazy (ok (CL.navigate_to_omm (CL.session ~cores))) in
  let tests =
    [
      Test.make ~name:"table1-characterization"
        (Staged.stage (fun () -> ignore (Design.table1 ())));
      Test.make ~name:"fig6-sw-count-CIOS-1024"
        (Staged.stage (fun () ->
             ignore (Ds_swmodel.Mont_variants.count_only Ds_swmodel.Mont_variants.Cios ~bits:1024)));
      Test.make ~name:"fig9-evaluation-points"
        (Staged.stage (fun () ->
             ignore
               (Design.evaluation_points ~eol:768
                  (List.concat_map
                     (fun n -> List.map (fun w -> (n, w)) [ 8; 16; 32; 64; 128 ])
                     [ 2; 8 ]))));
      Test.make ~name:"fig12-pareto"
        (Staged.stage (fun () ->
             let points =
               List.map
                 (fun (label, ch) ->
                   Evaluation.point ~label ~x:ch.D.char_latency_ns ~y:ch.D.char_area_um2)
                 (Design.evaluation_points ~eol:64
                    (List.map (fun n -> (n, 64)) [ 1; 2; 3; 4; 5; 6 ]))
             in
             ignore (Evaluation.pareto_front points)));
      Test.make ~name:"fig3-idct-clustering"
        (Staged.stage (fun () ->
             ignore
               (Cluster.suggest_split
                  (Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2
                     Ds_domains.Idct_layer.cores))));
      Test.make ~name:"fig13-session-propagation"
        (Staged.stage (fun () ->
             let s = Lazy.force base_session in
             let s = ok (CL.apply_requirements s CL.coprocessor_requirements) in
             let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
             ignore (Session.set s N.algorithm (Value.str N.montgomery))));
      Test.make ~name:"casestudy-index-build"
        (Staged.stage (fun () -> ignore (Index.build CL.hierarchy cores)));
      Test.make ~name:"bignum-redc-modmul-768"
        (Staged.stage (fun () -> ignore (Ds_bignum.Modmul.Redc.mul redc a768 b768)));
      Test.make ~name:"rtl-sim-montgomery-64b"
        (Staged.stage (fun () -> ignore (D.simulate sim_cfg ~eol:64 ~a:a64 ~b:b64 ~modulus:m64)));
      Test.make ~name:"fig10-delay-estimator"
        (Staged.stage (fun () ->
             ignore
               (Ds_estimate.Delay_estimator.rank
                  ~hints_for:Ds_estimate.Bd_library.estimator_hints ~bindings:[ ("n", 768) ]
                  Ds_estimate.Bd_library.all)));
    ]
  in
  let grouped = Test.make_grouped ~name:"dse" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ t ] ->
        if t > 1.0e6 then printf "%-34s %10.3f ms/run\n" name (t /. 1.0e6)
        else if t > 1.0e3 then printf "%-34s %10.3f us/run\n" name (t /. 1.0e3)
        else printf "%-34s %10.1f ns/run\n" name t
      | Some _ | None -> printf "%-34s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* soak: the crash-recovery chaos gate (driven by scripts/chaos_soak.sh)

   Three phases, one executable:
     --drive   seeded mixed traffic against a live server, reconnecting
               through SIGKILL/restart chaos — transport errors retry,
               structured degradation replies (failed-fsync eviction,
               shutdown drain) are tolerated;
     --settle  after the chaos, ask a clean server for every soak
               session's candidate signature -> settle.json;
     --verify  offline gate over the journal dir: the production resume
               (snapshot fast path) and the sequential no-fault oracle
               (full-history replay, prefer_snapshot:false) must agree
               with each other and with settle.json — identical
               signatures, candidate sets and merit ranges — within a
               resume-latency budget -> chaos_report.json, nonzero exit
               on any divergence. *)

module SC = Ds_serve.Client
module SP = Ds_serve.Protocol
module SJx = Ds_serve.Jsonx
module SVc = Ds_serve.Service

let soak_arg rest key default =
  let rec go = function
    | k :: v :: _ when String.equal k key -> v
    | _ :: tl -> go tl
    | [] -> default
  in
  go rest

let soak_session_id i = Printf.sprintf "soak-%d" i
let soak_merits = [ "delay"; "cost" ]

let soak_drive ~socket ~sessions ~iters ~seed ~pace_ms =
  let issue = "L1" and pick = "l1-o0" in
  let rng = Ds_bignum.Prng.create (seed lxor 0x50AC) in
  let connect () =
    match SC.connect_retry ~deadline:30.0 ~socket () with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let client = ref (connect ()) in
  let reconnects = ref 0 in
  let rec send retries req =
    match SC.request !client req with
    | Ok resp -> resp
    | Error _ when retries > 0 ->
      (* the chaos harness SIGKILLs the server under us: reconnect and
         re-ask — the journal on disk decides what actually happened,
         and a double-applied set/retract comes back as a tolerated
         structured rejection *)
      SC.close !client;
      incr reconnects;
      client := connect ();
      send (retries - 1) req
    | Error msg -> failwith msg
  in
  let send req = send 100 req in
  let adopted = ref 0 in
  (* opens retry through injected journal faults: the fault plan is
     probabilistic, so a failed create/rehydrate succeeds on re-ask *)
  let rec setup attempts sid =
    let retry () =
      if attempts = 0 then failwith (sid ^ ": could not open through injected faults")
      else setup (attempts - 1) sid
    in
    match send (SP.Open { session = Some sid; layer = "synthetic"; eol = None; resume = false })
    with
    | SP.Reply _ -> ()
    | SP.Failed (SP.Session_exists, _) -> (
      incr adopted;
      (* journal from a previous incarnation: the first touch rehydrates *)
      match send (SP.Signature { session = sid }) with
      | SP.Reply _ -> ()
      | SP.Failed ((SP.Journal_error | SP.Unknown_session), _) -> retry ()
      | SP.Failed (code, msg) ->
        failwith (Printf.sprintf "cannot adopt %s: %s: %s" sid (SP.error_code_label code) msg))
    | SP.Failed (SP.Journal_error, _) -> retry ()
    | SP.Failed (code, msg) ->
      failwith (Printf.sprintf "cannot open %s: %s: %s" sid (SP.error_code_label code) msg)
  in
  for i = 0 to sessions - 1 do
    setup 25 (soak_session_id i)
  done;
  let applied = ref 0 and tolerated = ref 0 in
  for it = 1 to iters do
    for i = 0 to sessions - 1 do
      let sid = soak_session_id i in
      let req =
        match Ds_bignum.Prng.int rng 5 with
        | 0 -> SP.Set { session = sid; name = issue; value = Value.str pick; decide = false }
        | 1 -> SP.Retract { session = sid; name = issue }
        | 2 -> SP.Annotate { session = sid; text = Printf.sprintf "soak %d.%d" it i }
        | 3 -> SP.Candidates { session = sid; max = None }
        | _ -> SP.Ranges { session = sid; merits = Some soak_merits }
      in
      if pace_ms > 0.0 then Thread.delay (pace_ms /. 1000.0);
      match send req with
      | SP.Reply _ -> incr applied
      | SP.Failed ((SP.Rejected | SP.Unknown_session | SP.Journal_error | SP.Shutting_down), _)
        ->
        (* structured degradation, all by design: an unbound retract, a
           mid-eviction miss, a failed-fsync eviction, a draining
           server — the journal stays the truth *)
        incr tolerated
      | SP.Failed (code, msg) ->
        failwith (Printf.sprintf "%s: unexpected %s: %s" sid (SP.error_code_label code) msg)
    done
  done;
  SC.close !client;
  printf "soak drive: %d ops applied, %d tolerated, %d reconnects, %d adopted\n%!" !applied
    !tolerated !reconnects !adopted

let soak_settle ~socket ~sessions ~out =
  match SC.connect_retry ~deadline:30.0 ~socket () with
  | Error msg -> failwith msg
  | Ok client ->
    let sigs =
      List.init sessions (fun i ->
          let sid = soak_session_id i in
          (* the clean server holds nothing resident: the signature
             request transparently rehydrates from the journal *)
          match SC.request client (SP.Signature { session = sid }) with
          | Ok (SP.Reply payload) -> (
            match Option.bind (List.assoc_opt "signature" payload) SJx.to_str with
            | Some s -> (sid, SJx.Str s)
            | None -> failwith (sid ^ ": signature reply missing the field"))
          | Ok (SP.Failed (code, msg)) ->
            failwith (Printf.sprintf "%s: %s: %s" sid (SP.error_code_label code) msg)
          | Error msg -> failwith msg)
    in
    SC.close client;
    let doc = SJx.Obj [ ("sessions", SJx.Obj sigs) ] in
    Out_channel.with_open_text out (fun oc ->
        Out_channel.output_string oc (SJx.to_string doc ^ "\n"));
    printf "soak settle: %d signatures -> %s\n%!" (List.length sigs) out

let soak_verify ~dir ~settle_file ~out ~max_resume_ms =
  if String.equal dir "" then failwith "soak --verify needs --dir JOURNAL_DIR";
  let layers = Ds_domains.Catalog.factories in
  let settle =
    if String.equal settle_file "" then []
    else
      let text = In_channel.with_open_text settle_file In_channel.input_all in
      match SJx.of_string text with
      | Ok json -> (
        match SJx.member "sessions" json with
        | Some (SJx.Obj kvs) ->
          List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (SJx.to_str v)) kvs
        | _ -> failwith "settle file has no sessions object")
      | Error msg -> failwith ("bad settle file: " ^ msg)
  in
  let ids =
    if settle <> [] then List.map fst settle
    else
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".journal" f)
      |> List.sort String.compare
  in
  let rows, divergences, max_resume_us =
    List.fold_left
      (fun (rows, bad, worst) id ->
        let t0 = Unix.gettimeofday () in
        let production = SVc.resume ~layers ~dir ~id () in
        let resume_us = (Unix.gettimeofday () -. t0) *. 1.0e6 in
        let oracle = SVc.resume ~prefer_snapshot:false ~layers ~dir ~id () in
        let verdict =
          match (production, oracle) with
          | Error msg, _ -> Error ("production resume failed: " ^ msg)
          | _, Error msg -> Error ("oracle resume failed: " ^ msg)
          | Ok p, Ok o ->
            let sig_p = Session.candidate_signature p.SVc.r_session in
            let sig_o = Session.candidate_signature o.SVc.r_session in
            let cands s = List.map fst (Session.candidates s) in
            let ranges s = List.map (fun m -> Session.merit_range s ~merit:m) soak_merits in
            if not (String.equal sig_p sig_o) then
              Error
                (Printf.sprintf "signature divergence: production %s, oracle %s" sig_p sig_o)
            else if cands p.SVc.r_session <> cands o.SVc.r_session then
              Error "candidate sets diverge between production and oracle resume"
            else if ranges p.SVc.r_session <> ranges o.SVc.r_session then
              Error "merit ranges diverge between production and oracle resume"
            else (
              match List.assoc_opt id settle with
              | Some s when not (String.equal s sig_p) ->
                Error
                  (Printf.sprintf "diverges from settled state: resumed %s, settled %s" sig_p s)
              | _ -> Ok (sig_p, p))
        in
        let row =
          SJx.Obj
            (("session", SJx.Str id)
            :: ("resume_us", SJx.Float resume_us)
            ::
            (match verdict with
            | Ok (signature, p) ->
              [
                ("ok", SJx.Bool true);
                ("signature", SJx.Str signature);
                ("replayed", SJx.Int p.SVc.r_replayed);
                ("tail_replayed", SJx.Int p.SVc.r_tail_replayed);
                ("from_snapshot", SJx.Bool p.SVc.r_from_snapshot);
                ("fallback", SJx.Bool p.SVc.r_fallback);
              ]
            | Error msg -> [ ("ok", SJx.Bool false); ("error", SJx.Str msg) ]))
        in
        ( row :: rows,
          (match verdict with Ok _ -> bad | Error _ -> bad + 1),
          Float.max worst resume_us ))
      ([], 0, 0.0) ids
  in
  let latency_ok = max_resume_us <= max_resume_ms *. 1000.0 in
  let report =
    SJx.Obj
      [
        ("sessions", SJx.Int (List.length ids));
        ("divergences", SJx.Int divergences);
        ("max_resume_us", SJx.Float max_resume_us);
        ("max_resume_budget_ms", SJx.Float max_resume_ms);
        ("latency_ok", SJx.Bool latency_ok);
        ("results", SJx.List (List.rev rows));
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (SJx.to_string report ^ "\n"));
  printf "soak verify: %d sessions, %d divergences, max resume %.1f ms -> %s\n%!"
    (List.length ids) divergences (max_resume_us /. 1000.0) out;
  if divergences > 0 || not latency_ok then exit 1

let soak rest =
  (* a SIGKILLed server must surface as a request error the driver can
     retry, not a silent SIGPIPE death mid-write *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let get k d = soak_arg rest k d in
  let socket = get "--socket" "/tmp/dse_soak.sock" in
  let sessions = int_of_string (get "--sessions" "4") in
  if List.mem "--drive" rest then
    soak_drive ~socket ~sessions
      ~iters:(int_of_string (get "--iters" "50"))
      ~seed:(int_of_string (get "--seed" "1"))
      ~pace_ms:(float_of_string (get "--pace" "0"))
  else if List.mem "--settle" rest then
    soak_settle ~socket ~sessions ~out:(get "--out" "settle.json")
  else if List.mem "--verify" rest then
    soak_verify ~dir:(get "--dir" "") ~settle_file:(get "--settle-file" "")
      ~out:(get "--out" "chaos_report.json")
      ~max_resume_ms:(float_of_string (get "--max-resume-ms" "2000"))
  else begin
    Printf.eprintf "soak: one of --drive | --settle | --verify is required\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig12", fig12);
    ("fig13", fig13);
    ("casestudy", casestudy);
    ("coproc", coproc);
    ("ablation", ablation);
    ("organize", organize);
    ("power", power);
    ("radix", radix_sweep);
    ("scale", scale);
    ("techsweep", techsweep);
    ("mpeg", mpeg);
    ("estimator", estimator);
    ("platforms", platforms);
    ("micro", micro);
  ]

let () =
  match Array.to_list Sys.argv with
  (* [micro --json [--smoke]]: the incremental-pruning baseline, written
     to BENCH_PR2.json (--smoke: small sizes, for CI) *)
  | _ :: "micro" :: rest when List.mem "--json" rest ->
    micro_json ~smoke:(List.mem "--smoke" rest) ()
  (* [serve --json [--smoke]]: the exploration-service bench, written
     to BENCH_PR3.json (--smoke: fewer iterations, for CI) *)
  | _ :: "serve" :: rest when List.mem "--json" rest ->
    serve_json ~smoke:(List.mem "--smoke" rest) ()
  (* [obs --json [--smoke]]: telemetry-overhead comparison (tracing on
     vs off over the serve bench), written to BENCH_PR5.json *)
  | _ :: "obs" :: rest when List.mem "--json" rest ->
    obs_json ~smoke:(List.mem "--smoke" rest) ()
  (* [sweep --json [--smoke]]: the columnar-sweep bench on generated
     10^5/10^6-core layers, written to BENCH_PR7.json (--smoke: 10^5
     only, for CI) *)
  | _ :: "sweep" :: rest when List.mem "--json" rest ->
    sweep_json ~smoke:(List.mem "--smoke" rest) ()
  (* [fleet --json [--smoke]]: the sharded-fleet bench (router + 4
     worker processes, SIGKILL mid-drive, pipeline depth sweep),
     written to BENCH_PR9.json *)
  | _ :: "fleet" :: rest when List.mem "--json" rest ->
    fleet_json ~smoke:(List.mem "--smoke" rest) ()
  (* [obs-fleet --json [--smoke]]: distributed-tracing overhead over
     the depth-16 pipelined fleet (DSE_TELEMETRY off vs on), written
     to BENCH_PR10.json *)
  | _ :: "obs-fleet" :: rest when List.mem "--json" rest ->
    obs_fleet_json ~smoke:(List.mem "--smoke" rest) ()
  (* hidden: one fleet worker process (execed by the bench's own
     supervisor — not a user entry point) *)
  | _ :: "fleet-worker" :: rest -> fleet_worker rest
  (* hidden: the fleet router in its own process (avoids sharing a
     runtime lock with the driver threads on small boxes) *)
  | _ :: "fleet-router" :: rest -> fleet_router rest
  (* hidden: one shard of the fleet bench's client load *)
  | _ :: "fleet-drive" :: rest -> fleet_drive rest
  (* [soak --drive|--settle|--verify ...]: the crash-recovery chaos
     gate; see scripts/chaos_soak.sh for the full orchestration *)
  | _ :: "soak" :: rest -> soak rest
  | [] | [ _ ] -> List.iter (fun (_, run) -> run ()) experiments
  | _ :: picks ->
    List.iter
      (fun pick ->
        match List.assoc_opt pick experiments with
        | Some run -> run ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" pick
            (String.concat " " (List.map fst experiments));
          exit 1)
      picks
