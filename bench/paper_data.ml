(* Values reported in the paper, for side-by-side printing.

   The source text of the paper available to this reproduction is an
   OCR'd copy whose Table 1 is partially garbled (columns of different
   designs are interleaved).  Cells below were reconstructed by reading
   the column groups against the text's cross-references (e.g. the CC2
   relation 2*EOL/R + 1 ties latency to clock; Fig 12's point labels tie
   design numbers to w=64 areas).  Unreadable or ambiguous cells are
   [None]; EXPERIMENTS.md documents the reconstruction rules.  All
   hardware numbers are for the 0.35u standard-cell library; latency and
   clock in ns, area in um2 (Table 1 is characterised at EOL = slice
   width). *)

type cell = { area : float option; latency : float option; clock : float option }

let c a l k = { area = Some a; latency = Some l; clock = Some k }
let partial ?area ?latency ?clock () = { area; latency; clock }

(* design -> (slice width -> cell) *)
let table1 : (int * (int * cell) list) list =
  [
    ( 1,
      [
        (8, c 5436. 25. 2.73);
        (16, c 8872. 62. 3.64);
        (32, c 17420. 138. 4.17);
        (64, c 34491. 351. 5.40);
        (128, c 63897. 844. 6.54);
      ] );
    ( 2,
      [
        (8, c 6307. 27. 2.37);
        (16, c 12477. 45. 2.33);
        (32, c 21554. 92. 2.55);
        (64, c 37299. 175. 2.60);
        (128, c 77905. 388. 2.96);
      ] );
    ( 3,
      [
        (8, c 7433. 38. 4.21);
        (16, c 12265. 45. 4.93);
        (32, c 23987. 106. 6.18);
        (64, c 47533. 262. 7.91);
        (128, c 96106. 661. 10.16);
      ] );
    ( 4,
      [
        (8, c 9912. 37. 3.33);
        (16, c 16969. 41. 3.72);
        (32, c 34142. 78. 4.10);
        (64, c 67106. 166. 4.60);
        (128, c 122439. 372. 5.63);
      ] );
    ( 5,
      [
        (8, c 9075. 38. 3.39);
        (16, c 14359. 38. 3.39);
        (32, c 24398. 67. 3.52);
        (64, c 46604. 138. 3.81);
        (128, c 85735. 295. 4.53);
      ] );
    ( 6,
      [
        (8, c 8013. 35. 3.84);
        (16, c 11939. 40. 4.43);
        (32, c 18983. 86. 5.07);
        (64, c 34391. 201. 6.08);
        (128, partial ~latency:499. ~clock:7.67 ());
      ] );
    ( 7,
      [
        (8, c 7326. 71. 3.93);
        (16, c 12300. 113. 4.33);
        (32, c 23370. 217. 5.16);
        (64, partial ~area:37829. ~latency:472. ~clock:6.37 ());
        (128, partial ~latency:1031. ~clock:7.47 ());
      ] );
    ( 8,
      [
        (8, c 10433. 72. 3.78);
        (16, c 16927. 120. 4.30);
        (32, c 26303. 195. 4.42);
        (64, c 49296. 313. 4.17);
        (128, partial ~area:69751. ());
      ] );
  ]

let table1_cell ~design_no ~slice_width =
  Option.bind (List.assoc_opt design_no table1) (List.assoc_opt slice_width)

(* Fig 6: execution delay of one 1024-bit modular multiplication, us.
   The figure lists two CIHS-ASM values; following the surrounding text
   of [12] we read them as the CIOS and CIHS assembler routines. *)
let fig6_hardware_us = [ ("#5_16", 1.96); ("#2_128", 1.96); ("#8_64", 4.32) ]
let fig6_software_us =
  [ ("CIOS-ASM", 799.0); ("CIHS-ASM", 1037.0); ("CIOS-C", 5706.0); ("CIHS-C", 7268.0) ]

(* Fig 9 (768-bit operands): the claim to reproduce is qualitative —
   Montgomery (#2) beats Brickell (#8) on both axes at every slicing,
   with areas spanning roughly 0.4-1.1 Mum2 and delays 1600-3600 ns. *)
let fig9_area_band = (4.0e5, 1.1e6)
let fig9_delay_band = (1600.0, 3600.0)

(* Fig 12 (EOL 64, 64-bit slices): reported point coordinates, read off
   the plot (area um2, delay ns). *)
let fig12_points =
  [
    ("#1_64", (34491.0, 351.0));
    ("#2_64", (37299.0, 175.0));
    ("#3_64", (47533.0, 262.0));
    ("#4_64", (67106.0, 166.0));
    ("#5_64", (46604.0, 138.0));
    ("#6_64", (34391.0, 201.0));
  ]

(* The case study's outcome (Section 5): with the [11] requirements the
   exploration must (a) eliminate software on the 8us budget, (b) land
   on Montgomery, and (c) keep only carry-save / mux-based families
   (designs #2 and #5). *)
let case_study_surviving_designs = [ 2; 5 ]
