(* Section 2's IDCT illustration: why design space layers should be
   organised by generalization/specialization rather than strictly by
   abstraction level.

   Five IDCT cores populate two alternative layers over the same design
   space.  Clustering the evaluation space recovers Fig 3's groups
   {1,2,5} / {3,4}; exploring both layers shows that the organisation
   whose first issue separates those clusters gives the designer
   coherent guidance, while the abstraction-first one does not.

   Run with: dune exec examples/idct_explorer.exe *)

open Ds_layer
module Idct = Ds_domains.Idct_layer
module N = Ds_domains.Names

let printf = Printf.printf

let () =
  printf "== the five IDCT cores (Fig 2) ==\n";
  List.iter
    (fun (_, core) ->
      printf "  %-6s algorithm=%-9s technology=%-6s delay=%5.0fns area=%6.0fum2\n"
        core.Ds_reuse.Core.name
        (Option.value ~default:"?" (Ds_reuse.Core.property core Idct.algorithm_issue))
        (Option.value ~default:"?" (Ds_reuse.Core.property core Idct.technology_issue))
        (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_latency_ns))
        (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_area_um2)))
    Idct.cores;

  (* Fig 3(b): the evaluation space splits into two natural clusters. *)
  let points = Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 Idct.cores in
  (match Cluster.suggest_split points with
  | Some (a, b) ->
    let names c = String.concat ", " (List.map (fun p -> p.Evaluation.label) c) in
    printf "\nevaluation-space clusters (Fig 3b): {%s} vs {%s}\n" (names a) (names b);
    printf "cluster separation strength (merge-gap ratio): %.2f\n"
      (Cluster.silhouette_gap points)
  | None -> ());

  (* The two layer organisations. *)
  printf "\n== generalization-first organisation (Fig 3) ==\n";
  Format.printf "%a@." Hierarchy.pp_tree Idct.generalization_first;
  printf "== abstraction-first organisation (Fig 2a) ==\n";
  Format.printf "%a@." Hierarchy.pp_tree Idct.abstraction_first;

  (* Quantify Section 2.1's argument: make the first decision toward
     the fastest core in both layers and compare how informative the
     surviving family is. *)
  printf "== first-decision quality ==\n";
  printf "%-32s %-8s %5s %14s %14s\n" "organisation" "choice" "cores" "delay spread" "area spread";
  List.iter
    (fun r ->
      printf "%-32s %-8s %5d %14.2f %14.2f\n" r.Idct.organisation r.Idct.option_chosen
        r.Idct.candidates_left r.Idct.delay_spread r.Idct.area_spread)
    (Idct.first_decision_report ());
  printf
    "\nThe generalization-first layer's first decision lands in one cluster\n\
     (tight ranges); the abstraction-first layer keeps designs from both\n\
     clusters (designs 1 and 4 implement the same algorithm in different\n\
     technologies), so its ranges say almost nothing -- Section 2.1's point.\n"
