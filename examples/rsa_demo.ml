(* From exploration to execution: select a modular-multiplier core with
   the design space layer, then actually run RSA through a cycle-level
   simulation of the selected datapath.

   This closes the loop the paper motivates: the layer picks a design
   space region (Montgomery, carry-save, mux-based multipliers); we
   instantiate that configuration in the ds_rtl substrate, verify it
   bit-for-bit on the application's real workload, and report the
   performance the characterisation promises.

   Run with: dune exec examples/rsa_demo.exe *)

open Ds_layer
module CL = Ds_domains.Crypto_layer
module N = Ds_domains.Names
module Nat = Ds_bignum.Nat
module D = Ds_rtl.Modmul_datapath

let printf = Printf.printf
let ok = function Ok v -> v | Error e -> failwith e

(* Keep the simulated part small: a 256-bit key exercises exactly the
   same datapath logic as a 768-bit one at a fraction of the runtime. *)
let key_bits = 256

let () =
  (* 1. Exploration: reuse the case-study session at the demo's operand
     length, with a latency budget scaled accordingly. *)
  let registry = Ds_domains.Populate.standard_registry ~eol:key_bits () in
  let s = CL.session ~cores:(Ds_reuse.Registry.all_cores registry) in
  let s = ok (CL.navigate_to_omm s) in
  let reqs =
    List.map
      (fun (name, v) ->
        if String.equal name N.effective_operand_length then (name, Value.int key_bits)
        else (name, v))
      CL.coprocessor_requirements
  in
  let s = ok (CL.apply_requirements s reqs) in
  let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
  let s = ok (Session.set s N.algorithm (Value.str N.montgomery)) in
  let candidates = Session.candidates s in
  printf "exploration left %d candidate cores; picking the fastest:\n" (List.length candidates);
  let best =
    match
      List.sort
        (fun (_, a) (_, b) ->
          Float.compare
            (Option.value ~default:infinity (Ds_reuse.Core.merit a N.m_latency_ns))
            (Option.value ~default:infinity (Ds_reuse.Core.merit b N.m_latency_ns)))
        candidates
    with
    | (qid, core) :: _ ->
      printf "  %s (design #%s, %s-bit slices)\n" qid
        (Option.value ~default:"?" (Ds_reuse.Core.property core N.p_design_no))
        (Option.value ~default:"?" (Ds_reuse.Core.property core N.slice_width));
      core
    | [] -> failwith "no candidates survived"
  in

  (* 2. Instantiate the selected configuration in the RTL substrate. *)
  let design_no = int_of_string (Option.get (Ds_reuse.Core.property best N.p_design_no)) in
  let slice_width = int_of_string (Option.get (Ds_reuse.Core.property best N.slice_width)) in
  let cfg = Ds_rtl.Modmul_design.design design_no ~slice_width in
  let char = D.characterize cfg ~eol:key_bits in
  printf "\nselected datapath characterisation at %d bits:\n" key_bits;
  Format.printf "  %a@." D.pp_characterization char;

  (* 3. Generate an RSA key and run the datapath on the real workload. *)
  let g = Ds_bignum.Prng.create 20260704 in
  let key = Ds_bignum.Rsa.generate g ~bits:key_bits in
  printf "\nRSA key: n has %d bits, e = %s\n"
    (Nat.num_bits key.Ds_bignum.Rsa.modulus)
    (Nat.to_string key.Ds_bignum.Rsa.public_exponent);

  let n = key.Ds_bignum.Rsa.modulus in
  let hw_modmul a b =
    match D.modmul cfg ~eol:key_bits ~a ~b ~modulus:n with
    | Ok v -> v
    | Error e -> failwith ("datapath error: " ^ e)
  in
  (* Square-and-multiply where every modular multiplication goes through
     the cycle-level simulation of the selected core. *)
  let hw_modexp base exponent =
    let nbits = Nat.num_bits exponent in
    let rec go acc sq i =
      if i >= nbits then acc
      else begin
        let acc = if Nat.bit exponent i then hw_modmul acc sq else acc in
        go acc (hw_modmul sq sq) (i + 1)
      end
    in
    go Nat.one (Nat.rem base n) 0
  in

  let message = Ds_bignum.Prng.nat_below g n in
  printf "message:    %s...\n" (String.sub (Nat.to_hex message) 0 16);
  let ciphertext = hw_modexp message key.Ds_bignum.Rsa.public_exponent in
  printf "ciphertext: %s... (every multiplication simulated on the core)\n"
    (String.sub (Nat.to_hex ciphertext) 0 16);

  (* Cross-check against the pure bignum implementation. *)
  let expected = Ds_bignum.Rsa.encrypt key message in
  printf "matches the bignum reference: %b\n" (Nat.equal ciphertext expected);
  let decrypted = Ds_bignum.Rsa.decrypt key ciphertext in
  printf "decrypts back to the message: %b\n" (Nat.equal decrypted message);

  (* 4. Performance story: what the characterisation predicts for the
     whole encryption on this core. *)
  let mults = Ds_bignum.Rsa.modexp_operation_count key ~bits:(Nat.num_bits key.Ds_bignum.Rsa.public_exponent) in
  printf "\npredicted: %.2f us per multiplication, ~%d multiplications for e\n"
    (char.D.char_latency_ns /. 1000.0) mults;
  printf "predicted encryption latency: %.1f us\n"
    (char.D.char_latency_ns *. float_of_int mults /. 1000.0);
  let sw_us = Ds_swmodel.Pentium.modmul_time_us Ds_swmodel.Mont_variants.Cios Ds_swmodel.Pentium.Assembler ~bits:key_bits in
  printf "the best software routine needs %.0f us per multiplication: %.0fx slower\n" sw_us
    (sw_us /. (char.D.char_latency_ns /. 1000.0))
