(* The second domain end to end: selecting a 2-D IDCT core for an
   MPEG-2 decoder.

   The paper's introduction motivates the layer with "IDCT blocks,
   MPEG II encoders/decoders"; this example runs that scenario on the
   video layer: MPEG-2 main-level requirements (block rate, IEEE
   1180-style precision), the structure split (row-column vs direct),
   per-option previews, a concrete selection — and then the selected
   configuration actually decodes a block, with its conformance report.

   Run with: dune exec examples/video_explorer.exe *)

open Ds_layer
module V = Ds_domains.Video_layer
module N = Ds_domains.Names

let printf = Printf.printf
let ok = function Ok v -> v | Error e -> failwith e

let () =
  printf "== the 2-D IDCT subsystem layer ==\n";
  Format.printf "%a@." Hierarchy.pp_tree V.hierarchy;

  let s = V.session () in
  printf "population: %d cores (all merits derived from the ds_media models)\n\n"
    (Session.candidate_count s);

  printf "MPEG-2 main level requirements:\n";
  List.iter
    (fun (name, v) -> printf "  %-12s = %s\n" name (Value.to_string v))
    V.mpeg2_main_level_requirements;
  let s =
    List.fold_left (fun s (n, v) -> ok (Session.set s n v)) s V.mpeg2_main_level_requirements
  in
  printf "surviving the block-rate and precision constraints: %d cores\n\n"
    (Session.candidate_count s);

  printf "previewing the Transform Structure split:\n";
  (match Session.preview_options s ~issue:V.di_structure ~merit:V.m_blocks_per_second with
  | Ok previews ->
    List.iter
      (fun pv ->
        match pv.Session.outcome with
        | `Explored (n, Some (lo, hi)) ->
          printf "  %-11s -> %2d cores, %.2e..%.2e blocks/s\n" pv.Session.option_value n lo hi
        | `Explored (n, None) -> printf "  %-11s -> %2d cores\n" pv.Session.option_value n
        | `Rejected reason -> printf "  %-11s rejected: %s\n" pv.Session.option_value reason)
      previews
  | Error e -> printf "  %s\n" e);

  let s = ok (Session.set s V.di_structure (Value.str "row-column")) in
  let s = ok (Session.set s V.di_algorithm (Value.str "lee")) in
  let s = ok (Session.set s V.di_parallelism (Value.str "1")) in
  let s = ok (Session.set s V.di_fraction_bits (Value.str "16")) in
  printf "\ndecided: row-column / lee / one MAC / 16 fraction bits\n";
  (match Session.candidates s with
  | [ (qid, core) ] ->
    printf "selected core: %s (%.0f blocks/s, area %.0f um2)\n" qid
      (Option.value ~default:nan (Ds_reuse.Core.merit core V.m_blocks_per_second))
      (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_area_um2))
  | cores -> printf "(%d candidates left)\n" (List.length cores));

  (* The estimator context gives the achieved precision for the width. *)
  List.iter
    (fun (tool, metrics) ->
      List.iter (fun (m, v) -> printf "%s: %s = %.0f\n" tool m v) metrics)
    (Session.estimates s);

  (* Run the selected fixed-point configuration on a real block. *)
  printf "\n== functional check of the selected configuration ==\n";
  let block =
    Array.init 8 (fun i ->
        Array.init 8 (fun j -> float_of_int (((i * 31) + (j * 17) + 7) mod 201 - 100)))
  in
  let coeffs = Ds_media.Idct_fast.dct_2d block in
  let rounded = Array.map (Array.map Float.round) coeffs in
  let reference = Ds_media.Idct_fast.idct_2d rounded in
  let decoded = Ds_media.Conformance.fixed_point_idct ~frac_bits:16 rounded in
  let worst = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> worst := Float.max !worst (Float.abs (v -. reference.(i).(j))))
        row)
    decoded;
  printf "decoded an 8x8 block: worst pixel error %.4f against the reference\n" !worst;

  let verdict = Ds_media.Conformance.test ~trials:200 (Ds_media.Conformance.fixed_point_idct ~frac_bits:16) in
  printf "IEEE 1180-style conformance at 16 fraction bits: %s\n"
    (if verdict.Ds_media.Conformance.compliant then "PASS" else "FAIL");
  List.iter (fun f -> printf "  %s\n" f) verdict.Ds_media.Conformance.failures;
  match Ds_media.Conformance.minimal_compliant_fraction_bits ~trials:200 () with
  | Some fb -> printf "minimal compliant width: %d fraction bits\n" fb
  | None -> printf "no compliant width found\n"
