(* The paper's Section 5 case study, end to end.

   A modular-multiplication core must be selected for the modular
   exponentiation coprocessor of Royo et al. [11]: 768-bit operands,
   one multiplication in at most 8 microseconds, modulo guaranteed odd.
   The cryptography design space layer walks the generalization
   hierarchy, fires CC1-CC6, and leaves the Montgomery carry-save /
   mux-multiplier family — the same region the paper reaches.

   Run with: dune exec examples/crypto_explorer.exe *)

open Ds_layer
module CL = Ds_domains.Crypto_layer
module N = Ds_domains.Names

let printf = Printf.printf
let ok = function Ok v -> v | Error e -> failwith e

let show session step =
  printf "\n-- %s --\n" step;
  printf "focus: %s   candidates: %d\n"
    (String.concat "." (Session.focus session))
    (Session.candidate_count session);
  List.iter
    (fun merit ->
      match Session.merit_range session ~merit with
      | Some (lo, hi) -> printf "  %-12s %10.1f .. %10.1f\n" merit lo hi
      | None -> ())
    [ N.m_latency_ns; N.m_area_um2 ]

let () =
  printf "== the cryptography design space layer (Figs 5 and 7) ==\n";
  Format.printf "%a@." Hierarchy.pp_tree CL.hierarchy;

  printf "== consistency constraints (Fig 13) ==\n";
  List.iter (fun cc -> Format.printf "%a@." Consistency.pp cc) CL.constraints;

  let registry = Ds_domains.Populate.standard_registry ~eol:768 () in
  let cores = Ds_reuse.Registry.all_cores registry in
  printf "reuse libraries: %s (%d cores total)\n"
    (String.concat ", "
       (List.map (fun l -> l.Ds_reuse.Library.name) (Ds_reuse.Registry.libraries registry)))
    (List.length cores);

  let s = CL.session ~cores in
  let s = ok (CL.navigate_to_omm s) in
  show s "focused on Operator-Modular-Multiplier (OMM)";

  (* Fig 8: enter the requirement values from the coprocessor spec. *)
  printf "\nentering requirements (Fig 8):\n";
  List.iter
    (fun (name, v) -> printf "  %-28s = %s\n" name (Value.to_string v))
    CL.coprocessor_requirements;
  let s = ok (CL.apply_requirements s CL.coprocessor_requirements) in
  show s "after requirements: CC6 eliminated every software routine";

  (* Before deciding, preview what each option of DI1 would leave — the
     layer's trade-off guidance. *)
  printf "\npreviewing Implementation Style (what-if):\n";
  (match Session.preview_options s ~issue:N.implementation_style ~merit:N.m_latency_ns with
  | Error e -> printf "  preview failed: %s\n" e
  | Ok previews ->
    List.iter
      (fun pv ->
        match pv.Session.outcome with
        | `Explored (n, Some (lo, hi)) ->
          printf "  %-10s -> %2d candidates, latency %.0f..%.0f ns\n" pv.Session.option_value n
            lo hi
        | `Explored (n, None) ->
          printf "  %-10s -> %2d candidates (no data: the budget removed them all)\n"
            pv.Session.option_value n
        | `Rejected reason -> printf "  %-10s -> rejected: %s\n" pv.Session.option_value reason)
      previews);

  (* DI1: the latency budget forces hardware. *)
  let s = ok (Session.set s N.implementation_style (Value.str N.hardware)) in
  show s "after Implementation Style := hardware (descends to OMM-H)";

  (* DI2: Montgomery is allowed because the modulo is guaranteed odd
     (CC1); CC4 and CC5 then eliminate the inferior adder/multiplier
     combinations. *)
  let s = ok (Session.set s N.algorithm (Value.str N.montgomery)) in
  show s "after Algorithm := Montgomery (descends to OMM-HM; CC4/CC5 fire)";

  printf "\nsurviving cores (Montgomery, carry-save, mux-based only):\n";
  List.iter
    (fun (qid, core) ->
      printf "  %-18s design #%s  latency %8.1f ns  area %9.0f um2\n" qid
        (Option.value ~default:"?" (Ds_reuse.Core.property core N.p_design_no))
        (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_latency_ns))
        (Option.value ~default:nan (Ds_reuse.Core.merit core N.m_area_um2)))
    (Session.candidates s);

  (* CC2 derives the cycle count once the radix is fixed. *)
  let s = ok (Session.set_default s N.radix) in
  (match Session.value_of s N.latency_cycles with
  | Some v -> printf "\nCC2 derived: %s = %s cycles (2*EOL/R + 1)\n" N.latency_cycles (Value.to_string v)
  | None -> ());

  (* CC3's estimator context is live once a behavioral description is
     selected: useful when no core fits. *)
  let s = ok (Session.set_default s N.behavioral_description) in
  List.iter
    (fun (tool, metrics) ->
      printf "%s:\n" tool;
      List.iter (fun (metric, v) -> printf "  %-14s %.2f\n" metric v) metrics)
    (Session.estimates s);

  (* Pick the Pareto-best core by latency. *)
  let points = Evaluation.of_cores ~x:N.m_latency_ns ~y:N.m_area_um2 (Session.candidates s) in
  printf "\nPareto front (latency vs area):\n";
  List.iter (fun p -> Format.printf "  %a@." Evaluation.pp_point p) (Evaluation.pareto_front points);

  printf "\n== full session trace ==\n";
  Format.printf "%a@." Session.pp_trace s
