(* Quickstart: build a design space layer from scratch.

   We model a tiny "Adder" class of design objects (the paper's running
   micro-example in Section 2): a generalized design issue splits the
   space by logic style, a reuse library contributes four cores, and an
   exploration session prunes the space while reporting merit ranges.

   Run with: dune exec examples/quickstart.exe *)

open Ds_layer

let printf = Printf.printf

(* 1. Declare the properties: one requirement, one generalized design
   issue, one plain design issue. *)

let width_req =
  Property.requirement ~name:"Width" ~domain:(Domain.Int_range { lo = Some 1; hi = None })
    ~unit_:"bits" ~doc:"operand width the application needs" ()

let logic_style =
  Property.design_issue ~generalized:true ~name:"Logic Style"
    ~domain:(Domain.enum [ "ripple-carry"; "carry-look-ahead" ])
    ~doc:"the dominant speed/area trade-off for adders" ()

let layout_style =
  Property.design_issue ~name:"Layout Style"
    ~domain:(Domain.enum [ "standard-cell"; "gate-array" ])
    ()

(* 2. Organise them into a CDO hierarchy: the generalized issue's
   options become specializations. *)

let hierarchy =
  Hierarchy.create_exn
    (Cdo.node_exn ~name:"Adder" ~abbrev:"ADD" ~doc:"all feasible adder implementations"
       [ width_req ]
       ~issue:logic_style
       ~children:
         [
           ("ripple-carry", Cdo.leaf_exn ~name:"ripple-carry" [ layout_style ]);
           ("carry-look-ahead", Cdo.leaf_exn ~name:"carry-look-ahead" [ layout_style ]);
         ])

(* 3. Populate a reuse library.  Each core binds the design issues that
   apply to it and carries figures of merit. *)

let core name style layout delay area =
  Ds_reuse.Core.make_exn ~id:name ~name ~provider:"quickstart-vendor"
    ~kind:Ds_reuse.Core.Hard_core
    ~properties:[ ("Logic Style", style); ("Layout Style", layout) ]
    ~merits:[ ("delay-ns", delay); ("area-um2", area) ]
    ()

let library =
  Ds_reuse.Library.make_exn ~name:"adder-lib"
    [
      core "rc-sc" "ripple-carry" "standard-cell" 12.0 400.0;
      core "rc-ga" "ripple-carry" "gate-array" 15.0 520.0;
      core "cla-sc" "carry-look-ahead" "standard-cell" 4.5 980.0;
      core "cla-ga" "carry-look-ahead" "gate-array" 5.6 1300.0;
    ]

(* 4. Explore. *)

let show_state label session =
  printf "%s\n" label;
  printf "  focus:      %s\n" (String.concat "." (Session.focus session));
  printf "  candidates: %d\n" (Session.candidate_count session);
  List.iter
    (fun merit ->
      match Session.merit_range session ~merit with
      | Some (lo, hi) -> printf "  %-10s %.1f .. %.1f\n" merit lo hi
      | None -> ())
    [ "delay-ns"; "area-um2" ]

let () =
  let registry = Ds_reuse.Registry.register_exn Ds_reuse.Registry.empty library in
  let session =
    Session.create ~hierarchy ~cores:(Ds_reuse.Registry.all_cores registry) ()
  in
  printf "== the adder design space layer ==\n";
  Format.printf "%a@." Hierarchy.pp_tree hierarchy;

  show_state "-- before any decision --" session;

  (* Enter the requirement from the spec. *)
  let session =
    match Session.set session "Width" (Value.int 32) with
    | Ok s -> s
    | Error e -> failwith e
  in

  (* Decide the generalized issue: the focus descends and the space is
     pruned to the chosen family. *)
  let session =
    match Session.set session "Logic Style" (Value.str "carry-look-ahead") with
    | Ok s -> s
    | Error e -> failwith e
  in
  show_state "-- after choosing carry-look-ahead --" session;

  (* Decide the remaining issue; a single core survives. *)
  let session =
    match Session.set session "Layout Style" (Value.str "standard-cell") with
    | Ok s -> s
    | Error e -> failwith e
  in
  show_state "-- after choosing standard-cell --" session;
  List.iter (fun (qid, _) -> printf "  selected: %s\n" qid) (Session.candidates session);

  (* The session documents itself. *)
  printf "\n== session trace ==\n";
  Format.printf "%a@." Session.pp_trace session
