(* Top-down exploration: from the coprocessor to its critical block.

   Section 6 of the paper: "this exploration could have been part of the
   design space exploration performed for the main architectural
   component, i.e., the modular exponentiation coprocessor.  The exact
   same behavioral/structural decomposition mechanisms ... would have
   supported the transition between the conceptual design of the main
   architectural component and the conceptual design of its critical
   blocks."

   This example runs that transition: explore the exponentiator CDO
   (throughput target, exponent recoding), let CC7/CC8 derive the
   per-multiplication latency budget, hand the derived requirements to a
   fresh multiplier session, finish the selection there, and finally
   characterise the assembled coprocessor to confirm the top-level
   target is met.

   Run with: dune exec examples/coproc_explorer.exe *)

open Ds_layer
module CL = Ds_domains.Crypto_layer
module N = Ds_domains.Names
module ME = Ds_rtl.Modexp_datapath

let printf = Printf.printf
let ok = function Ok v -> v | Error e -> failwith e

let () =
  let registry = Ds_domains.Populate.standard_registry ~eol:768 () in
  let cores = Ds_reuse.Registry.all_cores registry in

  (* --- Level 1: the coprocessor (OME) ------------------------------- *)
  printf "== level 1: the modular-exponentiation coprocessor (OME) ==\n";
  let s = ok (CL.navigate_to_exponentiator (CL.session ~cores)) in
  let s = ok (Session.set s N.effective_operand_length (Value.int 768)) in
  let s = ok (Session.set s N.exponent_length (Value.int 768)) in
  let s = ok (Session.set s N.operations_per_second (Value.real 100.0)) in
  printf "requirements: 768-bit operands and exponents, >= 100 exponentiations/s\n";

  (* Compare the recoding options before deciding. *)
  List.iter
    (fun recoding ->
      match Session.set s N.exponent_recoding (Value.str recoding) with
      | Error e -> printf "  %-10s rejected: %s\n" recoding e
      | Ok s' ->
        let get name = Option.map Value.to_string (Session.value_of s' name) in
        printf "  %-10s -> %s multiplications/op, budget %s us each\n" recoding
          (Option.value ~default:"?" (get N.multiplications_per_operation))
          (Option.value ~default:"?" (get N.multiplication_budget)))
    [ "binary"; "window-2"; "window-4" ];

  let s = ok (Session.set s N.exponent_recoding (Value.str "binary")) in
  printf "decided: binary recoding (no table storage)\n";

  (* --- The decomposition hand-off ----------------------------------- *)
  let reqs = ok (CL.multiplier_requirements_from_exponentiator s) in
  printf "\n== behavioral decomposition: derived requirements for the multiplier ==\n";
  List.iter (fun (name, v) -> printf "  %-28s = %s\n" name (Value.to_string v)) reqs;

  (* --- Level 2: the multiplier (OMM) -------------------------------- *)
  printf "\n== level 2: the modular multiplier (OMM) under the derived budget ==\n";
  let m = ok (CL.navigate_to_omm (CL.session ~cores)) in
  let m = ok (CL.apply_requirements m reqs) in
  printf "candidates after requirements: %d (software eliminated by the budget)\n"
    (Session.candidate_count m);
  let m = ok (Session.set m N.implementation_style (Value.str N.hardware)) in
  let m = ok (Session.set m N.algorithm (Value.str N.montgomery)) in
  let best_label, best_core =
    match
      List.sort
        (fun (_, a) (_, b) ->
          Float.compare
            (Option.value ~default:infinity (Ds_reuse.Core.merit a N.m_latency_ns))
            (Option.value ~default:infinity (Ds_reuse.Core.merit b N.m_latency_ns)))
        (Session.candidates m)
    with
    | best :: _ -> best
    | [] -> failwith "no candidates"
  in
  printf "selected core: %s (%.2f us per multiplication)\n" best_label
    (Option.value ~default:nan (Ds_reuse.Core.merit best_core N.m_latency_ns) /. 1000.0);

  (* --- Close the loop: assemble and verify the coprocessor ---------- *)
  printf "\n== assembled coprocessor characterisation ==\n";
  let design_no = int_of_string (Option.get (Ds_reuse.Core.property best_core N.p_design_no)) in
  let slice_width = int_of_string (Option.get (Ds_reuse.Core.property best_core N.slice_width)) in
  let coproc =
    {
      ME.multiplier = Ds_rtl.Modmul_design.design design_no ~slice_width;
      recoding = ME.Binary;
      bus_width = 32;
    }
  in
  let ch = ME.characterize coproc ~eol:768 ~exp_bits:768 in
  printf "latency %.1f us/exponentiation -> %.0f operations/s (target was 100)\n"
    ch.ME.coproc_latency_us ch.ME.ops_per_second;
  printf "area %.0f um2 (%.0f gate equivalents)\n" ch.ME.coproc_area_um2 ch.ME.gates;
  printf "target met: %b\n" (ch.ME.ops_per_second >= 100.0);

  (* And functionally: run a real (small) exponentiation through the
     assembled datapath. *)
  let g = Ds_bignum.Prng.create 7 in
  let m64 =
    let m = Ds_bignum.Prng.nat_bits g 64 in
    if Ds_bignum.Nat.is_even m then Ds_bignum.Nat.succ m else m
  in
  let base = Ds_bignum.Prng.nat_below g m64 in
  let exponent = Ds_bignum.Prng.nat_bits g 24 in
  let small_coproc = { coproc with ME.multiplier = Ds_rtl.Modmul_design.design design_no ~slice_width:16 } in
  (match ME.simulate small_coproc ~eol:64 ~base ~exponent ~modulus:m64 with
  | Ok (value, mults) ->
    printf "\nfunctional check (64-bit scale): %d multiplications, result %s\n" mults
      (if Ds_bignum.Nat.equal value (Ds_bignum.Nat.mod_pow base exponent m64) then "correct"
       else "WRONG");
  | Error e -> printf "simulation failed: %s\n" e)
