module Value = Ds_layer.Value

type request =
  | Open of { session : string option; layer : string; eol : int option; resume : bool }
  | Set of { session : string; name : string; value : Value.t; decide : bool }
  | Default of { session : string; name : string }
  | Retract of { session : string; name : string }
  | Annotate of { session : string; text : string }
  | Candidates of { session : string; max : int option }
  | Ranges of { session : string; merits : string list option }
  | Issues of { session : string }
  | Preview of { session : string; issue : string; merit : string option }
  | Script of { session : string }
  | Trace of { session : string; spans : bool; since : int option; max_spans : int option }
  | Health of { session : string }
  | Signature of { session : string }
  | Report of { session : string; title : string option }
  | Branch of { session : string; as_id : string option }
  | Compact of { session : string }
  | Close of { session : string }
  | Stats
  | Metrics of { format : string option }
  | Healthz
  | Batch of { session : string; reqs : request list }

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_op
  | Unknown_layer
  | Unknown_session
  | Session_exists
  | Rejected
  | Journal_error
  | Request_too_large
  | Response_too_large
  | Shutting_down
  | Session_unavailable
  | Server_error

type response = Reply of (string * Jsonx.t) list | Failed of error_code * string

let error_code_label = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_layer -> "unknown_layer"
  | Unknown_session -> "unknown_session"
  | Session_exists -> "session_exists"
  | Rejected -> "rejected"
  | Journal_error -> "journal_error"
  | Request_too_large -> "request_too_large"
  | Response_too_large -> "response_too_large"
  | Shutting_down -> "shutting_down"
  | Session_unavailable -> "session_unavailable"
  | Server_error -> "server_error"

let error_code_of_label = function
  | "parse_error" -> Some Parse_error
  | "bad_request" -> Some Bad_request
  | "unknown_op" -> Some Unknown_op
  | "unknown_layer" -> Some Unknown_layer
  | "unknown_session" -> Some Unknown_session
  | "session_exists" -> Some Session_exists
  | "rejected" -> Some Rejected
  | "journal_error" -> Some Journal_error
  | "request_too_large" -> Some Request_too_large
  | "response_too_large" -> Some Response_too_large
  | "shutting_down" -> Some Shutting_down
  | "session_unavailable" -> Some Session_unavailable
  | "server_error" -> Some Server_error
  | _ -> None

(* A retryable failure is one where the request may not have been
   applied and re-sending it (possibly after a backoff) is the right
   client move: the server is draining, or the fleet router lost the
   worker owning the session mid-flight and a restarted worker will
   resume it from its journal. *)
let retryable = function
  | Shutting_down | Session_unavailable -> true
  | Parse_error | Bad_request | Unknown_op | Unknown_layer | Unknown_session
  | Session_exists | Rejected | Journal_error | Request_too_large | Response_too_large
  | Server_error ->
    false

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

let json_of_value = function
  | Value.Str s -> Jsonx.Str s
  | Value.Int i -> Jsonx.Int i
  | Value.Real f -> Jsonx.Float f
  | Value.Flag b -> Jsonx.Bool b

let value_of_json = function
  | Jsonx.Str s -> Ok (Value.Str s)
  | Jsonx.Int i -> Ok (Value.Int i)
  | Jsonx.Float f when Float.is_finite f -> Ok (Value.Real f)
  | Jsonx.Float _ ->
    (* non-finite reals have no JSON form, so journaling one would
       break the encode/decode inverse that replay relies on *)
    Error "value must be a finite number"
  | Jsonx.Bool b -> Ok (Value.Flag b)
  | Jsonx.Null | Jsonx.List _ | Jsonx.Obj _ ->
    Error "value must be a string, number or boolean"

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)

let field name json = Jsonx.member name json

let str_field name json =
  match Jsonx.str_member name json with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let session_field json = str_field "session" json

let ( let* ) = Result.bind

(* Which ops may ride inside a batch: the session-scoped mutations and
   reads.  Lifecycle ops (open/branch/compact/close), server-global ops
   (stats/metrics/healthz/trace) and nested batches are excluded — a
   batch is "one session, one slot-lock hold, one group-commit", and
   those ops all acquire something else. *)
let batchable = function
  | Set _ | Default _ | Retract _ | Annotate _ | Candidates _ | Ranges _ | Issues _
  | Preview _ | Script _ | Health _ | Signature _ | Report _ ->
    true
  | Open _ | Trace _ | Branch _ | Compact _ | Close _ | Stats | Metrics _ | Healthz
  | Batch _ ->
    false

let request_session = function
  | Set { session; _ }
  | Default { session; _ }
  | Retract { session; _ }
  | Annotate { session; _ }
  | Candidates { session; _ }
  | Ranges { session; _ }
  | Issues { session }
  | Preview { session; _ }
  | Script { session }
  | Health { session }
  | Signature { session }
  | Report { session; _ }
  | Branch { session; _ }
  | Compact { session }
  | Close { session }
  | Batch { session; _ } ->
    Some session
  | Trace { session; spans; _ } -> if spans && String.equal session "" then None else Some session
  | Open { session; _ } -> session
  | Stats | Metrics _ | Healthz -> None

let batch_of_requests reqs =
  match reqs with
  | [] -> Error "batch requires a non-empty \"reqs\" array"
  | first :: _ -> (
    match request_session first with
    | None -> Error "batch sub-requests must be session-scoped"
    | Some session ->
      let rec check = function
        | [] -> Ok (Batch { session; reqs })
        | r :: rest ->
          if not (batchable r) then
            Error "batch sub-requests must be session-scoped mutations or reads"
          else if not (Option.equal String.equal (request_session r) (Some session)) then
            Error "batch sub-requests must all target the batch session"
          else check rest
      in
      check reqs)

let rec request_of_json json =
  let* op = str_field "op" json in
  match op with
  | "open" ->
    let resume =
      match Option.bind (field "resume" json) Jsonx.to_bool with
      | Some b -> b
      | None -> false
    in
    (* on resume the journal header is authoritative, so the layer may
       be omitted (encoded as "") *)
    let* layer =
      match Jsonx.str_member "layer" json with
      | Some l -> Ok l
      | None when resume -> Ok ""
      | None -> Error "missing or non-string field \"layer\""
    in
    let eol = Option.bind (field "eol" json) Jsonx.to_int in
    Ok (Open { session = Jsonx.str_member "session" json; layer; eol; resume })
  | "set" | "decide" ->
    let* session = session_field json in
    let* name = str_field "name" json in
    let* value =
      match field "value" json with
      | None -> Error "missing field \"value\""
      | Some v -> value_of_json v
    in
    Ok (Set { session; name; value; decide = String.equal op "decide" })
  | "default" ->
    let* session = session_field json in
    let* name = str_field "name" json in
    Ok (Default { session; name })
  | "retract" ->
    let* session = session_field json in
    let* name = str_field "name" json in
    Ok (Retract { session; name })
  | "annotate" ->
    let* session = session_field json in
    let* text = str_field "text" json in
    Ok (Annotate { session; text })
  | "candidates" ->
    let* session = session_field json in
    let max = Option.bind (field "max" json) Jsonx.to_int in
    Ok (Candidates { session; max })
  | "ranges" ->
    let* session = session_field json in
    let merits =
      match Option.bind (field "merits" json) Jsonx.to_list with
      | Some items -> Some (List.filter_map Jsonx.to_str items)
      | None -> None
    in
    Ok (Ranges { session; merits })
  | "issues" ->
    let* session = session_field json in
    Ok (Issues { session })
  | "preview" ->
    let* session = session_field json in
    let* issue = str_field "issue" json in
    Ok (Preview { session; issue; merit = Jsonx.str_member "merit" json })
  | "script" ->
    let* session = session_field json in
    Ok (Script { session })
  | "trace" ->
    let spans =
      match Option.bind (field "spans" json) Jsonx.to_bool with
      | Some b -> b
      | None -> false
    in
    (* the span page is a view of the server-global ring, so a spans
       query needs no session; the text trace renders one session *)
    let* session =
      match Jsonx.str_member "session" json with
      | Some s -> Ok s
      | None when spans -> Ok ""
      | None -> Error "missing or non-string field \"session\""
    in
    let since = Option.bind (field "since" json) Jsonx.to_int in
    let max_spans = Option.bind (field "max" json) Jsonx.to_int in
    Ok (Trace { session; spans; since; max_spans })
  | "health" ->
    let* session = session_field json in
    Ok (Health { session })
  | "signature" ->
    let* session = session_field json in
    Ok (Signature { session })
  | "report" ->
    let* session = session_field json in
    Ok (Report { session; title = Jsonx.str_member "title" json })
  | "branch" ->
    let* session = session_field json in
    Ok (Branch { session; as_id = Jsonx.str_member "as" json })
  | "compact" ->
    let* session = session_field json in
    Ok (Compact { session })
  | "close" ->
    let* session = session_field json in
    Ok (Close { session })
  | "stats" -> Ok Stats
  | "metrics" -> Ok (Metrics { format = Jsonx.str_member "format" json })
  | "healthz" -> Ok Healthz
  | "batch" ->
    let* session = session_field json in
    let* items =
      match Option.bind (field "reqs" json) Jsonx.to_list with
      | Some [] | None -> Error "batch requires a non-empty \"reqs\" array"
      | Some items -> Ok items
    in
    let rec decode acc i = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        (* a sub-request may omit its session (inherited from the batch
           envelope); an explicit one must match *)
        let item =
          match item with
          | Jsonx.Obj fields when not (List.mem_assoc "session" fields) ->
            Jsonx.Obj (fields @ [ ("session", Jsonx.Str session) ])
          | other -> other
        in
        let* r =
          match request_of_json item with
          | Ok r -> Ok r
          | Error msg -> Error (Printf.sprintf "batch req %d: %s" i msg)
        in
        if not (batchable r) then
          Error
            (Printf.sprintf "batch req %d: op is not batchable (session-scoped mutations and reads only)" i)
        else if not (Option.equal String.equal (request_session r) (Some session)) then
          Error (Printf.sprintf "batch req %d: session does not match the batch session" i)
        else decode (r :: acc) (i + 1) rest
    in
    let* reqs = decode [] 0 items in
    Ok (Batch { session; reqs })
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* ------------------------------------------------------------------ *)
(* Request encoding (the journal's storage form)                       *)

let rec json_of_request r =
  let obj fields = Jsonx.Obj (List.filter_map Fun.id fields) in
  let some k v = Some (k, v) in
  let opt k = Option.map (fun s -> (k, Jsonx.Str s)) in
  match r with
  | Open { session; layer; eol; resume } ->
    obj
      [
        some "op" (Jsonx.Str "open");
        opt "session" session;
        (if String.equal layer "" then None else some "layer" (Jsonx.Str layer));
        Option.map (fun e -> ("eol", Jsonx.Int e)) eol;
        (if resume then some "resume" (Jsonx.Bool true) else None);
      ]
  | Set { session; name; value; decide } ->
    obj
      [
        some "op" (Jsonx.Str (if decide then "decide" else "set"));
        some "session" (Jsonx.Str session);
        some "name" (Jsonx.Str name);
        some "value" (json_of_value value);
      ]
  | Default { session; name } ->
    obj
      [
        some "op" (Jsonx.Str "default");
        some "session" (Jsonx.Str session);
        some "name" (Jsonx.Str name);
      ]
  | Retract { session; name } ->
    obj
      [
        some "op" (Jsonx.Str "retract");
        some "session" (Jsonx.Str session);
        some "name" (Jsonx.Str name);
      ]
  | Annotate { session; text } ->
    obj
      [
        some "op" (Jsonx.Str "annotate");
        some "session" (Jsonx.Str session);
        some "text" (Jsonx.Str text);
      ]
  | Candidates { session; max } ->
    obj
      [
        some "op" (Jsonx.Str "candidates");
        some "session" (Jsonx.Str session);
        Option.map (fun m -> ("max", Jsonx.Int m)) max;
      ]
  | Ranges { session; merits } ->
    obj
      [
        some "op" (Jsonx.Str "ranges");
        some "session" (Jsonx.Str session);
        Option.map
          (fun ms -> ("merits", Jsonx.List (List.map (fun m -> Jsonx.Str m) ms)))
          merits;
      ]
  | Issues { session } ->
    obj [ some "op" (Jsonx.Str "issues"); some "session" (Jsonx.Str session) ]
  | Preview { session; issue; merit } ->
    obj
      [
        some "op" (Jsonx.Str "preview");
        some "session" (Jsonx.Str session);
        some "issue" (Jsonx.Str issue);
        opt "merit" merit;
      ]
  | Script { session } ->
    obj [ some "op" (Jsonx.Str "script"); some "session" (Jsonx.Str session) ]
  | Trace { session; spans; since; max_spans } ->
    obj
      [
        some "op" (Jsonx.Str "trace");
        (if String.equal session "" && spans then None else some "session" (Jsonx.Str session));
        (if spans then some "spans" (Jsonx.Bool true) else None);
        Option.map (fun s -> ("since", Jsonx.Int s)) since;
        Option.map (fun m -> ("max", Jsonx.Int m)) max_spans;
      ]
  | Health { session } ->
    obj [ some "op" (Jsonx.Str "health"); some "session" (Jsonx.Str session) ]
  | Signature { session } ->
    obj [ some "op" (Jsonx.Str "signature"); some "session" (Jsonx.Str session) ]
  | Report { session; title } ->
    obj
      [
        some "op" (Jsonx.Str "report");
        some "session" (Jsonx.Str session);
        opt "title" title;
      ]
  | Branch { session; as_id } ->
    obj
      [
        some "op" (Jsonx.Str "branch");
        some "session" (Jsonx.Str session);
        opt "as" as_id;
      ]
  | Compact { session } ->
    obj [ some "op" (Jsonx.Str "compact"); some "session" (Jsonx.Str session) ]
  | Close { session } ->
    obj [ some "op" (Jsonx.Str "close"); some "session" (Jsonx.Str session) ]
  | Stats -> obj [ some "op" (Jsonx.Str "stats") ]
  | Metrics { format } -> obj [ some "op" (Jsonx.Str "metrics"); opt "format" format ]
  | Healthz -> obj [ some "op" (Jsonx.Str "healthz") ]
  | Batch { session; reqs } ->
    obj
      [
        some "op" (Jsonx.Str "batch");
        some "session" (Jsonx.Str session);
        some "reqs" (Jsonx.List (List.map json_of_request reqs));
      ]

(* ------------------------------------------------------------------ *)
(* Trace-context side channel (DESIGN.md 18)

   The propagated context rides as an optional top-level ["trace"]
   member of the request object — deliberately NOT a field of the
   request variant: [json_of_request] is the journal's storage form
   and must stay byte-stable, and [request_of_json] already ignores
   unknown members, so old servers interoperate for free.  A malformed
   context is dropped (never an error): tracing must not be able to
   fail a request. *)

let trace_member json =
  Option.bind (Jsonx.str_member "trace" json) Ds_obs.Obs.parse_trace

let attach_trace ~trace json =
  match json with
  | Jsonx.Obj fields when not (List.mem_assoc "trace" fields) ->
    Jsonx.Obj (fields @ [ ("trace", Jsonx.Str trace) ])
  | other -> other

let parse_request_traced line =
  match Jsonx.of_string line with
  | Error msg -> Error (Parse_error, msg)
  | Ok json -> (
    match request_of_json json with
    | Ok r -> Ok (r, trace_member json)
    | Error msg ->
      let code =
        if String.length msg >= 10 && String.equal (String.sub msg 0 10) "unknown op" then
          Unknown_op
        else Bad_request
      in
      Error (code, msg))

let parse_request line = Result.map fst (parse_request_traced line)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

(* Interned response fragments: the ["ok"] header cell and error-code
   strings are shared across every response instead of re-consed per
   reply — the response hot path allocates only the payload. *)
let ok_true = ("ok", Jsonx.Bool true)
let ok_false = ("ok", Jsonx.Bool false)

let json_of_response = function
  | Reply payload -> Jsonx.Obj (ok_true :: payload)
  | Failed (code, message) ->
    Jsonx.Obj
      [
        ok_false;
        ( "error",
          Jsonx.Obj
            [ ("code", Jsonx.Str (error_code_label code)); ("message", Jsonx.Str message) ] );
      ]

let print_response_into buf r = Jsonx.add buf (json_of_response r)
let print_response r = Jsonx.to_string (json_of_response r)

let response_of_json json =
  match Option.bind (Jsonx.member "ok" json) Jsonx.to_bool with
  | Some true -> (
    match json with
    | Jsonx.Obj fields ->
      Ok (Reply (List.filter (fun (k, _) -> not (String.equal k "ok")) fields))
    | _ -> Error "reply is not an object")
  | Some false -> (
    match Jsonx.member "error" json with
    | None -> Error "error reply without \"error\" field"
    | Some err ->
      let code =
        match Option.bind (Jsonx.str_member "code" err) error_code_of_label with
        | Some c -> c
        | None -> Bad_request
      in
      let message = Option.value ~default:"" (Jsonx.str_member "message" err) in
      Ok (Failed (code, message)))
  | None -> Error "reply has no boolean \"ok\" field"

let response_of_string line =
  let* json = Jsonx.of_string line in
  response_of_json json

let ok_payload = function
  | Reply payload -> Ok payload
  | Failed (code, message) -> Error (Printf.sprintf "%s: %s" (error_code_label code) message)
