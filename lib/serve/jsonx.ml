type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* Escape table: one precomputed string per byte that needs escaping,
   "" for bytes that pass through verbatim.  Indexing a flat array beats
   a per-character match cascade and removes the [Printf.sprintf] from
   the control-character path entirely. *)
let escape_table =
  Array.init 256 (fun i ->
      match Char.chr i with
      | '"' -> "\\\""
      | '\\' -> "\\\\"
      | '\n' -> "\\n"
      | '\r' -> "\\r"
      | '\t' -> "\\t"
      | '\b' -> "\\b"
      | '\012' -> "\\f"
      | _ when i < 0x20 -> Printf.sprintf "\\u%04x" i
      | _ -> "")

let add_escaped buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  (* blit unescaped runs whole instead of char-by-char: most protocol
     strings (session ids, property names, signatures) contain no
     escapes at all, so this is one [add_substring] for the run *)
  let start = ref 0 in
  for i = 0 to n - 1 do
    let esc = Array.unsafe_get escape_table (Char.code (String.unsafe_get s i)) in
    if String.length esc > 0 then begin
      if i > !start then Buffer.add_substring buf s !start (i - !start);
      Buffer.add_string buf esc;
      start := i + 1
    end
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start);
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that survives a round-trip and is valid
       JSON (a bare "12" would re-read as Int, so force a marker);
       format the short form first and only pay for %.17g when the
       round-trip fails *)
    let s = Printf.sprintf "%g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string                    *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, got %C" c got)
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  (* UTF-8-encode one BMP code point (surrogate pairs are recombined by
     the caller before reaching here) *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    (* exactly four hex digits — int_of_string would also admit OCaml
       literal syntax such as underscores *)
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail (Printf.sprintf "bad \\u escape %S" h)
    in
    (digit h.[0] lsl 12) lor (digit h.[1] lsl 8) lor (digit h.[2] lsl 4) lor digit h.[3]
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
              else fail "unpaired surrogate"
            end
            else cp
          in
          add_utf8 buf cp
        | e -> fail (Printf.sprintf "bad escape \\%c" e));
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let integral = not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok) in
    if integral then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literal: fall back to float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
    else
      match float_of_string_opt tok with
      | Some f when Float.is_finite f -> Float f
      | Some _ ->
        (* e.g. "1e999": OCaml overflows to infinity, which has no JSON
           form (we print non-finite as null) — reject so that parse and
           print stay inverses *)
        fail (Printf.sprintf "number out of range %S" tok)
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' in array"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "json: %s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let str_member k v = Option.bind (member k v) to_str
