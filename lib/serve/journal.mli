(** Per-session write-ahead journal.

    Every mutating protocol request a session accepts is appended, as
    its wire-format JSON, to an append-only file named after the
    session id.  Re-applying the journaled requests, in order, to a
    fresh session of the same layer deterministically reconstructs the
    session — that is how [open --resume] works, and how a crashed or
    SIGKILLed server recovers its sessions: each append is flushed to
    the operating system (and optionally fsynced) {e before} the reply
    leaves the server, so the journal of a dead server is never behind
    what its clients were told.

    {2 File format}

    Line 1 — the header:
    [{"journal":"dse-session","format":1,"session":ID,"layer":L,"eol":N}]

    Each further line — one applied mutation and the candidate
    signature the session had {e after} applying it:
    [{"req":{...request...},"sig":"<hex digest>"}]

    The signature ({!Ds_layer.Session.candidate_signature}) lets replay
    verify, entry by entry, that it reproduced the visible state the
    live session actually had; a mismatch (e.g. the layer definition
    changed since the journal was written) fails the resume instead of
    silently handing the designer a different design space.

    {2 Concurrency and group commit}

    A journal may be appended to by several worker domains at once (the
    service serializes mutations {e per session}, but the same journal
    is also the target of concurrent appends during [branch] copies,
    and nothing above guarantees exclusivity).  {!append} is atomic
    under an internal lock and returns the entry's sequence number.  In
    [sync] mode, durability is a separate step: {!sync_to} fsyncs up to
    a sequence number with a leader/follower group commit — the first
    caller to need an fsync performs one covering {e every} entry
    appended so far, and concurrent callers whose entries it covered
    return without touching the disk.  The service calls [sync_to]
    outside its session locks, so mutations on other sessions (and
    later mutations on the same one) overlap the disk flush. *)

type header = { session : string; layer : string; eol : int }

type entry = { req : Jsonx.t; signature : string }

type t
(** An open journal, positioned for appending. *)

val path : dir:string -> id:string -> string
(** [dir/<id>.journal]. *)

val exists : dir:string -> id:string -> bool

val create : ?sync:bool -> dir:string -> header -> (t, string) result
(** Truncate/create the file and write the header.  [sync] (default
    [false]) makes acknowledged entries fsync-durable (via {!sync_to})
    — full crash-safety against power loss, at a per-request cost; the
    default survives process death (the flush reaches the kernel) which
    is the failure mode the service defends against.  Creates [dir] if
    missing.  In sync mode the header itself is fsynced before
    returning. *)

val append : t -> req:Jsonx.t -> signature:string -> (int, string) result
(** One entry line, written and flushed to the kernel before returning;
    returns the entry's sequence number (the header counts as entry 1).
    In sync mode, follow with {!sync_to} before acknowledging the
    mutation to a client. *)

val sync_to : t -> int -> (unit, string) result
(** Make every entry up to the given sequence number fsync-durable.
    No-op unless the journal was opened with [sync].  Group-committed:
    see the module docs.  Safe (and intended) to call without holding
    any session lock. *)

(** Group-commit effectiveness: [syncs] fsyncs actually issued,
    [batched] {!sync_to} calls satisfied by another caller's fsync.

    Deprecation shim: this per-journal record predates the telemetry
    registry; the process-wide equivalents live in
    {!Ds_obs.Obs.default} under the unified names
    [dse_journal_fsyncs_total] / [dse_journal_fsync_batched_total]
    (plus [dse_journal_appends_total] and the [dse_journal_fsync_us]
    histogram).  Kept so existing assertions about one journal's
    batching stay meaningful. *)
type sync_stats = { syncs : int; batched : int }

val sync_stats : t -> sync_stats

val close : t -> unit

val load : dir:string -> id:string -> (header * entry list, string) result
(** Parse the whole journal.  Errors on a missing file, a bad header,
    or a malformed entry line (the line number is reported); a trailing
    {e partial} line — the one a crash can leave behind — is ignored
    with the entries before it intact, because an entry is only
    acknowledged to clients after its flush. *)

val open_append : ?sync:bool -> dir:string -> id:string -> unit -> (t, string) result
(** Reopen an existing journal for appending (after {!load}).  If a
    crash left a torn final line, the file is first truncated back to
    the end of the last complete line — matching what {!load} replays —
    so subsequent appends never glue onto the fragment. *)

val branch :
  ?sync:bool -> dir:string -> from_id:string -> to_id:string -> unit -> (unit, string) result
(** Copy [from_id]'s journal as the starting history of [to_id],
    rewriting the header to the new session id — a branched session
    resumes independently of its parent. *)
