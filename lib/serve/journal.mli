(** Per-session write-ahead journal, with checkpoints.

    Every mutating protocol request a session accepts is appended, as
    its wire-format JSON, to an append-only file named after the
    session id.  Re-applying the journaled requests, in order, to a
    fresh session of the same layer deterministically reconstructs the
    session — that is how [open --resume] works, and how a crashed or
    SIGKILLed server recovers its sessions: each append is flushed to
    the operating system (and optionally fsynced) {e before} the reply
    leaves the server, so the journal of a dead server is never behind
    what its clients were told.

    {2 File format}

    Line 1 — the header:
    [{"journal":"dse-session","format":1,"session":ID,"layer":L,"eol":N,"base":B}]

    [base] is the number of journal entries subsumed by the session's
    snapshot (0 until the journal is first compacted; absent in
    pre-snapshot journals, read as 0).

    Each further line — one applied mutation and the candidate
    signature the session had {e after} applying it:
    [{"req":{...request...},"sig":"<hex digest>"}]

    The signature ({!Ds_layer.Session.candidate_signature}) lets replay
    verify, entry by entry, that it reproduced the visible state the
    live session actually had; a mismatch (e.g. the layer definition
    changed since the journal was written) fails the resume instead of
    silently handing the designer a different design space.

    {2 Snapshots and compaction}

    A snapshot ([<id>.snapshot]) is a checksummed checkpoint: the
    {e compacted script} (current designer bindings + annotations, far
    shorter than the raw history), the candidate signature it must
    reproduce, and [base] — how many journal entries it subsumes.  The
    writer is expected to have {e verification-replayed} the compacted
    script before calling {!write_snapshot} (the service does; a
    compacted script can in principle diverge from history replay when
    guard-quarantine state depends on retracted bindings, and the
    verify step is what makes truncation safe).  Compaction then calls
    {!rewrite} to publish a journal whose header carries the new [base]
    and whose tail is empty.  Both publishes are write-temp / fsync /
    rename / fsync-directory, so a crash at {e any} point leaves
    exactly one valid lineage: before the rename the old state is
    intact, after it the new state is the state.

    {2 Fault injection}

    Every disk primitive this module touches goes through {!Iofault} —
    short writes, fsync [EIO], torn renames and [ENOSPC] can be
    injected deterministically under any of these paths.  A failed
    append truncates the file back to the last complete line (torn
    garbage never survives to be glued onto); if even the repair fails
    the handle reports itself broken on every later append.

    {2 Concurrency and group commit}

    A journal may be appended to by several worker domains at once (the
    service serializes mutations {e per session}, but the same journal
    is also the target of concurrent appends during [branch] copies,
    and nothing above guarantees exclusivity).  {!append} is atomic
    under an internal lock and returns the entry's sequence number.  In
    [sync] mode, durability is a separate step: {!sync_to} fsyncs up to
    a sequence number with a leader/follower group commit — the first
    caller to need an fsync performs one covering {e every} entry
    appended so far, and concurrent callers whose entries it covered
    return without touching the disk.  The service calls [sync_to]
    outside its session locks, so mutations on other sessions (and
    later mutations on the same one) overlap the disk flush. *)

type header = { session : string; layer : string; eol : int; base : int }

type entry = { req : Jsonx.t; signature : string }

type t
(** An open journal, positioned for appending. *)

val path : dir:string -> id:string -> string
(** [dir/<id>.journal]. *)

val exists : dir:string -> id:string -> bool

val create : ?sync:bool -> dir:string -> header -> (t, string) result
(** Truncate/create the file and write the header.  [sync] (default
    [false]) makes acknowledged entries fsync-durable (via {!sync_to})
    — full crash-safety against power loss, at a per-request cost; the
    default survives process death (the flush reaches the kernel) which
    is the failure mode the service defends against.  Creates [dir] if
    missing.  In sync mode the header itself is fsynced before
    returning. *)

val append : t -> req:Jsonx.t -> signature:string -> (int, string) result
(** One entry line, written before returning; returns the entry's
    sequence number (the header counts as entry 1).  In sync mode,
    follow with {!sync_to} before acknowledging the mutation to a
    client. *)

val entry_count : t -> int
(** Entry lines currently in the file — the tail a resume would
    replay after the snapshot.  The service's auto-compaction
    threshold watches this. *)

val sync_to : t -> int -> (unit, string) result
(** Make every entry up to the given sequence number fsync-durable.
    No-op unless the journal was opened with [sync].  Group-committed:
    see the module docs.  Safe (and intended) to call without holding
    any session lock. *)

val sync_all : t -> (unit, string) result
(** {!sync_to} up to everything appended so far — what compaction calls
    before swapping handles, so no acknowledged entry's durability ever
    rides on a descriptor about to be closed. *)

(** Group-commit effectiveness: [syncs] fsyncs actually issued,
    [batched] {!sync_to} calls satisfied by another caller's fsync.

    Deprecation shim: this per-journal record predates the telemetry
    registry; the process-wide equivalents live in
    {!Ds_obs.Obs.default} under the unified names
    [dse_journal_fsyncs_total] / [dse_journal_fsync_batched_total]
    (plus [dse_journal_appends_total] and the [dse_journal_fsync_us]
    histogram).  Kept so existing assertions about one journal's
    batching stay meaningful. *)
type sync_stats = { syncs : int; batched : int }

val sync_stats : t -> sync_stats

val close : t -> unit

val load : dir:string -> id:string -> (header * entry list, string) result
(** Parse the whole journal file — header (with its [base]) and the
    {e tail} entries only; a compacted journal's history before [base]
    lives in the snapshot.  Errors on a missing file, a bad header, or
    a malformed entry line (the line number is reported); a trailing
    {e partial} line — the one a crash can leave behind — is ignored
    with the entries before it intact, because an entry is only
    acknowledged to clients after its flush. *)

val open_append : ?sync:bool -> dir:string -> id:string -> unit -> (t, string) result
(** Reopen an existing journal for appending (after {!load}).  If a
    crash left a torn final line, the file is first truncated back to
    the end of the last complete line — matching what {!load} replays —
    so subsequent appends never glue onto the fragment. *)

(** A checkpoint: the compacted script that reproduces the session
    state whose candidate signature is [snap_signature], subsuming the
    first [snap_base] journal entries. *)
type snapshot = {
  snap_session : string;
  snap_layer : string;
  snap_eol : int;
  snap_base : int;
  snap_signature : string;
  snap_entries : entry list;
}

val snapshot_path : dir:string -> id:string -> string
(** [dir/<id>.snapshot]. *)

val snapshot_exists : dir:string -> id:string -> bool

val write_snapshot : dir:string -> snapshot -> (unit, string) result
(** Publish a checkpoint atomically (write temp, fsync, rename, fsync
    directory).  On any failure — including injected faults — the
    previous snapshot (or its absence) is intact.  The caller must
    already have verified that replaying [snap_entries] reproduces
    [snap_signature]; {!write_snapshot} records, it does not check. *)

val load_snapshot : dir:string -> id:string -> (snapshot, string) result
(** Read and validate a checkpoint: header sanity, FNV-1a 64 checksum
    over the entry lines (catching truncation between lines, which
    per-line parsing alone would miss), then entry parse.  Any failure
    is an [Error] — the caller decides whether full-history replay is
    still possible (journal [base] 0) or the lineage is lost. *)

val remove_snapshot : dir:string -> id:string -> unit
(** Best-effort delete (idempotent). *)

val rewrite : ?sync:bool -> dir:string -> header -> entry list -> (t, string) result
(** Atomically replace the journal file with [header] + the given tail,
    returning a handle already positioned for appending (the descriptor
    survives the rename).  Same publish discipline as
    {!write_snapshot}; on failure the old journal file is intact (the
    caller should reopen it with {!open_append}). *)

val load_effective : dir:string -> id:string -> (header * entry list, string) result
(** The session's full effective history: the snapshot's compacted
    script followed by the tail entries it does not subsume (or just
    the raw journal when never compacted).  Errors if the journal is
    compacted and the snapshot is unusable — that lineage cannot be
    reconstructed.  The returned header has [base] 0: the entry list
    is self-contained. *)

val branch :
  ?sync:bool -> dir:string -> from_id:string -> to_id:string -> unit -> (unit, string) result
(** Copy [from_id]'s {e effective} history — snapshot script + tail if
    compacted, the raw journal otherwise — as the starting history of
    [to_id] (header rewritten, [base] 0): a branched session resumes
    independently of its parent and never shares its snapshot file. *)

val remove : dir:string -> id:string -> unit
(** Best-effort delete of journal + snapshot (idempotent). *)
