(** A minimal line-oriented JSON codec.

    The exploration service speaks line-delimited JSON; the repo takes
    no external JSON dependency, so this module implements the small
    slice of RFC 8259 the protocol needs: objects, arrays, strings
    (with escape handling, including [\uXXXX] for the BMP), numbers
    (kept as [Int] when they are syntactically integral, matching the
    layer's [Value.Int]/[Value.Real] distinction), booleans and null.

    {!to_string} always emits a single physical line — embedded
    newlines in strings are escaped — so one value maps to exactly one
    protocol/journal line. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats render as [null]
    (JSON has no spelling for them). *)

val add : Buffer.t -> t -> unit
(** [to_string] into a caller-owned buffer — the hot-path form: a
    connection can reuse one buffer across responses instead of
    allocating a fresh one per line. *)

val of_string : string -> (t, string) result
(** Parse one value; trailing non-whitespace is an error.  Error
    messages carry a character offset. *)

(** {2 Accessors} — total, option-returning *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] for missing fields and non-objects. *)

val to_str : t -> string option
val to_int : t -> int option

val to_float : t -> float option
(** Widens [Int] (a JSON reader cannot distinguish [8] from [8.0]
    when the producer meant a real). *)

val to_bool : t -> bool option
val to_list : t -> t list option

val str_member : string -> t -> string option
(** [str_member k o] = [member k o |> Option.bind to_str] — the common
    protocol access path. *)
