type header = { session : string; layer : string; eol : int }

type entry = { req : Jsonx.t; signature : string }

(* Appends are serialized by [lock]; in sync mode the fsync itself is
   group-committed: an appender needing durability calls [sync_to] with
   its entry's sequence number, and whichever caller finds no fsync in
   flight becomes the leader, fsyncing once for every entry appended so
   far — concurrent mutations ride one disk flush instead of queueing
   one each.  The lock is never held across the fsync, so appends keep
   flowing while the disk works. *)
type t = {
  fd : Unix.file_descr;
  oc : out_channel;
  sync : bool;
  lock : Mutex.t;
  synced_cond : Condition.t;
  mutable seq : int; (* entries appended (and flushed to the kernel) *)
  mutable synced : int; (* entries covered by a completed fsync *)
  mutable syncing : bool; (* a leader's fsync is in flight *)
  mutable syncs : int;
  mutable batched : int; (* sync_to calls satisfied by another's fsync *)
  mutable closed : bool;
}

let make_t ~fd ~sync =
  {
    fd;
    oc = Unix.out_channel_of_descr fd;
    sync;
    lock = Mutex.create ();
    synced_cond = Condition.create ();
    seq = 0;
    synced = 0;
    syncing = false;
    syncs = 0;
    batched = 0;
    closed = false;
  }

let path ~dir ~id = Filename.concat dir (id ^ ".journal")
let exists ~dir ~id = Sys.file_exists (path ~dir ~id)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header_json h =
  Jsonx.Obj
    [
      ("journal", Jsonx.Str "dse-session");
      ("format", Jsonx.Int 1);
      ("session", Jsonx.Str h.session);
      ("layer", Jsonx.Str h.layer);
      ("eol", Jsonx.Int h.eol);
    ]

let header_of_json json =
  match
    ( Jsonx.str_member "journal" json,
      Jsonx.str_member "session" json,
      Jsonx.str_member "layer" json,
      Option.bind (Jsonx.member "eol" json) Jsonx.to_int )
  with
  | Some "dse-session", Some session, Some layer, Some eol -> Ok { session; layer; eol }
  | Some other, _, _, _ when other <> "dse-session" ->
    Error (Printf.sprintf "not a session journal (kind %S)" other)
  | _ -> Error "malformed journal header"

let guard_io f =
  try Ok (f ()) with
  | Unix.Unix_error (err, _, arg) ->
    Error (Printf.sprintf "journal: %s: %s" arg (Unix.error_message err))
  | Sys_error msg -> Error ("journal: " ^ msg)

(* Journal traffic aggregates into the global telemetry registry under
   the unified catalog (DESIGN.md 13): [dse_journal_fsync_batched_total]
   is what the per-journal {!sync_stats} shim spells [batched]. *)
module Obs = Ds_obs.Obs

let m_appends = Obs.counter Obs.default "dse_journal_appends_total"
let m_fsyncs = Obs.counter Obs.default "dse_journal_fsyncs_total"
let m_batched = Obs.counter Obs.default "dse_journal_fsync_batched_total"
let m_fsync_us = Obs.histogram Obs.default "dse_journal_fsync_us"

(* Write + flush to the kernel, under the journal lock.  Durability
   (fsync) is [sync_to]'s job, taken outside any session lock. *)
let write_line t line =
  Mutex.lock t.lock;
  let r =
    guard_io (fun () ->
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc;
        t.seq <- t.seq + 1;
        t.seq)
  in
  Mutex.unlock t.lock;
  r

let create ?(sync = false) ~dir header =
  match
    guard_io (fun () ->
        mkdir_p dir;
        Unix.openfile (path ~dir ~id:header.session)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644)
  with
  | Error _ as e -> e
  | Ok fd -> (
    let t = make_t ~fd ~sync in
    match write_line t (Jsonx.to_string (header_json header)) with
    | Ok _ -> (
      if not sync then Ok t
      else
        match guard_io (fun () -> Unix.fsync fd) with
        | Ok () ->
          t.synced <- t.seq;
          Ok t
        | Error _ as e ->
          close_out_noerr t.oc;
          e)
    | Error _ as e ->
      close_out_noerr t.oc;
      e)

let append t ~req ~signature =
  let r =
    write_line t
      (Jsonx.to_string (Jsonx.Obj [ ("req", req); ("sig", Jsonx.Str signature) ]))
  in
  if Result.is_ok r then Obs.incr m_appends;
  r

let rec sync_to t seq =
  if not t.sync then Ok ()
  else begin
    Mutex.lock t.lock;
    if t.synced >= seq then begin
      (* a leader's fsync already covered this entry *)
      t.batched <- t.batched + 1;
      Obs.incr m_batched;
      Mutex.unlock t.lock;
      Ok ()
    end
    else if t.syncing then begin
      (* an fsync is in flight; it may not cover this entry (it could
         have started before our append) — wait and re-check *)
      Condition.wait t.synced_cond t.lock;
      Mutex.unlock t.lock;
      sync_to t seq
    end
    else begin
      (* become the leader: fsync once for everything appended so far *)
      t.syncing <- true;
      let target = t.seq in
      Mutex.unlock t.lock;
      let sp = Obs.span_begin "journal.fsync" in
      let t0 = Obs.now_us () in
      let r = guard_io (fun () -> Unix.fsync t.fd) in
      Obs.observe m_fsync_us (Obs.now_us () -. t0);
      Obs.span_end sp
        ~attrs:
          [ ("ok", match r with Ok () -> "true" | Error _ -> "false") ]
        (* obs-lint: guard_io never raises, the span always closes *);
      Mutex.lock t.lock;
      t.syncing <- false;
      (match r with
      | Ok () ->
        t.synced <- Stdlib.max t.synced target;
        t.syncs <- t.syncs + 1;
        Obs.incr m_fsyncs
      | Error _ -> ());
      Condition.broadcast t.synced_cond;
      Mutex.unlock t.lock;
      match r with
      | Error _ as e -> e
      | Ok () -> if target >= seq then Ok () else sync_to t seq
    end
  end

type sync_stats = { syncs : int; batched : int }

let sync_stats t =
  Mutex.lock t.lock;
  let s = { syncs = t.syncs; batched = t.batched } in
  Mutex.unlock t.lock;
  s

(* Close fsyncs first (in sync mode), so a [sync_to] racing the close
   — the store evicting a session between a mutation's reply path
   releasing the slot lock and its durability step — finds its entries
   already covered instead of erroring on a dead descriptor. *)
let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    (try flush t.oc with _ -> ());
    if t.sync then (try Unix.fsync t.fd with _ -> ());
    t.closed <- true;
    t.synced <- t.seq;
    Condition.broadcast t.synced_cond;
    Mutex.unlock t.lock;
    close_out_noerr t.oc
  end
  else Mutex.unlock t.lock

let open_append ?(sync = false) ~dir ~id () =
  if not (exists ~dir ~id) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    let file = path ~dir ~id in
    match
      guard_io (fun () ->
          (* a crash can leave a torn (unterminated) final line, which
             [load] drops; appending as-is would glue the next entry
             onto that fragment and corrupt the file mid-line, so cut
             back to the end of the last complete line first *)
          let keep =
            let content = In_channel.with_open_bin file In_channel.input_all in
            let len = String.length content in
            if len = 0 || content.[len - 1] = '\n' then len
            else match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
          in
          let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
          if (Unix.fstat fd).Unix.st_size <> keep then Unix.ftruncate fd keep;
          fd)
    with
    | Error _ as e -> e
    | Ok fd -> Ok (make_t ~fd ~sync)

(* Complete lines only: a crash can leave a final unterminated
   fragment, which is by construction an entry no client was ever told
   about — drop it.  Anything malformed before that is corruption and
   errors out. *)
let complete_lines content =
  let lines = String.split_on_char '\n' content in
  match List.rev lines with
  | last :: rest when not (String.equal last "") ->
    (* no trailing newline: [last] is the partial fragment *)
    List.rev rest
  | _ :: rest -> List.rev rest
  | [] -> []

let load ~dir ~id =
  let file = path ~dir ~id in
  if not (Sys.file_exists file) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    match guard_io (fun () -> In_channel.with_open_bin file In_channel.input_all) with
    | Error _ as e -> e
    | Ok content -> (
      match complete_lines content with
      | [] -> Error "journal: empty journal (missing header)"
      | header_line :: entry_lines -> (
        let ( let* ) = Result.bind in
        let* header =
          match Jsonx.of_string header_line with
          | Error msg -> Error ("journal: header: " ^ msg)
          | Ok json -> header_of_json json
        in
        let* entries =
          let rec go n acc = function
            | [] -> Ok (List.rev acc)
            | "" :: rest -> go (n + 1) acc rest
            | line :: rest -> (
              match Jsonx.of_string line with
              | Error msg -> Error (Printf.sprintf "journal: line %d: %s" n msg)
              | Ok json -> (
                match (Jsonx.member "req" json, Jsonx.str_member "sig" json) with
                | Some req, Some signature -> go (n + 1) ({ req; signature } :: acc) rest
                | _ -> Error (Printf.sprintf "journal: line %d: not an entry" n)))
          in
          go 2 [] entry_lines
        in
        Ok (header, entries)))

let branch ?(sync = false) ~dir ~from_id ~to_id () =
  let ( let* ) = Result.bind in
  let* header, entries = load ~dir ~id:from_id in
  let* t = create ~sync ~dir { header with session = to_id } in
  let result =
    List.fold_left
      (fun acc e ->
        Result.bind acc (fun _ ->
            Result.map ignore (append t ~req:e.req ~signature:e.signature)))
      (Ok ()) entries
  in
  close t;
  result
