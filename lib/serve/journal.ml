type header = { session : string; layer : string; eol : int }

type entry = { req : Jsonx.t; signature : string }

type t = { fd : Unix.file_descr; oc : out_channel; sync : bool }

let path ~dir ~id = Filename.concat dir (id ^ ".journal")
let exists ~dir ~id = Sys.file_exists (path ~dir ~id)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header_json h =
  Jsonx.Obj
    [
      ("journal", Jsonx.Str "dse-session");
      ("format", Jsonx.Int 1);
      ("session", Jsonx.Str h.session);
      ("layer", Jsonx.Str h.layer);
      ("eol", Jsonx.Int h.eol);
    ]

let header_of_json json =
  match
    ( Jsonx.str_member "journal" json,
      Jsonx.str_member "session" json,
      Jsonx.str_member "layer" json,
      Option.bind (Jsonx.member "eol" json) Jsonx.to_int )
  with
  | Some "dse-session", Some session, Some layer, Some eol -> Ok { session; layer; eol }
  | Some other, _, _, _ when other <> "dse-session" ->
    Error (Printf.sprintf "not a session journal (kind %S)" other)
  | _ -> Error "malformed journal header"

let guard_io f =
  try Ok (f ()) with
  | Unix.Unix_error (err, _, arg) ->
    Error (Printf.sprintf "journal: %s: %s" arg (Unix.error_message err))
  | Sys_error msg -> Error ("journal: " ^ msg)

let write_line t line =
  guard_io (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      if t.sync then Unix.fsync t.fd)

let create ?(sync = false) ~dir header =
  match
    guard_io (fun () ->
        mkdir_p dir;
        Unix.openfile (path ~dir ~id:header.session)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644)
  with
  | Error _ as e -> e
  | Ok fd -> (
    let t = { fd; oc = Unix.out_channel_of_descr fd; sync } in
    match write_line t (Jsonx.to_string (header_json header)) with
    | Ok () -> Ok t
    | Error _ as e ->
      close_out_noerr t.oc;
      e)

let append t ~req ~signature =
  write_line t
    (Jsonx.to_string (Jsonx.Obj [ ("req", req); ("sig", Jsonx.Str signature) ]))

let close t = close_out_noerr t.oc

let open_append ?(sync = false) ~dir ~id () =
  if not (exists ~dir ~id) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    let file = path ~dir ~id in
    match
      guard_io (fun () ->
          (* a crash can leave a torn (unterminated) final line, which
             [load] drops; appending as-is would glue the next entry
             onto that fragment and corrupt the file mid-line, so cut
             back to the end of the last complete line first *)
          let keep =
            let content = In_channel.with_open_bin file In_channel.input_all in
            let len = String.length content in
            if len = 0 || content.[len - 1] = '\n' then len
            else match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
          in
          let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
          if (Unix.fstat fd).Unix.st_size <> keep then Unix.ftruncate fd keep;
          fd)
    with
    | Error _ as e -> e
    | Ok fd -> Ok { fd; oc = Unix.out_channel_of_descr fd; sync }

(* Complete lines only: a crash can leave a final unterminated
   fragment, which is by construction an entry no client was ever told
   about — drop it.  Anything malformed before that is corruption and
   errors out. *)
let complete_lines content =
  let lines = String.split_on_char '\n' content in
  match List.rev lines with
  | last :: rest when not (String.equal last "") ->
    (* no trailing newline: [last] is the partial fragment *)
    List.rev rest
  | _ :: rest -> List.rev rest
  | [] -> []

let load ~dir ~id =
  let file = path ~dir ~id in
  if not (Sys.file_exists file) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    match guard_io (fun () -> In_channel.with_open_bin file In_channel.input_all) with
    | Error _ as e -> e
    | Ok content -> (
      match complete_lines content with
      | [] -> Error "journal: empty journal (missing header)"
      | header_line :: entry_lines -> (
        let ( let* ) = Result.bind in
        let* header =
          match Jsonx.of_string header_line with
          | Error msg -> Error ("journal: header: " ^ msg)
          | Ok json -> header_of_json json
        in
        let* entries =
          let rec go n acc = function
            | [] -> Ok (List.rev acc)
            | "" :: rest -> go (n + 1) acc rest
            | line :: rest -> (
              match Jsonx.of_string line with
              | Error msg -> Error (Printf.sprintf "journal: line %d: %s" n msg)
              | Ok json -> (
                match (Jsonx.member "req" json, Jsonx.str_member "sig" json) with
                | Some req, Some signature -> go (n + 1) ({ req; signature } :: acc) rest
                | _ -> Error (Printf.sprintf "journal: line %d: not an entry" n)))
          in
          go 2 [] entry_lines
        in
        Ok (header, entries)))

let branch ?(sync = false) ~dir ~from_id ~to_id () =
  let ( let* ) = Result.bind in
  let* header, entries = load ~dir ~id:from_id in
  let* t = create ~sync ~dir { header with session = to_id } in
  let result =
    List.fold_left
      (fun acc e -> Result.bind acc (fun () -> append t ~req:e.req ~signature:e.signature))
      (Ok ()) entries
  in
  close t;
  result
