type header = { session : string; layer : string; eol : int; base : int }

type entry = { req : Jsonx.t; signature : string }

(* Appends are serialized by [lock]; in sync mode the fsync itself is
   group-committed: an appender needing durability calls [sync_to] with
   its entry's sequence number, and whichever caller finds no fsync in
   flight becomes the leader, fsyncing once for every entry appended so
   far — concurrent mutations ride one disk flush instead of queueing
   one each.  The lock is never held across the fsync, so appends keep
   flowing while the disk works.

   All disk traffic goes through the {!Iofault} shim points, so the
   chaos harness can break any primitive under us; [off] tracks the
   byte offset of the last complete line, which is what a failed append
   truncates back to (a short write must not leave torn garbage that a
   later successful append would glue onto). *)
type t = {
  fd : Unix.file_descr;
  sync : bool;
  lock : Mutex.t;
  synced_cond : Condition.t;
  mutable off : int; (* bytes up to the end of the last good line *)
  mutable entries : int; (* entry lines in the file (the tail length) *)
  mutable seq : int; (* lines appended through this handle *)
  mutable synced : int; (* entries covered by a completed fsync *)
  mutable syncing : bool; (* a leader's fsync is in flight *)
  mutable syncs : int;
  mutable batched : int; (* sync_to calls satisfied by another's fsync *)
  mutable broken : bool; (* a failed append could not be repaired *)
  mutable closed : bool;
}

let make_t ~fd ~sync =
  {
    fd;
    sync;
    lock = Mutex.create ();
    synced_cond = Condition.create ();
    off = 0;
    entries = 0;
    seq = 0;
    synced = 0;
    syncing = false;
    syncs = 0;
    batched = 0;
    broken = false;
    closed = false;
  }

let path ~dir ~id = Filename.concat dir (id ^ ".journal")
let exists ~dir ~id = Sys.file_exists (path ~dir ~id)
let snapshot_path ~dir ~id = Filename.concat dir (id ^ ".snapshot")
let snapshot_exists ~dir ~id = Sys.file_exists (snapshot_path ~dir ~id)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header_json h =
  Jsonx.Obj
    [
      ("journal", Jsonx.Str "dse-session");
      ("format", Jsonx.Int 1);
      ("session", Jsonx.Str h.session);
      ("layer", Jsonx.Str h.layer);
      ("eol", Jsonx.Int h.eol);
      ("base", Jsonx.Int h.base);
    ]

let header_of_json json =
  match
    ( Jsonx.str_member "journal" json,
      Jsonx.str_member "session" json,
      Jsonx.str_member "layer" json,
      Option.bind (Jsonx.member "eol" json) Jsonx.to_int )
  with
  | Some "dse-session", Some session, Some layer, Some eol ->
    (* [base] arrived with the snapshot format; journals written before
       it have never been compacted *)
    let base =
      match Option.bind (Jsonx.member "base" json) Jsonx.to_int with
      | Some b when b >= 0 -> b
      | Some _ | None -> 0
    in
    Ok { session; layer; eol; base }
  | Some other, _, _, _ when other <> "dse-session" ->
    Error (Printf.sprintf "not a session journal (kind %S)" other)
  | _ -> Error "malformed journal header"

let guard_io f =
  try Ok (f ()) with
  | Unix.Unix_error (err, _, arg) ->
    Error (Printf.sprintf "journal: %s: %s" arg (Unix.error_message err))
  | Sys_error msg -> Error ("journal: " ^ msg)

(* Journal traffic aggregates into the global telemetry registry under
   the unified catalog (DESIGN.md 13): [dse_journal_fsync_batched_total]
   is what the per-journal {!sync_stats} shim spells [batched]. *)
module Obs = Ds_obs.Obs

let m_appends = Obs.counter Obs.default "dse_journal_appends_total"
let m_fsyncs = Obs.counter Obs.default "dse_journal_fsyncs_total"
let m_batched = Obs.counter Obs.default "dse_journal_fsync_batched_total"
let m_fsync_us = Obs.histogram Obs.default "dse_journal_fsync_us"
let m_snapshots = Obs.counter Obs.default "dse_journal_snapshots_total"

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Iofault.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

(* A descriptor opened by this module is always O_APPEND, so after a
   repair-truncate the next write lands exactly at [off] — no lseek
   bookkeeping, no holes. *)
let openfile_append ?(trunc = false) file =
  let flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] in
  Unix.openfile file (if trunc then Unix.O_TRUNC :: flags else flags) 0o644

(* Write one line + newline, under the journal lock.  Durability
   (fsync) is [sync_to]'s job, taken outside any session lock.  A
   failed write truncates the file back to the last good line; if even
   that fails the handle is marked broken (every later append errors
   fast) rather than risking a glued-on fragment. *)
let write_line ?(entry = true) t line =
  Mutex.lock t.lock;
  let r =
    if t.closed || t.broken then Error "journal: handle is broken"
    else
      guard_io (fun () ->
          let buf = Bytes.of_string (line ^ "\n") in
          (try write_all t.fd buf 0 (Bytes.length buf)
           with e ->
             (try Unix.ftruncate t.fd t.off with _ -> t.broken <- true);
             raise e);
          t.off <- t.off + Bytes.length buf;
          if entry then t.entries <- t.entries + 1;
          t.seq <- t.seq + 1;
          t.seq)
  in
  Mutex.unlock t.lock;
  r

let create ?(sync = false) ~dir header =
  match
    guard_io (fun () ->
        mkdir_p dir;
        openfile_append ~trunc:true (path ~dir ~id:header.session))
  with
  | Error _ as e -> e
  | Ok fd -> (
    let t = make_t ~fd ~sync in
    match write_line ~entry:false t (Jsonx.to_string (header_json header)) with
    | Ok _ -> (
      if not sync then Ok t
      else
        match guard_io (fun () -> Iofault.fsync fd) with
        | Ok () ->
          t.synced <- t.seq;
          Ok t
        | Error _ as e ->
          (try Unix.close fd with _ -> ());
          e)
    | Error _ as e ->
      (try Unix.close fd with _ -> ());
      e)

let append t ~req ~signature =
  let r =
    write_line t
      (Jsonx.to_string (Jsonx.Obj [ ("req", req); ("sig", Jsonx.Str signature) ]))
  in
  if Result.is_ok r then Obs.incr m_appends;
  r

let entry_count t =
  Mutex.lock t.lock;
  let n = t.entries in
  Mutex.unlock t.lock;
  n

let rec sync_to t seq =
  if not t.sync then Ok ()
  else begin
    Mutex.lock t.lock;
    if t.synced >= seq then begin
      (* a leader's fsync already covered this entry *)
      t.batched <- t.batched + 1;
      Obs.incr m_batched;
      Mutex.unlock t.lock;
      Ok ()
    end
    else if t.syncing then begin
      (* an fsync is in flight; it may not cover this entry (it could
         have started before our append) — wait and re-check *)
      Condition.wait t.synced_cond t.lock;
      Mutex.unlock t.lock;
      sync_to t seq
    end
    else begin
      (* become the leader: fsync once for everything appended so far *)
      t.syncing <- true;
      let target = t.seq in
      Mutex.unlock t.lock;
      let sp = Obs.span_begin "journal.fsync" in
      let t0 = Obs.now_us () in
      let r = guard_io (fun () -> Iofault.fsync t.fd) in
      Obs.observe m_fsync_us (Obs.now_us () -. t0);
      Obs.span_end sp
        ~attrs:
          [ ("ok", match r with Ok () -> "true" | Error _ -> "false") ]
        (* obs-lint: guard_io never raises, the span always closes *);
      Mutex.lock t.lock;
      t.syncing <- false;
      (match r with
      | Ok () ->
        t.synced <- Stdlib.max t.synced target;
        t.syncs <- t.syncs + 1;
        Obs.incr m_fsyncs
      | Error _ -> ());
      Condition.broadcast t.synced_cond;
      Mutex.unlock t.lock;
      match r with
      | Error _ as e -> e
      | Ok () -> if target >= seq then Ok () else sync_to t seq
    end
  end

let sync_all t =
  Mutex.lock t.lock;
  let seq = t.seq in
  Mutex.unlock t.lock;
  sync_to t seq

type sync_stats = { syncs : int; batched : int }

let sync_stats t =
  Mutex.lock t.lock;
  let s = { syncs = t.syncs; batched = t.batched } in
  Mutex.unlock t.lock;
  s

(* Close fsyncs first (in sync mode), so a [sync_to] racing the close
   — the store evicting a session between a mutation's reply path
   releasing the slot lock and its durability step — finds its entries
   already covered instead of erroring on a dead descriptor. *)
let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    if t.sync then (try Unix.fsync t.fd with _ -> ());
    t.closed <- true;
    t.synced <- t.seq;
    Condition.broadcast t.synced_cond;
    Mutex.unlock t.lock;
    try Unix.close t.fd with _ -> ()
  end
  else Mutex.unlock t.lock

let open_append ?(sync = false) ~dir ~id () =
  if not (exists ~dir ~id) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    let file = path ~dir ~id in
    match
      guard_io (fun () ->
          (* a crash can leave a torn (unterminated) final line, which
             [load] drops; appending as-is would glue the next entry
             onto that fragment and corrupt the file mid-line, so cut
             back to the end of the last complete line first *)
          let content = In_channel.with_open_bin file In_channel.input_all in
          let len = String.length content in
          let keep =
            if len = 0 || content.[len - 1] = '\n' then len
            else match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
          in
          let entries =
            let n = ref 0 in
            String.iteri (fun i c -> if c = '\n' && i < keep then incr n) content;
            Stdlib.max 0 (!n - 1)
          in
          let fd = openfile_append file in
          if (Unix.fstat fd).Unix.st_size <> keep then begin
            try Iofault.ftruncate fd keep
            with e ->
              (try Unix.close fd with _ -> ());
              raise e
          end;
          (fd, keep, entries))
    with
    | Error _ as e -> e
    | Ok (fd, keep, entries) ->
      let t = make_t ~fd ~sync in
      t.off <- keep;
      t.entries <- entries;
      Ok t

(* Complete lines only: a crash can leave a final unterminated
   fragment, which is by construction an entry no client was ever told
   about — drop it.  Anything malformed before that is corruption and
   errors out. *)
let complete_lines content =
  let lines = String.split_on_char '\n' content in
  match List.rev lines with
  | last :: rest when not (String.equal last "") ->
    (* no trailing newline: [last] is the partial fragment *)
    List.rev rest
  | _ :: rest -> List.rev rest
  | [] -> []

let entry_line e =
  Jsonx.to_string (Jsonx.Obj [ ("req", e.req); ("sig", Jsonx.Str e.signature) ])

let parse_entries ~first_line entry_lines =
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (n + 1) acc rest
    | line :: rest -> (
      match Jsonx.of_string line with
      | Error msg -> Error (Printf.sprintf "journal: line %d: %s" n msg)
      | Ok json -> (
        match (Jsonx.member "req" json, Jsonx.str_member "sig" json) with
        | Some req, Some signature -> go (n + 1) ({ req; signature } :: acc) rest
        | _ -> Error (Printf.sprintf "journal: line %d: not an entry" n)))
  in
  go first_line [] entry_lines

let load ~dir ~id =
  let file = path ~dir ~id in
  if not (Sys.file_exists file) then Error (Printf.sprintf "journal: no journal for %S" id)
  else
    match guard_io (fun () -> In_channel.with_open_bin file In_channel.input_all) with
    | Error _ as e -> e
    | Ok content -> (
      match complete_lines content with
      | [] -> Error "journal: empty journal (missing header)"
      | header_line :: entry_lines -> (
        let ( let* ) = Result.bind in
        let* header =
          match Jsonx.of_string header_line with
          | Error msg -> Error ("journal: header: " ^ msg)
          | Ok json -> header_of_json json
        in
        let* entries = parse_entries ~first_line:2 entry_lines in
        Ok (header, entries)))

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snapshot = {
  snap_session : string;
  snap_layer : string;
  snap_eol : int;
  snap_base : int; (* journal entries this checkpoint subsumes *)
  snap_signature : string; (* candidate signature at the checkpoint *)
  snap_entries : entry list; (* compacted script reproducing that state *)
}

(* FNV-1a 64 over the entry lines (newlines included): cheap, stable
   across runs, and — unlike a per-line sanity check — catches a
   snapshot truncated between lines, where every surviving line still
   parses. *)
let fnv1a64 init s =
  let p = 0x100000001B3L in
  let h = ref init in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) p) s;
  !h

let checksum_lines lines =
  let h =
    List.fold_left (fun h line -> fnv1a64 (fnv1a64 h line) "\n") 0xCBF29CE484222325L lines
  in
  Printf.sprintf "%016Lx" h

let snapshot_header_json s ~checksum =
  Jsonx.Obj
    [
      ("snapshot", Jsonx.Str "dse-session");
      ("format", Jsonx.Int 1);
      ("session", Jsonx.Str s.snap_session);
      ("layer", Jsonx.Str s.snap_layer);
      ("eol", Jsonx.Int s.snap_eol);
      ("base", Jsonx.Int s.snap_base);
      ("sig", Jsonx.Str s.snap_signature);
      ("checksum", Jsonx.Str checksum);
    ]

(* fsync the directory so the rename that published a snapshot (or a
   rewritten journal) is itself durable — without it a power cut can
   roll the directory back to a state that never coexisted with the
   file contents. *)
let fsync_dir dir =
  let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close dfd with _ -> ())
    (fun () -> try Iofault.fsync dfd with Unix.Unix_error (Unix.EINVAL, _, _) -> ())

let write_snapshot ~dir (s : snapshot) =
  let final = snapshot_path ~dir ~id:s.snap_session in
  let tmp = final ^ ".tmp" in
  let entry_lines = List.map entry_line s.snap_entries in
  let checksum = checksum_lines entry_lines in
  let header = Jsonx.to_string (snapshot_header_json s ~checksum) in
  let r =
    guard_io (fun () ->
        mkdir_p dir;
        let fd = openfile_append ~trunc:true tmp in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            List.iter
              (fun line ->
                let buf = Bytes.of_string (line ^ "\n") in
                write_all fd buf 0 (Bytes.length buf))
              (header :: entry_lines);
            Iofault.fsync fd);
        (* publish: atomic rename, then make the rename itself durable.
           A crash (or injected fault) before the rename leaves the old
           state intact; after it, the new snapshot is the state — at
           every instant exactly one valid lineage exists. *)
        Iofault.rename tmp final;
        fsync_dir dir)
  in
  if Result.is_ok r then Obs.incr m_snapshots;
  r

let load_snapshot ~dir ~id =
  let file = snapshot_path ~dir ~id in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "journal: no snapshot for %S" id)
  else
    match guard_io (fun () -> In_channel.with_open_bin file In_channel.input_all) with
    | Error _ as e -> e
    | Ok content -> (
      match complete_lines content with
      | [] -> Error "journal: empty snapshot (missing header)"
      | header_line :: entry_lines -> (
        let ( let* ) = Result.bind in
        let* json =
          match Jsonx.of_string header_line with
          | Error msg -> Error ("journal: snapshot header: " ^ msg)
          | Ok json -> Ok json
        in
        let* () =
          match Jsonx.str_member "snapshot" json with
          | Some "dse-session" -> Ok ()
          | Some other -> Error (Printf.sprintf "journal: not a session snapshot (kind %S)" other)
          | None -> Error "journal: malformed snapshot header"
        in
        let* snap_session, snap_layer, snap_eol, snap_base, snap_signature, checksum =
          match
            ( Jsonx.str_member "session" json,
              Jsonx.str_member "layer" json,
              Option.bind (Jsonx.member "eol" json) Jsonx.to_int,
              Option.bind (Jsonx.member "base" json) Jsonx.to_int,
              Jsonx.str_member "sig" json,
              Jsonx.str_member "checksum" json )
          with
          | Some s, Some l, Some e, Some b, Some g, Some c when b >= 0 -> Ok (s, l, e, b, g, c)
          | _ -> Error "journal: malformed snapshot header"
        in
        let entry_lines = List.filter (fun l -> not (String.equal l "")) entry_lines in
        let* () =
          let actual = checksum_lines entry_lines in
          if String.equal actual checksum then Ok ()
          else
            Error
              (Printf.sprintf "journal: snapshot checksum mismatch (stored %s, computed %s)"
                 checksum actual)
        in
        let* snap_entries = parse_entries ~first_line:2 entry_lines in
        Ok { snap_session; snap_layer; snap_eol; snap_base; snap_signature; snap_entries }))

let remove_snapshot ~dir ~id =
  try Sys.remove (snapshot_path ~dir ~id) with Sys_error _ -> ()

let rewrite ?(sync = false) ~dir header entries =
  let final = path ~dir ~id:header.session in
  let tmp = final ^ ".tmp" in
  let lines = Jsonx.to_string (header_json header) :: List.map entry_line entries in
  match
    guard_io (fun () ->
        mkdir_p dir;
        let fd = openfile_append ~trunc:true tmp in
        (try
           List.iter
             (fun line ->
               let buf = Bytes.of_string (line ^ "\n") in
               write_all fd buf 0 (Bytes.length buf))
             lines;
           Iofault.fsync fd;
           (* same publish discipline as snapshots: the old journal
              stays the journal until the rename lands *)
           Iofault.rename tmp final;
           fsync_dir dir
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd)
  with
  | Error _ as e -> e
  | Ok fd ->
    (* the descriptor already points at the renamed inode, so the same
       handle keeps appending to the new journal *)
    let t = make_t ~fd ~sync in
    t.off <- List.fold_left (fun n l -> n + String.length l + 1) 0 lines;
    t.entries <- List.length entries;
    t.seq <- List.length lines;
    t.synced <- t.seq;
    Ok t

(* The full effective history of a session: its snapshot's compacted
   script (if the journal has been truncated past entry 0) followed by
   the tail entries the snapshot does not subsume.  Replaying this from
   a pristine session reproduces the live state — the snapshot writer
   verified exactly that before any truncation happened. *)
let load_effective ~dir ~id =
  let ( let* ) = Result.bind in
  let* header, tail = load ~dir ~id in
  if header.base = 0 then Ok (header, tail)
  else
    let* snap = load_snapshot ~dir ~id in
    let total = header.base + List.length tail in
    if snap.snap_base < header.base || snap.snap_base > total then
      Error
        (Printf.sprintf
           "journal: snapshot base %d outside journal window [%d, %d] for %S"
           snap.snap_base header.base total id)
    else if not (String.equal snap.snap_layer header.layer) || snap.snap_eol <> header.eol then
      Error (Printf.sprintf "journal: snapshot layer mismatch for %S" id)
    else begin
      let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
      Ok ({ header with base = 0 }, snap.snap_entries @ drop (snap.snap_base - header.base) tail)
    end

let branch ?(sync = false) ~dir ~from_id ~to_id () =
  let ( let* ) = Result.bind in
  let* header, entries = load_effective ~dir ~id:from_id in
  let* t = create ~sync ~dir { header with session = to_id } in
  let result =
    List.fold_left
      (fun acc e ->
        Result.bind acc (fun _ ->
            Result.map ignore (append t ~req:e.req ~signature:e.signature)))
      (Ok ()) entries
  in
  close t;
  result

let remove ~dir ~id =
  (try Sys.remove (path ~dir ~id) with Sys_error _ -> ());
  remove_snapshot ~dir ~id
