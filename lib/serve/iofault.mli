(** Deterministic I/O fault injection under the durability layer.

    The disk-facing counterpart of {!Ds_layer.Faultsim}: where Faultsim
    breaks constraint formulas above the engine, this shim breaks the
    primitive file operations {e below} the {!Journal} — short writes,
    [EIO] on fsync, torn renames, [ENOSPC] — so the whole degradation
    contract ("every injected fault leaves one valid journal lineage;
    the client resumes and replays what reached disk") can be exercised
    end to end, in-process by the test suite and across real processes
    by [scripts/chaos_soak.sh] (armed from the environment).

    Every journal/snapshot byte goes through {!write}, {!fsync},
    {!rename} and {!ftruncate}.  Unarmed (the default) they are the
    Unix primitives with zero overhead beyond one atomic load.  Armed,
    each call draws from a splitmix-style PRNG seeded from [seed] and a
    global call counter, so a given seed reproduces the exact same
    fault sequence — flaky disks you can re-run.

    Injected faults raise [Unix.Unix_error] with the function field
    ["inject:<op>"], which the journal's error guard converts into the
    same structured [Error _] a real disk failure produces — callers
    cannot tell injection from hardware, which is the point.

    {2 Fault taxonomy}

    - [Short_write]: half the buffer really reaches the file, then the
      write errors — the torn-line shape a crash mid-write leaves;
    - [Eio]: the operation fails without touching the file (an fsync
      that errors has durability {e unknown}, the case the service's
      evict-and-resume path exists for);
    - [Enospc]: the disk is full — nothing written;
    - [Torn_rename]: the atomic publish step of a snapshot/compaction
      never happens (the temp file stays, the target is untouched) —
      the crash-before-rename half of the compaction story.  The
      crash-{e after}-rename half is indistinguishable from success. *)

type op = Write | Fsync | Rename | Truncate
type mode = Eio | Enospc | Short_write | Torn_rename

val op_name : op -> string
(** ["write"] | ["fsync"] | ["rename"] | ["truncate"]. *)

val mode_name : mode -> string
(** ["eio"] | ["enospc"] | ["short"] | ["torn"]. *)

type plan = (op * mode * float) list
(** Which operations fail, how, and with what per-call probability. *)

val parse_plan : string -> (plan, string) result
(** Parse a spec like ["fsync=eio,write=short:0.05"] — comma-separated
    [op=mode[:probability]] items, probability defaulting to 1.  Mode
    must make sense for the op ([short] only on writes, [torn] only on
    renames). *)

val arm : ?seed:int -> plan -> unit
(** Start injecting.  Replaces any previous plan; resets the injected
    counters and the deterministic draw sequence. *)

val disarm : unit -> unit
(** Stop injecting (the shim reverts to the bare Unix primitives). *)

val armed : unit -> bool

val arm_from_env : unit -> bool
(** Arm from [DSE_IO_FAULTS] (a {!parse_plan} spec) and
    [DSE_IO_FAULT_SEED] (int, default 0); returns whether a plan was
    armed.  Malformed specs fail fast with [Invalid_argument] rather
    than silently running a chaos soak without faults. *)

val injected : unit -> int
(** Total faults injected since the last {!arm}. *)

val injected_for : op -> int

(* The shim points: drop-in signatures for the Unix primitives. *)

val write : Unix.file_descr -> bytes -> int -> int -> int
val fsync : Unix.file_descr -> unit
val rename : string -> string -> unit
val ftruncate : Unix.file_descr -> int -> unit
