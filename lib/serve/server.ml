module Obs = Ds_obs.Obs

type t = {
  service : Service.t;
  socket : string;
  listen_fd : Unix.file_descr;
  pool : int;
  max_request : int;
  queue : (Unix.file_descr * float) option Queue.t;
      (* (connection, accept timestamp) — the wait from accept to a
         worker picking it up is the server-side queueing delay
         reported under [stats].  None = worker stop sentinel. *)
  lock : Mutex.t;
  nonempty : Condition.t;
  stop : bool Atomic.t;
  active : (Unix.file_descr, unit) Hashtbl.t;  (* connections being served *)
  mutable served : int;
  idle_timeout : float option;
      (* close connections idle longer than this (seconds); None = keep
         the historical block-forever behaviour *)
  pipeline_depth : int;
      (* per-connection decode-ahead bound: how many requests the
         reader thread may hold undispatched *)
  idle_reaped : Obs.counter;
}

(* DSE_IDLE_TIMEOUT: seconds of client silence before the server closes
   the connection (default off) — leaked clients must not pin fleet
   router/worker fds forever. *)
let env_idle_timeout () =
  match Sys.getenv_opt "DSE_IDLE_TIMEOUT" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0.0 -> Some f
    | _ -> None)
  | None -> None

(* DSE_PIPELINE_DEPTH: how many requests one connection may have in
   flight (decoded ahead of dispatch) before the reader stops reading;
   default 16, clamped to 1..1024.  Depth 1 is the historical strict
   request/reply lockstep. *)
let env_pipeline_depth () =
  match Sys.getenv_opt "DSE_PIPELINE_DEPTH" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d -> Some (Stdlib.min 1024 (Stdlib.max 1 d))
    | None -> None)
  | None -> None

let create ~socket ?(pool = 8) ?(max_request = 1024 * 1024) ?pipeline_depth ?idle_timeout
    service =
  (* replace a stale socket file from a previous (crashed) server *)
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let idle_timeout =
    match idle_timeout with Some _ as t -> t | None -> env_idle_timeout ()
  in
  let pipeline_depth =
    match pipeline_depth with
    | Some d -> Stdlib.min 1024 (Stdlib.max 1 d)
    | None -> ( match env_pipeline_depth () with Some d -> d | None -> 16)
  in
  {
    service;
    socket;
    listen_fd;
    pool = Stdlib.max 1 pool;
    max_request = Stdlib.max 1024 max_request;
    queue = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    stop = Atomic.make false;
    active = Hashtbl.create 16;
    served = 0;
    idle_timeout;
    pipeline_depth;
    idle_reaped = Obs.counter (Service.registry service) "dse_serve_idle_reaped_total";
  }

(* Callable from a signal handler: must not take locks (the signalled
   thread may already hold them).  [serve]'s accept loop polls the flag
   and performs the actual teardown. *)
let shutdown t = Atomic.set t.stop true

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop_on _ = shutdown t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on)

let connections_served t =
  Mutex.lock t.lock;
  let n = t.served in
  Mutex.unlock t.lock;
  n

let try_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One connection, pipelined: a reader systhread decodes request lines
   ahead of dispatch into a bounded queue (at most [pipeline_depth]
   undispatched), while the owning worker pops, handles, and appends
   each reply to a per-connection coalescing buffer.  The buffer is
   flushed exactly when the queue runs momentarily dry — so a client
   sending one request at a time gets one write per reply (the
   historical behaviour), while a pipelining client gets its whole
   burst answered in a single flush.  Replies are appended in pop
   order, which is read order: FIFO holds by construction.

   The whole accept→dispatch→reply life of the connection is one
   [server.connection] span; the per-request [op.*] spans
   {!Service.handle} opens nest under it (same worker domain/thread). *)
let serve_connection t ~queue_wait_us fd =
  let sp =
    Obs.span_begin "server.connection"
      ~attrs:[ ("queue_wait_us", Printf.sprintf "%.1f" queue_wait_us) ]
  in
  let requests = ref 0 in
  Fun.protect
    ~finally:(fun () -> Obs.span_end sp ~attrs:[ ("requests", string_of_int !requests) ])
    (fun () ->
      let reader = Lineio.create ?idle_timeout:t.idle_timeout fd in
      let out = Buffer.create 4096 in
      let qlock = Mutex.create () in
      let qcond = Condition.create () in
      (* each queued line carries its decode timestamp: the time from
         here to the worker's pop is the request's pipelined queue
         wait, attributed as the op span's [queue_us] phase *)
      let q : (Lineio.result * float) Queue.t = Queue.create () in
      let reader_done = ref false in
      let closing = ref false in
      let push item =
        Mutex.lock qlock;
        while Queue.length q >= t.pipeline_depth && not !closing do
          Condition.wait qcond qlock
        done;
        if not !closing then Queue.push (item, Unix.gettimeofday ()) q;
        Condition.broadcast qcond;
        Mutex.unlock qlock
      in
      let reader_thread =
        Thread.create
          (fun () ->
            let continue = ref true in
            while !continue do
              let item =
                try Lineio.read_line ~limit:t.max_request reader
                with End_of_file | Sys_error _ | Unix.Unix_error _ -> Lineio.Eof
              in
              (match item with Lineio.Eof | Lineio.Idle -> continue := false | _ -> ());
              push item;
              if !closing then continue := false
            done;
            Mutex.lock qlock;
            reader_done := true;
            Condition.broadcast qcond;
            Mutex.unlock qlock)
          ()
      in
      let flush_out () = if Buffer.length out > 0 then Lineio.flush_buffer fd out in
      let pop () =
        Mutex.lock qlock;
        if Queue.is_empty q && not !reader_done then begin
          (* the queue ran dry: everything answered so far must reach
             the client before we block for more input *)
          Mutex.unlock qlock;
          flush_out ();
          Mutex.lock qlock
        end;
        while Queue.is_empty q && not !reader_done do
          Condition.wait qcond qlock
        done;
        let item = if Queue.is_empty q then None else Some (Queue.pop q) in
        Condition.broadcast qcond;
        Mutex.unlock qlock;
        item
      in
      (try
         let rec loop () =
           match pop () with
           | None | Some (Lineio.Eof, _) -> ()
           | Some (Lineio.Idle, _) ->
             (* reap: the client has been silent past DSE_IDLE_TIMEOUT;
                dropping the connection frees the fd and the worker (a
                live client reconnects transparently) *)
             Obs.incr t.idle_reaped
           | Some (Lineio.Overflow, _) ->
             incr requests;
             Protocol.print_response_into out
               (Protocol.Failed
                  ( Protocol.Request_too_large,
                    Printf.sprintf "request line exceeds %d bytes" t.max_request ));
             Buffer.add_char out '\n';
             if not (Atomic.get t.stop) then loop ()
           | Some (Lineio.Line line, pushed_at) ->
             let line = String.trim line in
             if not (String.equal line "") then begin
               incr requests;
               if Atomic.get t.stop then
                 Protocol.print_response_into out
                   (Protocol.Failed (Protocol.Shutting_down, "server is shutting down"))
               else begin
                 let queue_us = (Unix.gettimeofday () -. pushed_at) *. 1.0e6 in
                 Service.handle_line_into ~queue_us t.service out line
               end;
               Buffer.add_char out '\n'
             end;
             if not (Atomic.get t.stop) then loop ()
         in
         loop ();
         flush_out ()
       with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
      (* retire the reader before closing the fd: wake it whether it is
         blocked on the socket (SHUTDOWN_RECEIVE -> Eof) or on a full
         queue ([closing] broadcast) *)
      Mutex.lock qlock;
      closing := true;
      Condition.broadcast qcond;
      Mutex.unlock qlock;
      (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
      (try Thread.join reader_thread with _ -> ());
      Mutex.lock t.lock;
      Hashtbl.remove t.active fd;
      t.served <- t.served + 1;
      (* close while holding the lock: teardown shuts down in-flight fds
         under the same lock, so it can never race this close and hit a
         descriptor number the kernel has already recycled *)
      try_close fd;
      Mutex.unlock t.lock)

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue do
      Condition.wait t.nonempty t.lock
    done;
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some (fd, accepted) ->
      let queue_wait_us = (Unix.gettimeofday () -. accepted) *. 1.0e6 in
      Service.record_queue_wait t.service queue_wait_us;
      serve_connection t ~queue_wait_us fd;
      loop ()
  in
  loop ()

let push t job =
  Mutex.lock t.lock;
  Queue.push job t.queue;
  (match job with
  | Some (fd, _) -> Hashtbl.replace t.active fd ()
  | None -> ());
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

type worker_handle = W_domain of unit Stdlib.Domain.t | W_thread of Thread.t

let join_worker = function
  | W_domain d -> Stdlib.Domain.join d
  | W_thread th -> Thread.join th

let serve t =
  (* Workers up to the core count are domains: request handling
     (candidate sweeps, report rendering) is compute, {!Service.handle}
     no longer serializes requests, and separate domains execute them
     in parallel.  Workers beyond the core count are systhreads of the
     main domain: they still overlap blocking I/O (the runtime lock
     drops during reads) but add no domains — every domain beyond the
     core count joins each GC's stop-the-world handshake from a
     timeshared CPU, which costs more than the parallelism it could
     ever add.  (On a single-core host this makes all workers
     systhreads, which is optimal there.) *)
  let max_domains = Stdlib.Domain.recommended_domain_count () - 1 in
  let workers =
    List.init t.pool (fun i ->
        if i < max_domains then W_domain (Stdlib.Domain.spawn (worker t))
        else W_thread (Thread.create (worker t) ()))
  in
  (* accept loop: select with a timeout so the stop flag (set by
     [shutdown] or a signal handler) is noticed promptly *)
  let rec accept_loop () =
    if Atomic.get t.stop then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> push t (Some (fd, Unix.gettimeofday ()))
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* graceful teardown: stop accepting, wake every worker, unblock the
     ones parked on an idle connection's read, join, clean up the file *)
  try_close t.listen_fd;
  List.iter (fun _ -> push t None) workers;
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.active;
  Mutex.unlock t.lock;
  List.iter join_worker workers;
  try Unix.unlink t.socket with Unix.Unix_error _ -> ()
