(** A small blocking client for the exploration service.

    One connection, synchronous request/reply — exactly the discipline
    the protocol guarantees (one reply line per request line, in
    order).  {!pipeline} exploits the same discipline the other way:
    N requests written in one flush, N replies read back in order.
    Used by [dse client], the service tests and the bench harness; a
    client in any other language is a socket plus a JSON codec.

    Reply reads are {e bounded} ([max_response], the symmetric twin of
    the server's [max_request]): a misbehaving peer feeding the client
    an endless line produces a structured [response_too_large] error —
    the oversized line is drained through its newline, so the
    connection stays ordered and usable — instead of unbounded
    allocation. *)

type t

val connect : ?max_response:int -> socket:string -> unit -> (t, string) result
(** [max_response] bounds each reply line (default 8 MiB — wider than
    the server's request bound because candidate pages, reports and
    merged fleet metrics are legitimately bigger than any request;
    floor 1024). *)

val fd : t -> Unix.file_descr
(** The underlying descriptor — for callers that tune socket options
    (the fleet's health probe sets a receive timeout on it). *)

val backoff_schedule : ?base:float -> ?cap:float -> attempts:int -> unit -> float list
(** The retry delays {!connect_retry} sleeps between probes: a jittered
    exponential — [base * 2^i] (default base 20ms) scaled by a
    deterministic per-attempt factor in [0.75, 1.25), capped at [cap]
    (default 0.5s).  Deterministic, so the schedule is unit-testable;
    the jitter keeps clients started together from re-colliding on
    every probe. *)

val connect_retry :
  ?attempts:int ->
  ?base:float ->
  ?cap:float ->
  ?deadline:float ->
  ?max_response:int ->
  socket:string ->
  unit ->
  (t, string) result
(** Retry {!connect} while the server is still starting: up to
    [attempts] (default 50) probes separated by {!backoff_schedule}
    delays.  Worst-case total wait with the defaults is ~23s (the
    schedule caps at 0.5s per gap).

    [deadline] caps the {e total} wall-clock budget in seconds: no
    sleep extends past it, and once it is spent the next failure
    returns immediately with a distinct error ({!deadline_exceeded}
    recognizes it) — the fail-fast path for a server that is dead
    rather than starting. *)

val deadline_exceeded : string -> bool
(** [true] exactly for errors produced by an exhausted
    [connect_retry ~deadline] budget. *)

val response_too_large : string -> bool
(** [true] exactly for errors produced by a reply line exceeding the
    client's [max_response] bound.  Deterministic — re-sending the
    request would produce the same oversized reply, so {!Durable}
    never retries it. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, block for its reply.  Errors are transport-level
    (connection lost, malformed reply line); protocol-level failures
    come back as [Ok (Failed _)] — including a locally-minted
    [Response_too_large] when the reply exceeded [max_response]. *)

val request_line : t -> string -> (string, string) result
(** Raw variant: one already-encoded request line -> the reply line.
    An oversized reply is [Error] with a {!response_too_large}
    message. *)

val pipeline : t -> string list -> (string, string) result list
(** N already-encoded request lines, one coalesced write (a single
    flush carries all of them), then the N reply lines in request
    order.  Result [k] corresponds to line [k].  A
    [response_too_large] reply is consumed in order (later results are
    unaffected); a transport failure at reply [k] fails results
    [k..N-1]. *)

val close : t -> unit

val with_client : socket:string -> (t -> 'a) -> ('a, string) result
(** Connect, run, always close. *)

(** A persistent connection that survives server restarts.

    {!t} dies with its socket: an EPIPE or ECONNRESET (a worker
    restarting, an idle-reaped connection) surfaces as an error and the
    caller reopens.  [Durable] keeps {e one} connection alive across
    requests and, when the transport fails, transparently reconnects
    (under the {!backoff_schedule} delays and the [?deadline] total
    wall budget given at {!Durable.create}) and re-sends the request.
    The price of transparency is at-least-once delivery: a request
    whose reply was lost may execute twice, which the layer's
    idempotent mutations absorb.  Reconnect and re-send counts are
    exposed — the fleet bench reports them as client-side evidence of
    how disruptive a worker kill was. *)
module Durable : sig
  type t

  val create :
    ?attempts:int ->
    ?base:float ->
    ?cap:float ->
    ?deadline:float ->
    ?max_response:int ->
    socket:string ->
    unit ->
    t
  (** No I/O happens here; the first {!request} connects.  [attempts]/
      [base]/[cap] shape the per-request retry schedule, [deadline]
      caps each request's total wall time (connect + sleeps + sends),
      [max_response] bounds reply lines as in {!Client.connect}. *)

  val request :
    ?retry_failures:bool -> t -> Protocol.request -> (Protocol.response, string) result
  (** Like {!Client.request}, plus transparent reconnect-and-resend on
      transport failure.  [retry_failures] (default false) also
      re-sends when the reply is a structured {e retryable} failure
      ({!Protocol.retryable}) — the fleet worker-crash window.  An
      oversized reply comes back as [Ok (Failed (Response_too_large,
      _))] and is never retried. *)

  val request_line : t -> string -> (string, string) result
  (** Raw variant of {!request} (no [retry_failures] — the caller owns
      reply decoding). *)

  val request_many :
    ?retry_failures:bool -> t -> Protocol.request list -> (Protocol.response, string) result list
  (** Pipelined group send with {e suffix-only} resend: all requests go
      out in one flush; on a mid-group transport failure, FIFO ordering
      proves which prefix was answered, so only the unanswered suffix
      is re-sent after reconnecting.  Result [k] corresponds to request
      [k].  With [retry_failures], retryable structured failures inside
      the group are settled by individual re-sends (preserving every
      other slot's result). *)

  val requests : t -> int
  val reconnects : t -> int
  (** Times the connection had to be re-established after the first. *)

  val retried : t -> int
  (** Requests re-sent (after a reconnect or a retryable failure). *)

  val stats_json : t -> Jsonx.t
  (** [{"requests":..,"reconnects":..,"retried":..}] for bench
      reports. *)

  val close : t -> unit
end
