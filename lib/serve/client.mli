(** A small blocking client for the exploration service.

    One connection, synchronous request/reply — exactly the discipline
    the protocol guarantees (one reply line per request line, in
    order).  Used by [dse client], the service tests and the bench
    harness; a client in any other language is a socket plus a JSON
    codec. *)

type t

val connect : socket:string -> (t, string) result

val fd : t -> Unix.file_descr
(** The underlying descriptor — for callers that tune socket options
    (the fleet's health probe sets a receive timeout on it). *)

val backoff_schedule : ?base:float -> ?cap:float -> attempts:int -> unit -> float list
(** The retry delays {!connect_retry} sleeps between probes: a jittered
    exponential — [base * 2^i] (default base 20ms) scaled by a
    deterministic per-attempt factor in [0.75, 1.25), capped at [cap]
    (default 0.5s).  Deterministic, so the schedule is unit-testable;
    the jitter keeps clients started together from re-colliding on
    every probe. *)

val connect_retry :
  ?attempts:int ->
  ?base:float ->
  ?cap:float ->
  ?deadline:float ->
  socket:string ->
  unit ->
  (t, string) result
(** Retry {!connect} while the server is still starting: up to
    [attempts] (default 50) probes separated by {!backoff_schedule}
    delays.  Worst-case total wait with the defaults is ~23s (the
    schedule caps at 0.5s per gap).

    [deadline] caps the {e total} wall-clock budget in seconds: no
    sleep extends past it, and once it is spent the next failure
    returns immediately with a distinct error ({!deadline_exceeded}
    recognizes it) — the fail-fast path for a server that is dead
    rather than starting. *)

val deadline_exceeded : string -> bool
(** [true] exactly for errors produced by an exhausted
    [connect_retry ~deadline] budget. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, block for its reply.  Errors are transport-level
    (connection lost, malformed reply line); protocol-level failures
    come back as [Ok (Failed _)]. *)

val request_line : t -> string -> (string, string) result
(** Raw variant: one already-encoded request line -> the reply line. *)

val close : t -> unit

val with_client : socket:string -> (t -> 'a) -> ('a, string) result
(** Connect, run, always close. *)

(** A persistent connection that survives server restarts.

    {!t} dies with its socket: an EPIPE or ECONNRESET (a worker
    restarting, an idle-reaped connection) surfaces as an error and the
    caller reopens.  [Durable] keeps {e one} connection alive across
    requests and, when the transport fails, transparently reconnects
    (under the {!backoff_schedule} delays and the [?deadline] total
    wall budget given at {!Durable.create}) and re-sends the request.
    The price of transparency is at-least-once delivery: a request
    whose reply was lost may execute twice, which the layer's
    idempotent mutations absorb.  Reconnect and re-send counts are
    exposed — the fleet bench reports them as client-side evidence of
    how disruptive a worker kill was. *)
module Durable : sig
  type t

  val create :
    ?attempts:int ->
    ?base:float ->
    ?cap:float ->
    ?deadline:float ->
    socket:string ->
    unit ->
    t
  (** No I/O happens here; the first {!request} connects.  [attempts]/
      [base]/[cap] shape the per-request retry schedule, [deadline]
      caps each request's total wall time (connect + sleeps + sends). *)

  val request :
    ?retry_failures:bool -> t -> Protocol.request -> (Protocol.response, string) result
  (** Like {!Client.request}, plus transparent reconnect-and-resend on
      transport failure.  [retry_failures] (default false) also
      re-sends when the reply is a structured {e retryable} failure
      ({!Protocol.retryable}) — the fleet worker-crash window. *)

  val request_line : t -> string -> (string, string) result
  (** Raw variant of {!request} (no [retry_failures] — the caller owns
      reply decoding). *)

  val requests : t -> int
  val reconnects : t -> int
  (** Times the connection had to be re-established after the first. *)

  val retried : t -> int
  (** Requests re-sent (after a reconnect or a retryable failure). *)

  val stats_json : t -> Jsonx.t
  (** [{"requests":..,"reconnects":..,"retried":..}] for bench
      reports. *)

  val close : t -> unit
end
