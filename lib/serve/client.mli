(** A small blocking client for the exploration service.

    One connection, synchronous request/reply — exactly the discipline
    the protocol guarantees (one reply line per request line, in
    order).  Used by [dse client], the service tests and the bench
    harness; a client in any other language is a socket plus a JSON
    codec. *)

type t

val connect : socket:string -> (t, string) result

val connect_retry : ?attempts:int -> ?delay_s:float -> socket:string -> unit -> (t, string) result
(** Retry {!connect} while the server is still starting ([attempts]
    (default 50) probes [delay_s] (default 0.1) apart). *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, block for its reply.  Errors are transport-level
    (connection lost, malformed reply line); protocol-level failures
    come back as [Ok (Failed _)]. *)

val request_line : t -> string -> (string, string) result
(** Raw variant: one already-encoded request line -> the reply line. *)

val close : t -> unit

val with_client : socket:string -> (t -> 'a) -> ('a, string) result
(** Connect, run, always close. *)
