(** The protocol handler: one value that turns {!Protocol.request}s
    into {!Protocol.response}s over a {!Store} of sessions.

    This is the single code path behind every front end — the
    Unix-socket {!Server}, the interactive [dse shell], and the bench
    harness all drive the same [handle] function, so a behaviour
    observed over the wire is the behaviour of the local shell and vice
    versa.

    {2 Concurrency}

    [handle] is safe to call from any number of domains at once; there
    is no global lock.  Read-only requests ([candidates], [ranges],
    [issues], [preview], [script], [trace], [health], [signature],
    [report], [stats]) take no exclusive lock at all — sessions are
    immutable values and the lineage caches ({!Ds_layer.Compliance},
    {!Ds_layer.Guard}) are internally synchronized.  Mutations ([set],
    [decide], [default], [retract], [annotate]) serialize {e per
    session id} via the store's slot locks; session creation ([open],
    [branch]) serializes on a single admission lock (creation is rare
    and must be atomic against duplicate ids).  Parsed layers are
    cached per (layer, eol): after the first open, opening a session
    costs a {!Ds_layer.Session.pristine} copy, not a re-parse.
    Per-op latency lives in a per-instance {!Ds_obs.Obs} registry
    (domain-striped histograms, [dse_request_us{op="..."}]); every
    [handle] also opens an [op.<name>] telemetry span.  See DESIGN.md
    sections 12 (locks) and 13 (observability).

    {2 Journaling}

    With a [journal_dir], every accepted mutating request ([open],
    [set]/[decide], [default], [retract], [annotate], [branch]) is
    appended to the session's {!Journal} before the reply is produced.
    [open] with ["resume":true] rebuilds the session by replaying its
    journal into a fresh instance of the layer, verifying the candidate
    signature recorded with every entry — the crash-recovery path.

    With [journal_sync], the fsync that makes an acknowledged mutation
    durable is group-committed ({!Journal.sync_to}) and taken after the
    session's slot lock is released: the reply still waits for
    durability, but concurrent mutations share disk flushes.

    A failed journal {e append} fails the request with the session
    unchanged.  A failed {e fsync} cannot: the mutation is already
    committed and visible, so the service evicts the session and the
    [journal_error] reply directs the client to re-open with resume —
    replay of what actually reached disk — rather than acknowledge
    state of unknown durability or invite a double-applying retry. *)

type config = {
  layers : (string * (eol:int -> Ds_layer.Session.t)) list;
      (** layer name -> session factory (see {!Ds_domains.Catalog}) *)
  journal_dir : string option;  (** [None] disables journaling *)
  journal_sync : bool;  (** fsync every append (default false) *)
  default_eol : int;  (** when [open] gives no ["eol"] *)
  default_merits : string list;  (** for [ranges]/[preview]/[report] without merits *)
  report_pareto : (string * string) option;  (** Pareto axes of [report] *)
  capacity : int;  (** LRU bound of the session table *)
  compact_after : int option;
      (** auto-compact a session's journal once its tail exceeds this
          many entries ([None] = only the explicit [compact] op and
          eviction compact) *)
}

val config :
  ?journal_dir:string ->
  ?journal_sync:bool ->
  ?default_eol:int ->
  ?default_merits:string list ->
  ?report_pareto:string * string ->
  ?capacity:int ->
  ?compact_after:int ->
  layers:(string * (eol:int -> Ds_layer.Session.t)) list ->
  unit ->
  config
(** Defaults: no journaling, no fsync, eol 768, no merits, no Pareto,
    capacity 64, no auto-compaction threshold. *)

type t

val create : config -> t

val handle :
  ?trace:string * string -> ?queue_us:float -> t -> Protocol.request -> Protocol.response
(** Dispatch one request.  Never raises: layer rejections come back as
    [rejected] replies, unexpected exceptions as [server_error].
    Safe to call concurrently from multiple domains.

    [trace] is the request's propagated [(trace_id, parent_span_id)]
    context (DESIGN.md 18): the [op.<name>] span becomes a
    remote-parented root ({!Ds_obs.Obs.span_begin_remote}), subject to
    head sampling.  [queue_us] is the accept-to-dispatch wait the
    transport measured; both it and the per-phase latency breakdown
    (slot lock, layer sweep, journal append, group-commit fsync, reply
    flush) are recorded as span attrs, and a request slower than
    [DSE_SLOW_MS] logs its span tree to the bounded slow log. *)

val registry : t -> Ds_obs.Obs.registry
(** The service's metrics registry ([dse_request_us{op="..."}]
    histograms and [dse_queue_wait_us]); the [metrics] protocol op
    exports it together with the engine's {!Ds_obs.Obs.default}. *)

val record_queue_wait : t -> float -> unit
(** Record one request's accept-to-dispatch wait (µs) in the
    [dse_queue_wait_us] histogram (surfaced by [stats] as [queue_wait]
    — the deprecation shim keeps the old spelling) — called by
    {!Server} when a worker dequeues a connection. *)

val handle_line : t -> string -> string
(** Wire-format convenience: parse one request line, dispatch, print
    the reply line (without trailing newline).  Never raises. *)

val handle_line_into : ?queue_us:float -> t -> Buffer.t -> string -> unit
(** {!handle_line} printed into a caller-owned buffer — the pipelined
    server appends each reply to its per-connection coalescing buffer
    without an intermediate string.  Extracts the line's ["trace"]
    member (if any) and times the reply print as the request's flush
    phase; [queue_us] is the per-line queue wait measured by the
    server's reader/worker handoff. *)

val session_count : t -> int

(** What a resume did: the reconstructed session, where it came from
    ([r_from_snapshot] — the checkpoint fast path; [r_fallback] — a
    snapshot existed but full history was replayed instead), and how
    much work it was ([r_replayed] total entries applied, of which
    [r_tail_replayed] came from the journal tail — the figure the
    compaction acceptance bound is asserted against). *)
type resume_info = {
  r_session : Ds_layer.Session.t;
  r_layer : string;
  r_eol : int;
  r_replayed : int;
  r_tail_replayed : int;
  r_from_snapshot : bool;
  r_fallback : bool;
}

val resume :
  ?prefer_snapshot:bool ->
  layers:(string * (eol:int -> Ds_layer.Session.t)) list ->
  dir:string ->
  id:string ->
  unit ->
  (resume_info, string) result
(** The bare replay engine behind [open --resume], usable without a
    service: load journal (and snapshot), instantiate the layer,
    re-apply and verify each recorded candidate signature.

    Recovery matrix: with a usable snapshot, replay is checkpoint
    script + tail; a snapshot that fails its checksum or replay falls
    back to full history while the journal still holds it (header base
    0), and is a hard error once the history has been truncated — a
    lineage that cannot be reconstructed fails loudly, never silently
    differently.  [prefer_snapshot:false] (the soak oracle) ignores the
    snapshot whenever full history is available. *)
