(** The Unix-domain-socket front end of the exploration service.

    Connection model: one listener thread accepts and enqueues
    connections; a bounded pool of {e worker domains} serves them, one
    connection per worker at a time (connection-per-worker over a
    bounded pool).  A connection is a sequence of request lines, each
    answered with exactly one reply line.  {!Service.handle} is safe
    for concurrent domains and serializes only per session id, so
    workers execute requests — including the compute-heavy candidate
    sweeps — in parallel, and a slow or stalled client only occupies
    its worker.  The wait from accept to worker pickup is recorded as
    the server-side queueing delay ([queue_wait] under [stats]).

    Each connection is {e pipelined}: a reader systhread decodes
    request lines ahead of dispatch into a bounded queue (up to the
    pipeline depth undispatched), and replies accumulate in a
    per-connection buffer that is flushed whenever the queue runs
    momentarily dry — a client keeping N requests in flight gets its
    burst answered through one coalesced write, while a strict
    request/reply client keeps the historical one-write-per-reply
    behaviour.  Replies always leave in request order (FIFO).

    Shutdown is graceful: {!shutdown} (typically called from a SIGTERM
    handler — see {!install_signal_handlers}) stops accepting, wakes
    the workers, lets in-flight requests finish, closes the
    connections, joins the pool and unlinks the socket file.  Journals
    are flushed per request, so even a SIGKILL loses at most the reply
    in flight — never an acknowledged mutation. *)

type t

val create :
  socket:string ->
  ?pool:int ->
  ?max_request:int ->
  ?pipeline_depth:int ->
  ?idle_timeout:float ->
  Service.t ->
  t
(** Bind and listen on [socket] (an existing stale socket file is
    replaced).  [pool] (default 8, minimum 1) is the worker domain
    count.  [max_request] (default 1 MiB, minimum 1 KiB) bounds the
    request line a connection may send: past it the rest of the line is
    drained and answered with a structured [request_too_large] error,
    the connection staying alive — a malformed client cannot grow an
    unbounded server-side buffer.  [pipeline_depth] (default 16,
    clamped to 1..1024; env [DSE_PIPELINE_DEPTH]) bounds how many
    requests one connection may have decoded ahead of dispatch — depth
    1 restores strict request/reply lockstep.  [idle_timeout]
    (seconds; default:
    the [DSE_IDLE_TIMEOUT] environment variable, else off) closes
    connections that send nothing for that long, counting each under
    [dse_serve_idle_reaped_total] in the service registry — leaked
    clients cannot pin worker fds.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val serve : t -> unit
(** Run until {!shutdown}; joins all workers before returning. *)

val shutdown : t -> unit
(** Idempotent, callable from any thread or from a signal handler. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT -> {!shutdown}; SIGPIPE -> ignored (a client
    hanging up mid-reply must not kill the server). *)

val connections_served : t -> int
