type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Ok fd -> Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | Error _ as e -> e
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message err))

let connect_retry ?(attempts = 50) ?(delay_s = 0.1) ~socket () =
  let rec go n =
    match connect ~socket with
    | Ok _ as ok -> ok
    | Error _ when n > 1 ->
      Thread.delay delay_s;
      go (n - 1)
    | Error _ as e -> e
  in
  go (Stdlib.max 1 attempts)

let request_line t line =
  try
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    match In_channel.input_line t.ic with
    | Some reply -> Ok reply
    | None -> Error "connection closed by server"
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let request t req =
  match request_line t (Jsonx.to_string (Protocol.json_of_request req)) with
  | Error _ as e -> e
  | Ok reply -> Protocol.response_of_string reply

let close t =
  close_out_noerr t.oc;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_client ~socket f =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
    let result = try Ok (f t) with e -> Error (Printexc.to_string e) in
    close t;
    result
