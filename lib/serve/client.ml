(* One connection: a bounded line reader over the raw fd (the
   symmetric twin of the server's [max_request] bound — a misbehaving
   peer cannot feed the client an unbounded reply line) and a reusable
   output buffer so pipelined sends coalesce into one write. *)
type t = { fd : Unix.file_descr; reader : Lineio.t; out : Buffer.t; max_response : int }

(* Replies are legitimately bigger than requests (candidate pages,
   rendered reports, merged fleet metrics), so the symmetric bound
   defaults wider than the server's 1 MiB request bound. *)
let default_max_response = 8 * 1024 * 1024

let connect ?(max_response = default_max_response) ~socket () =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Ok fd ->
    Ok
      {
        fd;
        reader = Lineio.create fd;
        out = Buffer.create 256;
        max_response = Stdlib.max 1024 max_response;
      }
  | Error _ as e -> e
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message err))

(* Deterministic jitter: the fractional part of (i+1) * the golden
   ratio is a low-discrepancy sequence in [0, 1) — successive attempts
   get well-spread factors without any random state, so the schedule is
   reproducible (unit-testable) yet two clients started together do not
   re-collide on every attempt the way a bare exponential would. *)
let fd t = t.fd

let jitter i =
  let x = float_of_int (i + 1) *. 0.6180339887498949 in
  x -. floor x

let backoff_schedule ?(base = 0.02) ?(cap = 0.5) ~attempts () =
  List.init (Stdlib.max 0 attempts) (fun i ->
      let d = base *. (2.0 ** float_of_int i) *. (0.75 +. (0.5 *. jitter i)) in
      Float.min cap d)

let deadline_prefix = "deadline_exceeded: "

let deadline_exceeded msg =
  let n = String.length deadline_prefix in
  String.length msg >= n && String.equal (String.sub msg 0 n) deadline_prefix

let too_large_prefix = "response_too_large: "

let response_too_large msg =
  let n = String.length too_large_prefix in
  String.length msg >= n && String.equal (String.sub msg 0 n) too_large_prefix

let connect_retry ?(attempts = 50) ?(base = 0.02) ?(cap = 0.5) ?deadline ?max_response
    ~socket () =
  let t0 = Unix.gettimeofday () in
  let budget_left () =
    match deadline with
    | None -> infinity
    | Some d -> d -. (Unix.gettimeofday () -. t0)
  in
  let give_up last_err =
    Error
      (Printf.sprintf "%stotal retry budget of %.3fs exhausted (%s)" deadline_prefix
         (Option.value ~default:0.0 deadline) last_err)
  in
  let rec go = function
    | [] -> (
      match connect ?max_response ~socket () with
      | Ok _ as ok -> ok
      | Error msg when budget_left () < 0.0 -> give_up msg
      | Error _ as e -> e)
    | delay :: rest -> (
      match connect ?max_response ~socket () with
      | Ok _ as ok -> ok
      | Error msg ->
        (* the deadline is a total wall budget: never sleep past it,
           and fail with a distinct, recognizable error — a dead server
           should fail fast, not burn the whole exponential schedule *)
        let left = budget_left () in
        if left <= 0.0 then give_up msg
        else begin
          Thread.delay (Float.min delay left);
          go rest
        end)
  in
  (* the schedule has attempts-1 gaps: no sleep after the last probe *)
  go (backoff_schedule ~base ~cap ~attempts:(Stdlib.max 1 attempts - 1) ())

(* One bounded reply line.  An oversized line is drained through its
   newline by the reader, so the connection stays ordered and usable —
   the error is deterministic and final, never a reason to resend. *)
let read_reply t =
  match Lineio.read_line ~limit:t.max_response t.reader with
  | Lineio.Line reply -> Ok reply
  | Lineio.Overflow ->
    Error (Printf.sprintf "%sreply line exceeds %d bytes" too_large_prefix t.max_response)
  | Lineio.Eof -> Error "connection closed by server"
  | Lineio.Idle -> Error "timed out waiting for a reply"

let send_lines t lines =
  Buffer.clear t.out;
  List.iter
    (fun line ->
      Buffer.add_string t.out line;
      Buffer.add_char t.out '\n')
    lines;
  Lineio.flush_buffer t.fd t.out

let send_request_line t line =
  try
    send_lines t [ line ];
    read_reply t
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

(* Splice a minted trace context into a raw request line that lacks
   one (telemetry on only).  Textual splice, not re-encode: the
   caller's bytes survive verbatim as a prefix, so raw-line callers
   ([dse client], the differential tests) stay byte-stable modulo the
   appended member.  Lines that are not single JSON objects pass
   through untouched — the server will reject them itself. *)
let trace_line line =
  if not (Ds_obs.Obs.enabled ()) then line
  else
    match Ds_obs.Obs.mint_trace_sampled () with
    | None -> line
    | Some trace -> (
      let s = String.trim line in
      let n = String.length s in
      if n >= 2 && s.[0] = '{' && s.[n - 1] = '}' then
        match Jsonx.of_string s with
        | Ok (Jsonx.Obj fields) when not (List.mem_assoc "trace" fields) ->
          Printf.sprintf "%s%s\"trace\":\"%s\"}"
            (String.sub s 0 (n - 1))
            (if fields = [] then "" else ",")
            trace
        | _ -> line
      else line)

let request_line t line = send_request_line t (trace_line line)

(* N requests in flight on one connection: one coalesced write (a
   single flush carries every line), then the N replies in request
   order — the FIFO guarantee the server's pipelined reader preserves.
   A [response_too_large] entry is {e answered} (its bytes were
   drained), so reading continues; a transport failure at reply [k]
   marks [k..] failed and stops. *)
let pipeline t lines =
  let n = List.length lines in
  match
    try
      send_lines t lines;
      Ok ()
    with
    | Sys_error msg -> Error msg
    | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  with
  | Error msg -> List.init n (fun _ -> Error msg)
  | Ok () ->
    let rec read acc k =
      if k >= n then List.rev acc
      else
        match try read_reply t with
          | Sys_error msg -> Error msg
          | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
        with
        | Ok _ as ok -> read (ok :: acc) (k + 1)
        | Error msg when response_too_large msg -> read (Error msg :: acc) (k + 1)
        | Error msg ->
          (* transport loss: every later reply is gone too *)
          List.rev_append acc (List.init (n - k) (fun _ -> Error msg))
    in
    read [] 0

(* Every sampled request leaves the client with a trace context
   (minted here when the caller did not supply a line of its own): the
   id seeds the fleet-wide span tree, and downstream hops re-derive
   the same head-sampling decision from it.  The decision itself is
   taken at mint time ({!Ds_obs.Obs.mint_trace_sampled}) — telemetry
   off or an unsampled id sends exactly the pre-trace encoding, so
   below-rate requests cost the fleet nothing. *)
let encode_traced req =
  let json = Protocol.json_of_request req in
  match Ds_obs.Obs.mint_trace_sampled () with
  | Some trace -> Jsonx.to_string (Protocol.attach_trace ~trace json)
  | None -> Jsonx.to_string json

let request t req =
  match send_request_line t (encode_traced req) with
  | Ok reply -> Protocol.response_of_string reply
  | Error msg when response_too_large msg -> Ok (Protocol.Failed (Protocol.Response_too_large, msg))
  | Error _ as e -> e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_client ~socket f =
  match connect ~socket () with
  | Error _ as e -> e
  | Ok t ->
    let result = try Ok (f t) with e -> Error (Printexc.to_string e) in
    close t;
    result

(* ------------------------------------------------------------------ *)
(* Durable client                                                      *)

module Durable = struct
  type stats = { mutable requests : int; mutable reconnects : int; mutable retried : int }

  type nonrec t = {
    socket : string;
    attempts : int;
    base : float;
    cap : float;
    deadline : float option;
    max_response : int option;
    mutable conn : t option;
    mutable ever_connected : bool;
    st : stats;
  }

  let create ?(attempts = 50) ?(base = 0.02) ?(cap = 0.5) ?deadline ?max_response ~socket () =
    {
      socket;
      attempts;
      base;
      cap;
      deadline;
      max_response;
      conn = None;
      ever_connected = false;
      st = { requests = 0; reconnects = 0; retried = 0 };
    }

  let drop d =
    match d.conn with
    | Some c ->
      close c;
      d.conn <- None
    | None -> ()

  let ensure_conn ?deadline d =
    match d.conn with
    | Some c -> Ok c
    | None -> (
      match
        connect_retry ~attempts:d.attempts ~base:d.base ~cap:d.cap ?deadline
          ?max_response:d.max_response ~socket:d.socket ()
      with
      | Ok c ->
        if d.ever_connected then d.st.reconnects <- d.st.reconnects + 1;
        d.ever_connected <- true;
        d.conn <- Some c;
        Ok c
      | Error _ as e -> e)

  let exhausted = deadline_prefix ^ "request retry budget exhausted"

  (* One request over the persistent connection.  A transport failure
     (EPIPE, ECONNRESET, reply stream closed — the shapes a worker
     restart produces) drops the connection and re-sends the line on a
     fresh one, sleeping the jittered exponential schedule between
     tries, all under the one [deadline] wall budget.  The protocol
     guarantees one reply per request, so a re-send after a lost reply
     re-executes the request — callers retrying mutations get the
     layer's idempotent semantics (set to the same value is a no-op).
     A [response_too_large] reply is deterministic — never resent. *)
  let request_line d line =
    let t0 = Unix.gettimeofday () in
    let budget_left () =
      match d.deadline with
      | None -> infinity
      | Some dl -> dl -. (Unix.gettimeofday () -. t0)
    in
    d.st.requests <- d.st.requests + 1;
    let rec go delays =
      let remaining = budget_left () in
      let deadline =
        match d.deadline with None -> None | Some _ -> Some (Float.max 0.0 remaining)
      in
      match ensure_conn ?deadline d with
      | Error _ as e -> e
      | Ok c -> (
        match request_line c line with
        | Ok _ as ok -> ok
        | Error msg when response_too_large msg -> Error msg
        | Error msg -> (
          drop d;
          match delays with
          | [] -> Error msg
          | delay :: rest ->
            let left = budget_left () in
            if left <= 0.0 then Error exhausted
            else begin
              Thread.delay (Float.min delay left);
              d.st.retried <- d.st.retried + 1;
              go rest
            end))
    in
    go (backoff_schedule ~base:d.base ~cap:d.cap ~attempts:d.attempts ())

  (* [retry_failures] additionally re-sends on a structured retryable
     failure ([session_unavailable], [shutting_down]): the fleet's
     worker-crash window, where the supervisor needs a moment to
     restart the shard before the session answers again. *)
  let request ?(retry_failures = false) d req =
    (* minted once: a re-send after a lost reply is the same logical
       request, so it keeps its trace id *)
    let line = encode_traced req in
    let t0 = Unix.gettimeofday () in
    let budget_left () =
      match d.deadline with
      | None -> infinity
      | Some dl -> dl -. (Unix.gettimeofday () -. t0)
    in
    let rec go delays =
      match request_line d line with
      | Error msg when response_too_large msg ->
        Ok (Protocol.Failed (Protocol.Response_too_large, msg))
      | Error _ as e -> e
      | Ok reply -> (
        match Protocol.response_of_string reply with
        | Ok (Protocol.Failed (code, _)) as r when retry_failures && Protocol.retryable code
          -> (
          match delays with
          | [] -> r
          | delay :: rest ->
            let left = budget_left () in
            if left <= 0.0 then r
            else begin
              Thread.delay (Float.min delay left);
              d.st.retried <- d.st.retried + 1;
              go rest
            end)
        | r -> r)
    in
    go (backoff_schedule ~base:d.base ~cap:d.cap ~attempts:d.attempts ())

  (* Pipelined group send with suffix-only resend.  FIFO ordering means
     a transport failure after [k] replies proves requests [0..k-1]
     executed and answered — only the unanswered suffix is re-sent on
     the fresh connection, so a mid-group worker restart costs one
     reconnect, not a full-group replay.  (The first unanswered request
     itself may have executed before the crash — the same at-least-once
     caveat as single-request resend.) *)
  let pipeline_lines d lines =
    let lines = Array.of_list lines in
    let n = Array.length lines in
    let results = Array.make n (Error "never sent") in
    let answered = ref 0 in
    d.st.requests <- d.st.requests + n;
    let t0 = Unix.gettimeofday () in
    let budget_left () =
      match d.deadline with
      | None -> infinity
      | Some dl -> dl -. (Unix.gettimeofday () -. t0)
    in
    let rec go delays =
      if !answered >= n then ()
      else begin
        let remaining = budget_left () in
        let deadline =
          match d.deadline with None -> None | Some _ -> Some (Float.max 0.0 remaining)
        in
        match ensure_conn ?deadline d with
        | Error msg ->
          for i = !answered to n - 1 do
            results.(i) <- Error msg
          done;
          answered := n
        | Ok c ->
          let suffix = Array.to_list (Array.sub lines !answered (n - !answered)) in
          let rs = pipeline c suffix in
          let lost = ref false in
          List.iter
            (fun r ->
              if not !lost then
                match r with
                | Ok _ ->
                  results.(!answered) <- r;
                  incr answered
                | Error msg when response_too_large msg ->
                  (* answered: the oversized reply was drained in order *)
                  results.(!answered) <- r;
                  incr answered
                | Error _ -> lost := true)
            rs;
          if !answered < n then begin
            drop d;
            match delays with
            | [] ->
              let msg =
                match List.find_opt Result.is_error rs with
                | Some (Error m) -> m
                | _ -> "connection lost"
              in
              for i = !answered to n - 1 do
                results.(i) <- Error msg
              done;
              answered := n
            | delay :: rest ->
              let left = budget_left () in
              if left <= 0.0 then begin
                for i = !answered to n - 1 do
                  results.(i) <- Error exhausted
                done;
                answered := n
              end
              else begin
                Thread.delay (Float.min delay left);
                d.st.retried <- d.st.retried + 1;
                go rest
              end
          end
      end
    in
    go (backoff_schedule ~base:d.base ~cap:d.cap ~attempts:d.attempts ());
    Array.to_list results

  let request_many ?(retry_failures = false) d reqs =
    let lines = List.map encode_traced reqs in
    let raw = pipeline_lines d lines in
    List.map2
      (fun req r ->
        match r with
        | Error msg when response_too_large msg ->
          Ok (Protocol.Failed (Protocol.Response_too_large, msg))
        | Error _ as e -> e
        | Ok reply -> (
          match Protocol.response_of_string reply with
          | Ok (Protocol.Failed (code, _)) when retry_failures && Protocol.retryable code ->
            (* a retryable failure inside a pipelined group: settle it
               individually (the group's FIFO slot is already consumed,
               so a lone re-send preserves every other result) *)
            request ~retry_failures d req
          | r -> r))
      reqs raw

  let requests d = d.st.requests
  let reconnects d = d.st.reconnects
  let retried d = d.st.retried

  let stats_json d =
    Jsonx.Obj
      [
        ("requests", Jsonx.Int d.st.requests);
        ("reconnects", Jsonx.Int d.st.reconnects);
        ("retried", Jsonx.Int d.st.retried);
      ]

  let close = drop
end
