type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Ok fd -> Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | Error _ as e -> e
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message err))

(* Deterministic jitter: the fractional part of (i+1) * the golden
   ratio is a low-discrepancy sequence in [0, 1) — successive attempts
   get well-spread factors without any random state, so the schedule is
   reproducible (unit-testable) yet two clients started together do not
   re-collide on every attempt the way a bare exponential would. *)
let fd t = t.fd

let jitter i =
  let x = float_of_int (i + 1) *. 0.6180339887498949 in
  x -. floor x

let backoff_schedule ?(base = 0.02) ?(cap = 0.5) ~attempts () =
  List.init (Stdlib.max 0 attempts) (fun i ->
      let d = base *. (2.0 ** float_of_int i) *. (0.75 +. (0.5 *. jitter i)) in
      Float.min cap d)

let deadline_prefix = "deadline_exceeded: "

let deadline_exceeded msg =
  let n = String.length deadline_prefix in
  String.length msg >= n && String.equal (String.sub msg 0 n) deadline_prefix

let connect_retry ?(attempts = 50) ?(base = 0.02) ?(cap = 0.5) ?deadline ~socket () =
  let t0 = Unix.gettimeofday () in
  let budget_left () =
    match deadline with
    | None -> infinity
    | Some d -> d -. (Unix.gettimeofday () -. t0)
  in
  let give_up last_err =
    Error
      (Printf.sprintf "%stotal retry budget of %.3fs exhausted (%s)" deadline_prefix
         (Option.value ~default:0.0 deadline) last_err)
  in
  let rec go = function
    | [] -> (
      match connect ~socket with
      | Ok _ as ok -> ok
      | Error msg when budget_left () < 0.0 -> give_up msg
      | Error _ as e -> e)
    | delay :: rest -> (
      match connect ~socket with
      | Ok _ as ok -> ok
      | Error msg ->
        (* the deadline is a total wall budget: never sleep past it,
           and fail with a distinct, recognizable error — a dead server
           should fail fast, not burn the whole exponential schedule *)
        let left = budget_left () in
        if left <= 0.0 then give_up msg
        else begin
          Thread.delay (Float.min delay left);
          go rest
        end)
  in
  (* the schedule has attempts-1 gaps: no sleep after the last probe *)
  go (backoff_schedule ~base ~cap ~attempts:(Stdlib.max 1 attempts - 1) ())

let request_line t line =
  try
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    match In_channel.input_line t.ic with
    | Some reply -> Ok reply
    | None -> Error "connection closed by server"
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let request t req =
  match request_line t (Jsonx.to_string (Protocol.json_of_request req)) with
  | Error _ as e -> e
  | Ok reply -> Protocol.response_of_string reply

let close t =
  close_out_noerr t.oc;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_client ~socket f =
  match connect ~socket with
  | Error _ as e -> e
  | Ok t ->
    let result = try Ok (f t) with e -> Error (Printexc.to_string e) in
    close t;
    result

(* ------------------------------------------------------------------ *)
(* Durable client                                                      *)

module Durable = struct
  type stats = { mutable requests : int; mutable reconnects : int; mutable retried : int }

  type nonrec t = {
    socket : string;
    attempts : int;
    base : float;
    cap : float;
    deadline : float option;
    mutable conn : t option;
    mutable ever_connected : bool;
    st : stats;
  }

  let create ?(attempts = 50) ?(base = 0.02) ?(cap = 0.5) ?deadline ~socket () =
    {
      socket;
      attempts;
      base;
      cap;
      deadline;
      conn = None;
      ever_connected = false;
      st = { requests = 0; reconnects = 0; retried = 0 };
    }

  let drop d =
    match d.conn with
    | Some c ->
      close c;
      d.conn <- None
    | None -> ()

  let ensure_conn ?deadline d =
    match d.conn with
    | Some c -> Ok c
    | None -> (
      match
        connect_retry ~attempts:d.attempts ~base:d.base ~cap:d.cap ?deadline ~socket:d.socket
          ()
      with
      | Ok c ->
        if d.ever_connected then d.st.reconnects <- d.st.reconnects + 1;
        d.ever_connected <- true;
        d.conn <- Some c;
        Ok c
      | Error _ as e -> e)

  let exhausted = deadline_prefix ^ "request retry budget exhausted"

  (* One request over the persistent connection.  A transport failure
     (EPIPE, ECONNRESET, reply stream closed — the shapes a worker
     restart produces) drops the connection and re-sends the line on a
     fresh one, sleeping the jittered exponential schedule between
     tries, all under the one [deadline] wall budget.  The protocol
     guarantees one reply per request, so a re-send after a lost reply
     re-executes the request — callers retrying mutations get the
     layer's idempotent semantics (set to the same value is a no-op). *)
  let request_line d line =
    let t0 = Unix.gettimeofday () in
    let budget_left () =
      match d.deadline with
      | None -> infinity
      | Some dl -> dl -. (Unix.gettimeofday () -. t0)
    in
    d.st.requests <- d.st.requests + 1;
    let rec go delays =
      let remaining = budget_left () in
      let deadline =
        match d.deadline with None -> None | Some _ -> Some (Float.max 0.0 remaining)
      in
      match ensure_conn ?deadline d with
      | Error _ as e -> e
      | Ok c -> (
        match request_line c line with
        | Ok _ as ok -> ok
        | Error msg -> (
          drop d;
          match delays with
          | [] -> Error msg
          | delay :: rest ->
            let left = budget_left () in
            if left <= 0.0 then Error exhausted
            else begin
              Thread.delay (Float.min delay left);
              d.st.retried <- d.st.retried + 1;
              go rest
            end))
    in
    go (backoff_schedule ~base:d.base ~cap:d.cap ~attempts:d.attempts ())

  (* [retry_failures] additionally re-sends on a structured retryable
     failure ([session_unavailable], [shutting_down]): the fleet's
     worker-crash window, where the supervisor needs a moment to
     restart the shard before the session answers again. *)
  let request ?(retry_failures = false) d req =
    let line = Jsonx.to_string (Protocol.json_of_request req) in
    let t0 = Unix.gettimeofday () in
    let budget_left () =
      match d.deadline with
      | None -> infinity
      | Some dl -> dl -. (Unix.gettimeofday () -. t0)
    in
    let rec go delays =
      match request_line d line with
      | Error _ as e -> e
      | Ok reply -> (
        match Protocol.response_of_string reply with
        | Ok (Protocol.Failed (code, _)) as r when retry_failures && Protocol.retryable code
          -> (
          match delays with
          | [] -> r
          | delay :: rest ->
            let left = budget_left () in
            if left <= 0.0 then r
            else begin
              Thread.delay (Float.min delay left);
              d.st.retried <- d.st.retried + 1;
              go rest
            end)
        | r -> r)
    in
    go (backoff_schedule ~base:d.base ~cap:d.cap ~attempts:d.attempts ())

  let requests d = d.st.requests
  let reconnects d = d.st.reconnects
  let retried d = d.st.retried

  let stats_json d =
    Jsonx.Obj
      [
        ("requests", Jsonx.Int d.st.requests);
        ("reconnects", Jsonx.Int d.st.reconnects);
        ("retried", Jsonx.Int d.st.retried);
      ]

  let close = drop
end
