(* The HTTP observability plane (DESIGN.md 18): a minimal HTTP/1.1
   listener so standard tooling (curl, a Prometheus scraper, a browser)
   can reach the telemetry the line protocol already exports.  GET
   only, one response per connection, no keep-alive, no TLS: this is a
   loopback diagnostics port, not an ingress.  Off unless
   DSE_METRICS_ADDR (or an explicit [addr]) names a TCP endpoint. *)

type reply = { status : int; content_type : string; body : string }

let ok ?(content_type = "text/plain; charset=utf-8") body =
  { status = 200; content_type; body }

type t = {
  fd : Unix.file_descr;
  port : int;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let parse_addr s =
  let port_of p = match int_of_string_opt (String.trim p) with
    | Some n when n >= 0 && n < 65536 -> Some n
    | _ -> None
  in
  match String.rindex_opt s ':' with
  | Some i ->
    let host = String.sub s 0 i in
    let host = if String.equal host "" then "127.0.0.1" else host in
    Option.map (fun p -> (host, p)) (port_of (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> Option.map (fun p -> ("127.0.0.1", p)) (port_of s)

let addr_of_env () =
  match Sys.getenv_opt "DSE_METRICS_ADDR" with
  | None | Some "" -> None
  | Some s -> parse_addr s

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found -> Unix.inet_addr_loopback)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done
  with Unix.Unix_error _ | Sys_error _ -> ()

let respond fd { status; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status (status_text status) content_type (String.length body) body)

(* the request head, bounded: GETs have no body we care about, so read
   until the blank line (or give up at 8 KiB / a read error) *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let k = try Unix.read fd chunk 0 (Bytes.length chunk) with Unix.Unix_error _ -> 0 in
      if k = 0 then if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
      else begin
        Buffer.add_subbytes buf chunk 0 k;
        let s = Buffer.contents buf in
        let rec has_sep i =
          i + 3 < String.length s
          && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n')
             || has_sep (i + 1))
        in
        let has_lf_sep =
          match String.index_opt s '\n' with
          | Some _ ->
            (* tolerate bare-LF clients: a blank line either way *)
            let rec lf i =
              i + 1 < String.length s && ((s.[i] = '\n' && s.[i + 1] = '\n') || lf (i + 1))
            in
            has_sep 0 || lf 0
          | None -> false
        in
        if has_lf_sep then Some s else go ()
      end
  in
  go ()

let handle_connection routes fd =
  (match read_head fd with
  | None -> ()
  | Some head ->
    let line = match String.index_opt head '\n' with
      | Some i -> String.trim (String.sub head 0 i)
      | None -> String.trim head
    in
    (match String.split_on_char ' ' line with
    | meth :: target :: _ ->
      if not (String.equal (String.uppercase_ascii meth) "GET") then
        respond fd { status = 405; content_type = "text/plain"; body = "GET only\n" }
      else begin
        let path = match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        match routes path with
        | Some r -> respond fd r
        | None -> respond fd { status = 404; content_type = "text/plain"; body = "not found\n" }
      end
    | _ -> respond fd { status = 400; content_type = "text/plain"; body = "bad request\n" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ~addr:(host, port) ~routes () =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve host, port));
      Unix.listen fd 16;
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot bind http plane to %s:%d: %s" host port (Unix.error_message err))
  | Error _ as e -> e
  | Ok fd ->
    let port =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    let t = { fd; port; stop = Atomic.make false; thread = None } in
    let accept_loop () =
      while not (Atomic.get t.stop) do
        match Unix.select [ t.fd ] [] [] 0.2 with
        | [ _ ], _, _ -> (
          match Unix.accept t.fd with
          | cfd, _ ->
            (* a thread per request: requests are tiny, but a stalled
               scraper must not block the accept loop *)
            ignore (Thread.create (fun () -> handle_connection routes cfd) ())
          | exception Unix.Unix_error _ -> ())
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop true
      done
    in
    t.thread <- Some (Thread.create accept_loop ());
    Ok t

let start_from_env ~routes () =
  match addr_of_env () with
  | None -> None
  | Some addr -> (
    match start ~addr ~routes () with
    | Ok t -> Some t
    | Error msg ->
      prerr_endline msg;
      None)

let port t = t.port

let stop t =
  Atomic.set t.stop true;
  (match t.thread with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
