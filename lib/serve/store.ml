type entry = {
  session : Ds_layer.Session.t;
  layer : string;
  eol : int;
  journal : Journal.t option;
}

type slot = { entry : entry; mutable last_used : int }

type t = {
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  mutable next_id : int;
  mutable evictions : int;
}

let create ?(capacity = 64) () =
  {
    table = Hashtbl.create 32;
    capacity = Stdlib.max 1 capacity;
    clock = 0;
    next_id = 1;
    evictions = 0;
  }

let capacity t = t.capacity

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let fresh_id ?(skip = fun _ -> false) t =
  let rec go () =
    let id = Printf.sprintf "s%d" t.next_id in
    t.next_id <- t.next_id + 1;
    if Hashtbl.mem t.table id || skip id then go () else id
  in
  go ()

let mem t id = Hashtbl.mem t.table id

let find t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some slot ->
    slot.last_used <- tick t;
    Some slot.entry

let close_journal entry =
  match entry.journal with Some j -> Journal.close j | None -> ()

let evict_lru t ~keep =
  let victim =
    Hashtbl.fold
      (fun id slot best ->
        if String.equal id keep then best
        else
          match best with
          | Some (_, used) when used <= slot.last_used -> best
          | _ -> Some (id, slot.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (id, _) -> (
    match Hashtbl.find_opt t.table id with
    | None -> ()
    | Some slot ->
      close_journal slot.entry;
      Hashtbl.remove t.table id;
      t.evictions <- t.evictions + 1)

let put t id entry =
  (match Hashtbl.find_opt t.table id with
  | Some old when old.entry.journal != entry.journal -> close_journal old.entry
  | _ -> ());
  Hashtbl.replace t.table id { entry; last_used = tick t };
  while Hashtbl.length t.table > t.capacity do
    evict_lru t ~keep:id
  done

let remove t id =
  match Hashtbl.find_opt t.table id with
  | None -> ()
  | Some slot ->
    close_journal slot.entry;
    Hashtbl.remove t.table id

let count t = Hashtbl.length t.table

let ids t =
  Hashtbl.fold (fun id slot acc -> (id, slot.last_used) :: acc) t.table []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  |> List.map fst

let evictions t = t.evictions
