type entry = {
  session : Ds_layer.Session.t;
  layer : string;
  eol : int;
  journal : Journal.t option;
}

(* [slock] serializes mutations of this session id and is held for the
   whole mutation (journal append included).  [dead] marks a slot that
   was evicted/removed/replaced while a would-be mutator waited on its
   lock: the holder must re-resolve the id instead of writing to an
   unreachable slot.  [entry] and [last_used] are read and written only
   under the table lock. *)
type slot = {
  mutable entry : entry;
  mutable last_used : int;
  slock : Mutex.t;
  mutable dead : bool;
}

type t = {
  lock : Mutex.t;
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  mutable next_id : int;
  mutable evictions : int;
}

type mutation = { m_store : t; m_id : string; m_slot : slot }

let create ?(capacity = 64) () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 32;
    capacity = Stdlib.max 1 capacity;
    clock = 0;
    next_id = 1;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let capacity t = t.capacity

(* Call with [t.lock] held. *)
let tick t =
  t.clock <- t.clock + 1;
  t.clock

let fresh_id ?(skip = fun _ -> false) t =
  locked t (fun () ->
      let rec go () =
        let id = Printf.sprintf "s%d" t.next_id in
        t.next_id <- t.next_id + 1;
        if Hashtbl.mem t.table id || skip id then go () else id
      in
      go ())

let mem t id = locked t (fun () -> Hashtbl.mem t.table id)

let find t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table id with
      | None -> None
      | Some slot ->
        slot.last_used <- tick t;
        Some slot.entry)

let close_journal entry =
  match entry.journal with Some j -> Journal.close j | None -> ()

(* Lock order: a mutator takes its slot lock first, the table lock
   second (and [commit_mutation] re-takes the table lock under the slot
   lock).  Eviction runs under the table lock and only [try_lock]s slot
   locks — non-blocking in the reverse order, so no deadlock — and
   skips victims whose lock is busy: an in-flight mutation is never
   evicted under its holder (its journal handle stays open until
   [end_mutation]), at the price of a transient capacity overshoot. *)
let rec begin_mutation t id =
  let resolved = locked t (fun () -> Hashtbl.find_opt t.table id) in
  match resolved with
  | None -> None
  | Some slot -> (
    Mutex.lock slot.slock;
    (* while we waited, the id may have been removed, evicted, or
       rebound to a different slot — re-check against the table *)
    let state =
      locked t (fun () ->
          match Hashtbl.find_opt t.table id with
          | Some s when s == slot && not slot.dead ->
            slot.last_used <- tick t;
            `Current slot.entry
          | Some _ -> `Rebound
          | None -> `Gone)
    in
    match state with
    | `Current entry -> Some ({ m_store = t; m_id = id; m_slot = slot }, entry)
    | `Rebound ->
      Mutex.unlock slot.slock;
      begin_mutation t id
    | `Gone ->
      Mutex.unlock slot.slock;
      None)

let commit_mutation m entry =
  locked m.m_store (fun () ->
      m.m_slot.entry <- entry;
      m.m_slot.last_used <- tick m.m_store)

let end_mutation m = Mutex.unlock m.m_slot.slock

let remove_locked m =
  locked m.m_store (fun () ->
      if not m.m_slot.dead then begin
        close_journal m.m_slot.entry;
        m.m_slot.dead <- true;
        (* only remove the binding if it still points at our slot *)
        match Hashtbl.find_opt m.m_store.table m.m_id with
        | Some s when s == m.m_slot -> Hashtbl.remove m.m_store.table m.m_id
        | Some _ | None -> ()
      end)

(* Call with [t.lock] held.  Victims whose slot lock is busy (an
   in-flight mutation) are skipped.  The victim's journal handle is
   closed (fsyncing in sync mode) before the entry is returned, so the
   caller sees files on disk that are complete up to the last
   acknowledged mutation — the state a snapshot writer may read. *)
let evict_lru t ~keep =
  let candidates =
    Hashtbl.fold
      (fun id slot acc -> if String.equal id keep then acc else (id, slot) :: acc)
      t.table []
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare a.last_used b.last_used)
  in
  let rec try_victims = function
    | [] -> None
    | (id, slot) :: rest ->
      if Mutex.try_lock slot.slock then begin
        close_journal slot.entry;
        slot.dead <- true;
        Hashtbl.remove t.table id;
        t.evictions <- t.evictions + 1;
        Mutex.unlock slot.slock;
        Some (id, slot.entry)
      end
      else try_victims rest
  in
  try_victims candidates

let put t id entry =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table id with
      | Some old ->
        (* Replacing a resident id: the caller guarantees no mutation of
           [id] can be in flight (the service only calls [put] for ids
           verified absent under its admission lock), so the old slot's
           lock must be free.  Take it non-blocking — blocking here
           would invert the slot-before-table lock order — and fail
           loudly if the guarantee is violated, rather than close a
           journal descriptor out from under a mutator. *)
        if not (Mutex.try_lock old.slock) then
          invalid_arg
            (Printf.sprintf "Store.put: session %S has a mutation in flight" id);
        if old.entry.journal != entry.journal then close_journal old.entry;
        old.dead <- true;
        Mutex.unlock old.slock
      | None -> ());
      Hashtbl.replace t.table id
        { entry; last_used = tick t; slock = Mutex.create (); dead = false };
      let evicted = ref [] in
      let continue = ref true in
      while Hashtbl.length t.table > t.capacity && !continue do
        match evict_lru t ~keep:id with
        | Some victim -> evicted := victim :: !evicted
        | None -> continue := false
      done;
      List.rev !evicted)

let remove t id =
  match begin_mutation t id with
  | None -> ()
  | Some (m, _) ->
    remove_locked m;
    end_mutation m

let count t = locked t (fun () -> Hashtbl.length t.table)

let ids t =
  locked t (fun () ->
      Hashtbl.fold (fun id slot acc -> (id, slot.last_used) :: acc) t.table [])
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  |> List.map fst

let evictions t = locked t (fun () -> t.evictions)
