type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable start : int;  (* unconsumed region of [chunk] *)
  mutable stop : int;
  line : Buffer.t;  (* partial line carried across reads *)
  mutable dropping : bool;  (* current line already exceeded the limit *)
  mutable seen_eof : bool;
}

let create ?idle_timeout fd =
  (match idle_timeout with
  | Some s when s > 0.0 -> (
    (* kernel-side receive timeout: a blocked read returns EAGAIN after
       [s] seconds, which read_line reports as Idle.  Unix sockets
       support it everywhere we run; if a platform refuses, the reader
       degrades to the old block-forever behaviour. *)
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with Unix.Unix_error _ -> ())
  | _ -> ());
  {
    fd;
    chunk = Bytes.create 8192;
    start = 0;
    stop = 0;
    line = Buffer.create 256;
    dropping = false;
    seen_eof = false;
  }

type result = Line of string | Overflow | Eof | Idle

let rec find_nl b i stop =
  if i >= stop then None
  else if Char.equal (Bytes.get b i) '\n' then Some i
  else find_nl b (i + 1) stop

let read_line ~limit t =
  let take_line () =
    let s = Buffer.contents t.line in
    Buffer.clear t.line;
    Line s
  in
  let rec go () =
    if t.start < t.stop then begin
      match find_nl t.chunk t.start t.stop with
      | Some i ->
        if not t.dropping then Buffer.add_subbytes t.line t.chunk t.start (i - t.start);
        t.start <- i + 1;
        if t.dropping || Buffer.length t.line > limit then begin
          t.dropping <- false;
          Buffer.clear t.line;
          Overflow
        end
        else take_line ()
      | None ->
        if not t.dropping then Buffer.add_subbytes t.line t.chunk t.start (t.stop - t.start);
        t.start <- t.stop;
        if Buffer.length t.line > limit then begin
          t.dropping <- true;
          Buffer.clear t.line
        end;
        go ()
    end
    else if t.seen_eof then
      (* peer closed mid-line: hand the final unterminated line over
         once, then report Eof — same contract as the channel reader *)
      if Buffer.length t.line > 0 && not t.dropping then take_line () else Eof
    else begin
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 ->
        t.seen_eof <- true;
        go ()
      | n ->
        t.start <- 0;
        t.stop <- n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Idle
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
        t.seen_eof <- true;
        go ()
    end
  in
  go ()
