type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable start : int;  (* unconsumed region of [chunk] *)
  mutable stop : int;
  line : Buffer.t;  (* partial line carried across reads *)
  mutable dropping : bool;  (* current line already exceeded the limit *)
  mutable seen_eof : bool;
}

let create ?idle_timeout fd =
  (match idle_timeout with
  | Some s when s > 0.0 -> (
    (* kernel-side receive timeout: a blocked read returns EAGAIN after
       [s] seconds, which read_line reports as Idle.  Unix sockets
       support it everywhere we run; if a platform refuses, the reader
       degrades to the old block-forever behaviour. *)
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with Unix.Unix_error _ -> ())
  | _ -> ());
  {
    fd;
    chunk = Bytes.create 8192;
    start = 0;
    stop = 0;
    line = Buffer.create 256;
    dropping = false;
    seen_eof = false;
  }

type result = Line of string | Overflow | Eof | Idle

let rec find_nl b i stop =
  if i >= stop then None
  else if Char.equal (Bytes.get b i) '\n' then Some i
  else find_nl b (i + 1) stop

(* [block:false] turns the reader into a drain probe: it consumes
   whatever is already buffered plus whatever a zero-timeout poll says
   the kernel holds, and answers [None] the moment another byte would
   require waiting.  The pipelined server/router use it to coalesce the
   burst a client wrote in one flush without stalling on the next. *)
let read_line_gen ~block ~limit t =
  let take_line () =
    let s = Buffer.contents t.line in
    Buffer.clear t.line;
    Some (Line s)
  in
  let readable_now () =
    match Unix.select [ t.fd ] [] [] 0.0 with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let rec go () =
    if t.start < t.stop then begin
      match find_nl t.chunk t.start t.stop with
      | Some i ->
        if not t.dropping then Buffer.add_subbytes t.line t.chunk t.start (i - t.start);
        t.start <- i + 1;
        if t.dropping || Buffer.length t.line > limit then begin
          t.dropping <- false;
          Buffer.clear t.line;
          Some Overflow
        end
        else take_line ()
      | None ->
        if not t.dropping then Buffer.add_subbytes t.line t.chunk t.start (t.stop - t.start);
        t.start <- t.stop;
        if Buffer.length t.line > limit then begin
          t.dropping <- true;
          Buffer.clear t.line
        end;
        go ()
    end
    else if t.seen_eof then
      (* peer closed mid-line: hand the final unterminated line over
         once, then report Eof — same contract as the channel reader *)
      if Buffer.length t.line > 0 && not t.dropping then take_line () else Some Eof
    else if (not block) && not (readable_now ()) then None
    else begin
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 ->
        t.seen_eof <- true;
        go ()
      | n ->
        t.start <- 0;
        t.stop <- n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if block then Some Idle else None
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
        t.seen_eof <- true;
        go ()
    end
  in
  go ()

let read_line ~limit t =
  match read_line_gen ~block:true ~limit t with
  | Some r -> r
  | None -> assert false (* blocking mode never answers None *)

let read_line_ready ~limit t = read_line_gen ~block:false ~limit t

(* Shared by every pipelined writer: one [Unix.write] loop over the
   coalesced response buffer, then clear it for reuse.  Raises on a
   dead peer (EPIPE and friends) like any write would. *)
let rec write_all fd b pos len =
  if len > 0 then begin
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len
  end

let flush_buffer fd buf =
  let len = Buffer.length buf in
  if len > 0 then begin
    let s = Buffer.contents buf in
    Buffer.clear buf;
    write_all fd (Bytes.unsafe_of_string s) 0 len
  end
