(** Bounded line reading over a raw [Unix] descriptor.

    The server's original reader was built on [In_channel], which can
    only block forever: a leaked client pins a worker and an fd until
    the process dies.  This reader works on the descriptor directly so
    an idle timeout can be pushed down to the kernel ([SO_RCVTIMEO]) —
    a read that times out surfaces as {!Idle} instead of wedging the
    worker.  Both the single-process server and the fleet router read
    requests through it. *)

type t

val create : ?idle_timeout:float -> Unix.file_descr -> t
(** Wrap [fd].  With [idle_timeout] (seconds, > 0) the descriptor's
    receive timeout is set once, so every subsequent blocking read
    gives up after that long with {!Idle}.  Without it reads block
    indefinitely, as before. *)

type result =
  | Line of string  (** one request line, newline stripped *)
  | Overflow  (** the line exceeded [limit]; its bytes were drained *)
  | Eof  (** peer closed (a final unterminated line is returned as {!Line} first) *)
  | Idle  (** no byte arrived within [idle_timeout] *)

val read_line : limit:int -> t -> result
(** Next line from the stream.  A line longer than [limit] bytes is
    discarded through its terminating newline and reported as
    {!Overflow} — the connection stays usable, matching the server's
    historical [request_too_large] behaviour. *)

val read_line_ready : limit:int -> t -> result option
(** Like {!read_line} but never waits: consumes only bytes already
    buffered or reported readable by a zero-timeout poll, answering
    [None] the moment more would require blocking.  The pipelined
    router drains a client's burst with this — one blocking read for
    the first line, ready-reads for the rest of the flush. *)

val flush_buffer : Unix.file_descr -> Buffer.t -> unit
(** Write the buffer's whole contents to [fd] (looping over short
    writes) and clear it — the coalesced "one flush per drain" write
    every pipelined peer uses.  Raises [Unix.Unix_error] on a dead
    peer. *)
