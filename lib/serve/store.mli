(** The in-memory session table of the exploration service.

    Maps client-visible session ids to the current {!Ds_layer.Session.t}
    value plus bookkeeping (layer name, eol, the open journal handle).
    Because sessions are immutable values, "updating" a session is a
    pointer swap and branching is O(1) — two ids simply share structure.

    The table is bounded: inserting beyond [capacity] evicts the least
    recently used session (its journal handle is closed; the session
    stays fully recoverable from its journal + snapshot, and the
    service transparently rehydrates it on the next touch, so eviction
    costs a replay, never data — the table is a cache over the durable
    session universe on disk).  Every lookup counts as a use.

    {2 Concurrency}

    The table is internally synchronized and mutations are serialized
    {e per session id}: {!begin_mutation} takes the id's slot lock
    (blocking while another mutation of the same id is in flight) and
    hands back the current entry; the caller appends to the journal and
    computes the new session, publishes it with {!commit_mutation}, and
    releases the slot with {!end_mutation}.  Reads ({!find}) and
    mutations of {e other} ids proceed concurrently throughout.

    Eviction never closes a journal out from under an in-flight
    mutation: it only claims victims whose slot lock it can take
    without blocking, skipping busy ones (a transient capacity
    overshoot, resolved by the next insert).  A mutator that blocked on
    a slot which was meanwhile evicted or rebound re-resolves the id,
    so it never writes to an unreachable slot. *)

type entry = {
  session : Ds_layer.Session.t;
  layer : string;  (** catalogue name the session was opened as *)
  eol : int;
  journal : Journal.t option;  (** open append handle, when journaling *)
}

type t

type mutation
(** An exclusive in-flight mutation of one session id (the held slot
    lock).  Must be released with {!end_mutation} on every path. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64, minimum 1) bounds the resident sessions. *)

val capacity : t -> int

val fresh_id : ?skip:(string -> bool) -> t -> string
(** ["s1"], ["s2"], ... — skipping ids currently in the table and any
    for which [skip] is true (the service passes a predicate that skips
    ids with a journal on disk, so a restarted server never hands out
    an id whose history a previous life still owns). *)

val mem : t -> string -> bool

val find : t -> string -> entry option
(** Marks the entry most-recently-used.  The returned entry is a
    consistent snapshot; the session value inside is immutable. *)

val put : t -> string -> entry -> (string * entry) list
(** Insert or replace; may evict least-recently-used other entries
    (closing their journal handles) to stay within capacity, skipping
    any entry with a mutation in flight.  Returns the evicted
    [(id, entry)] pairs — their journal handles are already closed, so
    the caller can snapshot/compact the on-disk files before anyone
    rehydrates the id.  An evicted session is not lost: its journal
    (and snapshot) stay on disk and the service transparently
    rehydrates it on the next touch.

    Replacing a {e resident} id requires that no mutation of that id is
    (or can be) in flight — the service guarantees this by only calling
    [put] for ids verified absent under its admission lock.  A violation
    raises [Invalid_argument] rather than closing the old entry's
    journal handle out from under its mutator. *)

val begin_mutation : t -> string -> (mutation * entry) option
(** Take the id's slot lock (blocking on a concurrent mutation of the
    same id) and return the entry as of acquisition; [None] when the id
    is not resident.  Pair with {!end_mutation}. *)

val commit_mutation : mutation -> entry -> unit
(** Publish the mutated entry (pointer swap; marks it recently used).
    The slot stays locked until {!end_mutation}. *)

val end_mutation : mutation -> unit
(** Release the slot lock. *)

val remove_locked : mutation -> unit
(** Drop the entry (closing its journal handle) while still holding its
    mutation — how [close] avoids racing other would-be mutators.
    Follow with {!end_mutation}. *)

val remove : t -> string -> unit
(** Drop the entry and close its journal handle; no-op when absent.
    Waits for any in-flight mutation of the id to finish. *)

val count : t -> int
val ids : t -> string list
(** Resident ids, most recently used first. *)

val evictions : t -> int
(** Total LRU evictions since {!create} (a service health metric). *)
