(** The in-memory session table of the exploration service.

    Maps client-visible session ids to the current {!Ds_layer.Session.t}
    value plus bookkeeping (layer name, eol, the open journal handle).
    Because sessions are immutable values, "updating" a session is a
    pointer swap and branching is O(1) — two ids simply share structure.

    The table is bounded: inserting beyond [capacity] evicts the least
    recently used session (its journal handle is closed; the session
    stays fully recoverable from its journal via [open --resume], so
    eviction costs a replay, never data).  Every lookup counts as a
    use.

    Not thread-safe on its own — {!Service} serializes all access
    (OCaml systhreads cannot run layer code in parallel anyway; one
    lock keeps the shared compliance caches sound). *)

type entry = {
  session : Ds_layer.Session.t;
  layer : string;  (** catalogue name the session was opened as *)
  eol : int;
  journal : Journal.t option;  (** open append handle, when journaling *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64, minimum 1) bounds the resident sessions. *)

val capacity : t -> int

val fresh_id : ?skip:(string -> bool) -> t -> string
(** ["s1"], ["s2"], ... — skipping ids currently in the table and any
    for which [skip] is true (the service passes a predicate that skips
    ids with a journal on disk, so a restarted server never hands out
    an id whose history a previous life still owns). *)

val mem : t -> string -> bool

val find : t -> string -> entry option
(** Marks the entry most-recently-used. *)

val put : t -> string -> entry -> unit
(** Insert or replace; may evict the least recently used other entry
    (closing its journal handle) to stay within capacity. *)

val remove : t -> string -> unit
(** Drop the entry and close its journal handle; no-op when absent. *)

val count : t -> int
val ids : t -> string list
(** Resident ids, most recently used first. *)

val evictions : t -> int
(** Total LRU evictions since {!create} (a service health metric). *)
