type op = Write | Fsync | Rename | Truncate
type mode = Eio | Enospc | Short_write | Torn_rename

let op_name = function
  | Write -> "write"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Truncate -> "truncate"

let mode_name = function
  | Eio -> "eio"
  | Enospc -> "enospc"
  | Short_write -> "short"
  | Torn_rename -> "torn"

type plan = (op * mode * float) list

let op_of_name = function
  | "write" -> Some Write
  | "fsync" -> Some Fsync
  | "rename" -> Some Rename
  | "truncate" -> Some Truncate
  | _ -> None

let mode_of_name = function
  | "eio" -> Some Eio
  | "enospc" -> Some Enospc
  | "short" -> Some Short_write
  | "torn" -> Some Torn_rename
  | _ -> None

(* Short writes only make sense where there are bytes to tear; torn
   renames only where there is a rename. *)
let compatible op mode =
  match (op, mode) with
  | _, Eio | _, Enospc -> true
  | Write, Short_write -> true
  | (Fsync | Rename | Truncate), Short_write -> false
  | Rename, Torn_rename -> true
  | (Write | Fsync | Truncate), Torn_rename -> false

let parse_item item =
  match String.index_opt item '=' with
  | None -> Error (Printf.sprintf "bad fault spec %S (want op=mode[:probability])" item)
  | Some i -> (
    let opn = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    let moden, prob =
      match String.index_opt rest ':' with
      | None -> (rest, Ok 1.0)
      | Some j -> (
        let p = String.sub rest (j + 1) (String.length rest - j - 1) in
        ( String.sub rest 0 j,
          match float_of_string_opt p with
          | Some f when f >= 0.0 && f <= 1.0 -> Ok f
          | Some _ | None -> Error (Printf.sprintf "bad probability %S in %S" p item) ))
    in
    match (op_of_name opn, mode_of_name moden, prob) with
    | None, _, _ -> Error (Printf.sprintf "unknown I/O op %S (write|fsync|rename|truncate)" opn)
    | _, None, _ -> Error (Printf.sprintf "unknown fault mode %S (eio|enospc|short|torn)" moden)
    | _, _, Error e -> Error e
    | Some op, Some mode, Ok p ->
      if compatible op mode then Ok (op, mode, p)
      else Error (Printf.sprintf "mode %S does not apply to op %S" moden opn))

let parse_plan spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  if items = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun plan -> Result.map (fun e -> e :: plan) (parse_item item)))
      (Ok []) items
    |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Deterministic draws                                                  *)

(* One global armed state: the journal's shim points are free functions
   (threaded through no handle), matching how a real disk fails — per
   machine, not per file.  All state changes and draws are under one
   lock; the draw sequence is a function of (seed, call index), so a
   fixed seed replays the identical fault schedule regardless of what
   wall-clock interleaving produced the calls. *)
type state = {
  plan : plan;
  prng : Ds_bignum.Prng.t;
  mutable injected : int;
  by_op : (op * int ref) list;
}

let lock = Mutex.create ()
let state : state option ref = ref None
let is_armed = ref false (* mirrors [state]; read without the lock *)

module Obs = Ds_obs.Obs

let m_injected op =
  Obs.counter Obs.default (Printf.sprintf "dse_io_fault_injected_total{op=%S}" (op_name op))

let arm ?(seed = 0) plan =
  Mutex.lock lock;
  state :=
    Some
      {
        plan;
        prng = Ds_bignum.Prng.create (seed lxor 0x1057_FA17);
        injected = 0;
        by_op = List.map (fun op -> (op, ref 0)) [ Write; Fsync; Rename; Truncate ];
      };
  is_armed := true;
  Mutex.unlock lock

let disarm () =
  Mutex.lock lock;
  state := None;
  is_armed := false;
  Mutex.unlock lock

let armed () = !is_armed

let arm_from_env () =
  match Sys.getenv_opt "DSE_IO_FAULTS" with
  | None | Some "" -> false
  | Some spec -> (
    let seed =
      match Option.bind (Sys.getenv_opt "DSE_IO_FAULT_SEED") int_of_string_opt with
      | Some s -> s
      | None -> 0
    in
    match parse_plan spec with
    | Ok plan ->
      arm ~seed plan;
      true
    | Error msg -> invalid_arg ("DSE_IO_FAULTS: " ^ msg))

let injected () =
  Mutex.lock lock;
  let n = match !state with Some s -> s.injected | None -> 0 in
  Mutex.unlock lock;
  n

let injected_for op =
  Mutex.lock lock;
  let n =
    match !state with
    | Some s -> ( match List.assq_opt op s.by_op with Some r -> !r | None -> 0)
    | None -> 0
  in
  Mutex.unlock lock;
  n

(* Decide whether this call faults, and how.  The PRNG is advanced once
   per armed call whether or not the draw fires, keeping the sequence a
   pure function of the call index. *)
let draw op =
  if not !is_armed then None
  else begin
    Mutex.lock lock;
    let r =
      match !state with
      | None -> None
      | Some s -> (
        let u = Ds_bignum.Prng.float s.prng in
        match List.find_opt (fun (o, _, _) -> o = op) s.plan with
        | Some (_, mode, p) when u < p ->
          s.injected <- s.injected + 1;
          (match List.assq_opt op s.by_op with Some r -> incr r | None -> ());
          Some mode
        | Some _ | None -> None)
    in
    Mutex.unlock lock;
    (match r with Some _ -> Obs.incr (m_injected op) | None -> ());
    r
  end

let fail op err arg = raise (Unix.Unix_error (err, "inject:" ^ op_name op, arg))

(* ------------------------------------------------------------------ *)
(* Shim points                                                          *)

let rec write_all fd buf pos len =
  if len <= 0 then ()
  else
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)

let write fd buf pos len =
  match draw Write with
  | None -> Unix.write fd buf pos len
  | Some Short_write ->
    (* half the bytes really reach the file — the torn-line shape *)
    write_all fd buf pos (len / 2);
    fail Write Unix.EIO "short write"
  | Some Enospc -> fail Write Unix.ENOSPC "write"
  | Some (Eio | Torn_rename) -> fail Write Unix.EIO "write"

let fsync fd =
  match draw Fsync with
  | None -> Unix.fsync fd
  | Some Enospc -> fail Fsync Unix.ENOSPC "fsync"
  | Some (Eio | Short_write | Torn_rename) -> fail Fsync Unix.EIO "fsync"

let rename src dst =
  match draw Rename with
  | None -> Unix.rename src dst
  | Some Torn_rename ->
    (* the publish never happens: temp file left behind, target intact *)
    fail Rename Unix.EIO "torn rename"
  | Some Enospc -> fail Rename Unix.ENOSPC "rename"
  | Some (Eio | Short_write) -> fail Rename Unix.EIO "rename"

let ftruncate fd len =
  match draw Truncate with
  | None -> Unix.ftruncate fd len
  | Some Enospc -> fail Truncate Unix.ENOSPC "ftruncate"
  | Some (Eio | Short_write | Torn_rename) -> fail Truncate Unix.EIO "ftruncate"
