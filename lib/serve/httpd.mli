(** The HTTP observability plane (DESIGN.md 18): a dependency-free
    HTTP/1.1 GET listener that serves the telemetry the line protocol
    already exports — [/metrics] (Prometheus text), [/healthz]
    (service/fleet roll-up JSON), [/tracez] (recent sampled traces,
    JSON) — to curl, scrapers, and browsers.

    Deliberately minimal: GET only, one response per connection
    ([Connection: close]), no TLS, no keep-alive.  It is a loopback
    diagnostics port, off by default; [dse serve] and the fleet router
    mount it when [DSE_METRICS_ADDR] is set.  Workers never mount it —
    they inherit the router's environment, and N workers racing to bind
    one port is exactly the failure this avoids. *)

type reply = { status : int; content_type : string; body : string }

val ok : ?content_type:string -> string -> reply
(** A 200 reply; [content_type] defaults to
    [text/plain; charset=utf-8]. *)

type t

val parse_addr : string -> (string * int) option
(** ["host:port"], [":port"], or bare ["port"] — a missing host means
    loopback.  [None] on an unparseable port. *)

val addr_of_env : unit -> (string * int) option
(** The [DSE_METRICS_ADDR] endpoint, if set and parseable. *)

val start :
  addr:string * int ->
  routes:(string -> reply option) ->
  unit ->
  (t, string) result
(** Bind and start the accept loop on a daemon thread.  [routes] maps a
    request path (query string stripped) to a reply; [None] is a 404.
    Port 0 binds an ephemeral port — read it back with {!port} (how the
    tests avoid fixed-port collisions).  [Error] describes a failed
    bind; the caller decides whether that is fatal. *)

val start_from_env : routes:(string -> reply option) -> unit -> t option
(** {!start} at the [DSE_METRICS_ADDR] endpoint; [None] when the
    variable is unset.  A bind failure is reported on stderr and
    returns [None] — a diagnostics port must never take the service
    down with it. *)

val port : t -> int
(** The bound TCP port (the actual one, after ephemeral resolution). *)

val stop : t -> unit
(** Stop accepting, join the accept thread, close the listener.
    In-flight responses on handler threads finish on their own. *)
