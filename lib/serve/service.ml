module Session = Ds_layer.Session
module Value = Ds_layer.Value
module P = Protocol
module Obs = Ds_obs.Obs

type config = {
  layers : (string * (eol:int -> Session.t)) list;
  journal_dir : string option;
  journal_sync : bool;
  default_eol : int;
  default_merits : string list;
  report_pareto : (string * string) option;
  capacity : int;
  compact_after : int option;
}

let config ?journal_dir ?(journal_sync = false) ?(default_eol = 768) ?(default_merits = [])
    ?report_pareto ?(capacity = 64) ?compact_after ~layers () =
  {
    layers;
    journal_dir;
    journal_sync;
    default_eol;
    default_merits;
    report_pareto;
    capacity;
    compact_after;
  }

(* Per-op request latency lives in the service's own telemetry
   registry ({!Ds_obs.Obs}) as one histogram per op — striped per
   domain inside Obs, so two domains recording the same op rarely
   contend and different ops never do.  The registry is per service
   instance (not {!Obs.default}): tests assert exact per-instance
   counts, and several services can coexist in one process.  The
   legacy [stats] reply shape survives as a shim over histogram
   snapshots — count, mean and max are tracked exactly by the
   histogram, so the old figures are bit-compatible. *)

let op_names =
  [
    "open"; "set"; "decide"; "default"; "retract"; "annotate"; "candidates"; "ranges";
    "issues"; "preview"; "script"; "trace"; "health"; "signature"; "report"; "branch";
    "compact"; "close"; "stats"; "metrics"; "healthz"; "batch";
  ]

(* the unified metric-name catalog (DESIGN.md 13): request latency is
   [dse_request_us{op="..."}], accept-to-dispatch wait is
   [dse_queue_wait_us] — the [stats] shim still spells the latter
   [queue_wait] for old clients *)
let op_metric op = Printf.sprintf "dse_request_us{op=%S}" op

type t = {
  cfg : config;
  store : Store.t;
  admission : Mutex.t;
      (* serializes session creation (open/branch/resume): the
         check-then-create of a new id must be atomic against another
         request creating the same id *)
  registry : Obs.registry;
  op_hists : (string, Obs.histogram) Hashtbl.t;
      (* op name -> its latency histogram; pre-populated with every op
         name at [create] and never resized after, so concurrent
         [Hashtbl.find_opt]s are safe without a table lock *)
  queue_hist : Obs.histogram;
  (* the durability story in numbers: how often sessions come back from
     disk, how (snapshot fast path vs full-history fallback), how long
     it takes, and how often compaction runs or fails *)
  resume_hist : Obs.histogram;
  c_resumes : Obs.counter;
  c_resume_snapshot : Obs.counter;
  c_resume_fallback : Obs.counter;
  c_compactions : Obs.counter;
  c_compaction_failures : Obs.counter;
  c_rehydrations : Obs.counter;
  started : float;
}

(* Parsing and indexing a layer is the dominant cost of [open] (~150ms
   for the shipped catalogues); sessions of one layer share the
   immutable structure, so build each (layer, eol) once and hand every
   session a [Session.pristine] copy — a fresh lineage (own guard
   registry, own compliance cache) over the shared hierarchy and
   index.  The lock is held across a build: two racing first-opens of
   one layer wait rather than both building. *)
let wrap_layers registry layers =
  let cache : (string * int, Session.t) Hashtbl.t = Hashtbl.create 8 in
  let lock = Mutex.create () in
  let c_hits = Obs.counter registry "dse_serve_layer_cache_hits_total" in
  let c_misses = Obs.counter registry "dse_serve_layer_cache_misses_total" in
  List.map
    (fun (name, make) ->
      ( name,
        fun ~eol ->
          Mutex.lock lock;
          match Hashtbl.find_opt cache (name, eol) with
          | Some master ->
            Obs.incr c_hits;
            Mutex.unlock lock;
            Session.pristine master
          | None -> (
            match make ~eol with
            | master ->
              Hashtbl.add cache (name, eol) master;
              Obs.incr c_misses;
              Mutex.unlock lock;
              Session.pristine master
            | exception e ->
              Obs.incr c_misses;
              Mutex.unlock lock;
              raise e) ))
    layers

let create cfg =
  let registry = Obs.create_registry () in
  let op_hists = Hashtbl.create 32 in
  List.iter (fun op -> Hashtbl.add op_hists op (Obs.histogram registry (op_metric op))) op_names;
  {
    cfg = { cfg with layers = wrap_layers registry cfg.layers };
    store = Store.create ~capacity:cfg.capacity ();
    admission = Mutex.create ();
    registry;
    op_hists;
    queue_hist = Obs.histogram registry "dse_queue_wait_us";
    resume_hist = Obs.histogram registry "dse_resume_us";
    c_resumes = Obs.counter registry "dse_resume_total";
    c_resume_snapshot = Obs.counter registry "dse_resume_from_snapshot_total";
    c_resume_fallback = Obs.counter registry "dse_resume_fallback_total";
    c_compactions = Obs.counter registry "dse_compactions_total";
    c_compaction_failures = Obs.counter registry "dse_compaction_failures_total";
    c_rehydrations = Obs.counter registry "dse_rehydrations_total";
    started = Unix.gettimeofday ();
  }

let registry t = t.registry

let session_count t = Store.count t.store

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let valid_id id =
  let n = String.length id in
  n >= 1 && n <= 64
  && id.[0] <> '.'
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       id

let journal_exists t id =
  match t.cfg.journal_dir with None -> false | Some dir -> Journal.exists ~dir ~id

(* Never hand out an auto id whose journal a previous server life still
   owns: [Journal.create] truncates, so colliding with one would destroy
   resumable history. *)
let fresh_id t = Store.fresh_id ~skip:(journal_exists t) t.store

let focus_str s = String.concat "." (Session.focus s)

let session_summary id s =
  [
    ("session", Jsonx.Str id);
    ("focus", Jsonx.Str (focus_str s));
    ("candidates", Jsonx.Int (Session.candidate_count s));
  ]

let range_json = function
  | Some (lo, hi) -> Jsonx.List [ Jsonx.Float lo; Jsonx.Float hi ]
  | None -> Jsonx.Null

(* The replay engine: load, instantiate, re-apply, verify.  Pure with
   respect to the service (used by [open --resume] and directly by
   tests and recovery tooling). *)

let apply_mutation s = function
  | P.Set { name; value; _ } -> Some (Session.set s name value)
  | P.Default { name; _ } -> Some (Session.set_default s name)
  | P.Retract { name; _ } -> Some (Session.retract s name)
  | P.Annotate { text; _ } -> Some (Ok (Session.annotate s text))
  | P.Open _ | P.Candidates _ | P.Ranges _ | P.Issues _ | P.Preview _ | P.Script _
  | P.Trace _ | P.Health _ | P.Signature _ | P.Report _ | P.Branch _ | P.Compact _
  | P.Close _ | P.Stats | P.Metrics _ | P.Healthz | P.Batch _ ->
    None

let ( let* ) = Result.bind

(* Re-apply journal/snapshot entries to [fresh], verifying the recorded
   candidate signature after every one. *)
let replay_entries fresh entries =
  List.fold_left
    (fun acc (entry : Journal.entry) ->
      let* s, n = acc in
      let at = n + 1 in
      let* req =
        match P.request_of_json entry.Journal.req with
        | Ok r -> Ok r
        | Error msg -> Error (Printf.sprintf "journal entry %d: %s" at msg)
      in
      let* s' =
        match apply_mutation s req with
        | Some (Ok s') -> Ok s'
        | Some (Error msg) ->
          Error (Printf.sprintf "journal entry %d no longer applies: %s" at msg)
        | None -> Error (Printf.sprintf "journal entry %d is not a mutation" at)
      in
      let got = Session.candidate_signature s' in
      if String.equal got entry.Journal.signature then Ok (s', at)
      else
        Error
          (Printf.sprintf
             "replay diverged at entry %d: candidate signature %s, journal recorded %s \
              (layer definition changed since the journal was written?)"
             at got entry.Journal.signature))
    (Ok (fresh, 0)) entries

let rec drop_entries n l =
  if n <= 0 then l else match l with [] -> [] | _ :: rest -> drop_entries (n - 1) rest

type resume_info = {
  r_session : Session.t;
  r_layer : string;
  r_eol : int;
  r_replayed : int; (* total entries applied (snapshot script + tail) *)
  r_tail_replayed : int; (* of which, journal tail entries *)
  r_from_snapshot : bool;
  r_fallback : bool; (* a snapshot existed but full history was used *)
}

let layer_factory ~layers ~id header =
  match List.assoc_opt header.Journal.layer layers with
  | Some make -> (
    fun () ->
      match make ~eol:header.Journal.eol with
      | s -> Ok s
      | exception e -> Error ("layer factory failed: " ^ Printexc.to_string e))
  | None ->
    fun () ->
      Error
        (Printf.sprintf "journal %S was recorded against unknown layer %S" id
           header.Journal.layer)

let resume ?(prefer_snapshot = true) ~layers ~dir ~id () =
  let* header, tail = Journal.load ~dir ~id in
  let make_fresh = layer_factory ~layers ~id header in
  let tail_len = List.length tail in
  let total = header.Journal.base + tail_len in
  let finish ~from_snapshot ~fallback ~snap_applied (s, n) =
    Ok
      {
        r_session = s;
        r_layer = header.Journal.layer;
        r_eol = header.Journal.eol;
        r_replayed = snap_applied + n;
        r_tail_replayed = n;
        r_from_snapshot = from_snapshot;
        r_fallback = fallback;
      }
  in
  let full_history ~fallback =
    let* fresh = make_fresh () in
    let* sn = replay_entries fresh tail in
    finish ~from_snapshot:false ~fallback ~snap_applied:0 sn
  in
  (* [prefer_snapshot:false] is the oracle mode of the soak harness: it
     ignores the snapshot whenever the full history is still on disk
     (base 0).  Once the journal is compacted the snapshot IS part of
     the lineage and is used regardless. *)
  let snap_result =
    if Journal.snapshot_exists ~dir ~id then Some (Journal.load_snapshot ~dir ~id) else None
  in
  let usable =
    match snap_result with
    | Some (Ok snap)
      when snap.Journal.snap_base >= header.Journal.base
           && snap.Journal.snap_base <= total
           && String.equal snap.Journal.snap_layer header.Journal.layer
           && snap.Journal.snap_eol = header.Journal.eol
           && (prefer_snapshot || header.Journal.base > 0) ->
      Some snap
    | _ -> None
  in
  match usable with
  | Some snap -> (
    let from_snapshot () =
      let* fresh = make_fresh () in
      let* s, applied = replay_entries fresh snap.Journal.snap_entries in
      let got = Session.candidate_signature s in
      if not (String.equal got snap.Journal.snap_signature) then
        Error
          (Printf.sprintf
             "snapshot replay diverged: candidate signature %s, snapshot recorded %s" got
             snap.Journal.snap_signature)
      else
        let after = drop_entries (snap.Journal.snap_base - header.Journal.base) tail in
        let* sn = replay_entries s after in
        finish ~from_snapshot:true ~fallback:false ~snap_applied:applied sn
    in
    match from_snapshot () with
    | Ok _ as ok -> ok
    | Error msg ->
      (* a snapshot that fails mid-replay gets the same treatment as
         one that fails its checksum: full-history fallback while the
         history is whole, a loud error once it is truncated *)
      if header.Journal.base = 0 then full_history ~fallback:true else Error msg)
  | None ->
    if header.Journal.base = 0 then
      full_history ~fallback:(prefer_snapshot && snap_result <> None)
    else
      Error
        (match snap_result with
        | Some (Error msg) ->
          Printf.sprintf
            "session %S: journal is compacted (%d entries truncated) and its snapshot is \
             unusable: %s"
            id header.Journal.base msg
        | Some (Ok _) ->
          Printf.sprintf
            "session %S: journal is compacted (%d entries truncated) and its snapshot does \
             not cover it"
            id header.Journal.base
        | None ->
          Printf.sprintf "session %S: journal is compacted (%d entries truncated) but has no \
                          snapshot"
            id header.Journal.base)

(* The service-side resume: same engine, plus telemetry. *)
let resume_recorded t ~dir ~id =
  let t0 = Obs.now_us () in
  let r = resume ~layers:t.cfg.layers ~dir ~id () in
  Obs.observe t.resume_hist (Obs.now_us () -. t0);
  Obs.incr t.c_resumes;
  (match r with
  | Ok info ->
    if info.r_from_snapshot then Obs.incr t.c_resume_snapshot;
    if info.r_fallback then Obs.incr t.c_resume_fallback
  | Error _ -> ());
  r

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

(* The compacted script: the session's current designer bindings (in
   the order they were entered, defaults replayed as defaults so the
   binding source — part of the signature — survives) prefixed by the
   history's annotations, so the exploration trail's notes are not
   lost.  Retracted and re-entered decisions collapse; this is why the
   checkpoint is short where the raw history is long. *)
let compacted_script ~id live ~history =
  let annotations =
    List.filter_map
      (fun (e : Journal.entry) ->
        match P.request_of_json e.Journal.req with Ok (P.Annotate _ as r) -> Some r | _ -> None)
      history
  in
  let sources =
    List.map
      (fun (b : Session.binding) ->
        (b.Session.prop.Ds_layer.Property.name, b.Session.source))
      (Session.bindings live)
  in
  let scripted = Session.script live in
  let sets =
    List.map
      (fun (name, value) ->
        match List.assoc_opt name sources with
        | Some Session.Default_value -> P.Default { session = id; name }
        | _ -> P.Set { session = id; name; value; decide = false })
      scripted
  in
  (* defaults the script may not carry (no derived bindings: they
     re-derive on replay) *)
  let extra_defaults =
    List.filter_map
      (fun (name, source) ->
        match source with
        | Session.Default_value when not (List.mem_assoc name scripted) ->
          Some (P.Default { session = id; name })
        | _ -> None)
      sources
  in
  annotations @ sets @ extra_defaults

(* Build a verified checkpoint for [live]: replay the compacted script
   against a pristine session, recording per-entry signatures, and
   require the final signature to equal the live one.  A compacted
   script can legitimately diverge from history replay (guard
   quarantine state may depend on retracted bindings that faulted a
   constraint), and this verification — not the writer's good
   intentions — is what makes truncating the history safe: on any
   mismatch compaction is refused and the full journal stays. *)
let build_snapshot t ~id ~layer ~eol ~base ~live ~history =
  let make_fresh =
    layer_factory ~layers:t.cfg.layers ~id { Journal.session = id; layer; eol; base = 0 }
  in
  let* fresh = make_fresh () in
  let reqs = compacted_script ~id live ~history in
  let* entries_rev, final =
    List.fold_left
      (fun acc req ->
        let* entries, s = acc in
        let* s' =
          match apply_mutation s req with
          | Some (Ok s') -> Ok s'
          | Some (Error msg) ->
            Error (Printf.sprintf "compacted script does not replay: %s" msg)
          | None -> Error "compacted script contains a non-mutation"
        in
        let signature = Session.candidate_signature s' in
        Ok ({ Journal.req = P.json_of_request req; signature } :: entries, s'))
      (Ok ([], fresh)) reqs
  in
  let live_sig = Session.candidate_signature live in
  let final_sig = Session.candidate_signature final in
  if not (String.equal final_sig live_sig) then
    Error
      (Printf.sprintf
         "compaction verification failed: compacted script signs %s, live session signs %s \
          — keeping the full journal"
         final_sig live_sig)
  else
    Ok
      {
        Journal.snap_session = id;
        snap_layer = layer;
        snap_eol = eol;
        snap_base = base;
        snap_signature = live_sig;
        snap_entries = List.rev entries_rev;
      }

(* Compact a session whose journal handle is closed (evicted, or never
   resident): snapshot first, then — only once the snapshot is durable
   — truncate the journal.  A crash or injected fault between the two
   leaves a valid snapshot AND the full journal: both lineages replay
   to the same state. *)
let compact_files t ~dir ~id ~live =
  let* header, tail = Journal.load ~dir ~id in
  let total = header.Journal.base + List.length tail in
  if List.length tail = 0 then Ok total (* tail already empty: nothing to gain *)
  else
    let* _, history = Journal.load_effective ~dir ~id in
    let* snap =
      build_snapshot t ~id ~layer:header.Journal.layer ~eol:header.Journal.eol ~base:total
        ~live ~history
    in
    let* () = Journal.write_snapshot ~dir snap in
    let* j =
      Journal.rewrite ~sync:t.cfg.journal_sync ~dir { header with Journal.base = total } []
    in
    Journal.close j;
    Ok total

(* Compact a resident session under its held mutation: swap the live
   journal handle for the rewritten one.  On rewrite failure the old
   file is intact — reopen it; if even the reopen fails, evict the
   session (degrade to resume: the files on disk are complete). *)
let compact_live t ~dir m (entry : Store.entry) ~id j =
  let* () = Journal.sync_all j in
  let* header, tail = Journal.load ~dir ~id in
  let total = header.Journal.base + List.length tail in
  if List.length tail = 0 then Ok (total, entry)
  else
    let* _, history = Journal.load_effective ~dir ~id in
    let* snap =
      build_snapshot t ~id ~layer:header.Journal.layer ~eol:header.Journal.eol ~base:total
        ~live:entry.Store.session ~history
    in
    let* () = Journal.write_snapshot ~dir snap in
    Journal.close j;
    match Journal.rewrite ~sync:t.cfg.journal_sync ~dir { header with Journal.base = total } [] with
    | Ok j' ->
      let entry' = { entry with Store.journal = Some j' } in
      Store.commit_mutation m entry';
      Ok (total, entry')
    | Error msg -> (
      match Journal.open_append ~sync:t.cfg.journal_sync ~dir ~id () with
      | Ok j'' ->
        Store.commit_mutation m { entry with Store.journal = Some j'' };
        Error msg
      | Error msg2 ->
        Store.remove_locked m;
        Error
          (Printf.sprintf "%s; %s; session %S closed, re-open with resume" msg msg2 id))

(* Evicted sessions leave resident memory but not the service: their
   journal (handle already closed by the store) is compacted to a
   checkpoint so the inevitable rehydration replays a short script, not
   the whole history.  Failure is harmless — the journal is untouched
   and rehydration falls back to replaying it. *)
let compact_evicted t evicted =
  match t.cfg.journal_dir with
  | None -> ()
  | Some dir ->
    List.iter
      (fun (id, (e : Store.entry)) ->
        match e.Store.journal with
        | None -> ()
        | Some _ -> (
          match compact_files t ~dir ~id ~live:e.Store.session with
          | Ok _ -> Obs.incr t.c_compactions
          | Error _ -> Obs.incr t.c_compaction_failures))
      evicted

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let unknown_session sid =
  P.Failed (P.Unknown_session, Printf.sprintf "no session %S (open one first)" sid)

(* Session creation (open / resume / branch targets / rehydration) runs
   under the admission lock: the existence checks and the insert must
   be atomic against a concurrent request creating the same id.
   Mutations and reads of existing sessions never take it. *)
let admitted t f =
  Mutex.lock t.admission;
  match f () with
  | v ->
    Mutex.unlock t.admission;
    v
  | exception e ->
    Mutex.unlock t.admission;
    raise e

(* Transparent rehydration: a session that is not resident but has a
   journal on disk (evicted, or left over from a previous server life)
   is resumed and re-admitted on first touch — the store is a cache
   over the durable session universe, and eviction is invisible to
   clients.  Must NOT be called with the admission lock held. *)
let rehydrate t sid =
  match t.cfg.journal_dir with
  | None -> `Absent
  | Some dir ->
    if not (Journal.exists ~dir ~id:sid) then `Absent
    else
      admitted t (fun () ->
          if Store.mem t.store sid then `Ok (* someone else rehydrated while we waited *)
          else
            match resume_recorded t ~dir ~id:sid with
            | Error msg -> `Failed msg
            | Ok info -> (
              match Journal.open_append ~sync:t.cfg.journal_sync ~dir ~id:sid () with
              | Error msg -> `Failed msg
              | Ok j ->
                let evicted =
                  Store.put t.store sid
                    {
                      Store.session = info.r_session;
                      layer = info.r_layer;
                      eol = info.r_eol;
                      journal = Some j;
                    }
                in
                Obs.incr t.c_rehydrations;
                compact_evicted t evicted;
                `Ok))

(* Read-only ops: a plain lookup, no lock held while the reply is
   computed — the session value is immutable, so a concurrent mutation
   of the same id swaps the slot's pointer without disturbing us.
   [with_resident] is the store-only variant for callers already under
   the admission lock (rehydration would self-deadlock there). *)
let with_resident t sid k =
  match Store.find t.store sid with None -> unknown_session sid | Some entry -> k entry

let with_session t sid k =
  match Store.find t.store sid with
  | Some entry -> k entry
  | None -> (
    match rehydrate t sid with
    | `Absent -> unknown_session sid
    | `Failed msg -> P.Failed (P.Journal_error, msg)
    | `Ok -> (
      match Store.find t.store sid with
      | Some entry -> k entry
      | None -> unknown_session sid (* evicted again before we could look *)))

let begin_mutation_rehydrating t sid =
  match Store.begin_mutation t.store sid with
  | Some me -> `Begun me
  | None -> (
    match rehydrate t sid with
    | `Absent -> `Missing
    | `Failed msg -> `Error msg
    | `Ok -> (
      match Store.begin_mutation t.store sid with Some me -> `Begun me | None -> `Missing))

(* Per-request latency attribution (DESIGN.md 18): the op span's phase
   attrs answer "where did this request's time go" — slot-lock acquire
   (including any rehydration behind it), layer work, journal append,
   group-commit fsync wait.  Queue wait and reply flush are measured
   by the callers that own those phases ([Server] / [handle_line_into])
   and merged into the same attr set at span close. *)
type phases = {
  mutable ph_lock : float;
  mutable ph_sweep : float;
  mutable ph_journal : float;
  mutable ph_fsync : float;
}

let no_phases () = { ph_lock = 0.0; ph_sweep = 0.0; ph_journal = 0.0; ph_fsync = 0.0 }

let timed add f =
  let t0 = Obs.now_us () in
  let r = f () in
  add (Obs.now_us () -. t0);
  r

(* Mutations serialize per session id (the store's slot lock), not
   globally.  Write-ahead order: the journal line is appended (and
   flushed to the kernel) before the new state is committed and before
   any reply leaves; a failed append fails the request with the state
   unchanged.  In sync mode the fsync happens {e after} the slot lock
   is released — the reply still waits for durability, but the next
   mutation of the same session (and every other session) overlaps the
   disk flush, group-committed by {!Journal.sync_to}.

   A {e failed} fsync is the one case where "failed request, state
   unchanged" cannot hold: the mutation is already committed and
   visible.  Rather than acknowledge in-memory state whose durability
   is unknown (a retry would double-apply the mutation), the session is
   evicted from the store: the error reply tells the client to re-open
   (or simply touch the session again — rehydration), which replays
   exactly what actually reached disk.

   When [compact_after] is configured and the journal tail has grown
   past it, the mutation also triggers compaction while the slot is
   still held (after [sync_all], so acknowledged durability is never
   weakened by the handle swap).  Compaction failure never fails the
   mutation — the reply reports the applied state; the journal simply
   stays long. *)
let mutate t ph sid req apply =
  match
    timed (fun d -> ph.ph_lock <- ph.ph_lock +. d) (fun () -> begin_mutation_rehydrating t sid)
  with
  | `Missing -> unknown_session sid
  | `Error msg -> P.Failed (P.Journal_error, msg)
  | `Begun (m, entry) ->
    let sync_after = ref None in
    let response =
      match
        match
          timed
            (fun d -> ph.ph_sweep <- ph.ph_sweep +. d)
            (fun () -> apply entry.Store.session)
        with
        | Error msg -> P.Failed (P.Rejected, msg)
        | Ok s' -> (
          let signature = Session.candidate_signature s' in
          let journaled =
            match entry.Store.journal with
            | None -> Ok None
            | Some j ->
              timed
                (fun d -> ph.ph_journal <- ph.ph_journal +. d)
                (fun () ->
                  Result.map
                    (fun seq -> Some (j, seq))
                    (Journal.append j ~req:(P.json_of_request req) ~signature))
          in
          match journaled with
          | Error msg -> P.Failed (P.Journal_error, msg)
          | Ok jseq ->
            let entry' = { entry with Store.session = s' } in
            Store.commit_mutation m entry';
            sync_after := jseq;
            (match (t.cfg.journal_dir, t.cfg.compact_after, jseq) with
            | Some dir, Some threshold, Some (j, _) when Journal.entry_count j >= threshold -> (
              match compact_live t ~dir m entry' ~id:sid j with
              | Ok _ ->
                Obs.incr t.c_compactions;
                (* the handle [sync_to] would target is gone; the
                   snapshot + rewritten journal are already durable *)
                sync_after := None
              | Error _ -> Obs.incr t.c_compaction_failures)
            | _ -> ());
            P.Reply (session_summary sid s' @ [ ("signature", Jsonx.Str signature) ]))
      with
      | r -> r
      | exception e ->
        Store.end_mutation m;
        raise e
    in
    Store.end_mutation m;
    (match !sync_after with
    | None -> response
    | Some (j, seq) -> (
      match
        timed (fun d -> ph.ph_fsync <- ph.ph_fsync +. d) (fun () -> Journal.sync_to j seq)
      with
      | Ok () -> response
      | Error msg ->
        Store.remove t.store sid;
        P.Failed
          (P.Journal_error,
           Printf.sprintf
             "%s; durability unknown — session %S closed, re-open with resume (do not retry \
              the mutation blindly: it may already be journaled)"
             msg sid)))

let handle_compact t sid =
  match t.cfg.journal_dir with
  | None -> P.Failed (P.Journal_error, "cannot compact: journaling is disabled")
  | Some dir -> (
    match begin_mutation_rehydrating t sid with
    | `Missing -> unknown_session sid
    | `Error msg -> P.Failed (P.Journal_error, msg)
    | `Begun (m, entry) ->
      let response =
        match entry.Store.journal with
        | None -> P.Failed (P.Journal_error, "session has no journal")
        | Some j -> (
          match compact_live t ~dir m entry ~id:sid j with
          | Ok (total, entry') ->
            Obs.incr t.c_compactions;
            let tail =
              match entry'.Store.journal with Some j' -> Journal.entry_count j' | None -> 0
            in
            P.Reply
              [
                ("session", Jsonx.Str sid);
                ("entries", Jsonx.Int total);
                ("base", Jsonx.Int total);
                ("tail", Jsonx.Int tail);
              ]
          | Error msg ->
            Obs.incr t.c_compaction_failures;
            P.Failed (P.Journal_error, msg))
      in
      Store.end_mutation m;
      response)

let handle_open t ~session ~layer ~eol ~resume:resume_flag =
  admitted t @@ fun () ->
  let id_result =
    match session with
    | Some id when not (valid_id id) ->
      Error
        (P.Bad_request,
         Printf.sprintf "bad session id %S (want [A-Za-z0-9._-]{1,64}, no leading dot)" id)
    | Some id -> Ok id
    | None -> Ok (fresh_id t)
  in
  match id_result with
  | Error (code, msg) -> P.Failed (code, msg)
  | Ok id when Store.mem t.store id ->
    P.Failed (P.Session_exists, Printf.sprintf "session %S is already open" id)
  | Ok id when resume_flag -> (
    match t.cfg.journal_dir with
    | None -> P.Failed (P.Journal_error, "cannot resume: journaling is disabled")
    | Some dir -> (
      match resume_recorded t ~dir ~id with
      | Error msg -> P.Failed (P.Journal_error, msg)
      | Ok info ->
        if (not (String.equal layer "")) && not (String.equal layer info.r_layer) then
          P.Failed
            (P.Bad_request,
             Printf.sprintf "journal %S belongs to layer %S, not %S" id info.r_layer layer)
        else (
          match Journal.open_append ~sync:t.cfg.journal_sync ~dir ~id () with
          | Error msg -> P.Failed (P.Journal_error, msg)
          | Ok j ->
            let evicted =
              Store.put t.store id
                {
                  Store.session = info.r_session;
                  layer = info.r_layer;
                  eol = info.r_eol;
                  journal = Some j;
                }
            in
            compact_evicted t evicted;
            P.Reply
              (session_summary id info.r_session
              @ [
                  ("layer", Jsonx.Str info.r_layer);
                  ("eol", Jsonx.Int info.r_eol);
                  ("resumed", Jsonx.Bool true);
                  ("replayed", Jsonx.Int info.r_replayed);
                  ("tail_replayed", Jsonx.Int info.r_tail_replayed);
                  ("snapshot", Jsonx.Bool info.r_from_snapshot);
                  ("signature", Jsonx.Str (Session.candidate_signature info.r_session));
                ]))))
  | Ok id when journal_exists t id ->
    (* a plain open would truncate the resumable history on disk *)
    P.Failed
      (P.Session_exists,
       Printf.sprintf
         "session %S has a journal on disk; resume it with open --resume or pick another id"
         id)
  | Ok id -> (
    match List.assoc_opt layer t.cfg.layers with
    | None ->
      P.Failed
        (P.Unknown_layer,
         Printf.sprintf "unknown layer %S (known: %s)" layer
           (String.concat ", " (List.map fst t.cfg.layers)))
    | Some make -> (
      let eol = Option.value ~default:t.cfg.default_eol eol in
      let s = make ~eol in
      let journal =
        match t.cfg.journal_dir with
        | None -> Ok None
        | Some dir ->
          Result.map Option.some
            (Journal.create ~sync:t.cfg.journal_sync ~dir
               { Journal.session = id; layer; eol; base = 0 })
      in
      match journal with
      | Error msg -> P.Failed (P.Journal_error, msg)
      | Ok journal ->
        let evicted = Store.put t.store id { Store.session = s; layer; eol; journal } in
        compact_evicted t evicted;
        P.Reply
          (session_summary id s @ [ ("layer", Jsonx.Str layer); ("eol", Jsonx.Int eol) ])))

let handle_branch t sid as_id =
  (* rehydrate the source before taking the admission lock (rehydration
     takes it itself); a source evicted in the window between this and
     the lookup below simply reports unknown_session *)
  (match Store.find t.store sid with
  | Some _ -> ()
  | None -> ignore (rehydrate t sid));
  admitted t @@ fun () ->
  with_resident t sid (fun entry ->
      let id_result =
        match as_id with
        | Some id when not (valid_id id) ->
          Error (P.Bad_request, Printf.sprintf "bad session id %S" id)
        | Some id -> Ok id
        | None -> Ok (fresh_id t)
      in
      match id_result with
      | Error (code, msg) -> P.Failed (code, msg)
      | Ok nid when Store.mem t.store nid ->
        P.Failed (P.Session_exists, Printf.sprintf "session %S is already open" nid)
      | Ok nid when journal_exists t nid ->
        P.Failed
          (P.Session_exists,
           Printf.sprintf
             "session %S has a journal on disk; resume it or pick another branch id" nid)
      | Ok nid -> (
        let journal =
          match t.cfg.journal_dir with
          | None -> Ok None
          | Some dir -> (
            match Journal.branch ~sync:t.cfg.journal_sync ~dir ~from_id:sid ~to_id:nid () with
            | Error msg -> Error msg
            | Ok () ->
              Result.map Option.some (Journal.open_append ~sync:t.cfg.journal_sync ~dir ~id:nid ()))
        in
        match journal with
        | Error msg -> P.Failed (P.Journal_error, msg)
        | Ok journal ->
          (* sessions are immutable: the branch shares the value, O(1) *)
          let evicted = Store.put t.store nid { entry with Store.journal = journal } in
          compact_evicted t evicted;
          P.Reply (session_summary nid entry.Store.session @ [ ("from", Jsonx.Str sid) ])))

let merits_or_default t = function
  | Some (_ :: _ as ms) -> ms
  | Some [] | None -> t.cfg.default_merits

let op_name = function
  | P.Open _ -> "open"
  | P.Set { decide = true; _ } -> "decide"
  | P.Set _ -> "set"
  | P.Default _ -> "default"
  | P.Retract _ -> "retract"
  | P.Annotate _ -> "annotate"
  | P.Candidates _ -> "candidates"
  | P.Ranges _ -> "ranges"
  | P.Issues _ -> "issues"
  | P.Preview _ -> "preview"
  | P.Script _ -> "script"
  | P.Trace _ -> "trace"
  | P.Health _ -> "health"
  | P.Signature _ -> "signature"
  | P.Report _ -> "report"
  | P.Branch _ -> "branch"
  | P.Compact _ -> "compact"
  | P.Close _ -> "close"
  | P.Stats -> "stats"
  | P.Metrics _ -> "metrics"
  | P.Healthz -> "healthz"
  | P.Batch _ -> "batch"

(* [t.op_hists] is read-only after [create] (every op pre-populated),
   so the lookup itself needs no lock; observations go through the
   histogram's per-domain stripes. *)
let record t op us =
  match Hashtbl.find_opt t.op_hists op with Some h -> Obs.observe h us | None -> ()

(* attributes that let a span page retell the exploration: which
   session, and for mutations which property went to which value *)
let req_attrs req =
  let op = op_name req in
  let base = [ ("op", op) ] in
  match req with
  | P.Open { session; layer; _ } ->
    base
    @ (match session with Some s -> [ ("session", s) ] | None -> [])
    @ [ ("layer", layer) ]
  | P.Set { session; name; value; _ } ->
    base @ [ ("session", session); ("name", name); ("value", Value.to_string value) ]
  | P.Default { session; name } | P.Retract { session; name } ->
    base @ [ ("session", session); ("name", name) ]
  | P.Annotate { session; _ }
  | P.Candidates { session; _ }
  | P.Ranges { session; _ }
  | P.Issues { session }
  | P.Script { session }
  | P.Trace { session; _ }
  | P.Health { session }
  | P.Signature { session }
  | P.Report { session; _ } ->
    base @ [ ("session", session) ]
  | P.Preview { session; issue; _ } -> base @ [ ("session", session); ("issue", issue) ]
  | P.Branch { session; as_id } ->
    base
    @ [ ("session", session) ]
    @ (match as_id with Some id -> [ ("as", id) ] | None -> [])
  | P.Compact { session } | P.Close { session } -> base @ [ ("session", session) ]
  | P.Batch { session; reqs } ->
    base @ [ ("session", session); ("reqs", string_of_int (List.length reqs)) ]
  | P.Stats | P.Metrics _ | P.Healthz -> base

let response_attrs = function
  | P.Reply payload ->
    ("ok", "true")
    :: List.filter_map
         (fun (k, v) ->
           match (k, v) with
           | "candidates", Jsonx.Int n | "count", Jsonx.Int n ->
             Some ("candidates", string_of_int n)
           | "session", Jsonx.Str s -> Some ("session", s)
           | _ -> None)
         payload
  | P.Failed (code, _) -> [ ("ok", "false"); ("code", P.error_code_label code) ]

(* The session-scoped read-only queries, factored over an explicit
   session value: [dispatch] evaluates them against the store entry,
   [handle_batch] against the in-progress value mid-batch (so a read
   between two batched mutations observes the first one applied). *)
let read_reply t sid s (req : P.request) =
  match req with
  | P.Candidates { max; _ } ->
    let cands = Session.candidates s in
    let count = List.length cands in
    (* [max] bounds the id page, never the count: a fleet-scale
       poll asks "how many survive?" thousands of times a second,
       and shipping every id would make the reply O(survivors) *)
    let page =
      match max with
      | Some m when m >= 0 && m < count -> List.filteri (fun i _ -> i < m) cands
      | _ -> cands
    in
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ("count", Jsonx.Int count);
        ("candidates", Jsonx.List (List.map (fun (qid, _) -> Jsonx.Str qid) page));
      ]
  | P.Ranges { merits; _ } ->
    let merits = merits_or_default t merits in
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ( "ranges",
          Jsonx.Obj
            (List.map (fun merit -> (merit, range_json (Session.merit_range s ~merit))) merits)
        );
      ]
  | P.Issues _ ->
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ( "issues",
          Jsonx.List
            (List.map
               (fun (prop, eligible) ->
                 Jsonx.Obj
                   [
                     ("name", Jsonx.Str prop.Ds_layer.Property.name);
                     ( "domain",
                       Jsonx.Str (Ds_layer.Domain.describe prop.Ds_layer.Property.domain) );
                     ("eligible", Jsonx.Bool eligible);
                   ])
               (Session.open_issues s)) );
      ]
  | P.Preview { issue; merit; _ } -> (
    let merit =
      match merit with
      | Some m -> m
      | None -> ( match t.cfg.default_merits with m :: _ -> m | [] -> "")
    in
    match Session.preview_options s ~issue ~merit with
    | Error msg -> P.Failed (P.Rejected, msg)
    | Ok previews ->
      P.Reply
        [
          ("session", Jsonx.Str sid);
          ("issue", Jsonx.Str issue);
          ("merit", Jsonx.Str merit);
          ( "options",
            Jsonx.List
              (List.map
                 (fun pv ->
                   match pv.Session.outcome with
                   | `Explored (n, range) ->
                     Jsonx.Obj
                       [
                         ("value", Jsonx.Str pv.Session.option_value);
                         ("outcome", Jsonx.Str "explored");
                         ("candidates", Jsonx.Int n);
                         ("range", range_json range);
                       ]
                   | `Rejected reason ->
                     Jsonx.Obj
                       [
                         ("value", Jsonx.Str pv.Session.option_value);
                         ("outcome", Jsonx.Str "rejected");
                         ("reason", Jsonx.Str reason);
                       ])
                 previews) );
        ])
  | P.Script _ ->
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ( "script",
          Jsonx.List
            (List.map
               (fun (name, value) ->
                 Jsonx.Obj [ ("name", Jsonx.Str name); ("value", P.json_of_value value) ])
               (Session.script s)) );
      ]
  | P.Trace { spans = false; _ } ->
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ("trace", Jsonx.Str (Format.asprintf "%a" Session.pp_trace s));
      ]
  | P.Health _ ->
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ( "health",
          Jsonx.List
            (List.map
               (fun (name, status) ->
                 Jsonx.Obj
                   (( "constraint", Jsonx.Str name )
                   :: ("status", Jsonx.Str (Ds_layer.Guard.status_label status))
                   ::
                   (match status with
                   | Ds_layer.Guard.Quarantined { reason; _ } ->
                     [ ("reason", Jsonx.Str reason) ]
                   | Ds_layer.Guard.Healthy | Ds_layer.Guard.Degraded -> [])))
               (Session.health s)) );
        ( "diagnostics",
          Jsonx.List
            (List.map (fun d -> Jsonx.Str (Ds_layer.Guard.describe_diag d)) (Session.diagnostics s))
        );
      ]
  | P.Signature _ ->
    P.Reply
      [
        ("session", Jsonx.Str sid);
        ("signature", Jsonx.Str (Session.candidate_signature s));
      ]
  | P.Report { title; _ } ->
    let markdown =
      Ds_layer.Report.render ?title ~merits:t.cfg.default_merits ?pareto:t.cfg.report_pareto s
    in
    P.Reply [ ("session", Jsonx.Str sid); ("markdown", Jsonx.Str markdown) ]
  | P.Open _ | P.Set _ | P.Default _ | P.Retract _ | P.Annotate _
  | P.Trace { spans = true; _ }
  | P.Branch _ | P.Compact _ | P.Close _ | P.Stats | P.Metrics _ | P.Healthz | P.Batch _ ->
    P.Failed (P.Server_error, "not a session read")

(* A batch holds the session slot once, applies each sub-request against
   the in-progress value, journals every successful mutation as its own
   ordinary entry (replay is byte-identical to the equivalent sequential
   op sequence), and fsyncs once at the end ({!Journal.sync_to} to the
   last appended seq — one group-commit for the whole batch).

   Abort discipline: the first {e mutation} failure (layer rejection or
   journal append error) stops execution — its failure reply is the last
   element of [results] and its index is reported as [batch_aborted_at];
   the remaining sub-requests are not executed.  Read failures never
   abort.  A failed group fsync follows {!mutate}'s evict-and-resume
   path for the whole batch, since which appended entries reached disk
   is unknown. *)
let handle_batch t ph sid reqs =
  match
    timed (fun d -> ph.ph_lock <- ph.ph_lock +. d) (fun () -> begin_mutation_rehydrating t sid)
  with
  | `Missing -> unknown_session sid
  | `Error msg -> P.Failed (P.Journal_error, msg)
  | `Begun (m, entry0) ->
    let sync_after = ref None in
    let response =
      match
        let cur = ref entry0 in
        let mutated = ref false in
        let results = ref [] in
        let aborted = ref None in
        let idx = ref 0 in
        let rec run = function
          | [] -> ()
          | req :: rest -> (
            let t0 = Obs.now_us () in
            (* each sub-request is its own span, an implicit child of
               the batch's op span — which carries the propagated trace
               context, so batched mutations show up individually in a
               fleet-assembled tree *)
            let sub_sp = Obs.span_begin ("op." ^ op_name req) ~attrs:(req_attrs req) in
            let sub =
              Fun.protect
                ~finally:(fun () -> Obs.span_end sub_sp)
                (fun () ->
                  let sub =
                    match req with
                    | P.Set { name; value = Value.Real f; _ } when not (Float.is_finite f) ->
                      (* same screen as [dispatch]: a non-finite real would
                         journal as null and poison every later resume *)
                      `Abort
                        (P.Failed
                           (P.Bad_request,
                            Printf.sprintf "non-finite value for %S is not accepted" name))
                    | _ -> (
                      match
                        timed
                          (fun d -> ph.ph_sweep <- ph.ph_sweep +. d)
                          (fun () -> apply_mutation !cur.Store.session req)
                      with
                      | Some (Error msg) -> `Abort (P.Failed (P.Rejected, msg))
                      | Some (Ok s') -> (
                        let signature = Session.candidate_signature s' in
                        let journaled =
                          match !cur.Store.journal with
                          | None -> Ok None
                          | Some j ->
                            timed
                              (fun d -> ph.ph_journal <- ph.ph_journal +. d)
                              (fun () ->
                                Result.map
                                  (fun seq -> Some (j, seq))
                                  (Journal.append j ~req:(P.json_of_request req) ~signature))
                        in
                        match journaled with
                        | Error msg -> `Abort (P.Failed (P.Journal_error, msg))
                        | Ok jseq ->
                          cur := { !cur with Store.session = s' };
                          mutated := true;
                          (match jseq with Some _ -> sync_after := jseq | None -> ());
                          `Ok
                            (P.Reply
                               (session_summary sid s' @ [ ("signature", Jsonx.Str signature) ])))
                      | None -> (
                        try
                          `Ok
                            (timed
                               (fun d -> ph.ph_sweep <- ph.ph_sweep +. d)
                               (fun () -> read_reply t sid !cur.Store.session req))
                        with e -> `Ok (P.Failed (P.Server_error, Printexc.to_string e))))
                  in
                  (match sub with
                  | `Ok r | `Abort r -> Obs.span_add sub_sp (response_attrs r));
                  sub)
            in
            record t (op_name req) (Obs.now_us () -. t0);
            match sub with
            | `Ok r ->
              results := r :: !results;
              incr idx;
              run rest
            | `Abort r ->
              results := r :: !results;
              aborted := Some !idx)
        in
        run reqs;
        if !mutated then Store.commit_mutation m !cur;
        (match (t.cfg.journal_dir, t.cfg.compact_after, !sync_after) with
        | Some dir, Some threshold, Some (j, _) when Journal.entry_count j >= threshold -> (
          match compact_live t ~dir m !cur ~id:sid j with
          | Ok _ ->
            Obs.incr t.c_compactions;
            (* the handle [sync_to] would target is gone; the snapshot +
               rewritten journal are already durable *)
            sync_after := None
          | Error _ -> Obs.incr t.c_compaction_failures)
        | _ -> ());
        P.Reply
          (( "session", Jsonx.Str sid )
          :: ("results", Jsonx.List (List.rev_map P.json_of_response !results))
          ::
          (match !aborted with
          | Some i -> [ ("batch_aborted_at", Jsonx.Int i) ]
          | None -> []))
      with
      | r -> r
      | exception e ->
        Store.end_mutation m;
        raise e
    in
    Store.end_mutation m;
    (match !sync_after with
    | None -> response
    | Some (j, seq) -> (
      match
        timed (fun d -> ph.ph_fsync <- ph.ph_fsync +. d) (fun () -> Journal.sync_to j seq)
      with
      | Ok () -> response
      | Error msg ->
        Store.remove t.store sid;
        P.Failed
          (P.Journal_error,
           Printf.sprintf
             "%s; durability unknown — session %S closed, re-open with resume (do not retry \
              the batch blindly: its mutations may already be journaled)"
             msg sid)))

let dispatch t ph req =
  let timed_read session entry =
    timed
      (fun d -> ph.ph_sweep <- ph.ph_sweep +. d)
      (fun () -> read_reply t session entry.Store.session req)
  in
  match req with
  | P.Open { session; layer; eol; resume } -> handle_open t ~session ~layer ~eol ~resume
  | P.Set { session; name; value; _ } -> (
    match value with
    | Value.Real f when not (Float.is_finite f) ->
      (* requests arriving off the wire are already screened, but the
         shell builds requests directly; a non-finite real would journal
         as null and poison every later resume *)
      P.Failed (P.Bad_request, Printf.sprintf "non-finite value for %S is not accepted" name)
    | _ -> mutate t ph session req (fun s -> Session.set s name value))
  | P.Default { session; name } -> mutate t ph session req (fun s -> Session.set_default s name)
  | P.Retract { session; name } -> mutate t ph session req (fun s -> Session.retract s name)
  | P.Annotate { session; text } ->
    mutate t ph session req (fun s -> Ok (Session.annotate s text))
  | P.Candidates { session; _ }
  | P.Ranges { session; _ }
  | P.Issues { session }
  | P.Preview { session; _ }
  | P.Script { session }
  | P.Trace { session; spans = false; _ } ->
    with_session t session (fun entry -> timed_read session entry)
  | P.Trace { spans = true; since; max_spans; _ } ->
    (* one page of the global span ring; [next] is the cursor of the
       following page, [dropped] what the bounded ring already evicted
       from the requested range *)
    let spans, next, dropped = Obs.trace_read ?since ?max_spans () in
    let span_json (sp : Obs.rec_span) =
      Jsonx.Obj
        (("seq", Jsonx.Int sp.Obs.sr_seq)
        :: ("id", Jsonx.Int sp.Obs.sr_id)
        :: (if sp.Obs.sr_parent >= 0 then [ ("parent", Jsonx.Int sp.Obs.sr_parent) ] else [])
        @ [
            ("name", Jsonx.Str sp.Obs.sr_name);
            ("t0", Jsonx.Float sp.Obs.sr_t0);
            ("dur_us", Jsonx.Float sp.Obs.sr_dur_us);
            ( "attrs",
              Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) sp.Obs.sr_attrs) );
          ])
    in
    P.Reply
      [
        ("spans", Jsonx.List (List.map span_json spans));
        ("next", Jsonx.Int next);
        ("dropped", Jsonx.Int dropped);
        ("enabled", Jsonx.Bool (Obs.enabled ()));
      ]
  | P.Health { session } | P.Signature { session } | P.Report { session; _ } ->
    with_session t session (fun entry -> timed_read session entry)
  | P.Branch { session; as_id } -> handle_branch t session as_id
  | P.Compact { session } -> handle_compact t session
  | P.Close { session } -> (
    (* through the mutation protocol, so a close waits for an in-flight
       mutation of the session instead of closing its journal under it *)
    match Store.begin_mutation t.store session with
    | None -> unknown_session session
    | Some (m, _) ->
      Store.remove_locked m;
      Store.end_mutation m;
      P.Reply [ ("closed", Jsonx.Str session) ])
  | P.Stats ->
    (* deprecation shim: the pre-registry reply shape, reconstructed
       from histogram snapshots (count/sum/max are exact, so the
       figures match the old striped counters bit for bit).  New
       clients should prefer [metrics]. *)
    let stat_json h =
      let s = Obs.h_snapshot h in
      let count = s.Obs.h_count in
      Jsonx.Obj
        [
          ("count", Jsonx.Int count);
          ( "mean_us",
            Jsonx.Float (if count = 0 then 0.0 else s.Obs.h_sum /. float_of_int count) );
          ("max_us", Jsonx.Float (if count = 0 then 0.0 else s.Obs.h_max));
        ]
    in
    let ops =
      Hashtbl.fold (fun op h acc -> (op, stat_json h) :: acc) t.op_hists []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    P.Reply
      [
        ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. t.started));
        ("sessions", Jsonx.Int (Store.count t.store));
        ("capacity", Jsonx.Int (Store.capacity t.store));
        ("evictions", Jsonx.Int (Store.evictions t.store));
        ("queue_wait", stat_json t.queue_hist);
        ("requests", Jsonx.Obj ops);
      ]
  | P.Metrics { format } -> (
    let regs = [ ("service", t.registry); ("engine", Obs.default) ] in
    match format with
    | Some "prometheus" ->
      P.Reply [ ("format", Jsonx.Str "prometheus"); ("text", Jsonx.Str (Obs.prometheus regs)) ]
    | None | Some "json" ->
      let finite f = Jsonx.Float (if Float.is_finite f then f else 0.0) in
      let hist_json (s : Obs.hsnapshot) =
        Jsonx.Obj
          [
            ("count", Jsonx.Int s.Obs.h_count);
            ("sum", finite s.Obs.h_sum);
            ("min", finite s.Obs.h_min);
            ("max", finite s.Obs.h_max);
            ("buckets", Jsonx.List (Array.to_list (Array.map (fun c -> Jsonx.Int c) s.Obs.h_counts)));
          ]
      in
      let reg_json r =
        Jsonx.Obj
          [
            ( "counters",
              Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) (Obs.counters r)) );
            ("gauges", Jsonx.Obj (List.map (fun (k, v) -> (k, finite v)) (Obs.gauges r)));
            ( "histograms",
              Jsonx.Obj (List.map (fun (k, s) -> (k, hist_json s)) (Obs.histograms r)) );
          ]
      in
      let slow_lines, slow_dropped = Obs.slow_read () in
      P.Reply
        [
          ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. t.started));
          ("sessions", Jsonx.Int (Store.count t.store));
          ( "bounds",
            Jsonx.List (Array.to_list (Array.map (fun b -> Jsonx.Float b) Obs.bucket_bounds)) );
          ("registries", Jsonx.Obj (List.map (fun (tag, r) -> (tag, reg_json r)) regs));
          ("slow", Jsonx.List (List.map (fun l -> Jsonx.Str l) slow_lines));
          ("slow_dropped", Jsonx.Int slow_dropped);
        ]
    | Some other ->
      P.Failed (P.Bad_request, Printf.sprintf "unknown metrics format %S (json|prometheus)" other))
  | P.Healthz ->
    (* liveness only — no store access, so it answers even when every
       session slot is wedged behind a slow mutation *)
    P.Reply
      [
        ("status", Jsonx.Str "ok");
        ("uptime_s", Jsonx.Float (Unix.gettimeofday () -. t.started));
        ("sessions", Jsonx.Int (Store.count t.store));
      ]
  | P.Batch { session; reqs } -> handle_batch t ph session reqs

let record_queue_wait t us = Obs.observe t.queue_hist us

(* one-decimal microseconds without the Printf machinery: six of
   these run on every sampled request (the phase attrs), and a format
   interpreter per phase is measurable at fleet throughput *)
let fmt_us v =
  if Float.is_finite v && v >= 0.0 && v < 1e15 then begin
    let t = int_of_float ((v *. 10.0) +. 0.5) in
    string_of_int (t / 10) ^ "." ^ string_of_int (t mod 10)
  end
  else Printf.sprintf "%.1f" v

(* The request root.  With a propagated trace context the op span is a
   remote-parented local root (so the fleet assembler can hang it under
   the client's requesting span); without one it parents as before.
   [render] runs {e inside} the span — the reply-flush phase — so the
   phase attrs cover the request end to end, and a request over
   [DSE_SLOW_MS] logs its whole tree to the slow log. *)
let handle_gen ?trace ?(queue_us = 0.0) ?render t req =
  let name = "op." ^ op_name req in
  let sp =
    match trace with
    | Some (tid, parent_span) ->
      Obs.span_begin_remote ~trace:tid ~parent_span ~attrs:(req_attrs req) name
    | None ->
      (* attrs only when the root sampled: the common below-rate case
         should not even build the list *)
      let sp = Obs.span_begin_root name in
      if Obs.span_live sp then Obs.span_add sp (req_attrs req);
      sp
  in
  (* obs-lint: every branch of [sp] reaches [Obs.span_end] in the
     [Fun.protect ~finally] below *)
  let live = Obs.span_live sp in
  let since = if live then Obs.trace_cursor () else 0 in
  let ph = no_phases () in
  let flush_us = ref 0.0 in
  let t0 = Obs.now_us () in
  let response = ref None in
  Fun.protect
    ~finally:(fun () ->
      let dur_us = Obs.now_us () -. t0 in
      record t (op_name req) dur_us;
      (* a dead span (telemetry off, or not head-sampled) records
         nothing — skip assembling the attrs it would discard *)
      if live then begin
        let attrs =
          (match !response with
          | Some r -> response_attrs r
          | None -> [ ("ok", "false"); ("code", "server_error") ])
          @ [
              ("queue_us", fmt_us queue_us);
              ("lock_us", fmt_us ph.ph_lock);
              ("sweep_us", fmt_us ph.ph_sweep);
              ("journal_us", fmt_us ph.ph_journal);
              ("fsync_us", fmt_us ph.ph_fsync);
              ("flush_us", fmt_us !flush_us);
            ]
        in
        Obs.span_end sp ~attrs;
        Obs.slow_check ~since ~dur_us sp
      end
      else
        (* a dead root may still hold the suppression marker: closing
           it is what releases the thread's stack *)
        Obs.span_end sp)
    (fun () ->
      let r =
        try dispatch t ph req
        with e -> P.Failed (P.Server_error, Printexc.to_string e)
      in
      response := Some r;
      (match render with
      | None -> ()
      | Some f ->
        let tf = Obs.now_us () in
        f r;
        flush_us := Obs.now_us () -. tf);
      r)

let handle ?trace ?queue_us t req = handle_gen ?trace ?queue_us t req

let handle_line_into ?queue_us t buf line =
  match P.parse_request_traced line with
  | Error (code, msg) -> P.print_response_into buf (P.Failed (code, msg))
  | Ok (req, trace) ->
    ignore (handle_gen ?trace ?queue_us ~render:(fun r -> P.print_response_into buf r) t req)

let handle_line t line =
  let buf = Buffer.create 256 in
  handle_line_into t buf line;
  Buffer.contents buf
