(** The exploration-service wire protocol.

    Line-delimited JSON: every request is one JSON object on one line,
    every reply one JSON object on one line, strictly one reply per
    request, in order.  The same requests drive the networked server,
    the local [dse shell], and the session journal — there is exactly
    one grammar for "things a designer can ask the design space layer".

    {2 Request grammar}

    Every request object carries an ["op"] field; session-scoped ops
    carry ["session"].  See DESIGN.md section 11 for the full field
    tables.  The ops:

    - [open]: instantiate a layer (["layer"], optional ["eol"],
      optional ["session"] to pick the id, ["resume":true] to rebuild
      the session from its journal);
    - [set] / [decide]: bind a requirement or decide an issue
      (["name"], ["value"]) — [decide] is an alias kept so transcripts
      read like the paper's dialogue;
    - [default]: bind a property to its declared default (["name"]);
    - [retract]: undo a designer binding (["name"]);
    - [annotate]: append a note to the trail (["text"]);
    - [candidates], [ranges] (optional ["merits"] array), [issues],
      [script], [trace], [health], [signature]: read-only queries;
    - [preview]: per-option what-if (["issue"], optional ["merit"]);
    - [report]: render the markdown exploration report (optional
      ["title"]);
    - [branch]: fork the session into a new id (optional ["as"]) —
      O(1), sessions are immutable values;
    - [compact]: snapshot the session and truncate its journal tail,
      so the next resume replays checkpoint + tail instead of full
      history; the reply carries ["entries"] (total journalled
      mutations) and ["base"] (how many of them the snapshot subsumes);
    - [close]: drop the session from the resident store (its journal —
      and snapshot, if compacted — stay on disk, so a later touch
      rehydrates it);
    - [stats]: server-wide request counters and latency figures
      (legacy shape, kept for existing tooling — the registry-backed
      [metrics] op is the superset);
    - [metrics]: the telemetry registries (optional ["format"]:
      ["json"] (default) or ["prometheus"]) — every counter, gauge and
      latency histogram with raw bucket counts, so clients compute
      windowed rates and quantiles by differencing snapshots;
    - [trace] with ["spans":true]: one page of the server's span ring
      buffer (optional ["since"] cursor and ["max"] page size); the
      reply carries ["next"] — the cursor for the following page — and
      ["dropped"], how many spans of the requested range the bounded
      ring had already evicted.  Without ["spans"] it remains the
      rendered per-session text trace;
    - [batch]: an ordered array of sub-requests (["reqs"]) against one
      session (["session"]) — session-scoped mutations and reads only.
      A sub-request may omit its own ["session"] (inherited from the
      envelope); an explicit one must match.  The worker executes the
      array under a single session-slot acquisition and a single
      journal group-commit; the reply carries ["results"], an ordered
      array of full per-sub-request response objects.  The first
      {e mutation} failure aborts the remaining sub-requests and the
      reply adds ["batch_aborted_at"], the index of the failed
      sub-request (entries after it are not executed and not present in
      ["results"]).  Failing {e reads} never abort the batch.
      Journalled batch entries are the individual mutation records —
      replay is byte-identical to the equivalent sequential op
      sequence.

    {2 Reply grammar}

    [{"ok":true, ...payload}] or
    [{"ok":false,"error":{"code":C,"message":M}}] with [C] one of
    [parse_error], [bad_request], [unknown_op], [unknown_layer],
    [unknown_session], [session_exists], [rejected] (the layer refused
    a binding: constraint violation, unknown property, ...),
    [journal_error], [request_too_large] (the request line exceeded
    the server's bound; the connection stays open),
    [response_too_large] (client-side: a reply line exceeded the
    client's symmetric read bound), [shutting_down], [server_error]. *)

type request =
  | Open of { session : string option; layer : string; eol : int option; resume : bool }
  | Set of { session : string; name : string; value : Ds_layer.Value.t; decide : bool }
      (** [decide] records which verb the client used; semantics are
          identical ({!Ds_layer.Session.set} handles both). *)
  | Default of { session : string; name : string }
  | Retract of { session : string; name : string }
  | Annotate of { session : string; text : string }
  | Candidates of { session : string; max : int option }
      (** [max] caps how many survivor ids the reply ships (the exact
          ["count"] is always included) — at fleet scale a poll wants
          "how many are left, show me a few", not a 100KB id dump. *)
  | Ranges of { session : string; merits : string list option }
  | Issues of { session : string }
  | Preview of { session : string; issue : string; merit : string option }
  | Script of { session : string }
  | Trace of { session : string; spans : bool; since : int option; max_spans : int option }
      (** [spans = false]: the rendered text trace of [session].
          [spans = true]: a page of the global span ring ([session]
          may be [""] — spans are filtered client-side by their
          [session] attribute). *)
  | Health of { session : string }
  | Signature of { session : string }
  | Report of { session : string; title : string option }
  | Branch of { session : string; as_id : string option }
  | Compact of { session : string }
  | Close of { session : string }
  | Stats
  | Metrics of { format : string option }
  | Healthz
      (** Liveness ping — no session, no store access: the fleet
          supervisor uses it to health-check workers, and the router
          answers it itself with per-worker status. *)
  | Batch of { session : string; reqs : request list }
      (** Ordered sub-requests against one session, executed under a
          single slot-lock hold with one journal group-commit.  Every
          [reqs] element satisfies {!batchable} and targets [session]
          (the decoder enforces both). *)

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_op
  | Unknown_layer
  | Unknown_session
  | Session_exists
  | Rejected
  | Journal_error
  | Request_too_large
  | Response_too_large
      (** Minted by the {e client} when a reply line exceeds its read
          bound (the symmetric twin of [request_too_large]); the
          oversized line is drained, so the connection stays ordered
          and usable.  Deterministic — never retried. *)
  | Shutting_down
  | Session_unavailable
      (** The worker owning this session is down or restarting; the
          request was not applied (or its reply was lost).  Retry after
          a backoff — the supervisor restarts the worker and journal
          resume rebuilds the session. *)
  | Server_error

type response = Reply of (string * Jsonx.t) list | Failed of error_code * string

val error_code_label : error_code -> string

val error_code_of_label : string -> error_code option

val retryable : error_code -> bool
(** [true] for the codes a client should re-send after ([Shutting_down],
    [Session_unavailable]): the failure is about server availability,
    not about the request, and the request is safe to repeat. *)

val batchable : request -> bool
(** Whether a request may appear inside a {!Batch}: the session-scoped
    mutations and reads.  Lifecycle, server-global and nested-batch ops
    are refused. *)

val request_session : request -> string option
(** The session a request targets, when it is session-scoped.  [Open]
    yields its optional explicit id; [Trace {spans = true}] with the
    empty session, [Stats], [Metrics] and [Healthz] yield [None]. *)

val batch_of_requests : request list -> (request, string) result
(** Assemble already-parsed requests into a {!Batch} against their
    common session, with the same validation the wire decoder applies
    — the [dse client --batch] path. *)

val request_of_json : Jsonx.t -> (request, string) result
val json_of_request : request -> Jsonx.t
(** Total inverses: [request_of_json (json_of_request r) = Ok r] up to
    field order — the journal depends on this round-trip. *)

val parse_request : string -> (request, error_code * string) result
(** One wire line -> request ([Parse_error] or [Bad_request]/
    [Unknown_op] on failure). *)

val parse_request_traced :
  string -> (request * (string * string) option, error_code * string) result
(** {!parse_request} plus the request's propagated trace context, when
    the line carries a well-formed top-level ["trace"] member
    ([(trace_id, parent_span_id)] as split by
    {!Ds_obs.Obs.parse_trace}).  A malformed context is silently
    [None]: tracing can never fail a request. *)

val trace_member : Jsonx.t -> (string * string) option
(** The validated ["trace"] member of a request object, if any.  The
    context is a side channel, not a request field: {!json_of_request}
    (the journal's storage form) never emits it, and
    {!request_of_json} ignores it — journals stay byte-stable and
    trace-free. *)

val attach_trace : trace:string -> Jsonx.t -> Jsonx.t
(** Append a ["trace"] member to an encoded request object (no-op if
    one is already present, or on non-objects) — the client-side mint
    hook. *)

val print_response : response -> string
(** One reply -> one wire line (no trailing newline). *)

val print_response_into : Buffer.t -> response -> unit
(** {!print_response} into a caller-owned (reusable) buffer — the
    pipelined server's coalescing write path. *)

val json_of_response : response -> Jsonx.t
(** The reply object itself (including the ["ok"] header) — batch
    replies embed one per sub-request under ["results"]. *)

val response_of_string : string -> (response, string) result
(** Client-side decoding of a reply line. *)

val response_of_json : Jsonx.t -> (response, string) result
(** {!response_of_string} after the JSON parse — decodes the embedded
    per-sub-request objects of a batch reply. *)

val ok_payload : response -> ((string * Jsonx.t) list, string) result
(** Collapse a reply into its payload, or a ["code: message"] error —
    the shape client code almost always wants. *)

val json_of_value : Ds_layer.Value.t -> Jsonx.t

val value_of_json : Jsonx.t -> (Ds_layer.Value.t, string) result
(** JSON integral numbers become [Value.Int], other numbers
    [Value.Real], strings [Str], booleans [Flag] — the same coercions
    the CLI applies to NAME=VALUE text (and {!Ds_layer.Domain.contains}
    widens [Int] where a real is expected). *)
