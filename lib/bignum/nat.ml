(* Little-endian limbs in base 2^26, no trailing zero limb.  Base 2^26
   keeps limb products below 2^52, leaving ten bits of headroom for
   carry accumulation in the multiplication and division inner loops. *)

type t = int array

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

let zero : t = [||]
let is_zero n = Array.length n = 0

(* Trim trailing zero limbs (the only normalisation step needed). *)
let normalize (a : int array) : t =
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let hi = top (Array.length a - 1) in
  if hi < 0 then zero
  else if hi = Array.length a - 1 then a
  else Array.sub a 0 (hi + 1)

let check_invariant (n : t) =
  let len = Array.length n in
  (len = 0 || n.(len - 1) <> 0)
  && Array.for_all (fun limb -> limb >= 0 && limb < base) n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative"
  else begin
    let rec limbs acc n = if n = 0 then acc else limbs ((n land limb_mask) :: acc) (n lsr limb_bits) in
    normalize (Array.of_list (List.rev (limbs [] n)))
  end

let one = of_int 1
let two = of_int 2

let to_int_opt n =
  (* max_int has 62 bits: safe when at most two full limbs plus a small
     third one. *)
  let len = Array.length n in
  if len = 0 then Some 0
  else if len * limb_bits <= 62 then begin
    let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl limb_bits) lor n.(i)) in
    Some (go (len - 1) 0)
  end
  else begin
    let bits = ref 0 in
    let top = n.(len - 1) in
    let t = ref top in
    while !t > 0 do incr bits; t := !t lsr 1 done;
    if (len - 1) * limb_bits + !bits <= 62 then begin
      let rec go i acc = if i < 0 then acc else go (i - 1) ((acc lsl limb_bits) lor n.(i)) in
      Some (go (len - 1) 0)
    end
    else None
  end

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Nat.to_int_exn: value too large"

let of_limbs a =
  Array.iter
    (fun limb -> if limb < 0 || limb >= base then invalid_arg "Nat.of_limbs: limb out of range")
    a;
  normalize (Array.copy a)

let limbs n = Array.copy n
let num_limbs n = Array.length n

let bits_of_limb limb =
  let rec go acc limb = if limb = 0 then acc else go (acc + 1) (limb lsr 1) in
  go 0 limb

let num_bits n =
  let len = Array.length n in
  if len = 0 then 0 else ((len - 1) * limb_bits) + bits_of_limb n.(len - 1)

let bit n i =
  let word = i / limb_bits and off = i mod limb_bits in
  word < Array.length n && (n.(word) lsr off) land 1 = 1

let is_one n = Array.length n = 1 && n.(0) = 1
let is_even n = Array.length n = 0 || n.(0) land 1 = 0
let is_odd n = not (is_even n)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

let add_int a n = add a (of_int n)
let succ a = add_int a 1

let sub_opt a b =
  if compare a b < 0 then None
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let db = if i < lb then b.(i) else 0 in
      let d = a.(i) - db - !borrow in
      if d < 0 then begin r.(i) <- d + base; borrow := 1 end
      else begin r.(i) <- d; borrow := 0 end
    done;
    assert (!borrow = 0);
    Some (normalize r)
  end

let sub a b =
  match sub_opt a b with
  | Some d -> d
  | None -> invalid_arg "Nat.sub: negative result"

let mul_int a m =
  if m < 0 || m >= base then invalid_arg "Nat.mul_int: multiplier out of range"
  else if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * m) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let p = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    (* Propagate the final carry; it can ripple at most a few limbs. *)
    let k = ref (i + lb) in
    while !carry <> 0 do
      let p = r.(!k) + !carry in
      r.(!k) <- p land limb_mask;
      carry := p lsr limb_bits;
      incr k
    done
  done;
  normalize r

let karatsuba_threshold = 32

let split_at a k =
  let la = Array.length a in
  if la <= k then (normalize (Array.copy a), zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k)))

let shift_limbs a k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la = 1 then mul_int b a.(0)
  else if lb = 1 then mul_int a b.(0)
  else if Stdlib.min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Karatsuba: a = a1*B^k + a0, b = b1*B^k + b0 ->
       a*b = z2*B^2k + (z1 - z2 - z0)*B^k + z0 with
       z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1). *)
    let k = (Stdlib.max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = mul (add a0 a1) (add b0 b1) in
    let mid = sub (sub z1 z2) z0 in
    add (add (shift_limbs z2 (2 * k)) (shift_limbs mid k)) z0
  end

let sqr a = mul a a

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift"
  else if is_zero a || k = 0 then a
  else begin
    let words = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + words + 1) 0 in
    if bits = 0 then Array.blit a 0 r words la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + words) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      r.(la + words) <- !carry
    end;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift"
  else if is_zero a || k = 0 then a
  else begin
    let words = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if words >= la then zero
    else begin
      let lr = la - words in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a words r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + words) lsr bits in
          let hi = if i + words + 1 < la then (a.(i + words + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let bitwise op a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb in
  let r =
    Array.init lr (fun i ->
        let da = if i < la then a.(i) else 0 in
        let db = if i < lb then b.(i) else 0 in
        op da db)
  in
  normalize r

let logand a b = bitwise ( land ) a b
let logor a b = bitwise ( lor ) a b
let logxor a b = bitwise ( lxor ) a b

let divmod_int a d =
  if d <= 0 || d >= base then invalid_arg "Nat.divmod_int: divisor out of range"
  else begin
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, !r)
  end

(* Knuth algorithm D (TAOCP vol 2, 4.3.1), specialised to base 2^26. *)
let divmod_knuth u v =
  let n = Array.length v in
  assert (n >= 2);
  (* D1: normalise so the top limb of v has its high bit set. *)
  let shift = limb_bits - bits_of_limb v.(n - 1) in
  let u = shift_left u shift and v = shift_left v shift in
  let m = Array.length u - n in
  if m < 0 then (zero, shift_right u shift)
  else begin
    (* Working copy of u with one extra top limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsecond = v.(n - 2) in
    for j = m downto 0 do
      (* D3: estimate the quotient limb. *)
      let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      let continue = ref true in
      while !continue do
        if !qhat >= base || !qhat * vsecond > (!rhat lsl limb_bits) lor w.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      (* D4: multiply and subtract. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin w.(i + j) <- d + base; borrow := 1 end
        else begin w.(i + j) <- d; borrow := 0 end
      done;
      let d = w.(j + n) - !carry - !borrow in
      (* D5/D6: if we subtracted too much, add v back once. *)
      if d < 0 then begin
        w.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !carry in
          w.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let divmod a b =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent"
  else begin
    let rec go acc base k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then mul acc base else acc in
        go acc (sqr base) (k lsr 1)
      end
    in
    go one a k
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid over signed pairs (sign, magnitude) to avoid a signed
   bignum type: returns x with a*x = gcd (mod m). *)
let mod_inv a m =
  if is_zero m then raise Division_by_zero
  else begin
    let a = rem a m in
    (* Invariants: r = a*x (mod m), r' = a*x' (mod m), with x tracked as
       (negative?, magnitude). *)
    let rec go r r' x x' =
      if is_zero r' then (r, x)
      else begin
        let q, rest = divmod r r' in
        let neg, v = x and neg', v' = x' in
        let qv' = mul q v' in
        (* x - q*x' with signs *)
        let nx =
          if neg = neg' then begin
            if compare v qv' >= 0 then (neg, sub v qv') else (not neg, sub qv' v)
          end
          else (neg, add v qv')
        in
        go r' rest x' nx
      end
    in
    let g, (neg, v) = go (rem a m) m (false, one) (true, zero) in
    if not (is_one g) then None
    else begin
      let v = rem v m in
      Some (if neg && not (is_zero v) then sub m v else v)
    end
  end

let mod_pow b e m =
  if is_zero m then raise Division_by_zero
  else if is_one m then zero
  else begin
    let b = rem b m in
    let nbits = num_bits e in
    let rec go acc b i =
      if i >= nbits then acc
      else begin
        let acc = if bit e i then rem (mul acc b) m else acc in
        go acc (rem (sqr b) m) (i + 1)
      end
    in
    go one b 0
  end

let of_string s =
  let digits_of body radix valid value =
    let acc = ref zero in
    String.iter
      (fun c ->
        if c = '_' then ()
        else if valid c then acc := add_int (mul_int !acc radix) (value c)
        else invalid_arg "Nat.of_string: invalid digit")
      body;
    !acc
  in
  if String.length s = 0 then invalid_arg "Nat.of_string: empty"
  else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
    let body = String.sub s 2 (String.length s - 2) in
    let valid c =
      (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    in
    let value c =
      if c <= '9' then Char.code c - Char.code '0'
      else if c <= 'F' then Char.code c - Char.code 'A' + 10
      else Char.code c - Char.code 'a' + 10
    in
    digits_of body 16 valid value
  end
  else begin
    let valid c = c >= '0' && c <= '9' in
    let value c = Char.code c - Char.code '0' in
    digits_of s 10 valid value
  end

let to_string n =
  if is_zero n then "0"
  else begin
    (* Peel seven decimal digits at a time: 10^7 < 2^26. *)
    let chunk = 10_000_000 in
    let buf = Buffer.create 32 in
    let rec go n acc =
      if is_zero n then acc
      else begin
        let q, r = divmod_int n chunk in
        go q (r :: acc)
      end
    in
    match go n [] with
    | [] -> "0"
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
      Buffer.contents buf
  end

let to_hex n =
  if is_zero n then "0"
  else begin
    let nibbles = (num_bits n + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let v =
        (if bit n ((4 * i) + 3) then 8 else 0)
        + (if bit n ((4 * i) + 2) then 4 else 0)
        + (if bit n ((4 * i) + 1) then 2 else 0)
        + if bit n (4 * i) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let pp fmt n = Format.pp_print_string fmt (to_string n)
