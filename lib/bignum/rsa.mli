(** Textbook RSA over {!Nat}, the paper's driving application.

    The case study of Section 5 selects a modular-multiplier core for a
    modular-exponentiation coprocessor used in "digital signature and
    public key encryption" [10].  This module provides that application
    layer so examples and integration tests can run the selected
    configuration end-to-end. *)

type key = {
  modulus : Nat.t;  (** n = p * q *)
  public_exponent : Nat.t;  (** e *)
  private_exponent : Nat.t;  (** d = e^-1 mod lcm(p-1, q-1) *)
  prime_p : Nat.t;
  prime_q : Nat.t;
}

val generate : Prng.t -> bits:int -> key
(** [generate g ~bits] builds a key whose modulus has [bits] bits
    (two [bits/2]-bit primes).  Public exponent 65537 (or the smallest
    coprime alternative).  @raise Invalid_argument when [bits < 16]. *)

val encrypt : key -> Nat.t -> Nat.t
(** [encrypt k m] is [m^e mod n].  @raise Invalid_argument when
    [m >= n]. *)

val decrypt : key -> Nat.t -> Nat.t
(** [decrypt k c] is [c^d mod n]. *)

val decrypt_crt : key -> Nat.t -> Nat.t
(** Chinese-remainder decryption: two half-size exponentiations modulo
    [p] and [q] recombined with Garner's formula — the ~4x speedup a
    modular-exponentiation coprocessor exploits when it holds the
    factors.  Equal to {!decrypt} on every input. *)

val sign : key -> Nat.t -> Nat.t
(** [sign k m] is [m^d mod n] (textbook signature). *)

val verify : key -> message:Nat.t -> signature:Nat.t -> bool
(** [verify k ~message ~signature] checks [signature^e = message
    (mod n)]. *)

val modexp_operation_count : key -> bits:int -> int
(** Number of modular multiplications a square-and-multiply
    exponentiation with a [bits]-bit exponent performs on average
    (~1.5 per exponent bit); used by the benchmark harness to scale
    multiplication delays up to full exponentiations. *)
