(** Arbitrary-precision natural numbers.

    The design space layer's cryptography case study manipulates integers
    with values up to 2^1000 and beyond (modular exponentiation operands,
    RSA moduli).  No third-party bignum package is assumed: this module is
    a self-contained implementation over arrays of 26-bit limbs, which is
    the substrate for {!Modmul}, {!Prime} and {!Rsa}.

    Values are immutable.  All functions allocate fresh results; no
    function mutates its arguments. *)

type t
(** A natural number.  The representation invariant (no trailing zero
    limbs, every limb within [0, 2^26)) is maintained by every function
    in this interface and checked by {!check_invariant}. *)

val limb_bits : int
(** Number of bits per limb (26). *)

val base : int
(** [base = 2 ^ limb_bits]. *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] is the natural number [n].  @raise Invalid_argument if
    [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in an OCaml [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in an OCaml [int]. *)

val of_limbs : int array -> t
(** [of_limbs a] builds a value from little-endian limbs.  Limbs must lie
    within [0, base); trailing zeros are trimmed.
    @raise Invalid_argument on an out-of-range limb. *)

val limbs : t -> int array
(** Little-endian limbs (a fresh copy; empty for zero). *)

val num_limbs : t -> int
val num_bits : t -> int
(** [num_bits n] is the position of the highest set bit plus one, and 0
    for zero. *)

val bit : t -> int -> bool
(** [bit n i] is the [i]-th binary digit of [n] (little-endian). *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val is_odd : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t
val add_int : t -> int -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].  @raise Invalid_argument when [b > a]. *)

val sub_opt : t -> t -> t option
(** [sub_opt a b] is [Some (a - b)] when [b <= a] and [None] otherwise. *)

val mul : t -> t -> t
(** Product.  Uses schoolbook multiplication below {!karatsuba_threshold}
    limbs and Karatsuba above. *)

val mul_int : t -> int -> t
(** [mul_int a m] with [0 <= m < base]. *)

val karatsuba_threshold : int

val sqr : t -> t

val shift_left : t -> int -> t
(** [shift_left a k] is [a * 2^k]. *)

val shift_right : t -> int -> t
(** [shift_right a k] is [a / 2^k]. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth algorithm D).  @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_int : t -> int -> t * int
(** Division by a single limb in [1, base). *)

val pow : t -> int -> t
(** [pow a k] is [a^k] by binary exponentiation.  @raise Invalid_argument
    if [k < 0]. *)

val gcd : t -> t -> t

val mod_inv : t -> t -> t option
(** [mod_inv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], and [None] otherwise.  @raise Division_by_zero when
    [m] is zero. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] is [b^e mod m] by square-and-multiply with full
    reductions.  @raise Division_by_zero when [m] is zero. *)

val of_string : string -> t
(** Parses a decimal string, or hexadecimal with a ["0x"] prefix.
    Underscores are ignored.  @raise Invalid_argument on malformed
    input. *)

val to_string : t -> string
(** Decimal rendering. *)

val to_hex : t -> string
(** Lowercase hexadecimal rendering, no prefix, no leading zeros. *)

val pp : Format.formatter -> t -> unit
(** Decimal, for use with [%a]. *)

val check_invariant : t -> bool
(** Exposed for the test suite: representation invariant holds. *)
