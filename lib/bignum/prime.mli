(** Probabilistic primality and prime generation.

    Cryptography workloads need primes: the paper's modular
    exponentiation coprocessor assumes a prime (hence odd) modulus
    (Req4 "Modulo is Odd = Guaranteed"), and the RSA example needs key
    generation. *)

val is_probable_prime : ?rounds:int -> Prng.t -> Nat.t -> bool
(** Miller-Rabin with [rounds] random witnesses (default 24), preceded by
    trial division by small primes.  Composites are accepted with
    probability at most [4^-rounds]. *)

val next_probable_prime : Prng.t -> Nat.t -> Nat.t
(** Smallest probable prime [>= n]. *)

val random_prime : Prng.t -> bits:int -> Nat.t
(** Uniform-ish probable prime of exactly [bits] bits ([bits >= 2]).
    @raise Invalid_argument when [bits < 2]. *)

val small_primes : int list
(** The primes below 1000, used for trial division (exposed for
    tests). *)
