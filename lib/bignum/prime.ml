let small_primes =
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init 1000 Fun.id)

let divisible_by_small n =
  List.exists
    (fun p ->
      let np = Nat.of_int p in
      Nat.compare n np > 0 && snd (Nat.divmod_int n p) = 0)
    small_primes

let miller_rabin_round ctx n n_minus_1 d s a =
  (* a^d, then square s times looking for a non-trivial root of 1. *)
  let x = Modmul.Redc.pow ctx a d in
  if Nat.is_one x || Nat.equal x n_minus_1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Nat.rem (Nat.sqr x) n in
        if Nat.equal x n_minus_1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probable_prime ?(rounds = 24) g n =
  if Nat.compare n Nat.two < 0 then false
  else if Nat.equal n Nat.two then true
  else if Nat.is_even n then false
  else if List.exists (fun p -> Nat.equal n (Nat.of_int p)) small_primes then true
  else if divisible_by_small n then false
  else begin
    let n_minus_1 = Nat.sub n Nat.one in
    (* n-1 = d * 2^s with d odd *)
    let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n_minus_1 0 in
    let ctx = Modmul.Redc.make n in
    let rec rounds_loop i =
      if i >= rounds then true
      else begin
        let a = Nat.add Nat.two (Prng.nat_below g (Nat.sub n (Nat.of_int 3))) in
        if miller_rabin_round ctx n n_minus_1 d s a then rounds_loop (i + 1) else false
      end
    in
    rounds_loop 0
  end

let next_probable_prime g n =
  let start = if Nat.compare n Nat.two <= 0 then Nat.two else if Nat.is_even n then Nat.succ n else n in
  let rec go n = if is_probable_prime g n then n else go (Nat.add n Nat.two) in
  if Nat.equal start Nat.two then Nat.two else go start

let random_prime g ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: need at least 2 bits";
  let rec go () =
    let candidate = Prng.nat_bits g bits in
    (* Force odd. *)
    let candidate = if Nat.is_even candidate then Nat.succ candidate else candidate in
    if Nat.num_bits candidate = bits && is_probable_prime g candidate then candidate else go ()
  in
  go ()
