type key = {
  modulus : Nat.t;
  public_exponent : Nat.t;
  private_exponent : Nat.t;
  prime_p : Nat.t;
  prime_q : Nat.t;
}

let generate g ~bits =
  if bits < 16 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.random_prime g ~bits:half in
    let q = Prime.random_prime g ~bits:(bits - half) in
    if Nat.equal p q then attempt ()
    else begin
      let n = Nat.mul p q in
      let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
      let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
      let rec pick_e e =
        if Nat.compare e lambda >= 0 then None
        else if Nat.is_one (Nat.gcd e lambda) then Some e
        else pick_e (Nat.add e Nat.two)
      in
      match pick_e (Nat.of_int 65537) with
      | None -> attempt ()
      | Some e -> (
        match Nat.mod_inv e lambda with
        | None -> attempt ()
        | Some d ->
          { modulus = n; public_exponent = e; private_exponent = d; prime_p = p; prime_q = q })
    end
  in
  attempt ()

let encrypt k m =
  if Nat.compare m k.modulus >= 0 then invalid_arg "Rsa.encrypt: message out of range";
  Modmul.mont_mod_pow m k.public_exponent k.modulus

let decrypt k c = Modmul.mont_mod_pow c k.private_exponent k.modulus

(* Garner recombination: m = m_q + q * ((m_p - m_q) * q^-1 mod p). *)
let decrypt_crt k c =
  let p = k.prime_p and q = k.prime_q in
  let dp = Nat.rem k.private_exponent (Nat.sub p Nat.one) in
  let dq = Nat.rem k.private_exponent (Nat.sub q Nat.one) in
  let mp = Modmul.mont_mod_pow (Nat.rem c p) dp p in
  let mq = Modmul.mont_mod_pow (Nat.rem c q) dq q in
  match Nat.mod_inv (Nat.rem q p) p with
  | None -> decrypt k c (* p | q cannot happen for distinct primes; be safe *)
  | Some q_inv ->
    let diff =
      match Nat.sub_opt mp (Nat.rem mq p) with
      | Some d -> d
      | None -> Nat.sub (Nat.add mp p) (Nat.rem mq p)
    in
    let h = Nat.rem (Nat.mul diff q_inv) p in
    Nat.add mq (Nat.mul h q)
let sign k m = Modmul.mont_mod_pow m k.private_exponent k.modulus

let verify k ~message ~signature =
  Nat.equal (Modmul.mont_mod_pow signature k.public_exponent k.modulus) (Nat.rem message k.modulus)

let modexp_operation_count _k ~bits =
  (* One squaring per exponent bit plus a multiply for roughly half the
     bits: the 1.5x factor used throughout the evaluation harness. *)
  bits + (bits / 2)
