(* splitmix64 (Steele, Lea, Flood 2014): tiny state, excellent
   statistical quality for simulation purposes, trivially seedable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive"
  else if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let limit = (1 lsl 30) / bound * bound in
    let rec draw () =
      let v = bits30 g in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end
  else begin
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    v mod bound
  end

let bool g = Int64.logand (next_int64 g) 1L = 1L
let float g = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) /. 9007199254740992.0

let nat_bits g n =
  if n < 0 then invalid_arg "Prng.nat_bits: negative size"
  else if n = 0 then Nat.zero
  else begin
    let limbs = ((n - 1) / Nat.limb_bits) + 1 in
    let a = Array.init limbs (fun _ -> int g Nat.base) in
    (* Force the value to exactly n bits. *)
    let top_bit = (n - 1) mod Nat.limb_bits in
    a.(limbs - 1) <- (a.(limbs - 1) land ((1 lsl (top_bit + 1)) - 1)) lor (1 lsl top_bit);
    Nat.of_limbs a
  end

let nat_below g bound =
  if Nat.is_zero bound then invalid_arg "Prng.nat_below: zero bound"
  else begin
    let n = Nat.num_bits bound in
    let limbs = ((n - 1) / Nat.limb_bits) + 1 in
    let mask_bits = n mod Nat.limb_bits in
    let rec draw () =
      let a = Array.init limbs (fun _ -> int g Nat.base) in
      if mask_bits > 0 then a.(limbs - 1) <- a.(limbs - 1) land ((1 lsl mask_bits) - 1);
      let v = Nat.of_limbs a in
      if Nat.compare v bound < 0 then v else draw ()
    in
    draw ()
  end
