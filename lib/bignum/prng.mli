(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic piece of the reproduction (workload generation,
    Miller-Rabin witnesses, property-test inputs that need bignums) draws
    from this generator so that runs are reproducible from an explicit
    seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from any integer seed. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound).  @raise Invalid_argument when
    [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val nat_bits : t -> int -> Nat.t
(** [nat_bits g n] is a uniform natural of exactly [n] bits (top bit
    set) for [n >= 1], and zero for [n = 0]. *)

val nat_below : t -> Nat.t -> Nat.t
(** [nat_below g bound] is uniform in [0, bound) by rejection.
    @raise Invalid_argument when [bound] is zero. *)
