(** Modular multiplication algorithms of the paper's Section 5.1.1.

    Three algorithm families are modelled:

    - {e paper and pencil}: full product followed by one [mod M]
      reduction (the inferior baseline the paper eliminates);
    - {e Brickell}: most-significant-digit-first interleaved
      multiplication with a reduction at every partial product — works
      for any modulus;
    - {e Montgomery}: least-significant-digit-first with quotient digits
      chosen so the running sum stays divisible by the radix — requires
      an odd modulus and computes [A*B*r^-n mod M].

    The bit- and digit-serial variants mirror the hardware datapaths of
    {!module:Ds_rtl} one-to-one and are the functional reference the RTL
    simulation is validated against.  The word-level REDC variants are
    the fast path used by {!Rsa} and {!Prime}. *)

val paper_pencil : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [paper_pencil a b m] is [(a * b) mod m].
    @raise Division_by_zero when [m] is zero. *)

val brickell : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [brickell a b m] is [(a * b) mod m] computed MSB-first with a
    reduction per partial product (Brickell 1982).  Requires
    [a < m] and [b < m].  @raise Invalid_argument otherwise. *)

val montgomery_bit_serial : Nat.t -> Nat.t -> Nat.t -> int -> Nat.t
(** [montgomery_bit_serial a b m n] is [a * b * 2^-n mod m] for odd [m],
    processing one bit of [a] per iteration — the radix-2 hardware
    recurrence (Fig 10, lines 3-4).  Requires [a, b < m] and [m] odd.
    @raise Invalid_argument otherwise. *)

val montgomery_digit_serial : radix_bits:int -> Nat.t -> Nat.t -> Nat.t -> int -> Nat.t
(** [montgomery_digit_serial ~radix_bits a b m iters] processes
    [radix_bits] bits of [a] per iteration ([iters] iterations), i.e.
    radix [2^radix_bits]; returns [a * b * 2^-(radix_bits*iters) mod m].
    This is the generalised recurrence behind the paper's "Radix" design
    issue (DI3).  Requires odd [m], [a, b < m].
    @raise Invalid_argument otherwise. *)

(** Word-level Montgomery (REDC) over {!Nat.base}-sized digits. *)
module Redc : sig
  type ctx
  (** Precomputed parameters for a fixed odd modulus. *)

  val make : Nat.t -> ctx
  (** @raise Invalid_argument when the modulus is even or < 3. *)

  val modulus : ctx -> Nat.t

  val num_words : ctx -> int
  (** Number of {!Nat.base} digits of the modulus (the [k] of
      [r = base^k]). *)

  val to_mont : ctx -> Nat.t -> Nat.t
  (** Map into the Montgomery domain: [x * r mod m]. *)

  val of_mont : ctx -> Nat.t -> Nat.t
  (** Map out of the Montgomery domain: [x * r^-1 mod m]. *)

  val mul : ctx -> Nat.t -> Nat.t -> Nat.t
  (** Montgomery product of two domain values. *)

  val pow : ctx -> Nat.t -> Nat.t -> Nat.t
  (** [pow ctx b e] is [b^e mod m] (plain-domain operands and result);
      the modular-exponentiation kernel of the paper's coprocessor. *)
end

val mont_mod_pow : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [mont_mod_pow b e m] is [b^e mod m] via {!Redc} when [m] is odd and
    via {!Nat.mod_pow} otherwise. *)
