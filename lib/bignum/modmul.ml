let paper_pencil a b m = Nat.rem (Nat.mul a b) m

let check_operands name a b m =
  if Nat.compare a m >= 0 || Nat.compare b m >= 0 then
    invalid_arg (name ^ ": operands must be below the modulus")

let brickell a b m =
  if Nat.is_zero m then raise Division_by_zero;
  check_operands "Modmul.brickell" a b m;
  (* MSB-first: R := 2R + a_i * B, then reduce.  After the doubling step
     R < 2m and after adding B it is < 3m, so at most two conditional
     subtractions restore R < m. *)
  let nbits = Nat.num_bits a in
  let reduce r = match Nat.sub_opt r m with Some r' -> r' | None -> r in
  let rec go r i =
    if i < 0 then r
    else begin
      let r = Nat.shift_left r 1 in
      let r = if Nat.bit a i then Nat.add r b else r in
      go (reduce (reduce r)) (i - 1)
    end
  in
  go Nat.zero (nbits - 1)

let montgomery_digit_serial ~radix_bits a b m iters =
  if Nat.is_zero m then raise Division_by_zero;
  if Nat.is_even m then invalid_arg "Modmul.montgomery_digit_serial: even modulus";
  if radix_bits < 1 || radix_bits > 16 then
    invalid_arg "Modmul.montgomery_digit_serial: radix_bits out of range";
  check_operands "Modmul.montgomery_digit_serial" a b m;
  let radix = 1 lsl radix_bits in
  let radix_mask = radix - 1 in
  (* q_i = (R + a_i*B) * (-M^-1) mod radix keeps R + a_i*B + q_i*M
     divisible by the radix. *)
  let m0 = (Nat.limbs m).(0) land radix_mask in
  let minus_m_inv =
    let rec inv x i =
      (* Newton iteration for the inverse modulo a power of two; the
         number of correct low bits doubles per step. *)
      if 1 lsl i >= radix then x land radix_mask
      else inv ((x * (2 - (m0 * x))) land radix_mask) (2 * i)
    in
    let m_inv = inv 1 1 in
    (radix - m_inv) land radix_mask
  in
  let digit_of n i =
    let lo = i * radix_bits in
    let rec go acc k = if k < 0 then acc else go ((acc lsl 1) lor (if Nat.bit n (lo + k) then 1 else 0)) (k - 1) in
    go 0 (radix_bits - 1)
  in
  let low_digit n = (if Nat.is_zero n then 0 else (Nat.limbs n).(0)) land radix_mask in
  let b0 = low_digit b in
  let rec go r i =
    if i >= iters then begin
      match Nat.sub_opt r m with Some r' -> r' | None -> r
    end
    else begin
      let ai = digit_of a i in
      let q = (((low_digit r) + (ai * b0)) * minus_m_inv) land radix_mask in
      let r = Nat.add r (Nat.add (Nat.mul_int b ai) (Nat.mul_int m q)) in
      go (Nat.shift_right r radix_bits) (i + 1)
    end
  in
  go Nat.zero 0

let montgomery_bit_serial a b m n = montgomery_digit_serial ~radix_bits:1 a b m n

module Redc = struct
  type ctx = {
    modulus : Nat.t;
    num_words : int;
    minus_m_inv : int; (* -m^-1 mod Nat.base *)
    r2 : Nat.t; (* r^2 mod m, for to_mont *)
  }

  let modulus ctx = ctx.modulus
  let num_words ctx = ctx.num_words

  let make m =
    if Nat.is_even m || Nat.compare m (Nat.of_int 3) < 0 then
      invalid_arg "Modmul.Redc.make: modulus must be odd and >= 3";
    let k = Nat.num_limbs m in
    let m0 = (Nat.limbs m).(0) in
    let rec inv x i =
      if i >= Nat.limb_bits then x land (Nat.base - 1)
      else inv ((x * (2 - (m0 * x))) land (Nat.base - 1)) (2 * i)
    in
    let m_inv = inv 1 1 in
    let minus_m_inv = (Nat.base - m_inv) land (Nat.base - 1) in
    let r = Nat.shift_left Nat.one (k * Nat.limb_bits) in
    let r2 = Nat.rem (Nat.mul r r) m in
    { modulus = m; num_words = k; minus_m_inv; r2 }

  (* REDC(t) = t * r^-1 mod m for t < m * r, word-serial. *)
  let redc ctx t =
    let k = ctx.num_words in
    let rec go t i =
      if i >= k then t
      else begin
        let t0 = if Nat.is_zero t then 0 else (Nat.limbs t).(0) in
        let q = (t0 * ctx.minus_m_inv) land (Nat.base - 1) in
        let t = Nat.shift_right (Nat.add t (Nat.mul_int ctx.modulus q)) Nat.limb_bits in
        go t (i + 1)
      end
    in
    let t = go t 0 in
    match Nat.sub_opt t ctx.modulus with Some t' -> t' | None -> t

  let mul ctx a b = redc ctx (Nat.mul a b)
  let to_mont ctx x = mul ctx x ctx.r2
  let of_mont ctx x = redc ctx x

  let pow ctx b e =
    let b = Nat.rem b ctx.modulus in
    let bm = to_mont ctx b in
    let onem = to_mont ctx Nat.one in
    let nbits = Nat.num_bits e in
    let rec go acc sq i =
      if i >= nbits then acc
      else begin
        let acc = if Nat.bit e i then mul ctx acc sq else acc in
        go acc (mul ctx sq sq) (i + 1)
      end
    in
    of_mont ctx (go onem bm 0)
end

let mont_mod_pow b e m =
  if Nat.is_odd m && Nat.compare m (Nat.of_int 3) >= 0 then Redc.pow (Redc.make m) b e
  else Nat.mod_pow b e m
