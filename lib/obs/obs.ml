(* Telemetry: metrics registry + structured tracer.  See obs.mli for
   the contract; DESIGN.md section 13 for the taxonomy and overhead
   budget. *)

let now () = Unix.gettimeofday ()
let now_us () = now () *. 1e6

(* ------------------------------------------------------------------ *)
(* Striping.

   Counters and histograms keep one cell per stripe and pick the
   stripe from the calling domain's id, so concurrent recorders from
   different domains touch different cache lines (counters) or
   different locks (histograms).  Systhreads sharing a domain share a
   stripe, which is correct (atomics / a mutex) just not contention-
   free — the hot recorders (parallel sweep chunks) are domains. *)

let stripes = 16 (* power of two *)
let stripe_mask = stripes - 1
let stripe_id () = (Stdlib.Domain.self () :> int) land stripe_mask

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = int Atomic.t array

let make_counter () : counter = Array.init stripes (fun _ -> Atomic.make 0)

let add (c : counter) n =
  let cell = Array.unsafe_get c (stripe_id ()) in
  ignore (Atomic.fetch_and_add cell n)

let incr c = add c 1
let counter_value (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

(* ------------------------------------------------------------------ *)
(* Gauges *)

type gauge = float Atomic.t

let make_gauge () : gauge = Atomic.make 0.0
let set_gauge (g : gauge) v = Atomic.set g v
let gauge_value (g : gauge) = Atomic.get g

(* ------------------------------------------------------------------ *)
(* Histograms *)

(* Geometric buckets, ratio 1.25, upper bounds 1µs .. ~4.4e7µs (~44s).
   One bucket of relative resolution bounds the quantile estimate:
   at worst the true value is anywhere inside the chosen bucket, so
   the estimate is within +25%/-20% of the truth; with the midpoint
   interpolation below the expected error is ~±12%. *)

let bucket_count = 80
let bucket_ratio = 1.25

let bucket_bounds =
  Array.init bucket_count (fun i -> bucket_ratio ** float_of_int i)

(* index of the bucket holding [v]: smallest i with v <= bounds.(i),
   or [bucket_count] (overflow) when v exceeds the last bound *)
let bucket_index v =
  if v <= bucket_bounds.(0) then 0
  else if v > bucket_bounds.(bucket_count - 1) then bucket_count
  else begin
    let lo = ref 0 and hi = ref (bucket_count - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

type hstripe = {
  hs_lock : Mutex.t;
  hs_counts : int array; (* bucket_count + 1, last = overflow *)
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
}

type histogram = hstripe array

let make_histogram () : histogram =
  Array.init stripes (fun _ ->
      {
        hs_lock = Mutex.create ();
        hs_counts = Array.make (bucket_count + 1) 0;
        hs_count = 0;
        hs_sum = 0.0;
        hs_min = infinity;
        hs_max = neg_infinity;
      })

let observe (h : histogram) v =
  let v = if Float.is_nan v then 0.0 else Float.max v 0.0 in
  let s = Array.unsafe_get h (stripe_id ()) in
  let i = bucket_index v in
  Mutex.lock s.hs_lock;
  s.hs_counts.(i) <- s.hs_counts.(i) + 1;
  s.hs_count <- s.hs_count + 1;
  s.hs_sum <- s.hs_sum +. v;
  if v < s.hs_min then s.hs_min <- v;
  if v > s.hs_max then s.hs_max <- v;
  Mutex.unlock s.hs_lock

type hsnapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_counts : int array;
}

let h_snapshot (h : histogram) =
  let counts = Array.make (bucket_count + 1) 0 in
  let count = ref 0 and sum = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun s ->
      Mutex.lock s.hs_lock;
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hs_counts;
      count := !count + s.hs_count;
      sum := !sum +. s.hs_sum;
      if s.hs_min < !mn then mn := s.hs_min;
      if s.hs_max > !mx then mx := s.hs_max;
      Mutex.unlock s.hs_lock)
    h;
  { h_count = !count; h_sum = !sum; h_min = !mn; h_max = !mx; h_counts = counts }

let quantile_of ~counts ~count ~max p =
  if count <= 0 then nan
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let rank = p *. float_of_int count in
    let i = ref 0 and cum = ref 0 in
    let n = Array.length counts in
    while !i < n - 1 && float_of_int (!cum + counts.(!i)) < rank do
      cum := !cum + counts.(!i);
      Stdlib.incr i
    done;
    let i = !i in
    let lower = if i = 0 then 0.0 else bucket_bounds.(i - 1) in
    let upper =
      if i >= bucket_count then (if Float.is_finite max then Float.max max lower else lower *. bucket_ratio)
      else bucket_bounds.(i)
    in
    let in_bucket = counts.(i) in
    let frac =
      if in_bucket <= 0 then 1.0
      else Float.min 1.0 ((rank -. float_of_int !cum) /. float_of_int in_bucket)
    in
    let est = lower +. (frac *. (upper -. lower)) in
    if Float.is_finite max && est > max then max else est
  end

let quantile (s : hsnapshot) p =
  if s.h_count = 0 then nan
  else begin
    let est = quantile_of ~counts:s.h_counts ~count:s.h_count ~max:s.h_max p in
    if Float.is_finite s.h_min && est < s.h_min then s.h_min else est
  end

let h_mean s = if s.h_count = 0 then nan else s.h_sum /. float_of_int s.h_count

(* Bucket-wise merge: because every histogram in the system shares the
   one global bound table, two snapshots merge exactly — counts add per
   bucket, count/sum add, min/max extremize.  This is what lets a fleet
   router combine per-shard registries into one aggregate view whose
   quantile estimates carry the same error bounds as a single shard's. *)
let merge_hsnapshots a b =
  let n = Stdlib.max (Array.length a.h_counts) (Array.length b.h_counts) in
  let counts = Array.make n 0 in
  let addc (arr : int array) =
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) arr
  in
  addc a.h_counts;
  addc b.h_counts;
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_counts = counts;
  }

let empty_hsnapshot () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_counts = Array.make (bucket_count + 1) 0;
  }

(* ------------------------------------------------------------------ *)
(* Registry *)

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_histograms : (string, histogram) Hashtbl.t;
}

let create_registry () =
  {
    r_lock = Mutex.create ();
    r_counters = Hashtbl.create 32;
    r_gauges = Hashtbl.create 8;
    r_histograms = Hashtbl.create 32;
  }

let default = create_registry ()

let find_or_create r tbl name make =
  Mutex.lock r.r_lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock r.r_lock;
  v

let counter r name = find_or_create r r.r_counters name make_counter
let gauge r name = find_or_create r r.r_gauges name make_gauge
let histogram r name = find_or_create r r.r_histograms name make_histogram

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let metric_names r =
  Mutex.lock r.r_lock;
  let names = sorted_keys r.r_counters @ sorted_keys r.r_gauges @ sorted_keys r.r_histograms in
  Mutex.unlock r.r_lock;
  List.sort String.compare names

let items_of r tbl =
  Mutex.lock r.r_lock;
  let items = sorted_keys tbl |> List.map (fun k -> (k, Hashtbl.find tbl k)) in
  Mutex.unlock r.r_lock;
  items

let counters r = items_of r r.r_counters |> List.map (fun (k, c) -> (k, counter_value c))
let gauges r = items_of r r.r_gauges |> List.map (fun (k, g) -> (k, gauge_value g))
let histograms r = items_of r r.r_histograms |> List.map (fun (k, h) -> (k, h_snapshot h))

(* ------------------------------------------------------------------ *)
(* Tracing: enable flag *)

let env_disabled =
  match Sys.getenv_opt "DSE_TELEMETRY" with
  | Some ("0" | "off" | "false" | "no") -> true
  | _ -> false

let enabled_flag = Atomic.make (not env_disabled)
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Tracing: spans *)

type rec_span = {
  sr_seq : int;
  sr_id : int;
  sr_parent : int;
  sr_name : string;
  sr_t0 : float;
  sr_dur_us : float;
  sr_attrs : (string * string) list;
}

let dummy_span =
  { sr_seq = -1; sr_id = -1; sr_parent = -1; sr_name = ""; sr_t0 = 0.0; sr_dur_us = 0.0; sr_attrs = [] }

(* the ring of completed spans *)
type ring = {
  rg_lock : Mutex.t;
  mutable rg_buf : rec_span array;
  mutable rg_stored : int; (* valid entries ending at rg_next - 1 *)
  mutable rg_next : int; (* next sequence number *)
}

let default_cap =
  match Option.bind (Sys.getenv_opt "DSE_TRACE_CAP") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 4096

let ring =
  { rg_lock = Mutex.create (); rg_buf = Array.make default_cap dummy_span; rg_stored = 0; rg_next = 0 }

let set_trace_cap n =
  let n = Stdlib.max 1 n in
  Mutex.lock ring.rg_lock;
  ring.rg_buf <- Array.make n dummy_span;
  ring.rg_stored <- 0;
  Mutex.unlock ring.rg_lock

let trace_clear () =
  Mutex.lock ring.rg_lock;
  ring.rg_stored <- 0;
  Mutex.unlock ring.rg_lock

let ring_record ~id ~parent ~name ~t0 ~dur_us ~attrs =
  Mutex.lock ring.rg_lock;
  let seq = ring.rg_next in
  let cap = Array.length ring.rg_buf in
  ring.rg_buf.(seq mod cap) <-
    { sr_seq = seq; sr_id = id; sr_parent = parent; sr_name = name; sr_t0 = t0; sr_dur_us = dur_us; sr_attrs = attrs };
  ring.rg_next <- seq + 1;
  if ring.rg_stored < cap then ring.rg_stored <- ring.rg_stored + 1;
  Mutex.unlock ring.rg_lock

let trace_read ?(since = 0) ?max_spans () =
  Mutex.lock ring.rg_lock;
  let cap = Array.length ring.rg_buf in
  let first_avail = ring.rg_next - ring.rg_stored in
  let since = Stdlib.max 0 since in
  let start = Stdlib.max since first_avail in
  let stop = ring.rg_next in
  let dropped = Stdlib.max 0 (Stdlib.min stop start - since) in
  let avail = Stdlib.max 0 (stop - start) in
  let take = match max_spans with Some m -> Stdlib.max 0 (Stdlib.min m avail) | None -> avail in
  let spans = List.init take (fun k -> ring.rg_buf.((start + k) mod cap)) in
  let next = if take < avail then start + take else stop in
  Mutex.unlock ring.rg_lock;
  (spans, next, dropped)

(* per-(domain, thread) stacks of open span ids, for implicit
   parenting.  Sharded by domain id so recorders on different domains
   do not contend. *)

type stack_shard = { st_lock : Mutex.t; st_tbl : (int * int, int list) Hashtbl.t }

let stack_shards =
  Array.init stripes (fun _ -> { st_lock = Mutex.create (); st_tbl = Hashtbl.create 8 })

let stack_key () =
  let d = (Stdlib.Domain.self () :> int) in
  (d, Thread.id (Thread.self ()))

let shard_of d = stack_shards.(d land stripe_mask)

let stack_push id =
  let ((d, _) as key) = stack_key () in
  let sh = shard_of d in
  Mutex.lock sh.st_lock;
  let prev = Option.value ~default:[] (Hashtbl.find_opt sh.st_tbl key) in
  Hashtbl.replace sh.st_tbl key (id :: prev);
  Mutex.unlock sh.st_lock

let stack_remove key id =
  let d, _ = key in
  let sh = shard_of d in
  Mutex.lock sh.st_lock;
  (match Hashtbl.find_opt sh.st_tbl key with
  | None -> ()
  | Some ids -> (
    (* usually the head; tolerate out-of-order closes *)
    match List.filter (fun i -> i <> id) ids with
    | [] -> Hashtbl.remove sh.st_tbl key
    | rest -> Hashtbl.replace sh.st_tbl key rest));
  Mutex.unlock sh.st_lock

let stack_top () =
  let ((d, _) as key) = stack_key () in
  let sh = shard_of d in
  Mutex.lock sh.st_lock;
  let top = match Hashtbl.find_opt sh.st_tbl key with Some (id :: _) -> Some id | _ -> None in
  Mutex.unlock sh.st_lock;
  top

let stack_depth () =
  let ((d, _) as key) = stack_key () in
  let sh = shard_of d in
  Mutex.lock sh.st_lock;
  let n = match Hashtbl.find_opt sh.st_tbl key with Some ids -> List.length ids | None -> 0 in
  Mutex.unlock sh.st_lock;
  n

let current_span_id () = stack_top ()

let next_id = Atomic.make 1

type span = {
  sp_live : bool;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_t0 : float;
  sp_key : int * int; (* the stack the id was pushed on *)
  mutable sp_attrs : (string * string) list;
  mutable sp_closed : bool;
}

let dead_span =
  { sp_live = false; sp_id = -1; sp_parent = -1; sp_name = ""; sp_t0 = 0.0; sp_key = (0, 0); sp_attrs = []; sp_closed = true }

let span_begin ?parent ?(attrs = []) name =
  if not (enabled ()) then dead_span
  else begin
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match stack_top () with Some p -> p | None -> -1)
    in
    let id = Atomic.fetch_and_add next_id 1 in
    let key = stack_key () in
    stack_push id;
    { sp_live = true; sp_id = id; sp_parent = parent; sp_name = name; sp_t0 = now (); sp_key = key; sp_attrs = attrs; sp_closed = false }
  end

let span_add sp attrs = if sp.sp_live && not sp.sp_closed then sp.sp_attrs <- sp.sp_attrs @ attrs

(* begin- and end-attrs may repeat a key (e.g. [session] echoed back
   in a reply): keep the last occurrence *)
let dedup_attrs attrs =
  let seen = Hashtbl.create 8 in
  List.rev
    (List.filter
       (fun (k, _) ->
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)
       (List.rev attrs))

let span_end ?(attrs = []) sp =
  if sp.sp_live && not sp.sp_closed then begin
    sp.sp_closed <- true;
    stack_remove sp.sp_key sp.sp_id;
    let dur_us = (now () -. sp.sp_t0) *. 1e6 in
    ring_record ~id:sp.sp_id ~parent:sp.sp_parent ~name:sp.sp_name ~t0:sp.sp_t0
      ~dur_us:(Float.max 0.0 dur_us)
      ~attrs:(dedup_attrs (sp.sp_attrs @ attrs))
  end

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let sp = span_begin ~attrs name in
    Fun.protect
      ~finally:(fun () -> span_end sp)
      (fun () ->
        try f ()
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          span_add sp [ ("error", Printexc.to_string e) ];
          Printexc.raise_with_backtrace e bt)
  end

let instant ?(attrs = []) name =
  if enabled () then begin
    let parent = match stack_top () with Some p -> p | None -> -1 in
    let id = Atomic.fetch_and_add next_id 1 in
    ring_record ~id ~parent ~name ~t0:(now ()) ~dur_us:0.0 ~attrs
  end

(* ------------------------------------------------------------------ *)
(* Exporters *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let span_to_json sp =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"id\":%d" sp.sr_seq sp.sr_id);
  if sp.sr_parent >= 0 then Buffer.add_string b (Printf.sprintf ",\"parent\":%d" sp.sr_parent);
  Buffer.add_string b ",\"name\":\"";
  json_escape b sp.sr_name;
  Buffer.add_string b (Printf.sprintf "\",\"t0\":%.6f,\"dur_us\":%.3f" sp.sr_t0 sp.sr_dur_us);
  if sp.sr_attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        json_escape b k;
        Buffer.add_string b "\":\"";
        json_escape b v;
        Buffer.add_char b '"')
      sp.sr_attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let trace_json_lines ?since () =
  let spans, _, _ = trace_read ?since () in
  List.map span_to_json spans

let dump_ring_to oc =
  let spans, _, dropped = trace_read () in
  if dropped > 0 then Printf.fprintf oc "{\"dropped\":%d}\n" dropped;
  List.iter (fun sp -> output_string oc (span_to_json sp); output_char oc '\n') spans;
  flush oc

(* a metric name may carry a {label="value",...} suffix; the
   Prometheus exporter splits it so histogram [le] labels merge in *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 2))
  | Some _ -> (name, "")

let with_labels base labels extra =
  let all = List.filter (fun s -> s <> "") [ labels; extra ] in
  match all with [] -> base | l -> Printf.sprintf "%s{%s}" base (String.concat "," l)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus regs =
  let b = Buffer.create 4096 in
  List.iter
    (fun (tag, r) ->
      if tag <> "" then Buffer.add_string b (Printf.sprintf "# registry: %s\n" tag);
      Mutex.lock r.r_lock;
      let counters = sorted_keys r.r_counters |> List.map (fun k -> (k, Hashtbl.find r.r_counters k)) in
      let gauges = sorted_keys r.r_gauges |> List.map (fun k -> (k, Hashtbl.find r.r_gauges k)) in
      let hists = sorted_keys r.r_histograms |> List.map (fun k -> (k, Hashtbl.find r.r_histograms k)) in
      Mutex.unlock r.r_lock;
      List.iter
        (fun (name, c) ->
          let base, labels = split_labels name in
          Buffer.add_string b (Printf.sprintf "%s %d\n" (with_labels base labels "") (counter_value c)))
        counters;
      List.iter
        (fun (name, g) ->
          let base, labels = split_labels name in
          Buffer.add_string b (Printf.sprintf "%s %s\n" (with_labels base labels "") (fmt_float (gauge_value g))))
        gauges;
      List.iter
        (fun (name, h) ->
          let s = h_snapshot h in
          let base, labels = split_labels name in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if i < bucket_count then
                Buffer.add_string b
                  (Printf.sprintf "%s %d\n"
                     (with_labels (base ^ "_bucket") labels (Printf.sprintf "le=\"%g\"" bucket_bounds.(i)))
                     !cum))
            s.h_counts;
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" (with_labels (base ^ "_bucket") labels "le=\"+Inf\"") s.h_count);
          Buffer.add_string b (Printf.sprintf "%s %s\n" (with_labels (base ^ "_sum") labels "") (fmt_float s.h_sum));
          Buffer.add_string b (Printf.sprintf "%s %d\n" (with_labels (base ^ "_count") labels "") s.h_count))
        hists)
    regs;
  Buffer.contents b

let pp_summary fmt regs =
  List.iter
    (fun (tag, r) ->
      if tag <> "" then Format.fprintf fmt "[%s]@." tag;
      Mutex.lock r.r_lock;
      let counters = sorted_keys r.r_counters |> List.map (fun k -> (k, Hashtbl.find r.r_counters k)) in
      let gauges = sorted_keys r.r_gauges |> List.map (fun k -> (k, Hashtbl.find r.r_gauges k)) in
      let hists = sorted_keys r.r_histograms |> List.map (fun k -> (k, Hashtbl.find r.r_histograms k)) in
      Mutex.unlock r.r_lock;
      List.iter (fun (name, c) -> Format.fprintf fmt "  %s = %d@." name (counter_value c)) counters;
      List.iter (fun (name, g) -> Format.fprintf fmt "  %s = %s@." name (fmt_float (gauge_value g))) gauges;
      List.iter
        (fun (name, h) ->
          let s = h_snapshot h in
          if s.h_count = 0 then Format.fprintf fmt "  %s: empty@." name
          else
            Format.fprintf fmt "  %s: count=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus@."
              name s.h_count (h_mean s) (quantile s 0.5) (quantile s 0.9) (quantile s 0.99) s.h_max)
        hists)
    regs
