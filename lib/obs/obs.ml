(* Telemetry: metrics registry + structured tracer.  See obs.mli for
   the contract; DESIGN.md section 13 for the taxonomy and overhead
   budget. *)

let now () = Unix.gettimeofday ()
let now_us () = now () *. 1e6

(* ------------------------------------------------------------------ *)
(* Striping.

   Counters and histograms keep one cell per stripe and pick the
   stripe from the calling domain's id, so concurrent recorders from
   different domains touch different cache lines (counters) or
   different locks (histograms).  Systhreads sharing a domain share a
   stripe, which is correct (atomics / a mutex) just not contention-
   free — the hot recorders (parallel sweep chunks) are domains. *)

let stripes = 16 (* power of two *)
let stripe_mask = stripes - 1
let stripe_id () = (Stdlib.Domain.self () :> int) land stripe_mask

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = int Atomic.t array

let make_counter () : counter = Array.init stripes (fun _ -> Atomic.make 0)

let add (c : counter) n =
  let cell = Array.unsafe_get c (stripe_id ()) in
  ignore (Atomic.fetch_and_add cell n)

let incr c = add c 1
let counter_value (c : counter) = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

(* ------------------------------------------------------------------ *)
(* Gauges *)

type gauge = float Atomic.t

let make_gauge () : gauge = Atomic.make 0.0
let set_gauge (g : gauge) v = Atomic.set g v
let gauge_value (g : gauge) = Atomic.get g

(* ------------------------------------------------------------------ *)
(* Histograms *)

(* Geometric buckets, ratio 1.25, upper bounds 1µs .. ~4.4e7µs (~44s).
   One bucket of relative resolution bounds the quantile estimate:
   at worst the true value is anywhere inside the chosen bucket, so
   the estimate is within +25%/-20% of the truth; with the midpoint
   interpolation below the expected error is ~±12%. *)

let bucket_count = 80
let bucket_ratio = 1.25

let bucket_bounds =
  Array.init bucket_count (fun i -> bucket_ratio ** float_of_int i)

(* index of the bucket holding [v]: smallest i with v <= bounds.(i),
   or [bucket_count] (overflow) when v exceeds the last bound *)
let bucket_index v =
  if v <= bucket_bounds.(0) then 0
  else if v > bucket_bounds.(bucket_count - 1) then bucket_count
  else begin
    let lo = ref 0 and hi = ref (bucket_count - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

type hstripe = {
  hs_lock : Mutex.t;
  hs_counts : int array; (* bucket_count + 1, last = overflow *)
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
}

type histogram = hstripe array

let make_histogram () : histogram =
  Array.init stripes (fun _ ->
      {
        hs_lock = Mutex.create ();
        hs_counts = Array.make (bucket_count + 1) 0;
        hs_count = 0;
        hs_sum = 0.0;
        hs_min = infinity;
        hs_max = neg_infinity;
      })

let observe (h : histogram) v =
  let v = if Float.is_nan v then 0.0 else Float.max v 0.0 in
  let s = Array.unsafe_get h (stripe_id ()) in
  let i = bucket_index v in
  Mutex.lock s.hs_lock;
  s.hs_counts.(i) <- s.hs_counts.(i) + 1;
  s.hs_count <- s.hs_count + 1;
  s.hs_sum <- s.hs_sum +. v;
  if v < s.hs_min then s.hs_min <- v;
  if v > s.hs_max then s.hs_max <- v;
  Mutex.unlock s.hs_lock

type hsnapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_counts : int array;
}

let h_snapshot (h : histogram) =
  let counts = Array.make (bucket_count + 1) 0 in
  let count = ref 0 and sum = ref 0.0 in
  let mn = ref infinity and mx = ref neg_infinity in
  Array.iter
    (fun s ->
      Mutex.lock s.hs_lock;
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hs_counts;
      count := !count + s.hs_count;
      sum := !sum +. s.hs_sum;
      if s.hs_min < !mn then mn := s.hs_min;
      if s.hs_max > !mx then mx := s.hs_max;
      Mutex.unlock s.hs_lock)
    h;
  { h_count = !count; h_sum = !sum; h_min = !mn; h_max = !mx; h_counts = counts }

let quantile_of ~counts ~count ~max p =
  if count <= 0 then nan
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let rank = p *. float_of_int count in
    let i = ref 0 and cum = ref 0 in
    let n = Array.length counts in
    while !i < n - 1 && float_of_int (!cum + counts.(!i)) < rank do
      cum := !cum + counts.(!i);
      Stdlib.incr i
    done;
    let i = !i in
    let lower = if i = 0 then 0.0 else bucket_bounds.(i - 1) in
    let upper =
      if i >= bucket_count then (if Float.is_finite max then Float.max max lower else lower *. bucket_ratio)
      else bucket_bounds.(i)
    in
    let in_bucket = counts.(i) in
    let frac =
      if in_bucket <= 0 then 1.0
      else Float.min 1.0 ((rank -. float_of_int !cum) /. float_of_int in_bucket)
    in
    let est = lower +. (frac *. (upper -. lower)) in
    if Float.is_finite max && est > max then max else est
  end

let quantile (s : hsnapshot) p =
  if s.h_count = 0 then nan
  else begin
    let est = quantile_of ~counts:s.h_counts ~count:s.h_count ~max:s.h_max p in
    if Float.is_finite s.h_min && est < s.h_min then s.h_min else est
  end

let h_mean s = if s.h_count = 0 then nan else s.h_sum /. float_of_int s.h_count

(* Bucket-wise merge: because every histogram in the system shares the
   one global bound table, two snapshots merge exactly — counts add per
   bucket, count/sum add, min/max extremize.  This is what lets a fleet
   router combine per-shard registries into one aggregate view whose
   quantile estimates carry the same error bounds as a single shard's. *)
let merge_hsnapshots a b =
  let n = Stdlib.max (Array.length a.h_counts) (Array.length b.h_counts) in
  let counts = Array.make n 0 in
  let addc (arr : int array) =
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) arr
  in
  addc a.h_counts;
  addc b.h_counts;
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
    h_counts = counts;
  }

let empty_hsnapshot () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_counts = Array.make (bucket_count + 1) 0;
  }

(* ------------------------------------------------------------------ *)
(* Registry *)

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_histograms : (string, histogram) Hashtbl.t;
}

let create_registry () =
  {
    r_lock = Mutex.create ();
    r_counters = Hashtbl.create 32;
    r_gauges = Hashtbl.create 8;
    r_histograms = Hashtbl.create 32;
  }

let default = create_registry ()

let find_or_create r tbl name make =
  Mutex.lock r.r_lock;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v
  in
  Mutex.unlock r.r_lock;
  v

let counter r name = find_or_create r r.r_counters name make_counter
let gauge r name = find_or_create r r.r_gauges name make_gauge
let histogram r name = find_or_create r r.r_histograms name make_histogram

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let metric_names r =
  Mutex.lock r.r_lock;
  let names = sorted_keys r.r_counters @ sorted_keys r.r_gauges @ sorted_keys r.r_histograms in
  Mutex.unlock r.r_lock;
  List.sort String.compare names

let items_of r tbl =
  Mutex.lock r.r_lock;
  let items = sorted_keys tbl |> List.map (fun k -> (k, Hashtbl.find tbl k)) in
  Mutex.unlock r.r_lock;
  items

let counters r = items_of r r.r_counters |> List.map (fun (k, c) -> (k, counter_value c))
let gauges r = items_of r r.r_gauges |> List.map (fun (k, g) -> (k, gauge_value g))
let histograms r = items_of r r.r_histograms |> List.map (fun (k, h) -> (k, h_snapshot h))

(* ------------------------------------------------------------------ *)
(* Tracing: enable flag *)

let env_disabled =
  match Sys.getenv_opt "DSE_TELEMETRY" with
  | Some ("0" | "off" | "false" | "no") -> true
  | _ -> false

let enabled_flag = Atomic.make (not env_disabled)
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Tracing: spans *)

type rec_span = {
  sr_seq : int;
  sr_id : int;
  sr_parent : int;
  sr_name : string;
  sr_t0 : float;
  sr_dur_us : float;
  sr_attrs : (string * string) list;
}

let dummy_span =
  { sr_seq = -1; sr_id = -1; sr_parent = -1; sr_name = ""; sr_t0 = 0.0; sr_dur_us = 0.0; sr_attrs = [] }

(* the ring of completed spans *)
type ring = {
  rg_lock : Mutex.t;
  mutable rg_buf : rec_span array;
  mutable rg_stored : int; (* valid entries ending at rg_next - 1 *)
  mutable rg_next : int; (* next sequence number *)
}

let default_cap =
  match Option.bind (Sys.getenv_opt "DSE_TRACE_CAP") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 4096

let ring =
  { rg_lock = Mutex.create (); rg_buf = Array.make default_cap dummy_span; rg_stored = 0; rg_next = 0 }

let set_trace_cap n =
  let n = Stdlib.max 1 n in
  Mutex.lock ring.rg_lock;
  ring.rg_buf <- Array.make n dummy_span;
  ring.rg_stored <- 0;
  Mutex.unlock ring.rg_lock

let trace_clear () =
  Mutex.lock ring.rg_lock;
  ring.rg_stored <- 0;
  Mutex.unlock ring.rg_lock

(* begin- and end-attrs may repeat a key (e.g. [session] echoed back
   in a reply): keep the last occurrence.  Attr lists are a dozen
   entries at most, so a quadratic scan over small lists beats paying
   a Hashtbl allocation on every span close.  Dedup runs on the read
   path, not the write path: span close is per-request hot, while the
   ring is only read by renderers, the slow log and the fleet
   assembler. *)
let dedup_attrs attrs =
  match attrs with
  | [] | [ _ ] -> attrs
  | _ ->
    let rec go seen acc = function
      | [] -> acc
      | ((k, _) as kv) :: rest ->
        if List.exists (String.equal k) seen then go seen acc rest
        else go (k :: seen) (kv :: acc) rest
    in
    go [] [] (List.rev attrs)

let ring_record ~id ~parent ~name ~t0 ~dur_us ~attrs =
  Mutex.lock ring.rg_lock;
  let seq = ring.rg_next in
  let cap = Array.length ring.rg_buf in
  ring.rg_buf.(seq mod cap) <-
    { sr_seq = seq; sr_id = id; sr_parent = parent; sr_name = name; sr_t0 = t0; sr_dur_us = dur_us; sr_attrs = attrs };
  ring.rg_next <- seq + 1;
  if ring.rg_stored < cap then ring.rg_stored <- ring.rg_stored + 1;
  Mutex.unlock ring.rg_lock

let trace_read ?(since = 0) ?max_spans () =
  Mutex.lock ring.rg_lock;
  let cap = Array.length ring.rg_buf in
  let first_avail = ring.rg_next - ring.rg_stored in
  let since = Stdlib.max 0 since in
  let start = Stdlib.max since first_avail in
  let stop = ring.rg_next in
  let dropped = Stdlib.max 0 (Stdlib.min stop start - since) in
  let avail = Stdlib.max 0 (stop - start) in
  let take = match max_spans with Some m -> Stdlib.max 0 (Stdlib.min m avail) | None -> avail in
  let spans = List.init take (fun k -> ring.rg_buf.((start + k) mod cap)) in
  let next = if take < avail then start + take else stop in
  Mutex.unlock ring.rg_lock;
  let spans =
    List.map (fun sr -> { sr with sr_attrs = dedup_attrs sr.sr_attrs }) spans
  in
  (spans, next, dropped)

(* per-thread stacks of open span ids, for implicit parenting.

   [Thread.id] is a dense process-wide counter, so the stacks live in
   a two-level direct-indexed table instead of a locked hashtable: a
   thread only ever reads and writes its own slot, which makes slot
   access lock-free (the lock below only guards chunk creation, and
   chunks are never copied or replaced, so a concurrent slot write
   can never be lost to a resize).  A span closed on a thread other
   than its opener writes the opener's slot unsynchronized — the
   worst case is a leaked stack entry, an observability blemish, and
   every closer in this codebase is the opening thread. *)

let stack_chunk_bits = 10
let stack_chunk_size = 1 lsl stack_chunk_bits
let stack_chunk_count = 256

let stack_chunks : int list array Atomic.t array =
  Array.init stack_chunk_count (fun _ -> Atomic.make [||])

let stack_chunks_lock = Mutex.create ()
let stack_tid () = Thread.id (Thread.self ())

let stack_chunk tid =
  (* thread ids beyond count*size wrap: two live threads 2^18 ids
     apart sharing a slot is the accepted failure mode *)
  let cell =
    Array.unsafe_get stack_chunks ((tid lsr stack_chunk_bits) land (stack_chunk_count - 1))
  in
  let chunk = Atomic.get cell in
  if Array.length chunk > 0 then chunk
  else begin
    Mutex.lock stack_chunks_lock;
    let chunk =
      let c = Atomic.get cell in
      if Array.length c > 0 then c
      else begin
        let fresh = Array.make stack_chunk_size [] in
        Atomic.set cell fresh;
        fresh
      end
    in
    Mutex.unlock stack_chunks_lock;
    chunk
  end

let stack_get tid = (stack_chunk tid).(tid land (stack_chunk_size - 1))
let stack_set tid v = (stack_chunk tid).(tid land (stack_chunk_size - 1)) <- v
let stack_push tid id = stack_set tid (id :: stack_get tid)

let stack_remove tid id =
  match stack_get tid with
  (* usually the head; tolerate out-of-order closes *)
  | top :: rest when top = id -> stack_set tid rest
  | ids -> stack_set tid (List.filter (fun i -> i <> id) ids)

let stack_top () =
  match stack_get (stack_tid ()) with id :: _ -> Some id | [] -> None

let stack_depth () = List.length (stack_get (stack_tid ()))

let current_span_id () = stack_top ()

let next_id = Atomic.make 1

type span = {
  sp_live : bool;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_t0 : float;
  sp_key : int; (* the thread stack the id was pushed on; -1 = none *)
  mutable sp_attrs : (string * string) list;
  mutable sp_closed : bool;
}

let dead_span =
  { sp_live = false; sp_id = -1; sp_parent = -1; sp_name = ""; sp_t0 = 0.0; sp_key = -1; sp_attrs = []; sp_closed = true }

(* the implicit-parent marker an unsampled root leaves on its stack:
   children looking up their parent find it and record nothing, so a
   suppressed root's whole subtree vanishes with it *)
let suppress_id = -2

(* Would a span or instant opened right here record anything?  The
   cheap pre-flight for instrumentation sites whose {e argument
   construction} is the expensive part (stringifying values, building
   attr lists): guard on [recording ()] instead of [enabled ()] so a
   suppressed (unsampled) subtree skips the work entirely rather than
   building attrs for a dead span to discard. *)
let recording () =
  enabled ()
  && (match stack_get (stack_tid ()) with id :: _ -> id <> suppress_id | [] -> true)

let span_begin ?parent ?(attrs = []) name =
  if not (enabled ()) then dead_span
  else begin
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match stack_top () with Some p -> p | None -> -1)
    in
    if parent = suppress_id then dead_span
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      let key = stack_tid () in
      stack_push key id;
      { sp_live = true; sp_id = id; sp_parent = parent; sp_name = name; sp_t0 = now (); sp_key = key; sp_attrs = attrs; sp_closed = false }
    end
  end


let span_add sp attrs = if sp.sp_live && not sp.sp_closed then sp.sp_attrs <- sp.sp_attrs @ attrs
let span_live sp = sp.sp_live

let span_end ?(attrs = []) sp =
  if sp.sp_live && not sp.sp_closed then begin
    sp.sp_closed <- true;
    if sp.sp_key >= 0 then stack_remove sp.sp_key sp.sp_id;
    let dur_us = (now () -. sp.sp_t0) *. 1e6 in
    ring_record ~id:sp.sp_id ~parent:sp.sp_parent ~name:sp.sp_name ~t0:sp.sp_t0
      ~dur_us:(Float.max 0.0 dur_us)
      ~attrs:(sp.sp_attrs @ attrs)
  end
  else if sp.sp_id = suppress_id && not sp.sp_closed then begin
    (* an unsampled root: pop its suppression marker *)
    sp.sp_closed <- true;
    stack_remove sp.sp_key suppress_id
  end

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let sp = span_begin ~attrs name in
    Fun.protect
      ~finally:(fun () -> span_end sp)
      (fun () ->
        try f ()
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          span_add sp [ ("error", Printexc.to_string e) ];
          Printexc.raise_with_backtrace e bt)
  end

let instant ?(attrs = []) name =
  if enabled () then begin
    let parent = match stack_top () with Some p -> p | None -> -1 in
    if parent <> suppress_id then begin
      let id = Atomic.fetch_and_add next_id 1 in
      ring_record ~id ~parent ~name ~t0:(now ()) ~dur_us:0.0 ~attrs
    end
  end

(* ------------------------------------------------------------------ *)
(* Tracing: propagated trace context (DESIGN.md 18)

   A context is the string "<32 hex>-<16 hex>": a 128-bit trace id and
   the 64-bit id of the span that caused this request, W3C-traceparent
   shaped minus the version/flags fields (the sampling decision is
   re-derivable from the trace id, so flags carry no information).
   Local span ids stay small ints; when one has to leave the process it
   is widened by a random 32-bit per-process prefix, which is what
   makes ids from different fleet members collision-free in a merged
   trace. *)

let rand_lock = Mutex.create ()
let rand_state = lazy (Random.State.make_self_init ())

let rand_hex n =
  Mutex.lock rand_lock;
  let st = Lazy.force rand_state in
  let s = String.init n (fun _ -> "0123456789abcdef".[Random.State.int st 16]) in
  Mutex.unlock rand_lock;
  s

let hex_digits = "0123456789abcdef"

(* low [digits] nibbles of [v], most significant first *)
let hex_into b pos v digits =
  for i = 0 to digits - 1 do
    Bytes.unsafe_set b (pos + i)
      (String.unsafe_get hex_digits ((v lsr ((digits - 1 - i) * 4)) land 0xf))
  done

let process_hex = lazy (rand_hex 8)

let span_hex id =
  let prefix = Lazy.force process_hex in
  let b = Bytes.create 16 in
  Bytes.blit_string prefix 0 b 0 8;
  hex_into b 8 (id land 0xFFFFFFFF) 8;
  Bytes.unsafe_to_string b

(* Context minting is on the client's per-request hot path, so it must
   not funnel every requester thread through [rand_lock] 48 times: ids
   are splitmix streams over a lock-free atomic counter, seeded once
   from the system RNG.  The mixer is splitmix64's finalizer truncated
   to OCaml's native 63-bit int — native int arithmetic stays unboxed,
   where Int64 would heap-allocate every intermediate on this path.
   Uniqueness needs a good bit mixer, not cryptographic randomness;
   each 63-bit word renders as 16 hex digits whose top nibble is 0-7,
   which downstream parsers treat as ordinary hex. *)
let sm_gamma = 0x1E3779B97F4A7C15

let sm x =
  let z = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let mint_seed =
  lazy
    (Mutex.lock rand_lock;
     let st = Lazy.force rand_state in
     let s = Int64.to_int (Random.State.bits64 st) in
     Mutex.unlock rand_lock;
     s)

let mint_ctr = Atomic.make 0
let mint_word seed n k = sm (seed + (((3 * n) + k) * sm_gamma))

let mint_trace_of seed n =
  let b = Bytes.create 49 in
  hex_into b 0 (mint_word seed n 0) 16;
  hex_into b 16 (mint_word seed n 1) 16;
  Bytes.unsafe_set b 32 '-';
  hex_into b 33 (mint_word seed n 2) 16;
  Bytes.unsafe_to_string b

let mint_trace () =
  mint_trace_of (Lazy.force mint_seed) (Atomic.fetch_and_add mint_ctr 1)

let is_hex = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)

let parse_trace s =
  if String.length s = 49 && s.[32] = '-' then begin
    let tid = String.sub s 0 32 and psid = String.sub s 33 16 in
    if is_hex tid && is_hex psid then Some (tid, psid) else None
  end
  else None

(* Head sampling: the keep/drop decision is a pure hash of the trace
   id, so the client, the router and every worker agree on it
   independently — no sampled-flag has to travel with the request. *)

let env_sample =
  match Option.bind (Sys.getenv_opt "DSE_TRACE_SAMPLE") float_of_string_opt with
  | Some r when Float.is_finite r -> Float.min 1.0 (Float.max 0.0 r)
  | _ -> 1.0

let sample_rate = Atomic.make env_sample
let set_trace_sample r = Atomic.set sample_rate (Float.min 1.0 (Float.max 0.0 r))
let trace_sample () = Atomic.get sample_rate

(* 32-bit FNV-1a of the first [len] chars of [s] (the trace id part),
   folded onto the unit interval *)
let trace_unit_prefix s len =
  let len = Stdlib.min len (String.length s) in
  let h = ref 0x811c9dc5 in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193 land 0xFFFFFFFF
  done;
  float_of_int !h /. 4294967296.0

let trace_sampled tid =
  let r = trace_sample () in
  if r >= 1.0 then true
  else if r <= 0.0 then false
  else trace_unit_prefix tid 32 < r

(* FNV-1a folded over the 16 hex digits of one minted word, most
   significant nibble first — by construction this matches what
   [trace_unit_prefix] computes over the rendered hex string, so the
   sampling decision can be taken from the raw words without
   materializing the string at all. *)
let fnv_hex_word h w =
  let h = ref h in
  for i = 0 to 15 do
    let c = Char.code (String.unsafe_get hex_digits ((w lsr ((15 - i) * 4)) land 0xf)) in
    h := (!h lxor c) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let mint_trace_sampled () =
  if not (enabled ()) then None
  else begin
    let r = trace_sample () in
    if r <= 0.0 then None
    else begin
      (* the same FNV decision every downstream hop would make on the
         embedded trace id, taken once here at the root: an unsampled
         trace never even leaves the client, so requests below the
         sampling rate carry zero tracing cost through the fleet — not
         even the context string is built for them *)
      let seed = Lazy.force mint_seed in
      let n = Atomic.fetch_and_add mint_ctr 1 in
      let sampled =
        r >= 1.0
        || (let h =
              fnv_hex_word (fnv_hex_word 0x811c9dc5 (mint_word seed n 0)) (mint_word seed n 1)
            in
            float_of_int h /. 4294967296.0 < r)
      in
      if sampled then Some (mint_trace_of seed n) else None
    end
  end

(* an unbiased coin at the sampling rate for local roots, which have
   no trace id to hash: a splitmix stream over a lock-free counter *)
let coin_ctr = Atomic.make 0

let root_sampled () =
  let r = trace_sample () in
  if r >= 1.0 then true
  else if r <= 0.0 then false
  else begin
    let n = Atomic.fetch_and_add coin_ctr 1 in
    let z = sm (Lazy.force mint_seed + (n * 0x51342543DE82EF95)) in
    float_of_int ((z lsr 10) land 0x1F_FFFF_FFFF_FFFF) *. (1.0 /. 9007199254740992.0) < r
  end

let span_begin_root ?(attrs = []) name =
  if not (enabled ()) then dead_span
  else if root_sampled () then span_begin ~attrs name
  else begin
    (* leave the suppression marker in place of the span: children
       opened while it is open die at birth instead of reparenting
       onto whatever encloses this root (e.g. the connection span) *)
    let key = stack_tid () in
    stack_push key suppress_id;
    {
      sp_live = false;
      sp_id = suppress_id;
      sp_parent = -1;
      sp_name = name;
      sp_t0 = 0.0;
      sp_key = key;
      sp_attrs = [];
      sp_closed = false;
    }
  end

(* A remote-parented span: a local root (sp_parent = -1 — the real
   parent lives in another process) that records the propagated
   context as attrs.  [trace] keys the fleet-wide merge, [span] is
   this span's own fleet-unique hex id, [parent_span] the propagated
   one; children opened on this (domain, thread) nest under it through
   the ordinary implicit stack. *)
(* [detached] spans skip the implicit-parent stack entirely: for a
   span that provably never has same-thread children (the router's
   forward-only hop), the two stack-table updates are pure overhead
   on the per-request path. *)
let detached_key = -1

let span_begin_remote ~trace ~parent_span ?(detached = false) ?(attrs = []) name =
  if (not (enabled ())) || not (trace_sampled trace) then dead_span
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let key = if detached then detached_key else stack_tid () in
    if not detached then stack_push key id;
    let attrs =
      ("trace", trace) :: ("span", span_hex id) :: ("parent_span", parent_span) :: attrs
    in
    {
      sp_live = true;
      sp_id = id;
      sp_parent = -1;
      sp_name = name;
      sp_t0 = now ();
      sp_key = key;
      sp_attrs = attrs;
      sp_closed = false;
    }
  end

(* a single mutable-int read: racy by design (the cursor is a lower
   bound, exactness buys nothing), so the per-request hot path skips
   the ring lock *)
let trace_cursor () = ring.rg_next

(* ------------------------------------------------------------------ *)
(* Exporters *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let span_to_json sp =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"id\":%d" sp.sr_seq sp.sr_id);
  if sp.sr_parent >= 0 then Buffer.add_string b (Printf.sprintf ",\"parent\":%d" sp.sr_parent);
  Buffer.add_string b ",\"name\":\"";
  json_escape b sp.sr_name;
  Buffer.add_string b (Printf.sprintf "\",\"t0\":%.6f,\"dur_us\":%.3f" sp.sr_t0 sp.sr_dur_us);
  if sp.sr_attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        json_escape b k;
        Buffer.add_string b "\":\"";
        json_escape b v;
        Buffer.add_char b '"')
      sp.sr_attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let trace_json_lines ?since () =
  let spans, _, _ = trace_read ?since () in
  List.map span_to_json spans

let dump_ring_to oc =
  let spans, _, dropped = trace_read () in
  if dropped > 0 then Printf.fprintf oc "{\"dropped\":%d}\n" dropped;
  List.iter (fun sp -> output_string oc (span_to_json sp); output_char oc '\n') spans;
  flush oc

(* ------------------------------------------------------------------ *)
(* Slow-request log: requests whose root span exceeds DSE_SLOW_MS keep
   their whole span tree as one JSON line in a small bounded ring.
   Off by default — assembling a tree walks one ring page, which is
   too much work to spend on every fast request. *)

let env_slow_us =
  match Option.bind (Sys.getenv_opt "DSE_SLOW_MS") float_of_string_opt with
  | Some ms when Float.is_finite ms && ms >= 0.0 -> Some (ms *. 1000.0)
  | _ -> None

let slow_lock = Mutex.create ()
let slow_thr_us = ref env_slow_us
let slow_cap = 64
let slow_buf : string Queue.t = Queue.create ()
let slow_dropped = ref 0

let set_slow_ms ms =
  Mutex.lock slow_lock;
  slow_thr_us := Option.map (fun m -> Float.max 0.0 m *. 1000.0) ms;
  Mutex.unlock slow_lock

(* read without the lock: the ref holds an immutable option, so a racy
   read is safe, and this sits on every request's span-close path *)
let slow_threshold_us () = !slow_thr_us

let slow_read () =
  Mutex.lock slow_lock;
  let lines = List.of_seq (Queue.to_seq slow_buf) in
  let dropped = !slow_dropped in
  Mutex.unlock slow_lock;
  (lines, dropped)

let slow_clear () =
  Mutex.lock slow_lock;
  Queue.clear slow_buf;
  slow_dropped := 0;
  Mutex.unlock slow_lock

let slow_push line =
  Mutex.lock slow_lock;
  if Queue.length slow_buf >= slow_cap then begin
    ignore (Queue.pop slow_buf);
    Stdlib.incr slow_dropped
  end;
  Queue.push line slow_buf;
  Mutex.unlock slow_lock

(* [slow_check ~since ~dur_us sp]: called right after [span_end sp] by
   request roots that measured their own duration.  When over the
   threshold, the spans recorded since [since] (the caller's cursor
   from just before the request) are filtered to the tree under [sp]
   and logged.  Children recorded on other domains are included as
   long as they carry a parent chain into [sp] (parallel chunks pass
   explicit parents for exactly this reason). *)
let slow_check ~since ~dur_us sp =
  if sp.sp_live then
    match slow_threshold_us () with
    | Some thr when dur_us >= thr ->
      let spans, _, _ = trace_read ~since () in
      let parents = Hashtbl.create 32 in
      List.iter
        (fun r -> if not (Hashtbl.mem parents r.sr_id) then Hashtbl.add parents r.sr_id r.sr_parent)
        spans;
      let rec reaches id =
        id = sp.sp_id
        || (match Hashtbl.find_opt parents id with Some p when p >= 0 -> reaches p | _ -> false)
      in
      let tree = List.filter (fun r -> reaches r.sr_id) spans in
      let b = Buffer.create 512 in
      Buffer.add_string b "{\"name\":\"";
      json_escape b sp.sp_name;
      Buffer.add_string b (Printf.sprintf "\",\"dur_ms\":%.3f" (dur_us /. 1000.0));
      (match List.assoc_opt "trace" sp.sp_attrs with
      | Some t ->
        Buffer.add_string b ",\"trace\":\"";
        json_escape b t;
        Buffer.add_char b '"'
      | None -> ());
      Buffer.add_string b ",\"spans\":[";
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (span_to_json r))
        tree;
      Buffer.add_string b "]}";
      slow_push (Buffer.contents b)
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Counter windows: [dse top] rates are differences of successive
   snapshots.  A worker restarted in place resets its counters to
   zero, so a naive difference goes negative for one refresh; a reset
   window reads 0 instead (the next window is exact again). *)

let window_delta ~prev ~cur = if cur >= prev then cur - prev else 0

let window_rate ~prev ~cur ~dt =
  if dt <= 0.0 then 0.0 else float_of_int (window_delta ~prev ~cur) /. dt

let window_counts ~prev ~cur =
  Array.init (Array.length cur) (fun i ->
      let p = if i < Array.length prev then prev.(i) else 0 in
      window_delta ~prev:p ~cur:cur.(i))

(* ------------------------------------------------------------------ *)
(* Build identity, exported as dse_build_info{version="..."} 1 *)

let build_version = ref "dev"
let set_build_info ~version = build_version := version

(* a metric name may carry a {label="value",...} suffix; the
   Prometheus exporter splits it so histogram [le] labels merge in *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 2))
  | Some _ -> (name, "")

let with_labels base labels extra =
  let all = List.filter (fun s -> s <> "") [ labels; extra ] in
  match all with [] -> base | l -> Printf.sprintf "%s{%s}" base (String.concat "," l)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let prometheus regs =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "dse_build_info{version=%S} 1\n" !build_version);
  List.iter
    (fun (tag, r) ->
      if tag <> "" then Buffer.add_string b (Printf.sprintf "# registry: %s\n" tag);
      Mutex.lock r.r_lock;
      let counters = sorted_keys r.r_counters |> List.map (fun k -> (k, Hashtbl.find r.r_counters k)) in
      let gauges = sorted_keys r.r_gauges |> List.map (fun k -> (k, Hashtbl.find r.r_gauges k)) in
      let hists = sorted_keys r.r_histograms |> List.map (fun k -> (k, Hashtbl.find r.r_histograms k)) in
      Mutex.unlock r.r_lock;
      List.iter
        (fun (name, c) ->
          let base, labels = split_labels name in
          Buffer.add_string b (Printf.sprintf "%s %d\n" (with_labels base labels "") (counter_value c)))
        counters;
      List.iter
        (fun (name, g) ->
          let base, labels = split_labels name in
          Buffer.add_string b (Printf.sprintf "%s %s\n" (with_labels base labels "") (fmt_float (gauge_value g))))
        gauges;
      List.iter
        (fun (name, h) ->
          let s = h_snapshot h in
          let base, labels = split_labels name in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if i < bucket_count then
                Buffer.add_string b
                  (Printf.sprintf "%s %d\n"
                     (with_labels (base ^ "_bucket") labels (Printf.sprintf "le=\"%g\"" bucket_bounds.(i)))
                     !cum))
            s.h_counts;
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" (with_labels (base ^ "_bucket") labels "le=\"+Inf\"") s.h_count);
          Buffer.add_string b (Printf.sprintf "%s %s\n" (with_labels (base ^ "_sum") labels "") (fmt_float s.h_sum));
          Buffer.add_string b (Printf.sprintf "%s %d\n" (with_labels (base ^ "_count") labels "") s.h_count))
        hists)
    regs;
  Buffer.contents b

let pp_summary fmt regs =
  List.iter
    (fun (tag, r) ->
      if tag <> "" then Format.fprintf fmt "[%s]@." tag;
      Mutex.lock r.r_lock;
      let counters = sorted_keys r.r_counters |> List.map (fun k -> (k, Hashtbl.find r.r_counters k)) in
      let gauges = sorted_keys r.r_gauges |> List.map (fun k -> (k, Hashtbl.find r.r_gauges k)) in
      let hists = sorted_keys r.r_histograms |> List.map (fun k -> (k, Hashtbl.find r.r_histograms k)) in
      Mutex.unlock r.r_lock;
      List.iter (fun (name, c) -> Format.fprintf fmt "  %s = %d@." name (counter_value c)) counters;
      List.iter (fun (name, g) -> Format.fprintf fmt "  %s = %s@." name (fmt_float (gauge_value g))) gauges;
      List.iter
        (fun (name, h) ->
          let s = h_snapshot h in
          if s.h_count = 0 then Format.fprintf fmt "  %s: empty@." name
          else
            Format.fprintf fmt "  %s: count=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus@."
              name s.h_count (h_mean s) (quantile s 0.5) (quantile s 0.9) (quantile s 0.99) s.h_max)
        hists)
    regs
