(** Telemetry: a zero-dependency metrics registry and structured
    tracer shared by the exploration engine, the service, the bench
    harness and the CLI.

    The subsystem has three parts:

    - a {b metrics registry} of named counters, gauges and fixed-bucket
      latency histograms.  Counters and histograms are striped per
      domain so that instrumenting the parallel sweep does not
      serialize it: increments touch one [Atomic.t] (counters) or one
      per-stripe mutex (histograms) selected by the calling domain's
      id, and readers merge the stripes.
    - a {b structured tracer}: spans with parent ids and key/value
      attributes, recorded on completion into a bounded global ring
      buffer.  Each recorded span carries a monotonically increasing
      sequence number, which gives exporters a since-cursor: readers
      poll [trace_read ~since] and are told exactly how many spans the
      ring dropped between polls.
    - {b exporters}: JSON-lines trace dump, Prometheus-style text
      exposition, and a human [pp] summary.

    Clocks: span timestamps and durations come from
    {!Unix.gettimeofday}.  OCaml's stdlib exposes no monotonic wall
    clock without C stubs; [gettimeofday] is what the rest of this
    repo already times with, and durations are short enough that the
    distinction is immaterial for profiling.  Durations are reported
    in microseconds throughout.

    Everything is safe to call from any domain or thread.  Recording
    is gated on {!set_enabled}: when disabled, [span_begin] returns a
    dead span without reading the clock and metric updates are still
    applied (metrics are cheap and the service's [stats] op depends on
    them); only tracing is switched off. *)

val now_us : unit -> float
(** The subsystem's clock, in microseconds — for callers that time a
    region for a histogram without opening a span. *)

(* ------------------------------------------------------------------ *)
(** {1 Registry} *)

type registry
(** A namespace of metrics.  The engine and journal record into
    {!default}; a {!Service.t} creates its own registry so that per-op
    request metrics are per-instance (tests assert exact counts). *)

val create_registry : unit -> registry

val default : registry
(** The process-global registry: engine (sweep, caches, guard,
    parallel) and journal metrics. *)

(* ------------------------------------------------------------------ *)
(** {1 Counters} *)

type counter

val counter : registry -> string -> counter
(** Find or create the named counter.  Metric names follow the
    catalog in DESIGN.md section 13: [dse_<area>_<what>_total], with
    an optional [{label="value"}] suffix that the Prometheus exporter
    splits out. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** Sum over all stripes — exact, not sampled. *)

(* ------------------------------------------------------------------ *)
(** {1 Gauges} *)

type gauge

val gauge : registry -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(* ------------------------------------------------------------------ *)
(** {1 Histograms} *)

type histogram
(** Fixed geometric buckets: {!bucket_bounds} spans 1µs .. ~44s with
    ratio 1.25, so a quantile estimate is off by at most one bucket
    (+25% / -0%% at the edges, ~±12% with midpoint interpolation —
    bounds documented in DESIGN.md 13).  Count, sum, min and max are
    tracked exactly, which is what keeps the service's legacy [stats]
    shapes bit-compatible. *)

val bucket_bounds : float array
(** Upper bounds (inclusive, µs) of the finite buckets.  Values above
    the last bound land in an overflow bucket whose quantile estimate
    is the exact observed max. *)

val histogram : registry -> string -> histogram
val observe : histogram -> float -> unit
(** Record one value in microseconds.  Negative values clamp to 0. *)

type hsnapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [infinity] when empty *)
  h_max : float;  (** [neg_infinity] when empty *)
  h_counts : int array;  (** per-bucket counts; length [Array.length bucket_bounds + 1], last = overflow *)
}

val h_snapshot : histogram -> hsnapshot
(** Merge all stripes into one consistent-enough view (stripes are
    read under their own locks; cross-stripe skew is bounded by
    in-flight observations). *)

val quantile : hsnapshot -> float -> float
(** [quantile s 0.99] estimates p99 in µs by walking the cumulative
    bucket counts and interpolating inside the target bucket.  Returns
    [nan] on an empty snapshot; the overflow bucket reports the exact
    max. *)

val quantile_of : counts:int array -> count:int -> max:float -> float -> float
(** The same estimator over raw bucket counts (as shipped by the
    [metrics] protocol op), for clients like [dse top] that window
    quantiles by differencing two snapshots. *)

val h_mean : hsnapshot -> float
(** [h_sum /. h_count], or [nan] when empty. *)

val merge_hsnapshots : hsnapshot -> hsnapshot -> hsnapshot
(** Bucket-wise merge of two snapshots (exact: every histogram shares
    {!bucket_bounds}, so counts add per bucket; count and sum add, min
    and max extremize).  The fleet router uses this to aggregate
    per-shard registries into one view whose quantile estimates carry
    the same error bounds as a single shard's. *)

val empty_hsnapshot : unit -> hsnapshot
(** The merge identity: zero counts, [infinity]/[neg_infinity]
    min/max. *)

(* ------------------------------------------------------------------ *)
(** {1 Tracing} *)

val set_enabled : bool -> unit
(** Master switch for span recording (metrics are unaffected).
    Default: enabled, unless the [DSE_TELEMETRY] environment variable
    is ["0"], ["off"] or ["false"] at startup. *)

val enabled : unit -> bool

val recording : unit -> bool
(** Would a span or instant opened right now record anything?  [false]
    when telemetry is disabled {e or} the calling thread sits inside a
    suppressed (unsampled-root) subtree.  Instrumentation sites whose
    argument construction is the expensive part — stringifying values,
    assembling attr lists — should guard on this rather than
    {!enabled}, so below-rate requests skip the work entirely instead
    of building attrs for a dead span to discard. *)

type span
(** A live (unfinished) span.  Dead spans (created while disabled) are
    recorded nowhere and cost two words. *)

val span_begin : ?parent:int -> ?attrs:(string * string) list -> string -> span
(** Open a span.  The parent defaults to the innermost open span of
    the calling (domain, thread) — explicit [?parent] is for work that
    hops domains, e.g. parallel sweep chunks.  Every [span_begin] must
    reach {!span_end} on all paths; use {!with_span} (which is
    [Fun.protect]-based) unless the begin/end straddle a structure the
    lint script ([scripts/obs_lint.sh]) can check. *)

val span_end : ?attrs:(string * string) list -> span -> unit
(** Close the span, append [attrs] to those given at begin, and record
    it in the ring.  Idempotent: closing twice records once. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed via
    [Fun.protect] even when [f] raises (the exception is re-raised,
    and the span gains an [error] attribute). *)

val span_add : span -> (string * string) list -> unit
(** Attach attributes to a still-open span. *)

val span_live : span -> bool
(** [true] when the span will actually be recorded at {!span_end} —
    [false] for dead spans (telemetry disabled, or the trace was not
    head-sampled).  Callers assembling expensive end-attributes should
    skip the work when this is [false]. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** A zero-duration span — an event.  Parented like {!span_begin}. *)

val current_span_id : unit -> int option
(** Id of the innermost open span on this (domain, thread), for
    explicit cross-domain parenting. *)

(* ------------------------------------------------------------------ *)
(** {1 Propagated trace context}

    A trace context is the string ["<32 hex>-<16 hex>"]: a 128-bit
    trace id plus the 64-bit id of the requesting span, W3C-traceparent
    shaped minus version/flags (the sampling decision is a pure
    function of the trace id, so no flag needs to travel).  Clients
    mint one per request; the router and workers parent their local
    spans under it with {!span_begin_remote}, and a fleet-wide [trace]
    collection reassembles the tree by the [trace] attr.  DESIGN.md
    section 18. *)

val mint_trace : unit -> string
(** A fresh context: random trace id, random requesting-span id. *)

val mint_trace_sampled : unit -> string option
(** {!mint_trace}, with the head-sampling decision taken at the root:
    [None] when telemetry is off or the minted trace id does not
    sample ({!trace_sampled}).  Clients attach the context only when
    this is [Some] — an unsampled trace never travels, so below-rate
    requests carry zero tracing cost through the fleet. *)

val span_begin_root : ?attrs:(string * string) list -> string -> span
(** {!span_begin} for a local request root (no propagated context),
    subject to the head-sampling rate via a fair coin (local roots
    have no trace id to hash).  An unsampled root returns a dead span
    that {e suppresses}: spans opened under it on the same (domain,
    thread) before its {!span_end} die at birth, so the subtree's
    recording cost vanishes with the root.  The returned span must
    reach {!span_end} on all paths even when dead, or the suppression
    sticks to the thread. *)

val parse_trace : string -> (string * string) option
(** [parse_trace s] is [Some (trace_id, parent_span_id)] when [s] is a
    well-formed context, [None] otherwise (malformed contexts are
    dropped, never propagated). *)

val span_hex : int -> string
(** The fleet-unique 16-hex form of a local span id: a random 32-bit
    per-process prefix widens the local id so ids from different fleet
    members cannot collide in a merged trace. *)

val span_begin_remote :
  trace:string ->
  parent_span:string ->
  ?detached:bool ->
  ?attrs:(string * string) list ->
  string ->
  span
(** Open a span whose parent lives in another process: a local root
    ([parent = -1]) carrying [trace], [span] (its own {!span_hex} id)
    and [parent_span] attrs.  Spans opened on the same (domain,
    thread) while it is open nest under it as usual.  Returns a dead
    span when tracing is disabled {e or} the trace id is not sampled
    ({!trace_sampled}).  [~detached:true] skips the implicit-parent
    stack — for hot-path spans that provably never have same-thread
    children (the router's forward-only hop); nothing can nest under
    a detached span. *)

val trace_sampled : string -> bool
(** Head-sampling decision for a trace id: deterministic hash of the
    id against {!trace_sample}, so every process in a fleet keeps or
    drops the same traces without coordination. *)

val trace_sample : unit -> float
val set_trace_sample : float -> unit
(** Sampled fraction in [0, 1].  Default 1.0, or [DSE_TRACE_SAMPLE] at
    startup; clamped. *)

val trace_cursor : unit -> int
(** The ring's next sequence number — record it before starting a
    request to later read back exactly that request's spans. *)

(* ------------------------------------------------------------------ *)
(** {1 Slow-request log} *)

val set_slow_ms : float option -> unit
(** Threshold above which a request root logs its whole span tree as
    one JSON line ([None] = off).  Default off, or [DSE_SLOW_MS] at
    startup. *)

val slow_threshold_us : unit -> float option

val slow_check : since:int -> dur_us:float -> span -> unit
(** Called by a request root right after its [span_end]: when [dur_us]
    exceeds the threshold, the spans recorded since [since] (the
    {!trace_cursor} taken before the request) are filtered to the tree
    under the root and appended to the bounded slow log. *)

val slow_read : unit -> string list * int
(** [(lines, dropped)]: the buffered slow-request JSON lines (oldest
    first, at most 64) and how many the bounded log has evicted. *)

val slow_clear : unit -> unit
(** Drop buffered slow-log lines — test hook. *)

(* ------------------------------------------------------------------ *)
(** {1 Counter windows} *)

val window_delta : prev:int -> cur:int -> int
(** [cur - prev], except a counter reset ([cur < prev] — e.g. a worker
    restarted in place) reads 0 rather than a negative delta. *)

val window_rate : prev:int -> cur:int -> dt:float -> float
(** {!window_delta} per second; 0 when [dt <= 0]. *)

val window_counts : prev:int array -> cur:int array -> int array
(** Element-wise {!window_delta} over histogram bucket counts (missing
    [prev] entries read 0). *)

(* ------------------------------------------------------------------ *)
(** {1 Build identity} *)

val set_build_info : version:string -> unit
(** Version label of the [dse_build_info] gauge the Prometheus
    exposition leads with.  Default ["dev"]; the CLI sets the real
    version at startup. *)

val stack_depth : unit -> int
(** Open-span nesting depth of the calling (domain, thread) — test
    hook for nesting well-formedness. *)

type rec_span = {
  sr_seq : int;  (** global, monotonically increasing *)
  sr_id : int;
  sr_parent : int;  (** -1 for roots *)
  sr_name : string;
  sr_t0 : float;  (** start, seconds since epoch *)
  sr_dur_us : float;
  sr_attrs : (string * string) list;
}

val trace_read : ?since:int -> ?max_spans:int -> unit -> rec_span list * int * int
(** [trace_read ~since ()] returns [(spans, next, dropped)]: the
    recorded spans with [sr_seq >= since] (oldest first, at most
    [max_spans]), the cursor to pass as [since] next time, and how
    many spans in the requested range the bounded ring had already
    evicted.  [since] defaults to 0 — i.e. "everything still
    buffered, and tell me what I lost". *)

val set_trace_cap : int -> unit
(** Resize the ring (default 4096, or [DSE_TRACE_CAP]).  Clears
    buffered spans; sequence numbers keep counting. *)

val trace_clear : unit -> unit
(** Drop buffered spans (sequence numbers keep counting) — test hook. *)

(* ------------------------------------------------------------------ *)
(** {1 Exporters} *)

val span_to_json : rec_span -> string
(** One span as a single JSON line (no trailing newline). *)

val trace_json_lines : ?since:int -> unit -> string list
(** The buffered trace as JSON lines, oldest first. *)

val dump_ring_to : out_channel -> unit
(** Flush the buffered trace as JSON lines — the [dse explore] fatal
    trap calls this on stderr so a crash keeps its event trail. *)

val metric_names : registry -> string list
(** All registered metric names, sorted. *)

val counters : registry -> (string * int) list
val gauges : registry -> (string * float) list
val histograms : registry -> (string * hsnapshot) list
(** Sorted snapshots of a registry's contents — the raw material of
    the protocol's [metrics] op. *)

val prometheus : (string * registry) list -> string
(** Prometheus-style text exposition of the given registries (label =
    a prefix comment per registry).  Histograms emit cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]; names carrying
    a [{...}] suffix get [le] merged into their label set. *)

val pp_summary : Format.formatter -> (string * registry) list -> unit
(** Human-readable registry summary: counters, gauges, and histogram
    count/mean/p50/p90/p99/max lines. *)
