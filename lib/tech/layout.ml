type style = Standard_cell | Gate_array | Full_custom | Fpga

type t = { style : style; name : string; area_factor : float; delay_factor : float }

let standard_cell = { style = Standard_cell; name = "standard-cell"; area_factor = 1.0; delay_factor = 1.0 }
let gate_array = { style = Gate_array; name = "gate-array"; area_factor = 1.35; delay_factor = 1.2 }
let full_custom = { style = Full_custom; name = "full-custom"; area_factor = 0.6; delay_factor = 0.75 }
let fpga = { style = Fpga; name = "fpga"; area_factor = 8.0; delay_factor = 3.0 }
let all = [ standard_cell; gate_array; full_custom; fpga ]
let by_name name = List.find_opt (fun l -> String.equal l.name name) all

let of_style = function
  | Standard_cell -> standard_cell
  | Gate_array -> gate_array
  | Full_custom -> full_custom
  | Fpga -> fpga
