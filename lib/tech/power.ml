type estimate = { dynamic_mw : float; energy_per_op_nj : float }

let estimate (p : Process.t) ~gates ~clock_ns ~activity ~cycles_per_op =
  if clock_ns <= 0.0 then invalid_arg "Power.estimate: clock must be positive";
  if gates < 0.0 then invalid_arg "Power.estimate: negative gate count";
  if activity < 0.0 || activity > 1.0 then invalid_arg "Power.estimate: activity out of [0,1]";
  let f_ghz = 1.0 /. clock_ns in
  (* pJ * GHz = mW *)
  let dynamic_mw = activity *. gates *. f_ghz *. p.Process.pj_per_gate_switch in
  let energy_per_op_nj =
    activity *. gates *. p.Process.pj_per_gate_switch *. float_of_int cycles_per_op /. 1000.0
  in
  { dynamic_mw; energy_per_op_nj }

let default_activity ~adder_is_carry_save = if adder_is_carry_save then 0.30 else 0.18
