type t = {
  name : string;
  feature_um : float;
  ns_per_level : float;
  um2_per_gate : float;
  volt : float;
  pj_per_gate_switch : float;
}

(* Calibration anchor: the paper's Table 1 was produced with the LSI
   0.35u G10 standard-cell library.  A radix-2 carry-save Montgomery
   slice (design #2) clocks at ~2.4 ns there; its logic depth in our
   component model is ~16 levels, giving ~0.15 ns per NAND2-equivalent
   level (a realistic loaded NAND2 delay for a 0.35u process).  A
   2-input NAND in G10-class libraries occupies ~10 um^2. *)
let p035_g10 =
  {
    name = "0.35u";
    feature_um = 0.35;
    ns_per_level = 0.15;
    um2_per_gate = 10.0;
    volt = 3.3;
    pj_per_gate_switch = 0.012;
  }

let scale base ~feature_um ~name =
  if feature_um <= 0.0 then invalid_arg "Process.scale: feature size must be positive";
  let ratio = feature_um /. base.feature_um in
  {
    name;
    feature_um;
    ns_per_level = base.ns_per_level *. ratio;
    um2_per_gate = base.um2_per_gate *. ratio *. ratio;
    volt = base.volt *. ratio;
    pj_per_gate_switch = base.pj_per_gate_switch *. (ratio ** 3.0);
  }

let p070 = scale p035_g10 ~feature_um:0.7 ~name:"0.7u"
let p050 = scale p035_g10 ~feature_um:0.5 ~name:"0.5u"
let p025 = scale p035_g10 ~feature_um:0.25 ~name:"0.25u"
let all = [ p070; p050; p035_g10; p025 ]
let by_name name = List.find_opt (fun p -> String.equal p.name name) all
let gate_delay_ns p ~levels = p.ns_per_level *. levels
let area_um2 p ~gates = p.um2_per_gate *. gates
