(** Layout-style models.

    The paper's "Layout Style" design issue (DI5) offers standard-cell,
    gate-array and further options.  Relative to a standard-cell
    implementation in the same process, other styles trade area and
    speed by roughly constant factors, which is all that early design
    space exploration needs. *)

type style = Standard_cell | Gate_array | Full_custom | Fpga

type t = {
  style : style;
  name : string;  (** option string used in the layer, e.g. "standard-cell" *)
  area_factor : float;  (** multiplier on standard-cell area *)
  delay_factor : float;  (** multiplier on standard-cell delay *)
}

val standard_cell : t
val gate_array : t
val full_custom : t
val fpga : t

val all : t list
val by_name : string -> t option
val of_style : style -> t
