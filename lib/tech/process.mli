(** Fabrication-technology models.

    The paper's "Fabrication Technology" design issue (DI6) offers
    options such as 0.7u and 0.35u; the Table 1 characterisation used the
    LSI 0.35u G10 standard-cell library.  A process here is a small
    first-order model: one delay constant (nanoseconds per
    gate-equivalent logic level) and one area constant (square microns
    per gate equivalent), plus supply voltage and a switching-energy
    constant for the power extension.

    The constants for [p035_g10] are calibrated once against Table 1 of
    the paper; the other processes follow constant-field scaling
    (delay proportional to feature size, area to its square). *)

type t = {
  name : string;  (** e.g. "0.35u" — the option string used in the layer *)
  feature_um : float;  (** drawn feature size in microns *)
  ns_per_level : float;  (** delay of one gate-equivalent logic level *)
  um2_per_gate : float;  (** area of one gate equivalent (2-input NAND) *)
  volt : float;  (** nominal supply *)
  pj_per_gate_switch : float;  (** switching energy per gate per event *)
}

val p070 : t
(** 0.7 micron process (the paper's older-library example). *)

val p050 : t
(** 0.5 micron process. *)

val p035_g10 : t
(** 0.35 micron process, calibrated to the paper's LSI G10 numbers. *)

val p025 : t
(** 0.25 micron projection, for the power/extension studies. *)

val all : t list
(** Every built-in process, coarsest first. *)

val by_name : string -> t option
(** Look a process up by its option string (e.g. ["0.35u"]). *)

val scale : t -> feature_um:float -> name:string -> t
(** [scale base ~feature_um ~name] derives a process from [base] by
    constant-field scaling.  @raise Invalid_argument when [feature_um]
    is not positive. *)

val gate_delay_ns : t -> levels:float -> float
(** Delay of a combinational path of the given logic depth. *)

val area_um2 : t -> gates:float -> float
(** Silicon area of the given number of gate equivalents. *)
