(** First-order dynamic-power model (the paper's "work in progress"
    extension: incorporating power consumption as a figure of merit).

    Dynamic power is modelled as
    [P = activity * gates * f_clk * e_switch], with the switching energy
    taken from the process model.  This is deliberately coarse — the
    design space layer only needs power {e ranges} that order the
    alternatives correctly (carry-save redundancy toggles more nets than
    a quiet carry-lookahead tree; higher radix means fewer, busier
    cycles). *)

type estimate = {
  dynamic_mw : float;  (** average dynamic power in milliwatts *)
  energy_per_op_nj : float;  (** energy for one complete operation *)
}

val estimate :
  Process.t ->
  gates:float ->
  clock_ns:float ->
  activity:float ->
  cycles_per_op:int ->
  estimate
(** [estimate p ~gates ~clock_ns ~activity ~cycles_per_op] computes the
    average power of a block of [gates] gate equivalents clocked with
    period [clock_ns], where [activity] is the average fraction of gates
    switching per cycle (typically 0.1-0.4), and the energy of one
    operation that takes [cycles_per_op] cycles.
    @raise Invalid_argument when [clock_ns <= 0.], [gates < 0.] or
    [activity] is outside [0, 1]. *)

val default_activity : adder_is_carry_save:bool -> float
(** Switching-activity heuristic: redundant carry-save accumulation
    keeps more nets toggling (0.30) than carry-propagate datapaths
    (0.18). *)
