type t = {
  name : string;
  abbrev : string option;
  doc : string;
  properties : Property.t list;
  specialization : specialization option;
}

and specialization = { issue : Property.t; children : (string * t) list }

let duplicate_name properties =
  let rec go seen = function
    | [] -> None
    | p :: rest ->
      if List.mem p.Property.name seen then Some p.Property.name
      else go (p.Property.name :: seen) rest
  in
  go [] properties

let check_own_properties name properties =
  match duplicate_name properties with
  | Some dup -> Error (Printf.sprintf "duplicate property %S in CDO %S" dup name)
  | None ->
    if List.exists Property.is_generalized properties then
      Error
        (Printf.sprintf
           "CDO %S lists a generalized issue among its plain properties; pass it as ~issue" name)
    else Ok ()

let leaf ~name ?abbrev ?(doc = "") properties =
  if String.equal name "" then Error "CDO name must not be empty"
  else begin
    match check_own_properties name properties with
    | Error _ as e -> e
    | Ok () -> Ok { name; abbrev; doc; properties; specialization = None }
  end

let node ~name ?abbrev ?(doc = "") properties ~issue ~children =
  if String.equal name "" then Error "CDO name must not be empty"
  else if not (Property.is_generalized issue) then
    Error (Printf.sprintf "issue %S of CDO %S is not a generalized design issue"
             issue.Property.name name)
  else begin
    match Domain.options issue.Property.domain with
    | None ->
      Error (Printf.sprintf "generalized issue %S must have an enumerated domain"
               issue.Property.name)
    | Some opts -> (
      let child_keys = List.map fst children in
      let sorted_opts = List.sort String.compare opts in
      let sorted_keys = List.sort String.compare child_keys in
      if sorted_opts <> sorted_keys then
        Error
          (Printf.sprintf "children of CDO %S do not match the options of %S ({%s} vs {%s})" name
             issue.Property.name
             (String.concat ", " child_keys)
             (String.concat ", " opts))
      else begin
        let child_names = List.map (fun (_, c) -> c.name) children in
        if List.length (List.sort_uniq String.compare child_names) <> List.length child_names
        then Error (Printf.sprintf "duplicate child CDO names under %S" name)
        else begin
          match check_own_properties name properties with
          | Error _ as e -> e
          | Ok () ->
            if List.exists (fun p -> String.equal p.Property.name issue.Property.name) properties
            then
              Error (Printf.sprintf "issue %S duplicates a property of CDO %S"
                       issue.Property.name name)
            else Ok { name; abbrev; doc; properties; specialization = Some { issue; children } }
        end
      end)
  end

let leaf_exn ~name ?abbrev ?doc properties =
  match leaf ~name ?abbrev ?doc properties with
  | Ok cdo -> cdo
  | Error msg -> invalid_arg ("Cdo.leaf_exn: " ^ msg)

let node_exn ~name ?abbrev ?doc properties ~issue ~children =
  match node ~name ?abbrev ?doc properties ~issue ~children with
  | Ok cdo -> cdo
  | Error msg -> invalid_arg ("Cdo.node_exn: " ^ msg)

let is_leaf cdo = cdo.specialization = None

let all_properties cdo =
  match cdo.specialization with
  | None -> cdo.properties
  | Some { issue; _ } -> cdo.properties @ [ issue ]

let property cdo name =
  List.find_opt (fun p -> String.equal p.Property.name name) (all_properties cdo)

let child_for_option cdo opt =
  match cdo.specialization with
  | None -> None
  | Some { children; _ } -> List.assoc_opt opt children

let generalized_issue cdo =
  match cdo.specialization with None -> None | Some { issue; _ } -> Some issue
