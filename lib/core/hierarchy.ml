type t = { root : Cdo.t; paths : (string list * Cdo.t) list (* preorder cache *) }

let collect_paths root =
  let rec go path cdo acc =
    let path = path @ [ cdo.Cdo.name ] in
    let acc = (path, cdo) :: acc in
    match cdo.Cdo.specialization with
    | None -> acc
    | Some spec ->
      List.fold_left (fun acc (_, child) -> go path child acc) acc spec.Cdo.children
  in
  List.rev (go [] root [])

let validate root paths =
  (* Unique abbreviations. *)
  let abbrevs = List.filter_map (fun (_, cdo) -> cdo.Cdo.abbrev) paths in
  let dup_abbrev =
    let sorted = List.sort String.compare abbrevs in
    let rec dup = function
      | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
      | [ _ ] | [] -> None
    in
    dup sorted
  in
  match dup_abbrev with
  | Some a -> Error (Printf.sprintf "abbreviation %S used by several CDOs" a)
  | None ->
    (* No property shadowing along any path. *)
    let rec check_path seen cdo =
      let names = List.map (fun p -> p.Property.name) (Cdo.all_properties cdo) in
      match List.find_opt (fun n -> List.mem n seen) names with
      | Some n ->
        Error (Printf.sprintf "property %S of CDO %S shadows an ancestor property" n cdo.Cdo.name)
      | None -> (
        let seen = names @ seen in
        match cdo.Cdo.specialization with
        | None -> Ok ()
        | Some spec ->
          List.fold_left
            (fun acc (_, child) -> match acc with Error _ -> acc | Ok () -> check_path seen child)
            (Ok ()) spec.Cdo.children)
    in
    check_path [] root

let create root =
  let paths = collect_paths root in
  match validate root paths with Error _ as e -> e | Ok () -> Ok { root; paths }

let create_exn root =
  match create root with
  | Ok t -> t
  | Error msg -> invalid_arg ("Hierarchy.create_exn: " ^ msg)

let root t = t.root

let find t path =
  if path = [] then None
  else List.find_opt (fun (p, _) -> p = path) t.paths |> Option.map snd

let find_by_abbrev t abbrev =
  List.find_opt (fun (_, cdo) -> cdo.Cdo.abbrev = Some abbrev) t.paths

let parent_path path =
  match path with
  | [] | [ _ ] -> None
  | _ -> Some (List.filteri (fun i _ -> i < List.length path - 1) path)

let node_paths t = List.map fst t.paths
let leaf_paths t = List.filter_map (fun (p, cdo) -> if Cdo.is_leaf cdo then Some p else None) t.paths

let ancestors_of t path =
  (* All prefixes of path, shortest first, with their CDOs. *)
  let rec prefixes acc cur = function
    | [] -> List.rev acc
    | seg :: rest ->
      let cur = cur @ [ seg ] in
      prefixes ((cur, find t cur) :: acc) cur rest
  in
  prefixes [] [] path

let visible_properties t path =
  match find t path with
  | None -> []
  | Some _ ->
    List.concat_map
      (fun (prefix, cdo) ->
        match cdo with
        | None -> []
        | Some cdo -> List.map (fun p -> (prefix, p)) (Cdo.all_properties cdo))
      (ancestors_of t path)

let find_property t path name =
  List.find_opt (fun (_, p) -> String.equal p.Property.name name) (visible_properties t path)

let depth t = List.fold_left (fun acc (p, _) -> Stdlib.max acc (List.length p)) 0 t.paths
let size t = List.length t.paths

let ref_matches t pref ~path ~property =
  Propref.matches pref ~path ~property
  || String.equal pref.Propref.property property
     &&
     (match pref.Propref.pattern with
     | [ Propref.Name n ] -> (
       match find t path with Some cdo -> cdo.Cdo.abbrev = Some n | None -> false)
     | [] | Propref.Star :: _ | Propref.Name _ :: _ -> false)

let nodes_matching t pref =
  List.filter
    (fun (path, cdo) ->
      Propref.matches_path pref path
      ||
      match pref.Propref.pattern with
      | [ Propref.Name n ] -> cdo.Cdo.abbrev = Some n
      | [] | Propref.Star :: _ | Propref.Name _ :: _ -> false)
    t.paths

let pp_tree fmt t =
  let rec go indent cdo =
    let pad = String.make (2 * indent) ' ' in
    Format.fprintf fmt "%s%s%s@." pad cdo.Cdo.name
      (match cdo.Cdo.abbrev with None -> "" | Some a -> " (" ^ a ^ ")");
    match cdo.Cdo.specialization with
    | None -> ()
    | Some spec ->
      Format.fprintf fmt "%s  <%s>@." pad spec.Cdo.issue.Property.name;
      List.iter (fun (opt, child) ->
          Format.fprintf fmt "%s  [%s]@." pad opt;
          go (indent + 2) child)
        spec.Cdo.children
  in
  go 0 t.root
