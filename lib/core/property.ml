type kind =
  | Requirement
  | Design_issue of { generalized : bool }
  | Behavioral_description
  | Behavioral_decomposition

let kind_name = function
  | Requirement -> "Requirement"
  | Design_issue { generalized = true } -> "Generalized Design Issue"
  | Design_issue { generalized = false } -> "Design Issue"
  | Behavioral_description -> "Behavioral Description"
  | Behavioral_decomposition -> "Behavioral Decomposition"

type t = {
  name : string;
  kind : kind;
  domain : Domain.t;
  unit_ : string option;
  default : Value.t option;
  doc : string;
}

let make ~name ~kind ~domain ?unit_ ?default ?(doc = "") () =
  if String.equal name "" then Error "property name must not be empty"
  else begin
    match default with
    | Some v when not (Domain.contains domain v) ->
      Error (Printf.sprintf "default %s outside domain %s of %s" (Value.to_string v)
               (Domain.describe domain) name)
    | Some _ | None -> Ok { name; kind; domain; unit_; default; doc }
  end

let make_exn ~name ~kind ~domain ?unit_ ?default ?doc () =
  match make ~name ~kind ~domain ?unit_ ?default ?doc () with
  | Ok p -> p
  | Error msg -> invalid_arg ("Property.make_exn: " ^ msg)

let requirement ~name ~domain ?unit_ ?default ?doc () =
  make_exn ~name ~kind:Requirement ~domain ?unit_ ?default ?doc ()

let design_issue ?(generalized = false) ~name ~domain ?default ?doc () =
  make_exn ~name ~kind:(Design_issue { generalized }) ~domain ?default ?doc ()

let is_generalized p = match p.kind with Design_issue { generalized } -> generalized | _ -> false

let is_design_issue p =
  match p.kind with
  | Design_issue _ | Behavioral_decomposition -> true
  | Requirement | Behavioral_description -> false

let is_requirement p = p.kind = Requirement
let accepts p v = Domain.contains p.domain v

let pp fmt p =
  Format.fprintf fmt "%s%s  Type: %s  SetOfValues=%s%s%s" p.name
    (match p.unit_ with None -> "" | Some u -> Printf.sprintf " [%s]" u)
    (kind_name p.kind) (Domain.describe p.domain)
    (match p.default with None -> "" | Some d -> "  Default: " ^ Value.to_string d)
    (if String.equal p.doc "" then "" else "  -- " ^ p.doc)
