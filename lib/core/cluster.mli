(** Evaluation-space clustering.

    Section 2.2's argument: the generalization hierarchy should be
    organised so that the first design issues presented to the designer
    separate the clusters that are far apart in the evaluation space
    (the IDCT clusters [{1,2,5}] and [{3,4}] of Fig 3).  This module
    provides the clustering that lets a layer author {e derive} such an
    organisation from characterised designs: single-linkage
    agglomerative clustering over normalised merit points, plus a
    helper that proposes the most natural two-way split. *)

val agglomerative : k:int -> Evaluation.point list -> Evaluation.point list list
(** Single-linkage agglomerative clustering down to [k] clusters over
    the normalised point cloud.  Fewer than [k] points yield singleton
    clusters.  Clusters are returned largest first; points keep their
    original (un-normalised) coordinates.
    @raise Invalid_argument when [k < 1]. *)

val suggest_split : Evaluation.point list -> (Evaluation.point list * Evaluation.point list) option
(** The 2-cluster partition, or [None] when there are fewer than two
    points. *)

val separation : Evaluation.point list -> Evaluation.point list -> float
(** Single-linkage distance between two clusters: the minimum Euclidean
    distance over cross-cluster point pairs, on the coordinates as
    given.  [infinity] when either cluster is empty. *)

val silhouette_gap : Evaluation.point list -> float
(** How strongly the cloud splits in two: the ratio between the final
    merge distance and the previous one (>= 1); large values mean a
    clear two-cluster structure, values near 1 mean none.  0 when fewer
    than 3 points. *)
