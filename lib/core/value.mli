(** Property values.

    A design issue binds to one of its options (usually a string such as
    ["hardware"] or ["Montgomery"]); a requirement binds to the value the
    specification dictates (an integer operand length, a real latency
    bound, a flag).  One small sum type covers all of them. *)

type t = Str of string | Int of int | Real of float | Flag of bool

val str : string -> t
val int : int -> t
val real : float -> t
val flag : bool -> t

val equal : t -> t -> bool
(** Structural equality; [Int] and [Real] never compare equal (domains
    fix the numeric kind). *)

val to_string : t -> string
(** Human/serialisation form: ["hardware"], ["768"], ["8."], ["true"]. *)

val as_str : t -> string option
val as_int : t -> int option
val as_real : t -> float option
(** [as_real] also accepts [Int] values (widening). *)

val as_flag : t -> bool option
val pp : Format.formatter -> t -> unit
