type t =
  | Enum of string list
  | Int_pred of { description : string; member : int -> bool }
  | Int_range of { lo : int option; hi : int option }
  | Real_range of { lo : float option; hi : float option }
  | Flag_dom

let enum opts =
  if opts = [] then invalid_arg "Domain.enum: empty option list";
  let sorted = List.sort_uniq String.compare opts in
  if List.length sorted <> List.length opts then invalid_arg "Domain.enum: duplicate options";
  Enum opts

let powers_of_two =
  Int_pred
    {
      description = "{2^i | i in Z+}";
      member = (fun v -> v >= 1 && v land (v - 1) = 0);
    }

let divisors_of name ctx =
  Int_pred
    {
      description = Printf.sprintf "{i in Z+ | %s mod i = 0}" name;
      member = (fun v -> v >= 1 && ctx () mod v = 0);
    }

let non_negative_real = Real_range { lo = Some 0.0; hi = None }

let contains dom v =
  match (dom, v) with
  | Enum opts, Value.Str s -> List.exists (String.equal s) opts
  | Int_pred { member; _ }, Value.Int i -> member i
  | Int_range { lo; hi }, Value.Int i ->
    (match lo with None -> true | Some l -> i >= l)
    && (match hi with None -> true | Some h -> i <= h)
  | Real_range { lo; hi }, (Value.Real _ | Value.Int _) ->
    let r = Option.get (Value.as_real v) in
    (match lo with None -> true | Some l -> r >= l)
    && (match hi with None -> true | Some h -> r <= h)
  | Flag_dom, Value.Flag _ -> true
  | (Enum _ | Int_pred _ | Int_range _ | Real_range _ | Flag_dom), _ -> false

let describe = function
  | Enum opts -> "{" ^ String.concat ", " opts ^ "}"
  | Int_pred { description; _ } -> description
  | Int_range { lo; hi } ->
    Printf.sprintf "[%s .. %s]"
      (match lo with None -> "-inf" | Some l -> string_of_int l)
      (match hi with None -> "+inf" | Some h -> string_of_int h)
  | Real_range { lo = Some 0.0; hi = None } -> "R+"
  | Real_range { lo; hi } ->
    Printf.sprintf "[%s .. %s]"
      (match lo with None -> "-inf" | Some l -> Printf.sprintf "%g" l)
      (match hi with None -> "+inf" | Some h -> Printf.sprintf "%g" h)
  | Flag_dom -> "{true, false}"

let options = function
  | Enum opts -> Some opts
  | Int_pred _ | Int_range _ | Real_range _ | Flag_dom -> None
