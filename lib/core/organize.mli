(** Deriving layer organisations from a characterised core population.

    The paper closes with two open points: the generalization hierarchy
    should be built so that the issues with the greatest impact on the
    figures of merit come first (Section 2.2), and different trade-off
    interests may warrant {e co-existing specialization hierarchies}
    (Section 6, "work in progress").  This module mechanises both:

    - {!impact} scores how strongly a design issue's options separate
      the cores in a chosen two-merit evaluation space (a Fisher-style
      between/within variance ratio on the normalised point cloud);
    - {!rank_issues} orders candidate issues by that score — the
      recommended generalization order for those merits;
    - {!derive_hierarchy} builds a complete {!Hierarchy.t} from the
      ranked issues, so a layer author can generate one hierarchy per
      trade-off of interest (performance-first, area-first, ...) over
      the same population;
    - {!guidance_quality} measures an organisation the way Section 2.1
      argues: the expected merit spread a designer faces after the first
      decision (smaller is better guidance). *)

type issue_impact = {
  issue : string;
  option_counts : (string * int) list;
      (** cores declaring each option, descending *)
  separation : float;
      (** between-group variance / within-group variance of the
          normalised (x, y) merit points; higher = stronger
          discriminator; 0 when the issue does not split the
          population *)
}

val impact :
  (string * Ds_reuse.Core.t) list -> issue:string -> x:string -> y:string -> issue_impact
(** Cores that do not declare the issue or lack either merit are
    ignored. *)

val rank_issues :
  (string * Ds_reuse.Core.t) list ->
  issues:string list ->
  x:string ->
  y:string ->
  issue_impact list
(** Strongest discriminator first. *)

val derive_hierarchy :
  name:string ->
  ?max_depth:int ->
  ?min_leaf_cores:int ->
  (string * Ds_reuse.Core.t) list ->
  issues:string list ->
  x:string ->
  y:string ->
  (Hierarchy.t, string) result
(** Build a generalization hierarchy: at each node, the remaining issue
    with the highest impact {e on that node's cores} becomes the
    generalized issue (options = the values present there); recursion
    stops at [max_depth] (default 4), when fewer than [min_leaf_cores]
    cores remain (default 2), or when no issue splits the branch.
    Errors when the population is empty or nothing discriminates. *)

val guidance_quality :
  Hierarchy.t -> (string * Ds_reuse.Core.t) list -> merit:string -> float
(** Expected relative spread ((max-min)/min) of [merit] over the family
    selected by the root's generalized issue, weighted by family size;
    [nan] when the root has no generalized issue or no data.  Smaller
    values mean the first decision is more informative (Section 2.1's
    criterion). *)
