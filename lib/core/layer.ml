type t = {
  name : string;
  hierarchy : Hierarchy.t;
  constraints : Consistency.t list;
  registry : Ds_reuse.Registry.t;
}

let make ~name ~hierarchy ?(constraints = []) ~registry () =
  if String.equal name "" then Error "layer name must not be empty"
  else begin
    let findings = Lint.check ~constraints hierarchy in
    match List.find_opt (fun f -> f.Lint.severity = Lint.Error) findings with
    | Some f -> Error (Format.asprintf "%a" Lint.pp_finding f)
    | None -> Ok { name; hierarchy; constraints; registry }
  end

let make_exn ~name ~hierarchy ?constraints ~registry () =
  match make ~name ~hierarchy ?constraints ~registry () with
  | Ok layer -> layer
  | Error msg -> invalid_arg ("Layer.make_exn: " ^ msg)

let explore layer =
  Session.create ~hierarchy:layer.hierarchy ~constraints:layer.constraints
    ~cores:(Ds_reuse.Registry.all_cores layer.registry)
    ()

let warnings layer = Lint.check ~constraints:layer.constraints layer.hierarchy

let document layer =
  Document.render ~title:layer.name ~constraints:layer.constraints layer.hierarchy

let core_count layer = Ds_reuse.Registry.size layer.registry

let pp_summary fmt layer =
  Format.fprintf fmt "%s: %d CDOs (depth %d), %d constraints, %d cores in %d libraries"
    layer.name (Hierarchy.size layer.hierarchy) (Hierarchy.depth layer.hierarchy)
    (List.length layer.constraints) (core_count layer)
    (List.length (Ds_reuse.Registry.libraries layer.registry))
