module Core = Ds_reuse.Core

type entry = { qid : string; core : Core.t; path : string list }

type t = { entries : entry list; orphans : (string * Core.t) list }

(* Descend from the root as far as the core's property values allow:
   at each generalized issue, follow the child for the core's declared
   option; stop when the issue is undeclared or the option unknown. *)
let classify hierarchy core =
  let rec go path cdo =
    match cdo.Cdo.specialization with
    | None -> Some (path @ [ cdo.Cdo.name ])
    | Some spec -> (
      let issue_name = spec.Cdo.issue.Property.name in
      match Core.property core issue_name with
      | None -> Some (path @ [ cdo.Cdo.name ])
      | Some option_value -> (
        match Cdo.child_for_option cdo option_value with
        | Some child -> go (path @ [ cdo.Cdo.name ]) child
        | None ->
          (* Declared an option the hierarchy does not model: the core
             falls outside the design space at the root, inside it
             otherwise. *)
          if path = [] then None else Some (path @ [ cdo.Cdo.name ])))
  in
  go [] (Hierarchy.root hierarchy)

let build hierarchy cores =
  let entries, orphans =
    List.fold_left
      (fun (entries, orphans) (qid, core) ->
        match classify hierarchy core with
        | Some path -> ({ qid; core; path } :: entries, orphans)
        | None -> (entries, (qid, core) :: orphans))
      ([], []) cores
  in
  { entries = List.rev entries; orphans = List.rev orphans }

let path_of t ~qualified_id =
  List.find_opt (fun e -> String.equal e.qid qualified_id) t.entries
  |> Option.map (fun e -> e.path)

let is_prefix prefix path =
  let rec go = function
    | [], _ -> true
    | _ :: _, [] -> false
    | p :: ps, q :: qs -> String.equal p q && go (ps, qs)
  in
  go (prefix, path)

let under t path =
  List.filter_map
    (fun e -> if is_prefix path e.path then Some (e.qid, e.core) else None)
    t.entries

let at t path =
  List.filter_map (fun e -> if e.path = path then Some (e.qid, e.core) else None) t.entries

let count_under t path = List.length (under t path)
let all t = List.map (fun e -> (e.qid, e.core)) t.entries
let unindexed t = t.orphans
