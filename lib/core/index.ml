module Core = Ds_reuse.Core

(* The index is a trie over hierarchy node paths.  Classification is
   unchanged (each core descends the generalized-issue chain as far as
   its property values allow); what changed is the query side: [under],
   [at] and [count_under] used to scan the full entry list with a
   path-prefix test per entry, which made every candidate query O(n) in
   the library size.  The trie resolves a node in O(depth) and each
   frozen node carries its subtree's entries (precomputed once at
   build), so [under] is O(depth + matches) and [count_under] is
   O(depth). *)

type entry = { qid : string; core : Core.t; seq : int }

type node = {
  here : (string * Core.t) list;  (* indexed exactly at this node, insertion order *)
  children : (string, node) Hashtbl.t;
  subtree : (string * Core.t) list;  (* at or below, insertion order *)
  subtree_ids : int array;  (* dense ids of [subtree], ascending *)
  count : int;  (* List.length subtree *)
}

type t = {
  root : node option;  (* None for an empty population *)
  root_name : string;
  orphans : (string * Core.t) list;
  all : (string * Core.t) list;  (* every indexed entry, insertion order *)
  paths : (string, string list) Hashtbl.t;  (* qualified id -> node path *)
  all_ids : int array;  (* [|0; ...; n-1|]; the identity pool *)
  store : Columnar.t;  (* flat per-property/per-merit columns, by dense id *)
}

(* Descend from the root as far as the core's property values allow:
   at each generalized issue, follow the child for the core's declared
   option; stop when the issue is undeclared or the option unknown. *)
let classify hierarchy core =
  let rec go path cdo =
    match cdo.Cdo.specialization with
    | None -> Some (path @ [ cdo.Cdo.name ])
    | Some spec -> (
      let issue_name = spec.Cdo.issue.Property.name in
      match Core.property core issue_name with
      | None -> Some (path @ [ cdo.Cdo.name ])
      | Some option_value -> (
        match Cdo.child_for_option cdo option_value with
        | Some child -> go (path @ [ cdo.Cdo.name ]) child
        | None ->
          (* Declared an option the hierarchy does not model: the core
             falls outside the design space at the root, inside it
             otherwise. *)
          if path = [] then None else Some (path @ [ cdo.Cdo.name ])))
  in
  go [] (Hierarchy.root hierarchy)

(* Build-time trie: mutable, frozen into [node] once every core is
   placed. *)
type builder = {
  mutable here_rev : entry list;
  kids : (string, builder) Hashtbl.t;
}

let fresh_builder () = { here_rev = []; kids = Hashtbl.create 4 }

let rec insert builder entry = function
  | [] -> builder.here_rev <- entry :: builder.here_rev
  | seg :: rest ->
    let child =
      match Hashtbl.find_opt builder.kids seg with
      | Some child -> child
      | None ->
        let child = fresh_builder () in
        Hashtbl.add builder.kids seg child;
        child
    in
    insert child entry rest

(* Returns the frozen node plus its subtree's entries (unsorted); the
   per-node [subtree] list is re-sorted by insertion number so query
   results keep the registry order the old linear scan produced. *)
let rec freeze builder =
  let children = Hashtbl.create (Hashtbl.length builder.kids) in
  let below =
    Hashtbl.fold
      (fun seg child acc ->
        let child_node, child_entries = freeze child in
        Hashtbl.add children seg child_node;
        List.rev_append child_entries acc)
      builder.kids []
  in
  let entries = List.rev_append builder.here_rev below in
  let in_order = List.sort (fun a b -> compare a.seq b.seq) entries in
  let strip es = List.map (fun e -> (e.qid, e.core)) es in
  let node =
    {
      here = strip (List.rev builder.here_rev);
      children;
      subtree = strip in_order;
      subtree_ids = Array.of_list (List.map (fun e -> e.seq) in_order);
      count = List.length in_order;
    }
  in
  (node, entries)

let build hierarchy cores =
  let root_name = (Hierarchy.root hierarchy).Cdo.name in
  let builder = fresh_builder () in
  let paths = Hashtbl.create (List.length cores) in
  let seq = ref 0 in
  let entries_rev, orphans_rev =
    List.fold_left
      (fun (entries, orphans) (qid, core) ->
        match classify hierarchy core with
        | Some path ->
          let entry = { qid; core; seq = !seq } in
          incr seq;
          (* path always starts at the root node; store the suffix below
             the root in the trie *)
          (match path with
          | r :: rest when String.equal r root_name -> insert builder entry rest
          | other -> insert builder entry other);
          if not (Hashtbl.mem paths qid) then Hashtbl.add paths qid path;
          ((qid, core) :: entries, orphans)
        | None -> (entries, (qid, core) :: orphans))
      ([], []) cores
  in
  let root, _ = freeze builder in
  let all = List.rev entries_rev in
  (* The columnar projection is built eagerly with the trie: layers are
     built once and shared across session lineages ([Session.pristine],
     the service's parsed-layer cache), so the column pass amortizes
     like the index itself.  Dense ids are the insertion-order [seq]
     numbers, so [all], every [subtree] and every bitset materialize in
     the same order. *)
  let qids = Array.of_list (List.map fst all) in
  let cores_arr = Array.of_list (List.map snd all) in
  let n = !seq in
  assert (Array.length qids = n);
  {
    root = Some root;
    root_name;
    orphans = List.rev orphans_rev;
    all;
    paths;
    all_ids = Array.init n Fun.id;
    store = Columnar.build ~qids ~cores:cores_arr;
  }

let path_of t ~qualified_id = Hashtbl.find_opt t.paths qualified_id

let resolve t path =
  match (t.root, path) with
  | None, _ -> None
  | Some root, [] -> Some root
  | Some root, first :: rest ->
    if not (String.equal first t.root_name) then None
    else begin
      let rec walk node = function
        | [] -> Some node
        | seg :: rest -> (
          match Hashtbl.find_opt node.children seg with
          | Some child -> walk child rest
          | None -> None)
      in
      walk root rest
    end

let under t path =
  (* [] matched every entry under the old prefix test; keep that. *)
  if path = [] then t.all
  else match resolve t path with Some node -> node.subtree | None -> []

let at t path = match resolve t path with Some node when path <> [] -> node.here | _ -> []

let count_under t path =
  if path = [] then List.length t.all
  else match resolve t path with Some node -> node.count | None -> 0

let all t = t.all
let unindexed t = t.orphans

(* {2 Columnar access} — the dense-id view of the same entries. *)

let size t = Array.length t.all_ids
let columnar t = t.store
let entry_at t i = (Columnar.qid t.store i, Columnar.core t.store i)

let under_ids t path =
  if path = [] then t.all_ids
  else match resolve t path with Some node -> node.subtree_ids | None -> [||]
