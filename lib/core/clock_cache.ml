(* Second-chance (clock) eviction over a fixed slot ring + key table.
   Replaces the whole-table [Hashtbl.reset] pressure valves the
   compliance caches used: at capacity, one cold entry is evicted per
   insert instead of dropping every live entry at once, and each
   eviction is observable (callback + counter).

   A hit sets the entry's reference bit; the clock hand sweeps the
   ring, clearing reference bits until it finds one already clear —
   recently-used entries get a second chance, cold ones leave.  The
   scan is bounded by one full revolution (every bit cleared) plus one
   step, so [store] is O(capacity) worst case and O(1) amortized.

   Not internally synchronized: {!Compliance} calls it under its table
   lock. *)

type 'a entry = { key : string; mutable value : 'a; mutable referenced : bool }

type 'a t = {
  capacity : int;
  table : (string, 'a entry * int) Hashtbl.t; (* key -> entry, slot index *)
  slots : 'a entry option array;
  mutable hand : int;
  mutable evictions : int;
  on_evict : unit -> unit;
}

let create ?(on_evict = fun () -> ()) ~capacity () =
  if capacity < 1 then invalid_arg "Clock_cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create capacity;
    slots = Array.make capacity None;
    hand = 0;
    evictions = 0;
    on_evict;
  }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some (e, _) ->
    e.referenced <- true;
    Some e.value
  | None -> None

let mem t key = Hashtbl.mem t.table key

(* The next free-or-victim slot.  At most one full revolution clears
   every reference bit, so the scan terminates within 2 * capacity
   steps. *)
let claim_slot t =
  let rec go steps =
    let i = t.hand in
    t.hand <- (t.hand + 1) mod t.capacity;
    match t.slots.(i) with
    | None -> i
    | Some e ->
      if e.referenced && steps < 2 * t.capacity then begin
        e.referenced <- false;
        go (steps + 1)
      end
      else begin
        Hashtbl.remove t.table e.key;
        t.evictions <- t.evictions + 1;
        t.on_evict ();
        i
      end
  in
  go 0

let store t key value =
  match Hashtbl.find_opt t.table key with
  | Some (e, _) ->
    e.value <- value;
    e.referenced <- true
  | None ->
    let i = claim_slot t in
    let e = { key; value; referenced = true } in
    t.slots.(i) <- Some e;
    Hashtbl.replace t.table key (e, i)

let length t = Hashtbl.length t.table
let evictions t = t.evictions
let capacity t = t.capacity
