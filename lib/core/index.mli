(** Indexing of reusable cores under the CDO hierarchy.

    Cores residing in reuse libraries are "points" of the design space;
    the hierarchy is "a basic schema for classifying and indexing
    families of cores" (Section 4).  A core is indexed under the deepest
    CDO whose chain of generalized-issue options matches the core's
    property bindings: a hardware Montgomery multiplier lands on the
    OMM-HM leaf, a software routine on the Software subtree, and a core
    that does not declare some issue stays at the last node it
    matched. *)

type t

val build : Hierarchy.t -> (string * Ds_reuse.Core.t) list -> t
(** [build hierarchy cores] indexes qualified-id/core pairs (typically
    {!Ds_reuse.Registry.all_cores}). *)

val path_of : t -> qualified_id:string -> string list option
(** The node a core is indexed under. *)

val under : t -> string list -> (string * Ds_reuse.Core.t) list
(** All cores indexed at or below the given node path, in insertion
    order. *)

val at : t -> string list -> (string * Ds_reuse.Core.t) list
(** Cores indexed exactly at the node. *)

val count_under : t -> string list -> int
val all : t -> (string * Ds_reuse.Core.t) list

val unindexed : t -> (string * Ds_reuse.Core.t) list
(** Cores whose root-level generalized option did not match any child —
    they fall outside the modelled design space (e.g. a DSP core in a
    multiplier layer).  Not returned by {!under}. *)
