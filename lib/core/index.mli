(** Indexing of reusable cores under the CDO hierarchy.

    Cores residing in reuse libraries are "points" of the design space;
    the hierarchy is "a basic schema for classifying and indexing
    families of cores" (Section 4).  A core is indexed under the deepest
    CDO whose chain of generalized-issue options matches the core's
    property bindings: a hardware Montgomery multiplier lands on the
    OMM-HM leaf, a software routine on the Software subtree, and a core
    that does not declare some issue stays at the last node it
    matched. *)

type t

val build : Hierarchy.t -> (string * Ds_reuse.Core.t) list -> t
(** [build hierarchy cores] indexes qualified-id/core pairs (typically
    {!Ds_reuse.Registry.all_cores}). *)

val path_of : t -> qualified_id:string -> string list option
(** The node a core is indexed under. *)

val under : t -> string list -> (string * Ds_reuse.Core.t) list
(** All cores indexed at or below the given node path, in insertion
    order. *)

val at : t -> string list -> (string * Ds_reuse.Core.t) list
(** Cores indexed exactly at the node. *)

val count_under : t -> string list -> int
val all : t -> (string * Ds_reuse.Core.t) list

val unindexed : t -> (string * Ds_reuse.Core.t) list
(** Cores whose root-level generalized option did not match any child —
    they fall outside the modelled design space (e.g. a DSP core in a
    multiplier layer).  Not returned by {!under}. *)

(** {2 Dense-id (columnar) view}

    Every indexed entry carries a dense id in [0, size) — its insertion
    order — which is the index into the {!Columnar} store and the id
    space of the columnar sweep's verdict slots and survivor bitsets.
    [under] and the id arrays present the same entries in the same
    (ascending-id) order, so a bitset materialized in ascending-id
    order reproduces [under]'s list order exactly. *)

val size : t -> int
(** Number of indexed entries (orphans excluded). *)

val under_ids : t -> string list -> int array
(** The dense ids of [under t path], ascending.  For the empty path and
    for the root node this is the full [0, size) range. *)

val entry_at : t -> int -> string * Ds_reuse.Core.t
(** The (qualified id, core) entry of a dense id. *)

val columnar : t -> Columnar.t
(** The flat per-property/per-merit columns over the indexed entries,
    built once with the trie and shared by every session lineage. *)
