type segment = Name of string | Star

type t = { property : string; pattern : segment list }

let make ~property ~pattern =
  if String.equal property "" then Error "empty property name"
  else if pattern = [] then Error "empty node pattern"
  else if
    List.exists (function Name "" -> true | Name _ | Star -> false) pattern
  then Error "empty pattern segment"
  else Ok { property; pattern }

let parse s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "missing '@' in property reference %S" s)
  | Some i ->
    let property = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let pattern =
      List.map (fun seg -> if String.equal seg "*" then Star else Name seg)
        (String.split_on_char '.' rest)
    in
    make ~property ~pattern

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Propref.parse_exn: " ^ msg)

let to_string t =
  t.property ^ "@"
  ^ String.concat "." (List.map (function Name n -> n | Star -> "*") t.pattern)

(* Glob matching with Star matching any (possibly empty) sequence. *)
let rec match_segments pattern path =
  match (pattern, path) with
  | [], [] -> true
  | [], _ :: _ -> false
  | Star :: rest, _ ->
    (* Star absorbs zero or more leading path segments. *)
    match_segments rest path
    || (match path with [] -> false | _ :: tail -> match_segments pattern tail)
  | Name n :: rest, p :: tail -> String.equal n p && match_segments rest tail
  | Name _ :: _, [] -> false

let matches_path t path = match_segments t.pattern path
let matches t ~path ~property = String.equal t.property property && matches_path t path
let pp fmt t = Format.pp_print_string fmt (to_string t)
