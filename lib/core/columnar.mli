(** Columnar projection of an indexed core population — the data layout
    behind the tight-loop Eliminate sweep.

    One flat array per merit and per property, indexed by the dense
    core ids {!Index} assigns (entry insertion order).  Built once per
    layer by [Index.build] and shared immutably by every session
    lineage; vectorized elimination kernels
    ({!Consistency.eliminate_kernel}) read merit columns directly
    instead of probing each core's interned-key lookup per call. *)

type t

val build : qids:string array -> cores:Ds_reuse.Core.t array -> t
(** Arrays must be parallel (same length, same order). *)

val length : t -> int

val qid : t -> int -> string
(** Qualified id of the core at a dense id. *)

val core : t -> int -> Ds_reuse.Core.t
(** The row view of a dense id (what per-core closures receive). *)

val merit_column : t -> string -> (float array * Bitset.t) option
(** [(values, present)] for a merit name; absent bits mean the core
    does not carry the merit (its [values] slot is meaningless).  NaN
    values are stored as-is — presence is a separate bit precisely so
    NaN merits keep their "skipped, not missing" semantics.  [None]
    when no indexed core carries the merit. *)

val property_matches : t -> key:string -> value:string -> (int -> bool) option
(** A per-id predicate equivalent to
    [Core.matches_property (core t i) ~key ~value] — one integer
    compare per core.  [None] when no indexed core declares [key]
    (every core matches; callers skip the filter). *)
