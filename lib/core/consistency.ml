type env = {
  value : Propref.t -> Value.t option;
  value_of : string -> Value.t option;
  focus : string list;
}

type eliminate_kernel = env -> Columnar.t -> (int -> bool) option

type relation =
  | Inconsistent of { violated : env -> bool }
  | Derive of { compute : env -> (string * Value.t) list }
  | Estimator_context of { tool : string; estimate : env -> (string * float) list }
  | Eliminate of {
      inferior : env -> Ds_reuse.Core.t -> bool;
      vectorized : eliminate_kernel option;
    }

let eliminate ?vectorized inferior = Eliminate { inferior; vectorized }

type t = {
  name : string;
  doc : string;
  indep : Propref.t list;
  dep : Propref.t list;
  relation : relation;
}

let make ~name ?(doc = "") ~indep ~dep relation =
  if String.equal name "" then Error "constraint name must not be empty"
  else if indep = [] then Error "constraint needs a non-empty independent set"
  else Ok { name; doc; indep; dep; relation }

let make_exn ~name ?doc ~indep ~dep relation =
  match make ~name ?doc ~indep ~dep relation with
  | Ok cc -> cc
  | Error msg -> invalid_arg ("Consistency.make_exn: " ^ msg)

let ready cc ~bound = List.for_all bound cc.indep

let dep_properties cc =
  List.sort_uniq String.compare (List.map (fun r -> r.Propref.property) cc.dep)

let empty_env = { value = (fun _ -> None); value_of = (fun _ -> None); focus = [] }

let governs cc ~property =
  List.exists (fun r -> String.equal r.Propref.property property) cc.dep

let relation_kind cc =
  match cc.relation with
  | Inconsistent _ -> "inconsistent-options"
  | Derive _ -> "derive"
  | Estimator_context _ -> "estimator"
  | Eliminate _ -> "eliminate"

type violation = { constraint_ : t; message : string }

let check cc env =
  match cc.relation with
  | Inconsistent { violated } ->
    if violated env then
      Some
        {
          constraint_ = cc;
          message = Printf.sprintf "%s: %s" cc.name (if cc.doc = "" then "inconsistent options" else cc.doc);
        }
    else None
  | Derive _ | Estimator_context _ | Eliminate _ -> None

let pp fmt cc =
  if not (String.equal cc.doc "") then Format.fprintf fmt "//%s@." cc.doc;
  Format.fprintf fmt "%s  Indep_Set={%s}@." cc.name
    (String.concat ", " (List.map Propref.to_string cc.indep));
  Format.fprintf fmt "     Dep_Set={%s}@."
    (String.concat ", " (List.map Propref.to_string cc.dep));
  Format.fprintf fmt "     Relation: %s@." (relation_kind cc)
