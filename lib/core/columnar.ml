module Core = Ds_reuse.Core

(* The columnar view of an indexed core population: one flat array per
   merit and per property, indexed by the dense ids {!Index} assigns at
   build time (entry insertion order).  The row-oriented [Core.t]
   values stay authoritative — columns are a projection built once per
   layer and shared by every session lineage over it (the service's
   parsed-layer cache hands them out via [Session.pristine] for free).

   Merit columns are [float array] + a presence bitset: a merit value
   may legitimately be NaN, so absence cannot be encoded in the float
   itself.  Property columns intern each distinct value string into a
   small per-column lexicon and store one code per core (0 = the core
   does not declare the property), which turns the compliance filter
   into an integer compare per core. *)

type merit_column = { values : float array; present : Bitset.t }

type prop_column = {
  codes : int array; (* 0 = property absent, k+1 = lexicon entry k *)
  lexicon : (string, int) Hashtbl.t; (* value string -> code *)
}

type t = {
  qids : string array;
  cores : Core.t array;
  merits : (string, merit_column) Hashtbl.t;
  props : (string, prop_column) Hashtbl.t;
}

let length t = Array.length t.qids
let qid t i = t.qids.(i)
let core t i = t.cores.(i)

let merit_column t name =
  match Hashtbl.find_opt t.merits name with
  | Some c -> Some (c.values, c.present)
  | None -> None

(* The compliance predicate of one (design issue, chosen value) pair,
   matching [Core.matches_property] exactly: a core that does not
   declare the property is not discriminated by it.  [None] when no
   indexed core declares the property at all — every core matches. *)
let property_matches t ~key ~value =
  match Hashtbl.find_opt t.props key with
  | None -> None
  | Some col ->
    let code = match Hashtbl.find_opt col.lexicon value with Some c -> c | None -> -1 in
    let codes = col.codes in
    Some (fun i ->
        let c = Array.unsafe_get codes i in
        c = 0 || c = code)

let build ~qids ~cores =
  let n = Array.length cores in
  if Array.length qids <> n then invalid_arg "Columnar.build: array length mismatch";
  let merits = Hashtbl.create 16 in
  let props = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let c = cores.(i) in
    List.iter
      (fun (name, v) ->
        let col =
          match Hashtbl.find_opt merits name with
          | Some col -> col
          | None ->
            let col = { values = Array.make n 0.0; present = Bitset.create n } in
            Hashtbl.add merits name col;
            col
        in
        col.values.(i) <- v;
        Bitset.set col.present i)
      c.Core.merits;
    List.iter
      (fun (name, v) ->
        let col =
          match Hashtbl.find_opt props name with
          | Some col -> col
          | None ->
            let col = { codes = Array.make n 0; lexicon = Hashtbl.create 8 } in
            Hashtbl.add props name col;
            col
        in
        let code =
          match Hashtbl.find_opt col.lexicon v with
          | Some code -> code
          | None ->
            let code = Hashtbl.length col.lexicon + 1 in
            Hashtbl.add col.lexicon v code;
            code
        in
        col.codes.(i) <- code)
      c.Core.properties
  done;
  { qids; cores; merits; props }
