(** Property references — the paper's [property@node-pattern] addressing
    used throughout the consistency constraints (Fig 13):

    {v
    EOL@Operator
    Radix@*.Hardware.Montgomery
    A=Algorithm@*.Modular.Multiplier.Hardware
    BD=BehavioralDescription@OMM-HM
    v}

    A reference names a property and a pattern over hierarchy node
    paths.  The ["*"] segment is a wildcard matching {e any} (possibly
    empty) sequence of ancestors, so [*.Hardware.Montgomery] addresses
    every node whose path ends in [Hardware.Montgomery]. *)

type segment = Name of string | Star

type t = private { property : string; pattern : segment list }

val make : property:string -> pattern:segment list -> (t, string) result
(** Rejects an empty property name and an empty pattern. *)

val parse : string -> (t, string) result
(** ["Radix@*.Hardware.Montgomery"] -> reference.  A reference without
    ["@"] is an error; segments are split on ["."]. *)

val parse_exn : string -> t
val to_string : t -> string

val matches_path : t -> string list -> bool
(** Does the node-path (root first, e.g.
    [["Operator"; "Modular"; "Multiplier"; "Hardware"]]) match the
    pattern? *)

val matches : t -> path:string list -> property:string -> bool
(** Path match and property-name match together. *)

val pp : Format.formatter -> t -> unit
