(** Memoized per-core constraint verdicts — the incremental-pruning
    cache behind {!Session.candidates}.

    The paper's re-assessment rule ("when the independent set is
    modified, the dependent set needs to be re-assessed") already names
    exactly which constraints a binding change can affect: those whose
    declared independent/dependent sets mention the changed property.
    This table exploits that: every elimination verdict ([Eliminate]
    closure applied to one core) is memoized under a {e generation}
    number, and a binding change allocates a fresh generation only for
    the constraints it re-opens, so verdicts of untouched constraints
    survive across decisions, retractions and exploration branches.

    Verdicts are stored {e columnar}: two bits per core (unknown /
    inferior / kept), sixteen cores per word of a flat [int array]
    indexed by dense core id.  A warm columnar sweep therefore reads
    one word per (constraint, 32 cores) via {!Slot.peek_word} and
    combines it with the survivor bitset branchlessly; the classic
    per-core path reads single verdicts through {!Slot.peek}.  Survivor
    sets are cached either as explicit lists (classic sweeps) or as
    {!Bitset} words over the index's dense-id universe (columnar
    sweeps) — see {!type:survivor_set}.

    Correctness contract: a constraint closure must only read properties
    it declares in its independent or dependent set.  (This is the same
    contract {!Consistency} documents for the partial order; a closure
    that reads undeclared properties can observe a binding change that
    never bumps its generation.)  The equivalence test suite checks the
    cached path against the naive recompute for all shipped case
    studies.

    Generations are drawn from one shared counter, never reused: two
    exploration branches that each rebind the same property get distinct
    generations, so their verdicts cannot collide in the table.

    Interaction with {!Guard} quarantine is conservative by
    construction: the session skips quarantined constraints {e before}
    consulting the table (their cached verdicts become unreachable), and
    the survivor-set key includes the quarantine state, so a set
    computed before a quarantine transition is never served after it.
    Faulted evaluations are never cached — a faulting closure re-runs
    (and re-strikes) on every query, exactly as on the naive path.

    One table serves a whole session lineage (created by
    [Session.create], shared by every derived session), like the guard
    registry.  Memory is bounded: each constraint keeps verdicts for a
    single (generation, focus) stamp — a store under a newer stamp
    drops the older verdicts — and the memo tables (survivors,
    summaries, signatures, generations) are second-chance clock caches
    that evict one cold entry per insert past capacity (counted by the
    [dse_engine_*_evictions_total] telemetry) instead of resetting
    wholesale.  Eviction is always safe: each entry is a memo whose key
    determines its value, so a lost entry costs a recompute, never a
    wrong answer.

    {2 Concurrency}

    The table is internally synchronized: since the exploration service
    stopped serializing requests globally, concurrent requests (on
    separate domains) can query the same lineage at once.  The sweep
    protocol is snapshot-and-merge: {!core_ids} interns the whole pool
    and {!slot} pre-grows the verdict buffer under one lock, the sweep
    itself reads a {!Slot.view} locklessly (and in parallel chunks, see
    {!Parallel}), and buffered new verdicts are written back in one
    {!Slot.merge} / {!Slot.merge_bits}, which drops them if the stamp
    moved mid-sweep.  Two sweeps racing at the same stamp write
    identical (deterministic) verdicts, so the merge is idempotent;
    lockless readers see each word atomically (array elements never
    tear). *)

type t

val create : unit -> t

val fresh_generation : t -> int
(** A generation number never handed out before (> 0; every constraint
    starts at generation 0). *)

val generation_for : t -> key:string -> int
(** The generation memoized for [key] — a constraint-state key built
    from the constraint's name and the values of every property it
    mentions — minting (and recording) a fresh one on first sight.
    Re-entering a previously-visited binding state therefore reproduces
    the generation minted there, which lets state signatures (and the
    survivor cache keyed by them) recognise revisited states.  Distinct
    states never share a generation: the key embeds the values.  The
    memo is bounded by clock eviction; an evicted state costs one fresh
    sweep on revisit. *)

val core_id : t -> string -> int
(** Dense id interned for a core's qualified id — the index verdict
    slots are addressed by.  Ids are stable for the lifetime of the
    table, so a query pays one string-hash probe per core and a plain
    array read per constraint after that.  (Columnar sessions use the
    index's dense ids directly and never intern.) *)

val core_ids : t -> string array -> int array
(** {!core_id} for a whole candidate pool under a single lock
    acquisition — how a classic query opens its sweep. *)

(** One constraint's verdict table, resolved (and restamped) once per
    query so the per-core cost is an array read by interned id. *)
module Slot : sig
  type t

  val codes_per_word : int
  (** Sixteen two-bit verdicts per word; a 32-bit {!Bitset} word spans
      exactly two verdict words. *)

  val view : t -> int array
  (** The verdict buffer as of slot resolution.  Stable for the query:
      {!slot} grows it to cover every id interned so far (and the
      declared [universe]), so concurrent interning never reallocates
      it mid-sweep.  Words written by a concurrent merge at the same
      stamp are identical to what this sweep would compute; a
      concurrent invalidation only resets the handle's buffer to
      unknowns (forcing recomputes, never wrong verdicts). *)

  val peek : int array -> id:int -> bool option
  (** The memoized verdict on core [id] in a view ([Some true] =
      inferior); pure, lock-free.  Out-of-range ids read as unknown. *)

  val peek_word : int array -> w:int -> int * int
  (** [(known, inferior)] 32-bit masks for cores [32w, 32w + 32): bit
      [b] of [known] is set iff core [32w + b] has a memoized verdict,
      and of [inferior] iff that verdict is "inferior".  Pure,
      lock-free; out-of-range words read as all-unknown. *)

  val merge : t -> (int * bool) list -> hits:int -> misses:int -> unit
  (** Write a sweep's buffered verdicts back ([(id, inferior)]; faults
      must not be among them) and add its lookup counters to the stats.
      If the slot was restamped since the handle was resolved, the
      verdicts are dropped — they describe a dead generation — but the
      counters still count. *)

  val merge_bits :
    t ->
    touched:Bitset.t ->
    inferior_bits:Bitset.t ->
    ids:int array option ->
    hits:int ->
    misses:int ->
    unit
  (** Columnar write-back.  [touched] and [inferior_bits] are position
      bitsets over the sweep's pool; [ids] maps positions to core ids,
      [None] meaning the pool {e is} the dense-id universe (position =
      id), in which case each 32-position word updates its two verdict
      words with a constant number of logical ops.  Same stamp-recheck
      contract as {!merge}. *)
end

val slot : ?universe:int -> t -> cc:string -> gen:int -> focus:string -> Slot.t
(** The verdict table of constraint [cc] stamped (generation, focus).
    A stamp different from the stored one drops the constraint's
    previous verdicts first (latest-generation-wins: interactive
    exploration revisits the current state, not past ones).  The
    returned view covers every id below [max interned universe] —
    columnar sessions pass the index size as [universe]; classic
    sessions call {!core_ids} first. *)

(** {2 Survivor sets} *)

(** A columnar survivor set: the bitset is authoritative (bit = dense
    id survives); count and list are lazily memoized projections. *)
type survivors = {
  sv_bits : Bitset.t;
  mutable sv_count : int;  (** -1 until first computed *)
  mutable sv_list : (string * Ds_reuse.Core.t) list option;
}

type survivor_set =
  | S_list of (string * Ds_reuse.Core.t) list  (** classic sweeps *)
  | S_bits of survivors  (** columnar sweeps *)

val find_survivor_set : t -> key:string -> survivor_set option
(** The cached candidate set for a full session state signature. *)

val store_survivor_list : t -> key:string -> (string * Ds_reuse.Core.t) list -> unit

val store_survivor_bits : t -> key:string -> Bitset.t -> survivors
(** Wraps [bits] (over the dense-id universe) with unevaluated memos
    and caches it; returns the wrapper so the storing query can reuse
    the memos it fills. *)

val survivor_count : survivors -> int
(** Popcount, memoized (idempotent under racing writers). *)

val survivor_list : survivors -> entry_at:(int -> string * Ds_reuse.Core.t) -> (string * Ds_reuse.Core.t) list
(** Materialization in ascending dense-id order — exactly the index's
    insertion order, so it is byte-for-byte the list a classic sweep
    caches.  Memoized on first call. *)

val find_summary : t -> key:string -> Evaluation.merit_summary option
(** The cached merit summary for a (state signature, merit) key —
    merits are immutable per core and the candidate set is a function
    of the signature, so a revisited state's summary is served without
    re-folding the surviving pool.  Bounded like the survivor table. *)

val store_summary : t -> key:string -> Evaluation.merit_summary -> unit

val find_signature : t -> key:string -> string option
(** The cached candidate-signature digest for an observable-state key.
    The digest hashes every surviving core id; the memo spares a
    revisited state that whole-pool walk while returning exactly the
    bytes the full computation produced (journal replay stays
    bit-identical).  Bounded like the survivor table. *)

val store_signature : t -> key:string -> string -> unit

(** Cache effectiveness counters (reported by the bench baseline). *)
type stats = {
  verdict_hits : int;
  verdict_misses : int;  (** includes first-ever evaluations *)
  survivor_hits : int;
  survivor_misses : int;
  generations : int;  (** fresh generations allocated (invalidations) *)
  evictions : int;  (** clock-cache evictions across all four memos *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** Verdict-level hits / lookups, 0. when no lookups happened. *)
