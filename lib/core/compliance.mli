(** Memoized per-core constraint verdicts — the incremental-pruning
    cache behind {!Session.candidates}.

    The paper's re-assessment rule ("when the independent set is
    modified, the dependent set needs to be re-assessed") already names
    exactly which constraints a binding change can affect: those whose
    declared independent/dependent sets mention the changed property.
    This table exploits that: every elimination verdict ([Eliminate]
    closure applied to one core) is memoized under a {e generation}
    number, and a binding change allocates a fresh generation only for
    the constraints it re-opens, so verdicts of untouched constraints
    survive across decisions, retractions and exploration branches.

    Correctness contract: a constraint closure must only read properties
    it declares in its independent or dependent set.  (This is the same
    contract {!Consistency} documents for the partial order; a closure
    that reads undeclared properties can observe a binding change that
    never bumps its generation.)  The equivalence test suite checks the
    cached path against the naive recompute for all shipped case
    studies.

    Generations are drawn from one shared counter, never reused: two
    exploration branches that each rebind the same property get distinct
    generations, so their verdicts cannot collide in the table.

    Interaction with {!Guard} quarantine is conservative by
    construction: the session skips quarantined constraints {e before}
    consulting the table (their cached verdicts become unreachable), and
    the survivor-set key includes the quarantine state, so a set
    computed before a quarantine transition is never served after it.
    Faulted evaluations are never cached — a faulting closure re-runs
    (and re-strikes) on every query, exactly as on the naive path.

    One table serves a whole session lineage (created by
    [Session.create], shared by every derived session), like the guard
    registry.  Memory is bounded: each constraint keeps verdicts for a
    single (generation, focus) stamp — a store under a newer stamp
    drops the older verdicts — and the survivor-set table is capped. *)

type t

val create : unit -> t

val fresh_generation : t -> int
(** A generation number never handed out before (> 0; every constraint
    starts at generation 0). *)

val core_id : t -> string -> int
(** Dense id interned for a core's qualified id — the index verdict
    slots are addressed by.  Ids are stable for the lifetime of the
    table, so a query pays one string-hash probe per core and a plain
    array read per constraint after that. *)

(** One constraint's verdict table, resolved (and restamped) once per
    query so the per-core cost is an array read by interned id. *)
module Slot : sig
  type t

  val find : t -> id:int -> bool option
  (** The memoized verdict on core [id] (from {!core_id}), if any. *)

  val store : t -> id:int -> bool -> unit
  (** Memoize a successful evaluation (faults must not be stored). *)
end

val slot : t -> cc:string -> gen:int -> focus:string -> Slot.t
(** The verdict table of constraint [cc] stamped (generation, focus).
    A stamp different from the stored one drops the constraint's
    previous verdicts first (latest-generation-wins: interactive
    exploration revisits the current state, not past ones). *)

val find_survivors : t -> key:string -> (string * Ds_reuse.Core.t) list option
(** The cached candidate list for a full session state signature. *)

val store_survivors : t -> key:string -> (string * Ds_reuse.Core.t) list -> unit

(** Cache effectiveness counters (reported by the bench baseline). *)
type stats = {
  verdict_hits : int;
  verdict_misses : int;  (** includes first-ever evaluations *)
  survivor_hits : int;
  survivor_misses : int;
  generations : int;  (** fresh generations allocated (invalidations) *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** Verdict-level hits / lookups, 0. when no lookups happened. *)
