(** Memoized per-core constraint verdicts — the incremental-pruning
    cache behind {!Session.candidates}.

    The paper's re-assessment rule ("when the independent set is
    modified, the dependent set needs to be re-assessed") already names
    exactly which constraints a binding change can affect: those whose
    declared independent/dependent sets mention the changed property.
    This table exploits that: every elimination verdict ([Eliminate]
    closure applied to one core) is memoized under a {e generation}
    number, and a binding change allocates a fresh generation only for
    the constraints it re-opens, so verdicts of untouched constraints
    survive across decisions, retractions and exploration branches.

    Correctness contract: a constraint closure must only read properties
    it declares in its independent or dependent set.  (This is the same
    contract {!Consistency} documents for the partial order; a closure
    that reads undeclared properties can observe a binding change that
    never bumps its generation.)  The equivalence test suite checks the
    cached path against the naive recompute for all shipped case
    studies.

    Generations are drawn from one shared counter, never reused: two
    exploration branches that each rebind the same property get distinct
    generations, so their verdicts cannot collide in the table.

    Interaction with {!Guard} quarantine is conservative by
    construction: the session skips quarantined constraints {e before}
    consulting the table (their cached verdicts become unreachable), and
    the survivor-set key includes the quarantine state, so a set
    computed before a quarantine transition is never served after it.
    Faulted evaluations are never cached — a faulting closure re-runs
    (and re-strikes) on every query, exactly as on the naive path.

    One table serves a whole session lineage (created by
    [Session.create], shared by every derived session), like the guard
    registry.  Memory is bounded: each constraint keeps verdicts for a
    single (generation, focus) stamp — a store under a newer stamp
    drops the older verdicts — and the survivor-set table is capped.

    {2 Concurrency}

    The table is internally synchronized: since the exploration service
    stopped serializing requests globally, concurrent requests (on
    separate domains) can query the same lineage at once.  The sweep
    protocol is snapshot-and-merge: {!core_ids} interns the whole pool
    and {!slot} pre-grows the verdict buffer under one lock, the sweep
    itself reads a {!Slot.view} locklessly (and in parallel chunks, see
    {!Parallel}), and buffered new verdicts are written back in one
    {!Slot.merge}, which drops them if the stamp moved mid-sweep.  Two
    sweeps racing at the same stamp write identical (deterministic)
    verdicts, so the merge is idempotent. *)

type t

val create : unit -> t

val fresh_generation : t -> int
(** A generation number never handed out before (> 0; every constraint
    starts at generation 0). *)

val generation_for : t -> key:string -> int
(** The generation memoized for [key] — a constraint-state key built
    from the constraint's name and the values of every property it
    mentions — minting (and recording) a fresh one on first sight.
    Re-entering a previously-visited binding state therefore reproduces
    the generation minted there, which lets state signatures (and the
    survivor cache keyed by them) recognise revisited states.  Distinct
    states never share a generation: the key embeds the values.  The
    memo is bounded; past the cap it restarts and revisited states cost
    one fresh sweep again. *)

val core_id : t -> string -> int
(** Dense id interned for a core's qualified id — the index verdict
    slots are addressed by.  Ids are stable for the lifetime of the
    table, so a query pays one string-hash probe per core and a plain
    array read per constraint after that. *)

val core_ids : t -> string array -> int array
(** {!core_id} for a whole candidate pool under a single lock
    acquisition — how a query opens its sweep. *)

(** One constraint's verdict table, resolved (and restamped) once per
    query so the per-core cost is an array read by interned id. *)
module Slot : sig
  type t

  val view : t -> Bytes.t
  (** The verdict buffer as of slot resolution.  Stable for the query:
      {!slot} grows it to cover every id interned so far, so concurrent
      interning never reallocates it mid-sweep.  Bytes written by a
      concurrent merge at the same stamp are identical to what this
      sweep would compute; a concurrent invalidation only resets the
      handle's buffer to unknowns (forcing recomputes, never wrong
      verdicts). *)

  val peek : Bytes.t -> id:int -> bool option
  (** The memoized verdict on core [id] (from {!core_ids}) in a view;
      pure, lock-free.  Out-of-range ids read as unknown. *)

  val merge : t -> (int * bool) list -> hits:int -> misses:int -> unit
  (** Write a sweep's buffered verdicts back (faults must not be
      among them) and add its lookup counters to the stats.  If the
      slot was restamped since the handle was resolved, the verdicts
      are dropped — they describe a dead generation — but the counters
      still count. *)
end

val slot : t -> cc:string -> gen:int -> focus:string -> Slot.t
(** The verdict table of constraint [cc] stamped (generation, focus).
    A stamp different from the stored one drops the constraint's
    previous verdicts first (latest-generation-wins: interactive
    exploration revisits the current state, not past ones).  Call after
    {!core_ids} so the returned view covers the whole pool. *)

val find_survivors : t -> key:string -> (string * Ds_reuse.Core.t) list option
(** The cached candidate list for a full session state signature. *)

val store_survivors : t -> key:string -> (string * Ds_reuse.Core.t) list -> unit

val find_summary : t -> key:string -> Evaluation.merit_summary option
(** The cached merit summary for a (state signature, merit) key —
    merits are immutable per core and the candidate set is a function
    of the signature, so a revisited state's summary is served without
    re-folding the surviving pool.  Bounded like the survivor table. *)

val store_summary : t -> key:string -> Evaluation.merit_summary -> unit

val find_signature : t -> key:string -> string option
(** The cached candidate-signature digest for an observable-state key.
    The digest hashes every surviving core id; the memo spares a
    revisited state that whole-pool walk while returning exactly the
    bytes the full computation produced (journal replay stays
    bit-identical).  Bounded like the survivor table. *)

val store_signature : t -> key:string -> string -> unit

(** Cache effectiveness counters (reported by the bench baseline). *)
type stats = {
  verdict_hits : int;
  verdict_misses : int;  (** includes first-ever evaluations *)
  survivor_hits : int;
  survivor_misses : int;
  generations : int;  (** fresh generations allocated (invalidations) *)
}

val stats : t -> stats

val hit_rate : stats -> float
(** Verdict-level hits / lookups, 0. when no lookups happened. *)
