(** Classes of design objects (CDOs).

    A CDO implicitly defines the design space of all feasible
    implementations of a behaviour (Section 2): it carries properties
    (requirements, design issues, behavioral descriptions) and {e at
    most one generalized design issue}.  Each option of the generalized
    issue defines a child CDO — a specialization whose design space
    region is strictly contained in its parent's.  CDOs with no
    generalized issue are the leaves of the hierarchy (Section 4). *)

type t = private {
  name : string;  (** node name, unique among siblings, e.g. "Multiplier" *)
  abbrev : string option;  (** the paper's short names: "OMM", "OMM-HM" *)
  doc : string;
  properties : Property.t list;  (** own (non-generalized) properties *)
  specialization : specialization option;
}

and specialization = private {
  issue : Property.t;  (** the node's single generalized design issue *)
  children : (string * t) list;  (** option -> child CDO, in option order *)
}

val leaf :
  name:string -> ?abbrev:string -> ?doc:string -> Property.t list -> (t, string) result
(** A leaf CDO.  Rejects duplicate property names and any generalized
    issue among the properties (a generalized issue must come with its
    children — use {!node}). *)

val node :
  name:string ->
  ?abbrev:string ->
  ?doc:string ->
  Property.t list ->
  issue:Property.t ->
  children:(string * t) list ->
  (t, string) result
(** An internal CDO.  [issue] must be a generalized design issue with an
    enumerated domain whose options are exactly the keys of [children]
    (in any order); child names must be distinct. *)

val leaf_exn : name:string -> ?abbrev:string -> ?doc:string -> Property.t list -> t
val node_exn :
  name:string ->
  ?abbrev:string ->
  ?doc:string ->
  Property.t list ->
  issue:Property.t ->
  children:(string * t) list ->
  t

val is_leaf : t -> bool

val all_properties : t -> Property.t list
(** Own properties plus the generalized issue (when present). *)

val property : t -> string -> Property.t option
(** Lookup in {!all_properties}. *)

val child_for_option : t -> string -> t option
(** The specialization selected by an option of the generalized
    issue. *)

val generalized_issue : t -> Property.t option
