(* The runtime's domain module is [Stdlib.Domain] throughout: this
   library defines a [Domain] module of its own (the value domains of
   properties). *)

module Obs = Ds_obs.Obs

type task = unit -> unit

type pool = {
  lock : Mutex.t;
  work : Condition.t;
  queue : task Queue.t;
  mutable want : int; (* target worker count = domain_count - 1 *)
  mutable live : int; (* workers currently running *)
  mutable handles : unit Stdlib.Domain.t list;
}

let clamp_domains n = Stdlib.max 1 (Stdlib.min 64 n)

let initial_domains () =
  let default = Stdlib.min 8 (Stdlib.Domain.recommended_domain_count ()) in
  match Option.bind (Sys.getenv_opt "DSE_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> clamp_domains n
  | Some _ | None -> clamp_domains default

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    want = initial_domains () - 1;
    live = 0;
    handles = [];
  }

let threshold = Atomic.make 512

let chunk_threshold () = Atomic.get threshold
let set_chunk_threshold n = Atomic.set threshold (Stdlib.max 1 n)

let domain_count () =
  Mutex.lock pool.lock;
  let n = pool.want + 1 in
  Mutex.unlock pool.lock;
  n

let domains_gauge = Obs.gauge Obs.default "dse_engine_parallel_domains"

let set_domain_count n =
  Mutex.lock pool.lock;
  pool.want <- clamp_domains n - 1;
  Obs.set_gauge domains_gauge (float_of_int (pool.want + 1));
  (* surplus workers notice [live > want] and exit; missing ones are
     spawned by the next parallel sweep *)
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock

let use_pool n = n >= Atomic.get threshold && domain_count () > 1

(* A worker loops on the queue until the pool shrinks below it.  Tasks
   own their error handling (map_chunks wraps every chunk); the catch
   here only shields the loop from a task violating that.  Queued work
   is drained before a surplus worker retires: a [set_domain_count]
   shrink racing an in-flight sweep must not strand chunks that
   [map_chunks] is blocked waiting on. *)
let rec worker () =
  Mutex.lock pool.lock;
  let rec next () =
    if not (Queue.is_empty pool.queue) then begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      Some task
    end
    else if pool.live > pool.want then begin
      pool.live <- pool.live - 1;
      Mutex.unlock pool.lock;
      None
    end
    else begin
      Condition.wait pool.work pool.lock;
      next ()
    end
  in
  match next () with
  | None -> ()
  | Some task ->
    (try task () with _ -> ());
    worker ()

(* Call with [pool.lock] held. *)
let ensure_workers () =
  while pool.live < pool.want do
    pool.live <- pool.live + 1;
    pool.handles <- Stdlib.Domain.spawn worker :: pool.handles
  done

(* Idle workers park in [Condition.wait]; a process exiting while
   domains block there can hang the runtime's shutdown, so retire the
   pool explicitly. *)
let () =
  at_exit (fun () ->
      Mutex.lock pool.lock;
      pool.want <- 0;
      let handles = pool.handles in
      pool.handles <- [];
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      List.iter (fun d -> try Stdlib.Domain.join d with _ -> ()) handles)

(* one count per chunk actually forked to the pool (chunk 0, run on
   the caller, included) *)
let m_chunks = Obs.counter Obs.default "dse_engine_parallel_chunks_total"

let () = Obs.set_gauge domains_gauge (float_of_int (initial_domains ()))

let map_chunks ?(quantum = 1) ~n f =
  if n <= 0 then []
  else begin
    let d = domain_count () in
    (* chunks of at least 64 items: finer grains cost more in fork
       bookkeeping than the closure work they carry *)
    let nchunks = Stdlib.min d (Stdlib.max 1 (n / 64)) in
    if d <= 1 || n < Atomic.get threshold || nchunks <= 1 then [ f 0 n ]
    else begin
      Obs.add m_chunks nchunks;
      (* chunks run on pool domains, where the caller's span stack is
         invisible: parent them explicitly on the span open here *)
      let parent = Obs.current_span_id () in
      let f =
        if not (Obs.recording ()) then f
        else fun lo hi ->
          let sp =
            Obs.span_begin ?parent
              ~attrs:[ ("lo", string_of_int lo); ("hi", string_of_int hi) ]
              "parallel.chunk"
          in
          Fun.protect ~finally:(fun () -> Obs.span_end sp) (fun () -> f lo hi)
      in
      (* interior boundaries snap to quantum multiples so chunks own
         disjoint quantum-sized blocks (bitset sweeps pass the word
         width and get word-disjoint chunks — no shared-word writes);
         trailing chunks may come out empty, which f must tolerate *)
      let nq = (n + quantum - 1) / quantum in
      let cut c = Stdlib.min n (c * nq / nchunks * quantum) in
      let bounds c = (cut c, if c = nchunks - 1 then n else cut (c + 1)) in
      let results = Array.make nchunks None in
      let pending = ref (nchunks - 1) in
      let jlock = Mutex.create () in
      let jdone = Condition.create () in
      Mutex.lock pool.lock;
      ensure_workers ();
      for c = 1 to nchunks - 1 do
        let lo, hi = bounds c in
        Queue.push
          (fun () ->
            let r = try Ok (f lo hi) with e -> Error e in
            Mutex.lock jlock;
            results.(c) <- Some r;
            decr pending;
            if !pending = 0 then Condition.broadcast jdone;
            Mutex.unlock jlock)
          pool.queue
      done;
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      (* the caller is a compute context too: chunk 0 runs here while
         the pool works the tail *)
      let r0 =
        let lo, hi = bounds 0 in
        try Ok (f lo hi) with e -> Error e
      in
      Mutex.lock jlock;
      while !pending > 0 do
        Condition.wait jdone jlock
      done;
      Mutex.unlock jlock;
      results.(0) <- Some r0;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
    end
  end
