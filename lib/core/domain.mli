(** Value domains — the paper's [SetOfValues] annotations.

    Fig 8 shows the kinds needed: finite enumerations
    ([{2's compl., Signed, ...}]), symbolically-described integer sets
    ([{2^i | i in Z+}], [{i | EOL/i = 0}]), non-negative reals
    ([R+]), and flags ([{Guaranteed, notGuaranteed}] is an enumeration
    too).  Predicate-based integer sets carry a description string so a
    domain remains self-documenting when printed. *)

type t =
  | Enum of string list  (** finite option set, e.g. design-issue options *)
  | Int_pred of { description : string; member : int -> bool }
  | Int_range of { lo : int option; hi : int option }
  | Real_range of { lo : float option; hi : float option }
  | Flag_dom

val enum : string list -> t
(** @raise Invalid_argument on an empty or duplicated option list. *)

val powers_of_two : t
(** [{2^i | i >= 0}]. *)

val divisors_of : string -> (unit -> int) -> t
(** [divisors_of name ctx]: the set [{i | i divides ctx ()}] described
    relative to a named quantity — the paper's "Number of Slices"
    domain [{i | EOL/i = 0}].  The context function supplies the current
    value of the named quantity (e.g. the EOL requirement) at check
    time. *)

val non_negative_real : t
(** [R+]. *)

val contains : t -> Value.t -> bool
(** Domain membership, with the value kinds fixed per domain: [Enum]
    contains [Str]s, integer domains contain [Int]s, [Real_range]
    contains [Real]s and [Int]s, [Flag_dom] contains [Flag]s. *)

val describe : t -> string
(** The [SetOfValues={...}] rendering used in the Fig 8/Fig 11
    reproductions. *)

val options : t -> string list option
(** The finite option list when the domain is an enumeration. *)
