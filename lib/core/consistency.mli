(** Consistency constraints (CCs) — the single modelling construct the
    paper uses for ordering and consistency relationships among
    properties (Section 4, Fig 13).

    A CC has an independent property set, a dependent property set and a
    relation.  The dependent set can only be addressed after the
    independent set; when an independent property changes, dependent
    bindings must be re-assessed.  Four relation forms cover the paper's
    examples:

    - {e inconsistent options} (CC1): a predicate over current bindings
      that flags forbidden combinations;
    - {e quantitative} (CC2): derive dependent values from independent
      ones by a stated formula;
    - {e estimator context} (CC3): declare that an early estimation tool
      produces the dependent metric from the independent property;
    - {e elimination} (CC4): mark cores implementing dominated/inferior
      combinations so the layer drops them from consideration. *)

(** Read access to the session's current bindings during evaluation. *)
type env = {
  value : Propref.t -> Value.t option;
      (** resolve a reference against the current bindings; [None] when
          unbound or not applicable at the current focus *)
  value_of : string -> Value.t option;  (** shorthand: by property name *)
  focus : string list;  (** the session's current node path *)
}

type eliminate_kernel = env -> Columnar.t -> (int -> bool) option
(** Optional vectorized form of an elimination predicate: resolved once
    per sweep against the layer's columnar store, it returns a per-core
    verdict function over dense ids (or [None] when the current
    bindings don't allow a columnar evaluation — the sweep falls back
    to the per-core closure).  Contract: the returned function must
    agree with [inferior] on every core — same verdicts, and the same
    floating-point operations in the same order, so cached verdicts and
    candidate signatures stay bit-identical whichever path computed
    them.  Kernels must be total, straight-line column math: they run
    outside {!Guard}'s step budget (an exception still only aborts the
    sweep to the recording fallback, but a non-terminating kernel
    hangs). *)

type relation =
  | Inconsistent of { violated : env -> bool }
      (** true = the current bindings hit a forbidden combination *)
  | Derive of { compute : env -> (string * Value.t) list }
      (** dependent property values implied by the independent ones
          (empty when inputs are missing) *)
  | Estimator_context of { tool : string; estimate : env -> (string * float) list }
      (** the tool and the metric values it produces in this context *)
  | Eliminate of {
      inferior : env -> Ds_reuse.Core.t -> bool;
      vectorized : eliminate_kernel option;
    }
      (** [inferior]: true = this core is an inferior solution under the
          current bindings and must be dropped.  [vectorized]: the
          optional column-sweep fast path (see
          {!type:eliminate_kernel}). *)

val eliminate :
  ?vectorized:eliminate_kernel -> (env -> Ds_reuse.Core.t -> bool) -> relation
(** [Eliminate { inferior; vectorized }] without spelling the record
    out — what layer modules construct. *)

type t = private {
  name : string;  (** "CC1", "CC2", ... *)
  doc : string;  (** the paper's comment line *)
  indep : Propref.t list;
  dep : Propref.t list;
  relation : relation;
}

val make :
  name:string ->
  ?doc:string ->
  indep:Propref.t list ->
  dep:Propref.t list ->
  relation ->
  (t, string) result
(** Rejects an empty name and an empty independent set. *)

val make_exn :
  name:string -> ?doc:string -> indep:Propref.t list -> dep:Propref.t list -> relation -> t

val ready : t -> bound:(Propref.t -> bool) -> bool
(** All independent references bound: the dependent set may be
    addressed. *)

val governs : t -> property:string -> bool
(** Is the property in the dependent set (by name)? *)

val dep_properties : t -> string list
(** The dependent properties by name, deduplicated and sorted (what a
    [Derive] computes, an [Estimator_context] measures). *)

val empty_env : env
(** An environment with no bindings and an empty focus — what a closure
    sees before any designer input (used by lint probes and tests). *)

val relation_kind : t -> string
(** "inconsistent-options" | "derive" | "estimator" | "eliminate". *)

type violation = { constraint_ : t; message : string }

val check : t -> env -> violation option
(** Evaluate an [Inconsistent] relation; [None] for other kinds or when
    not violated. *)

val pp : Format.formatter -> t -> unit
(** Fig 13 style: comment, Indep_Set, Dep_Set, Relation. *)
