(** Exploration reports.

    A session already keeps its own trail (bindings with their sources,
    the event log).  This module renders that trail as a markdown report
    a designer can attach to a design review: the requirement values
    entered, every decision with the pruning it caused, derived values
    with the constraint that produced them, the surviving candidates
    with their figures of merit, and (when two merit axes are given) the
    Pareto front among them. *)

val render :
  ?title:string ->
  ?merits:string list ->
  ?pareto:string * string ->
  Session.t ->
  string
(** [merits] selects which figure-of-merit ranges to tabulate (default:
    none); [pareto] adds a front section over two of them. *)

val save :
  ?title:string ->
  ?merits:string list ->
  ?pareto:string * string ->
  Session.t ->
  path:string ->
  (unit, string) result
