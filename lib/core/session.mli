(** An exploration session: the designer-facing workflow of the design
    space layer.

    A session walks one hierarchy with one population of indexed cores.
    The designer enters requirement values from the system spec (Fig 8),
    then addresses design issues one by one.  Each decision prunes the
    space: deciding the focus node's {e generalized} issue descends the
    focus into the chosen specialization (Fig 3's traversal), and every
    decision narrows the set of complying cores, whose figure-of-merit
    ranges can be queried at any time.  Consistency constraints are
    enforced throughout: they impose the partial order in which issues
    may be addressed, reject inconsistent option combinations, derive
    implied values, eliminate inferior cores, and invalidate dependent
    bindings when an independent one is retracted.

    Sessions are immutable values: every operation returns a new
    session, so exploration branches can be compared side by side (the
    trade-off exploration the paper emphasises).

    {2 Guarded constraint evaluation}

    Constraint closures are layer-author code and may misbehave; every
    invocation runs under {!Guard.run}, so no session operation raises
    because of a faulty CC and non-finite derived/estimated values are
    rejected.  Faults accumulate per constraint in a health registry
    shared by every session derived from the same {!create} (quarantine
    is monotone across exploration branches: a faulty closure is faulty
    on all of them).  A quarantined CC is excluded with conservative
    semantics: [Eliminate] keeps all cores, [Inconsistent] warns (via
    the diagnostics) instead of rejecting, [Derive]/[Estimator_context]
    are skipped — the designer keeps working with a sound-but-wider
    space.  Fault-free sessions behave exactly as before guarding. *)

type sweep_mode =
  | Columnar
      (** the default: the eliminate sweep runs over the index's flat
          property/merit columns with bitset survivor sets and packed
          word-at-a-time verdict reads; constraints may contribute
          vectorized kernels (see {!Consistency.eliminate}) *)
  | Classic
      (** the retained pre-columnar path: per-core closures over a
          candidate list, list survivor sets.  Same observable results
          (the equivalence suite checks them bit for bit); kept as the
          bench's same-run reference and an escape hatch
          ([DSE_SWEEP=classic]). *)

type source = Designer | Default_value | Derived of string

type binding = private {
  defined_at : string list;  (** node path defining the property *)
  prop : Property.t;
  value : Value.t;
  source : source;
}

type event =
  | Requirement_entered of { name : string; value : Value.t }
  | Decision_made of { name : string; value : Value.t }
  | Focus_descended of {
      path : string list;
      candidates_before : int;
      candidates_after : int;
    }
  | Binding_derived of { name : string; value : Value.t; by : string }
  | Binding_retracted of { name : string; invalidated : string list }
  | Note of string
  | Constraint_faulted of { name : string; op : string; detail : string }
      (** a constraint closure misbehaved during [op] ("check",
          "derive", "estimate" or "eliminate") but is still evaluated *)
  | Constraint_quarantined of { name : string; op : string; reason : string }
      (** the fault pushed the constraint into quarantine; it is
          excluded from evaluation from here on *)

type t

val create :
  hierarchy:Hierarchy.t ->
  ?constraints:Consistency.t list ->
  ?use_cache:bool ->
  ?sweep_mode:sweep_mode ->
  cores:(string * Ds_reuse.Core.t) list ->
  unit ->
  t
(** A fresh session focused at the hierarchy root with the given core
    population (typically {!Ds_reuse.Registry.all_cores}).

    [use_cache] (default [true]) enables the incremental pruning cache:
    elimination verdicts and survivor sets are memoized in a
    {!Compliance} table shared by the session lineage, and invalidated
    per constraint when a binding of a property it declares changes (see
    the "Performance model" section of DESIGN.md).  [~use_cache:false]
    recomputes everything from scratch on every query — the reference
    path the equivalence suite checks the cache against.

    [sweep_mode] (default {!Columnar}, or {!Classic} when the
    [DSE_SWEEP=classic] environment variable is set) picks the sweep
    engine for the whole lineage; the two must not be mixed within one
    lineage because they address verdict slots through different id
    spaces.  It only matters when [use_cache] is true. *)

val sweep_mode : t -> sweep_mode

val pristine : t -> t
(** A fresh session over an existing session's layer: shares the
    immutable structure (hierarchy, constraints and the built candidate
    index — the expensive part of {!create}) and nothing else.  Focus
    returns to the root; bindings, trail, guard registry, compliance
    cache and generations start empty, so the result is observably
    identical to a new {!create} over the same inputs.  The exploration
    service uses this to hand each session a private lineage from one
    cached parsed layer. *)

val hierarchy : t -> Hierarchy.t
val focus : t -> string list
val focus_cdo : t -> Cdo.t
val bindings : t -> binding list
val binding : t -> string -> binding option
val value_of : t -> string -> Value.t option
val events : t -> event list
(** Oldest first — the session's self-documentation trail.  Guard
    diagnostics ([Constraint_faulted] / [Constraint_quarantined]) are
    appended after the session's own events, in fault order, because
    they may also be recorded by read-only queries ({!candidates},
    {!estimates}) that return no new session. *)

val health : t -> (string * Guard.status) list
(** Per-constraint health, one entry per constraint in declaration
    order.  All [Healthy] unless a closure has faulted. *)

val diagnostics : t -> Guard.diag list
(** Every guard fault recorded by this session lineage, oldest first. *)

val env : t -> Consistency.env
(** The constraint-evaluation view of the current bindings. *)

val set : t -> string -> Value.t -> (t, string) result
(** Bind a requirement or decide a design issue.  Errors when: the
    property is not visible at the focus, already bound, the value is
    outside its domain, a governing constraint's independent set is not
    yet addressed (partial order; requirements are exempt), or the
    binding would violate an inconsistent-options constraint.  Deciding
    the focus node's generalized issue descends the focus.  Implied
    values are then derived to a fixpoint. *)

val set_default : t -> string -> (t, string) result
(** Bind a property to its declared default. *)

val annotate : t -> string -> t
(** Append a free-form note to the exploration trail (shows up in
    {!pp_trace} and in reports). *)

val retract : t -> string -> (t, string) result
(** Remove a designer-made binding.  Derived bindings are re-assessed
    from scratch (the paper's "when the independent set is modified, the
    dependent set needs to be re-assessed"); retracting a generalized
    decision pops the focus back and drops every binding that is no
    longer visible. *)

val population : t -> (string * Ds_reuse.Core.t) list
(** Every core indexed in the hierarchy, regardless of the current
    focus and decisions (the session's full design space). *)

val candidates : t -> (string * Ds_reuse.Core.t) list
(** Cores indexed at or below the focus that comply with every bound
    design issue and survive the elimination constraints.  Served from
    the compliance cache when enabled; a faulting elimination closure
    still re-runs (and accumulates strikes) on every query, and
    quarantined constraints are skipped before the cache is consulted. *)

val candidates_naive : t -> (string * Ds_reuse.Core.t) list
(** The uncached reference computation, regardless of [use_cache]: every
    ready elimination closure runs against every core under the focus.
    The equivalence suite and the bench baseline compare {!candidates}
    against this. *)

val candidate_count : t -> int

val cache_stats : t -> Compliance.stats
(** Hit/miss counters of the lineage's compliance cache (all zero when
    [use_cache] is false and nothing was ever cached). *)

val merit_range : t -> merit:string -> (float * float) option
(** Range of a figure of merit over the current candidates (non-finite
    merit values are skipped, see {!Evaluation.merit_range}). *)

val merit_summary : t -> merit:string -> Evaluation.merit_summary
(** The range plus how many candidates were skipped (non-finite merit)
    or carry no such merit. *)

(** The outcome of tentatively choosing one option of a design issue. *)
type option_preview = {
  option_value : string;
  outcome : [ `Explored of int * (float * float) option | `Rejected of string ];
      (** [`Explored (candidates, merit range)] for a consistent choice,
          [`Rejected reason] when a constraint forbids it *)
}

val preview_options : t -> issue:string -> merit:string -> (option_preview list, string) result
(** Try every option of an enumerated design issue without committing
    and report the family each would leave — the paper's trade-off
    guidance ("consider the performance ranges ... for each such
    alternatives") made explicit.  Errors when the issue is not visible,
    already bound, or not enumerated. *)

val open_issues : t -> (Property.t * bool) list
(** Unbound design issues visible at the focus, paired with their
    eligibility (true = every governing constraint's independent set is
    addressed, so the issue may be decided now). *)

val violations : t -> Consistency.violation list
(** Inconsistent-options constraints violated by the current bindings
    (can only be non-empty after retractions re-expose a conflict). *)

val estimates : t -> (string * (string * float) list) list
(** Estimator-context constraints whose independent sets are bound:
    [(tool name, metric values)] — the paper's "estimation replaces
    retrieval" path (CC3). *)

val candidate_signature : t -> string
(** A stable hex digest of the session's designer-visible state: the
    focus path, every binding (name, value and source, sorted), and the
    surviving candidate ids in index order.  Two sessions over the same
    hierarchy, constraints and population have equal signatures exactly
    when a designer could not tell them apart by querying focus,
    bindings or candidates — the check the exploration service's
    journal replay is verified against (see {!Ds_serve.Journal}).
    Cache internals (verdict generations, hit counters) never enter the
    digest, so a cached and an uncached lineage that agree on the
    visible state sign identically. *)

val script : t -> (string * Value.t) list
(** The designer-made bindings in the order they were entered —
    a replayable script of the exploration (derived bindings are
    omitted; they re-derive on replay). *)

val replay : t -> (string * Value.t) list -> (t, string) result
(** Apply a script with {!set}, stopping at the first error.
    [replay fresh (script s)] reproduces [s]'s focus, bindings and
    candidates when [fresh] shares the hierarchy, constraints and core
    population. *)

val pp_trace : Format.formatter -> t -> unit
(** Human-readable session log. *)
