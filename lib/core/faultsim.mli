(** Deterministic fault injection for consistency constraints.

    The robustness counterpart of {!Guard}: wrappers that make any CC
    misbehave on demand so the guarded-evaluation path can be exercised
    end to end — in the test suite and from the [dse] CLI
    ([--inject "CC2=raise"]).

    Three failure modes cover the guard's fault taxonomy:

    - [Raise]: the closure raises {!Injected} instead of computing;
    - [Return_nan]: value-producing relations ([Derive],
      [Estimator_context]) return NaN for every dependent property;
      predicate relations ([Inconsistent], [Eliminate]) have no numeric
      result, so this mode raises for them too;
    - [Diverge]: the closure spins, calling {!Guard.tick} each
      iteration, until the enclosing {!Guard.run} budget aborts it.
      Outside any guard a hard iteration cap raises
      {!Runaway_divergence} so an unguarded call site hangs a test
      instead of the machine.

    Injection is optionally flaky: with [~probability < 1.0] each
    invocation draws from a splitmix64 PRNG seeded from [seed] and the
    constraint name, so a given seed reproduces the exact same fault
    sequence — flaky estimators you can re-run. *)

type mode = Raise | Return_nan | Diverge

val mode_name : mode -> string
(** ["raise"] | ["nan"] | ["diverge"]. *)

val mode_of_name : string -> mode option

exception Injected of string
(** Raised by [Raise]-mode (and predicate [Return_nan]-mode) wrappers;
    the payload is the constraint name. *)

exception Runaway_divergence of string
(** A [Diverge] wrapper ran unguarded into its hard iteration cap. *)

val wrap : ?seed:int -> ?probability:float -> mode:mode -> Consistency.t -> Consistency.t
(** The same constraint (name, doc, property sets) with its relation
    closure replaced by a faulting wrapper around the original.
    [probability] defaults to [1.0] (fault on every invocation); when
    lower, non-faulting invocations fall through to the original
    closure. *)

val wrap_plan :
  ?seed:int ->
  ?probability:float ->
  plan:(string * mode) list ->
  Consistency.t list ->
  Consistency.t list
(** Wrap the constraints named in [plan] (order preserved, unnamed
    constraints untouched).  Unknown names are ignored — the plan may
    target a layer that lacks some CCs. *)

val parse_spec : string -> (string * mode, string) result
(** Parse a CLI spec ["CC2=raise"] into a plan entry. *)

val parse_plan : string list -> ((string * mode) list, string) result
(** [parse_spec] over a list, stopping at the first malformed spec. *)
