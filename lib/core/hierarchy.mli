(** The generalization/specialization hierarchy (Figs 3, 5, 7).

    A hierarchy is a validated tree of CDOs.  Nodes are addressed by
    {e paths}: lists of node names from the root (e.g.
    [["Operator"; "Modular"; "Multiplier"; "Hardware"]]).  Property
    inheritance follows the specialization chain: at a node, the visible
    properties are its own plus all of its ancestors' (the paper's
    "because of the inheritance hierarchy ... the properties may be part
    of the CDO in question or of any of its ancestor classes"). *)

type t

val create : Cdo.t -> (t, string) result
(** Validates global invariants: abbreviations unique across the tree,
    and no property name shadowed along any root-to-leaf path. *)

val create_exn : Cdo.t -> t
val root : t -> Cdo.t

val find : t -> string list -> Cdo.t option
(** Node lookup by path ([[root-name; ...]]).  The empty path is no
    node. *)

val find_by_abbrev : t -> string -> (string list * Cdo.t) option
(** Locate a node by its short name (e.g. "OMM-HM"). *)

val parent_path : string list -> string list option
(** [None] for the root path. *)

val node_paths : t -> string list list
(** Every node path, preorder. *)

val leaf_paths : t -> string list list

val visible_properties : t -> string list -> (string list * Property.t) list
(** Properties visible at a node, each tagged with the path of the CDO
    that defines it, ancestors first.  Empty for an unknown path. *)

val find_property : t -> string list -> string -> (string list * Property.t) option
(** Resolve a property name at a node through inheritance. *)

val depth : t -> int
(** Longest root-to-leaf path length. *)

val size : t -> int
(** Number of CDOs. *)

val ref_matches : t -> Propref.t -> path:string list -> property:string -> bool
(** Does a property reference address the given (node, property)?
    Besides the pattern match on the path, a single-segment pattern
    equal to the node's abbreviation also matches (the paper writes
    [ModuloIsOdd@OMM]). *)

val nodes_matching : t -> Propref.t -> (string list * Cdo.t) list
(** All nodes whose path (or abbreviation) matches the reference's
    pattern. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented tree rendering with generalized issues — the Fig 5/7
    reproduction. *)
