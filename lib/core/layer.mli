(** The front door: a design space layer as a single validated value.

    A layer bundles what Fig 1 shows — the hierarchy of CDOs, the
    consistency constraints, and the reuse libraries it indexes — and
    checks their mutual consistency once, at construction (via
    {!Lint}).  Everything else hangs off it: sessions, documentation,
    reports.

    The finer-grained modules ({!Hierarchy}, {!Session}, ...) remain the
    API for layer {e authors}; this module is the convenient surface for
    layer {e users}. *)

type t = private {
  name : string;
  hierarchy : Hierarchy.t;
  constraints : Consistency.t list;
  registry : Ds_reuse.Registry.t;
}

val make :
  name:string ->
  hierarchy:Hierarchy.t ->
  ?constraints:Consistency.t list ->
  registry:Ds_reuse.Registry.t ->
  unit ->
  (t, string) result
(** Validates with {!Lint.check}; construction fails on any
    error-severity finding (the message carries the first finding). *)

val make_exn :
  name:string ->
  hierarchy:Hierarchy.t ->
  ?constraints:Consistency.t list ->
  registry:Ds_reuse.Registry.t ->
  unit ->
  t

val explore : t -> Session.t
(** A fresh session over the layer's whole population. *)

val warnings : t -> Lint.finding list
(** Non-fatal lint findings recorded at construction time. *)

val document : t -> string
(** {!Document.render} with the layer's name and constraints. *)

val core_count : t -> int
val pp_summary : Format.formatter -> t -> unit
