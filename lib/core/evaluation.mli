(** The evaluation space (Figs 2(c), 3(b), 9, 12): design points plotted
    by figures of merit, with the dominance and range queries the layer
    offers during pruning.

    Both axes are minimised (delay, area, power, cost...). *)

type point = { label : string; x : float; y : float }

val point : label:string -> x:float -> y:float -> point

val of_cores :
  x:string -> y:string -> (string * Ds_reuse.Core.t) list -> point list
(** Project cores onto two merit axes; cores missing either merit are
    skipped.  Labels are core names. *)

val dominates : point -> point -> bool
(** [dominates a b]: a is no worse on both axes and strictly better on
    at least one. *)

val pareto_front : point list -> point list
(** Non-dominated subset, in ascending [x] order. *)

val dominated : point list -> point list
(** The complement of the front, original order. *)

val range : float list -> (float * float) option
(** (min, max); [None] on the empty list. *)

val merit_range : (string * Ds_reuse.Core.t) list -> merit:string -> (float * float) option
(** The range summary the layer shows the designer after each pruning
    step ("critical information on the set of reusable designs that do
    comply ... including ranges of performance"). *)

val normalize : point list -> point list
(** Rescale both axes to [0, 1] (used before clustering); a degenerate
    axis maps to 0. *)

val pp_point : Format.formatter -> point -> unit
