(** The evaluation space (Figs 2(c), 3(b), 9, 12): design points plotted
    by figures of merit, with the dominance and range queries the layer
    offers during pruning.

    Both axes are minimised (delay, area, power, cost...). *)

type point = { label : string; x : float; y : float }

val point : label:string -> x:float -> y:float -> point

val of_cores :
  x:string -> y:string -> (string * Ds_reuse.Core.t) list -> point list
(** Project cores onto two merit axes; cores missing either merit are
    skipped.  Labels are core names. *)

val dominates : point -> point -> bool
(** [dominates a b]: a is no worse on both axes and strictly better on
    at least one. *)

val pareto_front : point list -> point list
(** Non-dominated subset, in ascending [x] order (ties broken by [y]).
    Sort-and-sweep, O(n log n).  Exact duplicates do not dominate each
    other, so both survive; points with a NaN coordinate are never
    dominated and always appear on the front. *)

val dominated : point list -> point list
(** The complement of the front, original order. *)

val range : float list -> (float * float) option
(** (min, max); [None] on the empty list. *)

val merit_range : (string * Ds_reuse.Core.t) list -> merit:string -> (float * float) option
(** The range summary the layer shows the designer after each pruning
    step ("critical information on the set of reusable designs that do
    comply ... including ranges of performance").  Cores whose merit is
    NaN or infinite are skipped — they would otherwise poison the whole
    range through [Float.min]/[Float.max]. *)

type merit_summary = {
  merit_range : (float * float) option;  (** over the finite values only *)
  skipped_non_finite : int;  (** cores whose merit was NaN or infinite *)
  missing : int;  (** cores that do not carry the merit at all *)
}

val merit_summary : (string * Ds_reuse.Core.t) list -> merit:string -> merit_summary
(** {!merit_range} plus the census of what was left out of it. *)

val merit_summary_columnar : Columnar.t -> Bitset.t -> merit:string -> merit_summary
(** The same summary over a survivor bitset and the index's flat merit
    column — no candidate list is materialized, no per-core property
    walk happens.  Result is identical to [merit_summary] over the
    bitset's materialized entries (an absent column counts every
    survivor as missing). *)

val normalize : point list -> point list
(** Rescale both axes to [0, 1] (used before clustering); a degenerate
    axis maps to 0. *)

val pp_point : Format.formatter -> point -> unit
