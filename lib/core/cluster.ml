open Evaluation

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let separation ca cb =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc b -> Float.min acc (distance a b)) acc cb)
    infinity ca

(* Single-linkage agglomeration over index sets; returns the cluster
   index lists at k clusters together with every merge distance (in
   merge order). *)
let agglomerate_indices normalized k =
  let n = Array.length normalized in
  let clusters = ref (List.init n (fun i -> [ i ])) in
  let merges = ref [] in
  let cluster_dist ca cb =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc j -> Float.min acc (distance normalized.(i) normalized.(j)))
          acc cb)
      infinity ca
  in
  while List.length !clusters > k do
    (* Find the closest pair. *)
    let best = ref None in
    List.iteri
      (fun i ci ->
        List.iteri
          (fun j cj ->
            if j > i then begin
              let d = cluster_dist ci cj in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (ci, cj, d)
            end)
          !clusters)
      !clusters;
    match !best with
    | None -> ()
    | Some (ci, cj, d) ->
      merges := d :: !merges;
      clusters := (ci @ cj) :: List.filter (fun c -> c != ci && c != cj) !clusters
  done;
  (!clusters, List.rev !merges)

let agglomerative ~k points =
  if k < 1 then invalid_arg "Cluster.agglomerative: k must be >= 1";
  let arr = Array.of_list points in
  let normalized = Array.of_list (normalize points) in
  if Array.length arr <= k then List.map (fun p -> [ p ]) points
  else begin
    let clusters, _ = agglomerate_indices normalized k in
    clusters
    |> List.map (fun idxs -> List.map (fun i -> arr.(i)) (List.sort Stdlib.compare idxs))
    |> List.sort (fun a b -> Stdlib.compare (List.length b) (List.length a))
  end

let suggest_split points =
  match agglomerative ~k:2 points with
  | [ a; b ] -> Some (a, b)
  | _ -> None

let silhouette_gap points =
  let arr = Array.of_list (normalize points) in
  if Array.length arr < 3 then 0.0
  else begin
    let _, merges = agglomerate_indices arr 1 in
    match List.rev merges with
    | last :: prev :: _ -> if prev <= 0.0 then infinity else last /. prev
    | [ _ ] | [] -> 0.0
  end
