(** Multi-objective evaluation spaces.

    The paper's evaluation spaces are two-dimensional (area vs delay);
    its closing section announces power as a further figure of merit.
    Once three or more merits matter, the pairwise pictures of
    {!Evaluation} stop telling the whole story — a core can be
    off both 2-D fronts yet Pareto-optimal in 3-D.  This module provides
    dominance and front computation over any number of minimised
    axes. *)

type point = { label : string; coords : float array }

val point : label:string -> float array -> point
(** @raise Invalid_argument on an empty coordinate array. *)

val of_cores : merits:string list -> (string * Ds_reuse.Core.t) list -> point list
(** Project cores onto the given merit axes; cores missing any merit are
    skipped.  @raise Invalid_argument when [merits] is empty. *)

val dominates : point -> point -> bool
(** No worse on every axis, strictly better on at least one.
    @raise Invalid_argument on dimension mismatch. *)

val pareto_front : point list -> point list
(** Non-dominated subset, in input order.  All points must share a
    dimension. *)

val dominated_count : point list -> int

val ideal : point list -> float array option
(** Coordinate-wise minimum — the (usually infeasible) ideal point. *)

val nearest_to_ideal : point list -> point option
(** The front point closest (Euclidean, axes normalised to [0,1]) to
    the ideal — a reasonable single recommendation when the designer
    has no axis preference. *)

val pp_point : Format.formatter -> point -> unit
