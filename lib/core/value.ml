type t = Str of string | Int of int | Real of float | Flag of bool

let str s = Str s
let int i = Int i
let real r = Real r
let flag b = Flag b

let equal a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Real x, Real y -> Float.equal x y
  | Flag x, Flag y -> Bool.equal x y
  | (Str _ | Int _ | Real _ | Flag _), _ -> false

let to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Real r -> Printf.sprintf "%g" r
  | Flag b -> string_of_bool b

let as_str = function Str s -> Some s | Int _ | Real _ | Flag _ -> None
let as_int = function Int i -> Some i | Str _ | Real _ | Flag _ -> None

let as_real = function
  | Real r -> Some r
  | Int i -> Some (float_of_int i)
  | Str _ | Flag _ -> None

let as_flag = function Flag b -> Some b | Str _ | Int _ | Real _ -> None
let pp fmt v = Format.pp_print_string fmt (to_string v)
