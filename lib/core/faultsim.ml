module Prng = Ds_bignum.Prng

type mode = Raise | Return_nan | Diverge

let mode_name = function Raise -> "raise" | Return_nan -> "nan" | Diverge -> "diverge"

let mode_of_name = function
  | "raise" -> Some Raise
  | "nan" -> Some Return_nan
  | "diverge" -> Some Diverge
  | _ -> None

exception Injected of string
exception Runaway_divergence of string

(* Far above any Guard budget: the cap only fires when a wrapped closure
   is somehow invoked outside Guard.run, turning a hang into a test
   failure. *)
let divergence_cap = 10_000_000

let diverge name =
  let i = ref 0 in
  while true do
    Guard.tick ();
    incr i;
    if !i >= divergence_cap then raise (Runaway_divergence name)
  done;
  assert false

let wrap ?(seed = 0) ?(probability = 1.0) ~mode cc =
  let name = cc.Consistency.name in
  let fire =
    if probability >= 1.0 then fun () -> true
    else begin
      let g = Prng.create (seed lxor Hashtbl.hash name) in
      fun () -> Prng.float g < probability
    end
  in
  (* Predicates have no numeric result; NaN injection degrades to a
     raise there so every mode still produces a fault. *)
  let inject_predicate orig =
    if fire () then
      match mode with Raise | Return_nan -> raise (Injected name) | Diverge -> diverge name
    else orig ()
  in
  let with_deps fallback f =
    match Consistency.dep_properties cc with [] -> [ fallback ] | deps -> List.map f deps
  in
  let inject_values orig =
    if fire () then
      match mode with
      | Raise -> raise (Injected name)
      | Return_nan -> with_deps ("injected", Value.real Float.nan) (fun p -> (p, Value.real Float.nan))
      | Diverge -> diverge name
    else orig ()
  in
  let inject_metrics orig =
    if fire () then
      match mode with
      | Raise -> raise (Injected name)
      | Return_nan -> with_deps ("injected", Float.nan) (fun p -> (p, Float.nan))
      | Diverge -> diverge name
    else orig ()
  in
  let relation =
    match cc.Consistency.relation with
    | Consistency.Inconsistent { violated } ->
      Consistency.Inconsistent
        { violated = (fun env -> inject_predicate (fun () -> violated env)) }
    | Consistency.Eliminate { inferior; vectorized = _ } ->
      (* The vectorized kernel is dropped, not wrapped: the injected
         fault must surface through the per-core closure so the guard's
         strike/quarantine machinery sees it in sequential encounter
         order, exactly as on the naive path. *)
      Consistency.Eliminate
        {
          inferior = (fun env core -> inject_predicate (fun () -> inferior env core));
          vectorized = None;
        }
    | Consistency.Derive { compute } ->
      Consistency.Derive { compute = (fun env -> inject_values (fun () -> compute env)) }
    | Consistency.Estimator_context { tool; estimate } ->
      Consistency.Estimator_context
        { tool; estimate = (fun env -> inject_metrics (fun () -> estimate env)) }
  in
  Consistency.make_exn ~name ~doc:cc.Consistency.doc ~indep:cc.Consistency.indep
    ~dep:cc.Consistency.dep relation

let wrap_plan ?seed ?probability ~plan constraints =
  List.map
    (fun cc ->
      match List.assoc_opt cc.Consistency.name plan with
      | Some mode -> wrap ?seed ?probability ~mode cc
      | None -> cc)
    constraints

let parse_spec spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "expected CC=MODE, got %S" spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let raw = String.sub spec (i + 1) (String.length spec - i - 1) in
    if String.equal name "" then Error (Printf.sprintf "empty constraint name in %S" spec)
    else
      match mode_of_name raw with
      | Some mode -> Ok (name, mode)
      | None -> Error (Printf.sprintf "unknown fault mode %S (raise, nan or diverge)" raw))

let parse_plan specs =
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun plan -> Result.map (fun entry -> entry :: plan) (parse_spec spec)))
    (Ok []) specs
  |> Result.map List.rev
