module Core = Ds_reuse.Core

type issue_impact = {
  issue : string;
  option_counts : (string * int) list;
  separation : float;
}

(* Project cores declaring the issue onto normalised merit points,
   grouped by option.  Figures of merit routinely span orders of
   magnitude (Fig 6's hardware/software gap is ~400x), so strictly
   positive axes are log-scaled before normalisation: the separation
   score then reflects ratios, which is how designers read such
   spaces. *)
let grouped_points cores ~issue ~x ~y =
  let tagged =
    List.filter_map
      (fun (_, core) ->
        match (Core.property core issue, Core.merit core x, Core.merit core y) with
        | Some opt, Some vx, Some vy ->
          Some (opt, Evaluation.point ~label:core.Core.name ~x:vx ~y:vy)
        | _ -> None)
      cores
  in
  let log_scale axis values =
    if List.for_all (fun v -> v > 0.0) values then List.map log10 values
    else begin
      ignore axis;
      values
    end
  in
  let xs = log_scale `X (List.map (fun (_, p) -> p.Evaluation.x) tagged) in
  let ys = log_scale `Y (List.map (fun (_, p) -> p.Evaluation.y) tagged) in
  let tagged =
    List.map2
      (fun (opt, p) (x', y') -> (opt, { p with Evaluation.x = x'; Evaluation.y = y' }))
      tagged (List.combine xs ys)
  in
  let normalized = Evaluation.normalize (List.map snd tagged) in
  let tagged = List.map2 (fun (opt, _) p -> (opt, p)) tagged normalized in
  let options = List.sort_uniq String.compare (List.map fst tagged) in
  List.map
    (fun opt -> (opt, List.filter_map (fun (o, p) -> if String.equal o opt then Some p else None) tagged))
    options

let centroid points =
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun acc p -> acc +. p.Evaluation.x) 0.0 points in
  let sy = List.fold_left (fun acc p -> acc +. p.Evaluation.y) 0.0 points in
  (sx /. n, sy /. n)

let sq_dist (cx, cy) p =
  let dx = p.Evaluation.x -. cx and dy = p.Evaluation.y -. cy in
  (dx *. dx) +. (dy *. dy)

let impact cores ~issue ~x ~y =
  let groups = grouped_points cores ~issue ~x ~y in
  let option_counts =
    groups
    |> List.map (fun (opt, pts) -> (opt, List.length pts))
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  in
  let populated = List.filter (fun (_, pts) -> pts <> []) groups in
  if List.length populated < 2 then { issue; option_counts; separation = 0.0 }
  else begin
    let all_points = List.concat_map snd populated in
    let total = float_of_int (List.length all_points) in
    let grand = centroid all_points in
    (* Fisher ratio: weighted between-group variance over pooled
       within-group variance. *)
    let between =
      List.fold_left
        (fun acc (_, pts) ->
          let w = float_of_int (List.length pts) in
          let c = centroid pts in
          acc +. (w *. sq_dist grand (Evaluation.point ~label:"" ~x:(fst c) ~y:(snd c))))
        0.0 populated
      /. total
    in
    let within =
      List.fold_left
        (fun acc (_, pts) ->
          let c = centroid pts in
          acc +. List.fold_left (fun acc p -> acc +. sq_dist c p) 0.0 pts)
        0.0 populated
      /. total
    in
    let separation = if within <= 1e-12 then between /. 1e-12 else between /. within in
    { issue; option_counts; separation }
  end

let rank_issues cores ~issues ~x ~y =
  issues
  |> List.map (fun issue -> impact cores ~issue ~x ~y)
  |> List.sort (fun a b -> Float.compare b.separation a.separation)

let derive_hierarchy ~name ?(max_depth = 4) ?(min_leaf_cores = 2) cores ~issues ~x ~y =
  if cores = [] then Error "empty core population"
  else begin
    (* Distinguish sibling CDOs that would otherwise collide on names by
       qualifying with the branch path. *)
    let rec build node_name branch_cores remaining depth =
      let splittable =
        rank_issues branch_cores ~issues:remaining ~x ~y
        |> List.filter (fun imp ->
               imp.separation > 0.0 && List.length imp.option_counts >= 2)
      in
      match splittable with
      | _ when depth >= max_depth || List.length branch_cores < min_leaf_cores ->
        Cdo.leaf_exn ~name:node_name []
      | [] -> Cdo.leaf_exn ~name:node_name []
      | best :: _ ->
        let options = List.map fst best.option_counts in
        let issue =
          Property.design_issue ~generalized:true ~name:best.issue
            ~domain:(Domain.enum options)
            ~doc:(Printf.sprintf "derived: separation %.2f" best.separation)
            ()
        in
        let remaining = List.filter (fun i -> not (String.equal i best.issue)) remaining in
        let children =
          List.map
            (fun opt ->
              let sub =
                List.filter
                  (fun (_, core) ->
                    match Core.property core best.issue with
                    | Some v -> String.equal v opt
                    | None -> false)
                  branch_cores
              in
              (opt, build opt sub remaining (depth + 1)))
            options
        in
        Cdo.node_exn ~name:node_name [] ~issue ~children
    in
    let root = build name cores issues 0 in
    if Cdo.is_leaf root then Error "no issue discriminates the population"
    else Hierarchy.create root
  end

let guidance_quality hierarchy cores ~merit =
  let root = Hierarchy.root hierarchy in
  match Cdo.generalized_issue root with
  | None -> nan
  | Some issue ->
    let issue_name = issue.Property.name in
    let by_option =
      List.filter_map
        (fun (opt, _) ->
          let family =
            List.filter_map
              (fun (_, core) ->
                match (Core.property core issue_name, Core.merit core merit) with
                | Some v, Some m when String.equal v opt -> Some m
                | _ -> None)
              cores
          in
          match Evaluation.range family with
          | Some (lo, hi) when lo > 0.0 -> Some (List.length family, (hi -. lo) /. lo)
          | Some _ | None -> None)
        (match Domain.options issue.Property.domain with
        | Some opts -> List.map (fun o -> (o, ())) opts
        | None -> [])
    in
    let total = List.fold_left (fun acc (n, _) -> acc + n) 0 by_option in
    if total = 0 then nan
    else
      List.fold_left
        (fun acc (n, spread) -> acc +. (float_of_int n /. float_of_int total *. spread))
        0.0 by_option
