type severity = Warning | Error

type finding = { severity : severity; subject : string; message : string }

let finding severity subject message = { severity; subject; message }

(* Does the reference address at least one (node, visible property)
   pair?  Mirrors the runtime rule: a reference applies at any focus
   whose ancestor-or-self matches the pattern, so the property may be
   visible at the matching node itself or anywhere below it (the paper
   writes [Algorithm@OMM] for an issue defined in OMM's hardware
   specialization). *)
let ref_resolves hierarchy pref =
  let matching = Hierarchy.nodes_matching hierarchy pref in
  let is_prefix prefix path =
    let rec go = function
      | [], _ -> true
      | _ :: _, [] -> false
      | p :: ps, q :: qs -> String.equal p q && go (ps, qs)
    in
    go (prefix, path)
  in
  List.exists
    (fun (matched_path, _) ->
      List.exists
        (fun path ->
          is_prefix matched_path path
          && Hierarchy.find_property hierarchy path pref.Propref.property <> None)
        (Hierarchy.node_paths hierarchy))
    matching

let property_exists_somewhere hierarchy name =
  List.exists
    (fun path ->
      match Hierarchy.find hierarchy path with
      | Some cdo -> Cdo.property cdo name <> None
      | None -> false)
    (Hierarchy.node_paths hierarchy)

(* Probe the value-producing closures with an empty environment: a
   formula that yields non-finite values before any input is bound is
   broken unconditionally, and one that spins past the step budget will
   spin in sessions too.  Raising is tolerated — sessions only evaluate
   a closure once its independent set is bound, and closures may assume
   that. *)
let probe_findings cc =
  let assess what = function
    | Stdlib.Error ((Guard.Budget_exhausted _ | Guard.Non_finite _) as fault) ->
      [
        finding Warning cc.Consistency.name
          (Printf.sprintf "%s probed with no inputs: %s" what (Guard.describe_fault fault));
      ]
    | Stdlib.Error (Guard.Raised _ | Guard.Diverged _) | Stdlib.Ok _ -> []
  in
  match cc.Consistency.relation with
  | Consistency.Derive { compute } ->
    assess "derive formula"
      (Result.bind (Guard.run (fun () -> compute Consistency.empty_env)) Guard.finite_values)
  | Consistency.Estimator_context { tool; estimate } ->
    assess
      (Printf.sprintf "estimator %s" tool)
      (Result.bind (Guard.run (fun () -> estimate Consistency.empty_env)) Guard.finite_metrics)
  | Consistency.Inconsistent _ | Consistency.Eliminate _ -> []

let check_constraints hierarchy constraints =
  let dangling =
    List.concat_map
      (fun cc ->
        List.filter_map
          (fun pref ->
            if ref_resolves hierarchy pref then None
            else if
              (* a pattern that hits a node but names a property defined
                 nowhere is a hard error; a dependent metric that exists
                 nowhere at all is only a warning (handled below) *)
              Hierarchy.nodes_matching hierarchy pref = []
            then
              Some
                (finding Error cc.Consistency.name
                   (Printf.sprintf "reference %s matches no hierarchy node" (Propref.to_string pref)))
            else if property_exists_somewhere hierarchy pref.Propref.property then
              Some
                (finding Error cc.Consistency.name
                   (Printf.sprintf "property of %s is not visible at any matching node"
                      (Propref.to_string pref)))
            else if List.memq pref cc.Consistency.indep then
              Some
                (finding Error cc.Consistency.name
                   (Printf.sprintf "independent reference %s names an unknown property"
                      (Propref.to_string pref)))
            else
              Some
                (finding Warning cc.Consistency.name
                   (Printf.sprintf
                      "dependent %s names a property that exists nowhere (pure metric?)"
                      (Propref.to_string pref))))
          (cc.Consistency.indep @ cc.Consistency.dep))
      constraints
  in
  let duplicates =
    let names = List.map (fun cc -> cc.Consistency.name) constraints in
    let sorted = List.sort String.compare names in
    let rec dups = function
      | a :: (b :: _ as rest) -> if String.equal a b then a :: dups rest else dups rest
      | [ _ ] | [] -> []
    in
    List.map
      (fun name -> finding Error name "duplicate constraint name")
      (List.sort_uniq String.compare (dups sorted))
  in
  dangling @ duplicates @ List.concat_map probe_findings constraints

let check_nodes hierarchy =
  List.concat_map
    (fun path ->
      match Hierarchy.find hierarchy path with
      | None -> []
      | Some cdo ->
        let subject = String.concat "." path in
        let undocumented =
          List.filter_map
            (fun p ->
              if
                Property.is_design_issue p
                && String.equal p.Property.doc ""
                && p.Property.default = None
              then
                Some
                  (finding Warning subject
                     (Printf.sprintf "design issue %S has neither doc nor default"
                        p.Property.name))
              else None)
            (Cdo.all_properties cdo)
        in
        let degenerate =
          match Cdo.generalized_issue cdo with
          | Some issue -> (
            match Domain.options issue.Property.domain with
            | Some [ _ ] ->
              [
                finding Warning subject
                  (Printf.sprintf "generalized issue %S has a single option" issue.Property.name);
              ]
            | Some _ | None -> [])
          | None -> []
        in
        undocumented @ degenerate)
    (Hierarchy.node_paths hierarchy)

let check ?(constraints = []) hierarchy =
  let findings = check_constraints hierarchy constraints @ check_nodes hierarchy in
  let errors, warnings = List.partition (fun f -> f.severity = Error) findings in
  errors @ warnings

let is_clean ?constraints hierarchy =
  not (List.exists (fun f -> f.severity = Error) (check ?constraints hierarchy))

let pp_finding fmt f =
  Format.fprintf fmt "%s [%s] %s"
    (match f.severity with Warning -> "warning" | Error -> "error")
    f.subject f.message
