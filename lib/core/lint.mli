(** Static checks for layer definitions.

    The layer's property references are resolved by pattern matching
    ([Radix@*.Hardware.Montgomery]); a typo in a pattern or a property
    name does not fail loudly — the constraint simply never becomes
    ready and never fires.  This linter catches that class of mistake
    when a layer is assembled, along with other definition-level
    smells. *)

type severity = Warning | Error

type finding = {
  severity : severity;
  subject : string;  (** e.g. "CC2" or a node path *)
  message : string;
}

val check : ?constraints:Consistency.t list -> Hierarchy.t -> finding list
(** All findings, errors first.  Checks performed:

    - {b dangling reference} (error): a constraint reference whose
      pattern matches no hierarchy node, or whose property is not
      visible at any matching node;
    - {b duplicate constraint names} (error);
    - {b unreachable estimator/derive target} (warning): a dependent
      property that exists nowhere in the hierarchy (derivations to it
      can never bind — legitimate for pure metrics, hence a warning);
    - {b undocumented design issue} (warning): a design issue with no
      doc string and no default — self-documentation gap;
    - {b single-option generalized issue} (warning): a specialization
      that cannot discriminate;
    - {b faulty formula probe} (warning): a derive/estimator closure
      that, evaluated under {!Guard.run} with an empty environment,
      produces non-finite values or exhausts the step budget (raising is
      tolerated: closures may assume their independent set is bound). *)

val is_clean : ?constraints:Consistency.t list -> Hierarchy.t -> bool
(** No errors (warnings allowed). *)

val pp_finding : Format.formatter -> finding -> unit
