type fault =
  | Raised of string
  | Non_finite of string
  | Budget_exhausted of int
  | Diverged of string

let describe_fault = function
  | Raised exn -> "raised: " ^ exn
  | Non_finite what -> "non-finite value: " ^ what
  | Budget_exhausted budget -> Printf.sprintf "evaluation budget exhausted (%d steps)" budget
  | Diverged what -> "diverged: " ^ what

let default_budget = 100_000

exception Out_of_fuel

(* Stack of fuel counters: the innermost [run] owns the head.  Nested
   runs (a guarded closure calling back into guarded library code) each
   burn their own budget. *)
let fuel : int ref list ref = ref []

let tick () =
  match !fuel with
  | [] -> ()
  | r :: _ ->
    decr r;
    if !r <= 0 then raise Out_of_fuel

let run ?(budget = default_budget) f =
  let r = ref budget in
  fuel := r :: !fuel;
  let pop () = match !fuel with _ :: rest -> fuel := rest | [] -> () in
  match f () with
  | v ->
    pop ();
    Ok v
  | exception e ->
    pop ();
    (match e with
    | Out_of_fuel -> Error (Budget_exhausted budget)
    | Out_of_memory -> raise e
    | e -> Error (Raised (Printexc.to_string e)))

let is_finite v = Float.is_finite v

let finite_metrics metrics =
  match List.find_opt (fun (_, v) -> not (is_finite v)) metrics with
  | Some (name, v) -> Error (Non_finite (Printf.sprintf "%s = %h" name v))
  | None -> Ok metrics

let finite_values values =
  let bad (_, value) = match value with Value.Real v -> not (is_finite v) | _ -> false in
  match List.find_opt bad values with
  | Some (name, value) -> Error (Non_finite (Printf.sprintf "%s = %s" name (Value.to_string value)))
  | None -> Ok values

type status =
  | Healthy
  | Degraded
  | Quarantined of { reason : string; at_event : int }

let status_label = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined _ -> "quarantined"

type diag = {
  cc : string;
  op : string;
  fault : fault;
  quarantines : bool;
  seq : int;
}

let describe_diag d =
  Printf.sprintf "%s %s during %s: %s" d.cc
    (if d.quarantines then "quarantined" else "faulted")
    d.op (describe_fault d.fault)

type entry = { mutable status : status; mutable strikes : int }

type registry = {
  states : (string, entry) Hashtbl.t;
  mutable order : string list; (* first-fault order, newest first *)
  mutable trail : diag list; (* newest first *)
  mutable next_seq : int;
}

let registry () = { states = Hashtbl.create 8; order = []; trail = []; next_seq = 0 }

let strikes_to_quarantine = 3

let entry_of reg cc =
  match Hashtbl.find_opt reg.states cc with
  | Some e -> e
  | None ->
    let e = { status = Healthy; strikes = 0 } in
    Hashtbl.add reg.states cc e;
    reg.order <- cc :: reg.order;
    e

let push reg diag =
  reg.trail <- diag :: reg.trail;
  reg.next_seq <- reg.next_seq + 1;
  diag

let record reg ~cc ~op fault =
  let e = entry_of reg cc in
  let seq = reg.next_seq in
  let quarantines =
    match e.status with
    | Quarantined _ -> false
    | Healthy | Degraded -> (
      e.strikes <- e.strikes + 1;
      match fault with
      | Budget_exhausted _ | Diverged _ -> true
      | Raised _ | Non_finite _ -> e.strikes >= strikes_to_quarantine)
  in
  if quarantines then e.status <- Quarantined { reason = describe_fault fault; at_event = seq }
  else if e.status = Healthy then e.status <- Degraded;
  push reg { cc; op; fault; quarantines; seq }

let force_quarantine reg ~cc ~op fault =
  let e = entry_of reg cc in
  match e.status with
  | Quarantined _ -> None
  | Healthy | Degraded ->
    let seq = reg.next_seq in
    e.status <- Quarantined { reason = describe_fault fault; at_event = seq };
    Some (push reg { cc; op; fault; quarantines = true; seq })

let status_of reg cc =
  match Hashtbl.find_opt reg.states cc with Some e -> e.status | None -> Healthy

let quarantined reg cc =
  match status_of reg cc with Quarantined _ -> true | Healthy | Degraded -> false

let diags reg = List.rev reg.trail
let diag_count reg = reg.next_seq

let faulty reg =
  List.rev_map (fun cc -> (cc, (Hashtbl.find reg.states cc).status)) reg.order
