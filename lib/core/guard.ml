module Obs = Ds_obs.Obs

type fault =
  | Raised of string
  | Non_finite of string
  | Budget_exhausted of int
  | Diverged of string

let describe_fault = function
  | Raised exn -> "raised: " ^ exn
  | Non_finite what -> "non-finite value: " ^ what
  | Budget_exhausted budget -> Printf.sprintf "evaluation budget exhausted (%d steps)" budget
  | Diverged what -> "diverged: " ^ what

let default_budget = 100_000

exception Out_of_fuel

(* Stack of fuel counters: the innermost [run] owns the head.  Nested
   runs (a guarded closure calling back into guarded library code) each
   burn their own budget.  The stack is domain-local: parallel sweeps
   ({!Parallel}) evaluate closures on worker domains concurrently, and
   each domain's budgets must be its own. *)
let fuel : int ref list Stdlib.Domain.DLS.key =
  Stdlib.Domain.DLS.new_key (fun () -> [])

let tick () =
  match Stdlib.Domain.DLS.get fuel with
  | [] -> ()
  | r :: _ ->
    decr r;
    if !r <= 0 then raise Out_of_fuel

let run ?(budget = default_budget) f =
  let r = ref budget in
  Stdlib.Domain.DLS.set fuel (r :: Stdlib.Domain.DLS.get fuel);
  (* pop by identity, not by position: robust even if systhreads of one
     domain interleave their runs (worst case a budget goes unenforced
     for a bit; never a spurious Out_of_fuel) *)
  let pop () =
    Stdlib.Domain.DLS.set fuel
      (List.filter (fun x -> x != r) (Stdlib.Domain.DLS.get fuel))
  in
  match f () with
  | v ->
    pop ();
    Ok v
  | exception e ->
    pop ();
    (match e with
    | Out_of_fuel -> Error (Budget_exhausted budget)
    | Out_of_memory -> raise e
    | e -> Error (Raised (Printexc.to_string e)))

let is_finite v = Float.is_finite v

let finite_metrics metrics =
  match List.find_opt (fun (_, v) -> not (is_finite v)) metrics with
  | Some (name, v) -> Error (Non_finite (Printf.sprintf "%s = %h" name v))
  | None -> Ok metrics

let finite_values values =
  let bad (_, value) = match value with Value.Real v -> not (is_finite v) | _ -> false in
  match List.find_opt bad values with
  | Some (name, value) -> Error (Non_finite (Printf.sprintf "%s = %s" name (Value.to_string value)))
  | None -> Ok values

type status =
  | Healthy
  | Degraded
  | Quarantined of { reason : string; at_event : int }

let status_label = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined _ -> "quarantined"

type diag = {
  cc : string;
  op : string;
  fault : fault;
  quarantines : bool;
  seq : int;
}

let describe_diag d =
  Printf.sprintf "%s %s during %s: %s" d.cc
    (if d.quarantines then "quarantined" else "faulted")
    d.op (describe_fault d.fault)

type entry = { mutable status : status; mutable strikes : int }

(* The registry is shared by a whole session lineage and, since the
   service stopped serializing requests globally, by concurrent
   requests on different domains: all mutation and every compound read
   happen under [lock].  [next_seq] doubles as the published diagnostic
   count; it is an atomic so the hot-path staleness probe
   ({!diag_count}, one call per core in the candidate sweep) stays
   lock-free. *)
type registry = {
  lock : Mutex.t;
  states : (string, entry) Hashtbl.t;
  mutable order : string list; (* first-fault order, newest first *)
  mutable trail : diag list; (* newest first *)
  next_seq : int Atomic.t;
}

let registry () =
  {
    lock = Mutex.create ();
    states = Hashtbl.create 8;
    order = [];
    trail = [];
    next_seq = Atomic.make 0;
  }

let locked reg f =
  Mutex.lock reg.lock;
  match f () with
  | v ->
    Mutex.unlock reg.lock;
    v
  | exception e ->
    Mutex.unlock reg.lock;
    raise e

let strikes_to_quarantine = 3

(* Telemetry (DESIGN.md 13): faults and quarantines are global-registry
   counters plus instant spans, so a pruning trace shows exactly when a
   constraint dropped out. *)
let m_faults = Obs.counter Obs.default "dse_engine_guard_faults_total"
let m_quarantines = Obs.counter Obs.default "dse_engine_guard_quarantines_total"

let observe_diag d =
  Obs.incr m_faults;
  if d.quarantines then Obs.incr m_quarantines;
  if Obs.recording () then
    Obs.instant "guard.fault"
      ~attrs:
        [
          ("cc", d.cc);
          ("op", d.op);
          ("fault", describe_fault d.fault);
          ("quarantines", if d.quarantines then "true" else "false");
        ]

let entry_of reg cc =
  match Hashtbl.find_opt reg.states cc with
  | Some e -> e
  | None ->
    let e = { status = Healthy; strikes = 0 } in
    Hashtbl.add reg.states cc e;
    reg.order <- cc :: reg.order;
    e

let push reg diag =
  reg.trail <- diag :: reg.trail;
  Atomic.incr reg.next_seq;
  diag

let record reg ~cc ~op fault =
  locked reg (fun () ->
      let e = entry_of reg cc in
      let seq = Atomic.get reg.next_seq in
      let quarantines =
        match e.status with
        | Quarantined _ -> false
        | Healthy | Degraded -> (
          e.strikes <- e.strikes + 1;
          match fault with
          | Budget_exhausted _ | Diverged _ -> true
          | Raised _ | Non_finite _ -> e.strikes >= strikes_to_quarantine)
      in
      if quarantines then
        e.status <- Quarantined { reason = describe_fault fault; at_event = seq }
      else if e.status = Healthy then e.status <- Degraded;
      let d = push reg { cc; op; fault; quarantines; seq } in
      observe_diag d;
      d)

let force_quarantine reg ~cc ~op fault =
  locked reg (fun () ->
      let e = entry_of reg cc in
      match e.status with
      | Quarantined _ -> None
      | Healthy | Degraded ->
        let seq = Atomic.get reg.next_seq in
        e.status <- Quarantined { reason = describe_fault fault; at_event = seq };
        let d = push reg { cc; op; fault; quarantines = true; seq } in
        observe_diag d;
        Some d)

let status_of reg cc =
  locked reg (fun () ->
      match Hashtbl.find_opt reg.states cc with Some e -> e.status | None -> Healthy)

let quarantined reg cc =
  match status_of reg cc with Quarantined _ -> true | Healthy | Degraded -> false

let diags reg = locked reg (fun () -> List.rev reg.trail)
let diag_count reg = Atomic.get reg.next_seq

let faulty reg =
  locked reg (fun () ->
      List.rev_map (fun cc -> (cc, (Hashtbl.find reg.states cc).status)) reg.order)
