module Core = Ds_reuse.Core

type point = { label : string; x : float; y : float }

let point ~label ~x ~y = { label; x; y }

(* Per-element passes over the candidate list run chunked on the
   {!Parallel} pool when the population is large enough; chunk results
   concatenate in index order, so the output is the sequential one
   regardless of the pool size. *)
let chunked_filter_map f cores =
  let arr = Array.of_list cores in
  let n = Array.length arr in
  Parallel.map_chunks ~n (fun lo hi ->
      let acc = ref [] in
      for i = hi - 1 downto lo do
        match f arr.(i) with Some v -> acc := v :: !acc | None -> ()
      done;
      !acc)
  |> List.concat

let of_cores ~x ~y cores =
  chunked_filter_map
    (fun (_, core) ->
      match (Core.merit core x, Core.merit core y) with
      | Some vx, Some vy -> Some { label = core.Core.name; x = vx; y = vy }
      | None, _ | _, None -> None)
    cores

let dominates a b = a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y)

let by_xy a b = match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c

(* Sort-and-sweep, O(n log n).  After sorting by (x asc, y asc), walk
   the x-groups left to right carrying the minimum y seen in strictly
   earlier groups: a point is dominated exactly when that minimum is <=
   its y (an earlier-x, no-worse-y point) or a same-x point has strictly
   smaller y (the group's head).  Exact duplicates never dominate each
   other, so a whole group tied at its minimum survives — same
   semantics as the quadratic pairwise filter this replaces.  A point
   with a NaN coordinate neither dominates nor is dominated (every
   comparison is false), so NaN points bypass the sweep and always
   reach the front. *)
let pareto_front points =
  let nan_points, finite =
    List.partition (fun p -> Float.is_nan p.x || Float.is_nan p.y) points
  in
  let sorted = List.stable_sort by_xy finite in
  let rec sweep best_y acc = function
    | [] -> acc
    | p :: _ as pts ->
      let rec split group = function
        | q :: tl when Float.compare q.x p.x = 0 -> split (q :: group) tl
        | tl -> (List.rev group, tl)
      in
      let same_x, rest = split [] pts in
      let y0 = p.y in
      (* [same_x] is y-ascending, so [p] holds the group's minimum *)
      let earlier_dominates y = match best_y with Some b -> b <= y | None -> false in
      let acc =
        List.fold_left
          (fun acc q -> if earlier_dominates q.y || q.y > y0 then acc else q :: acc)
          acc same_x
      in
      let best_y = Some (match best_y with Some b -> Float.min b y0 | None -> y0) in
      sweep best_y acc rest
  in
  List.sort by_xy (nan_points @ List.rev (sweep None [] sorted))

(* Quadratic pairwise probe (diagnostic view, not the front itself);
   each point's scan is independent, so the outer loop chunks over the
   pool. *)
let dominated points =
  chunked_filter_map
    (fun p -> if List.exists (fun q -> dominates q p) points then Some p else None)
    points

let range = function
  | [] -> None
  | v :: rest ->
    Some (List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x)) (v, v) rest)

type merit_summary = {
  merit_range : (float * float) option;
  skipped_non_finite : int;
  missing : int;
}

(* NaN propagates through Float.min/Float.max and would poison the whole
   range; non-finite merits are counted out instead of folded in.  The
   range folds directly over the cores (no intermediate value list —
   this is the hot path behind the service's [ranges] op), in pool
   chunks whose (lo, hi, counts) partial summaries combine
   associatively. *)
let merit_summary cores ~merit =
  let arr = Array.of_list cores in
  let n = Array.length arr in
  let partials =
    Parallel.map_chunks ~n (fun lo hi ->
        let rlo = ref infinity and rhi = ref neg_infinity in
        let seen = ref false and skipped = ref 0 and missing = ref 0 in
        for i = lo to hi - 1 do
          match Core.merit (snd arr.(i)) merit with
          | None -> incr missing
          | Some v when not (Float.is_finite v) -> incr skipped
          | Some v ->
            seen := true;
            if v < !rlo then rlo := v;
            if v > !rhi then rhi := v
        done;
        (!rlo, !rhi, !seen, !skipped, !missing))
  in
  let merit_range, skipped_non_finite, missing =
    List.fold_left
      (fun (r, sk, mi) (clo, chi, cseen, csk, cmi) ->
        let r =
          if not cseen then r
          else
            match r with
            | None -> Some (clo, chi)
            | Some (lo, hi) -> Some (Float.min lo clo, Float.max hi chi)
        in
        (r, sk + csk, mi + cmi))
      (None, 0, 0) partials
  in
  { merit_range; skipped_non_finite; missing }

(* The same summary off a survivor bitset and the index's flat merit
   column: no list is materialized and no per-core assoc walk happens —
   one array read (plus a presence-bit test) per surviving core.  An
   absent column means no core carries the merit, i.e. every survivor
   counts as missing, exactly as the list fold would find. *)
let merit_summary_columnar store bits ~merit =
  match Columnar.merit_column store merit with
  | None -> { merit_range = None; skipped_non_finite = 0; missing = Bitset.count bits }
  | Some (values, present) ->
    let rlo = ref infinity and rhi = ref neg_infinity in
    let seen = ref false and skipped = ref 0 and missing = ref 0 in
    Bitset.iter_true
      (fun i ->
        if not (Bitset.mem present i) then incr missing
        else begin
          let v = Array.unsafe_get values i in
          if not (Float.is_finite v) then incr skipped
          else begin
            seen := true;
            if v < !rlo then rlo := v;
            if v > !rhi then rhi := v
          end
        end)
      bits;
    {
      merit_range = (if !seen then Some (!rlo, !rhi) else None);
      skipped_non_finite = !skipped;
      missing = !missing;
    }

let merit_range cores ~merit = (merit_summary cores ~merit).merit_range

let normalize points =
  let xs = List.map (fun p -> p.x) points and ys = List.map (fun p -> p.y) points in
  match (range xs, range ys) with
  | None, _ | _, None -> []
  | Some (xlo, xhi), Some (ylo, yhi) ->
    let scale lo hi v = if hi -. lo <= 0.0 then 0.0 else (v -. lo) /. (hi -. lo) in
    List.map (fun p -> { p with x = scale xlo xhi p.x; y = scale ylo yhi p.y }) points

let pp_point fmt p = Format.fprintf fmt "%s (%.4g, %.4g)" p.label p.x p.y
