module Core = Ds_reuse.Core

type point = { label : string; x : float; y : float }

let point ~label ~x ~y = { label; x; y }

let of_cores ~x ~y cores =
  List.filter_map
    (fun (_, core) ->
      match (Core.merit core x, Core.merit core y) with
      | Some vx, Some vy -> Some { label = core.Core.name; x = vx; y = vy }
      | None, _ | _, None -> None)
    cores

let dominates a b = a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y)

let pareto_front points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort (fun a b ->
         match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c)

let dominated points = List.filter (fun p -> List.exists (fun q -> dominates q p) points) points

let range = function
  | [] -> None
  | v :: rest ->
    Some (List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x)) (v, v) rest)

type merit_summary = {
  merit_range : (float * float) option;
  skipped_non_finite : int;
  missing : int;
}

(* NaN propagates through Float.min/Float.max and would poison the whole
   range; non-finite merits are counted out instead of folded in. *)
let merit_summary cores ~merit =
  let values, skipped_non_finite, missing =
    List.fold_left
      (fun (values, skipped, missing) (_, core) ->
        match Core.merit core merit with
        | None -> (values, skipped, missing + 1)
        | Some v when not (Float.is_finite v) -> (values, skipped + 1, missing)
        | Some v -> (v :: values, skipped, missing))
      ([], 0, 0) cores
  in
  { merit_range = range (List.rev values); skipped_non_finite; missing }

let merit_range cores ~merit = (merit_summary cores ~merit).merit_range

let normalize points =
  let xs = List.map (fun p -> p.x) points and ys = List.map (fun p -> p.y) points in
  match (range xs, range ys) with
  | None, _ | _, None -> []
  | Some (xlo, xhi), Some (ylo, yhi) ->
    let scale lo hi v = if hi -. lo <= 0.0 then 0.0 else (v -. lo) /. (hi -. lo) in
    List.map (fun p -> { p with x = scale xlo xhi p.x; y = scale ylo yhi p.y }) points

let pp_point fmt p = Format.fprintf fmt "%s (%.4g, %.4g)" p.label p.x p.y
