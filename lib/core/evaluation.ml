module Core = Ds_reuse.Core

type point = { label : string; x : float; y : float }

let point ~label ~x ~y = { label; x; y }

let of_cores ~x ~y cores =
  List.filter_map
    (fun (_, core) ->
      match (Core.merit core x, Core.merit core y) with
      | Some vx, Some vy -> Some { label = core.Core.name; x = vx; y = vy }
      | None, _ | _, None -> None)
    cores

let dominates a b = a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y)

let pareto_front points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort (fun a b ->
         match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c)

let dominated points = List.filter (fun p -> List.exists (fun q -> dominates q p) points) points

let range = function
  | [] -> None
  | v :: rest ->
    Some (List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x)) (v, v) rest)

let merit_range cores ~merit = range (List.filter_map (fun (_, core) -> Core.merit core merit) cores)

let normalize points =
  let xs = List.map (fun p -> p.x) points and ys = List.map (fun p -> p.y) points in
  match (range xs, range ys) with
  | None, _ | _, None -> []
  | Some (xlo, xhi), Some (ylo, yhi) ->
    let scale lo hi v = if hi -. lo <= 0.0 then 0.0 else (v -. lo) /. (hi -. lo) in
    List.map (fun p -> { p with x = scale xlo xhi p.x; y = scale ylo yhi p.y }) points

let pp_point fmt p = Format.fprintf fmt "%s (%.4g, %.4g)" p.label p.x p.y
