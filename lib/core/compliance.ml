(* One verdict slot per constraint.  The stamp is the (generation,
   focus) pair the stored verdicts were computed under; a store with a
   different stamp clears the slot first, so each constraint holds at
   most one generation's verdicts (latest wins — interactive queries
   revisit the current state, not past ones).

   Verdicts live in a byte array indexed by interned core id (0 =
   unknown, 1 = inferior, 2 = kept): the hot path of a warm query is
   one array read per (constraint, core), with the single string-hash
   probe per core paid once in {!core_ids}, not per constraint.

   Concurrency: one table serves a session lineage, and since the
   exploration service stopped serializing requests globally, several
   domains can query (and thus populate) the same lineage at once.  All
   table mutation happens under [lock].  The per-core sweep itself runs
   lockless against a {!Slot.view}: [slot] pre-grows the byte array to
   cover every interned id while holding the lock, so the buffer a
   query reads is never reallocated under it, and new verdicts are
   buffered by the sweep and written back in one {!Slot.merge} — which
   re-checks the stamp, so a sweep that overlapped an invalidation
   discards its write-back instead of poisoning the new generation.
   Racing sweeps at the same stamp compute identical verdicts
   (closures are deterministic), so their merges are idempotent. *)
module Obs = Ds_obs.Obs

(* Process-wide cache traffic, aggregated across every lineage's cache
   into the global telemetry registry (DESIGN.md 13).  The per-cache
   [stats] record below stays the per-lineage view. *)
let m_verdict_hits = Obs.counter Obs.default "dse_engine_verdict_cache_hits_total"
let m_verdict_misses = Obs.counter Obs.default "dse_engine_verdict_cache_misses_total"
let m_survivor_hits = Obs.counter Obs.default "dse_engine_survivor_cache_hits_total"
let m_survivor_misses = Obs.counter Obs.default "dse_engine_survivor_cache_misses_total"

type slot = {
  mutable gen : int;
  mutable focus : string;
  mutable verdicts : Bytes.t; (* interned core id -> verdict byte *)
}

type t = {
  lock : Mutex.t;
  slots : (string, slot) Hashtbl.t; (* constraint name -> verdicts *)
  survivors : (string, (string * Ds_reuse.Core.t) list) Hashtbl.t;
      (* full state signature -> candidate list *)
  gens : (string, int) Hashtbl.t;
      (* constraint-state key (constraint name + the values of every
         property it mentions) -> the generation minted for that state.
         Re-entering a state reuses its generation, so the state
         signature — and with it the survivor table — recognises
         revisited states instead of treating each visit as new. *)
  summaries : (string, Evaluation.merit_summary) Hashtbl.t;
      (* state signature + merit name -> that state's merit summary.
         Merit values are immutable per core and the candidate set is a
         function of the signature, so the summary is too; this spares
         a revisited state the full fold over the surviving pool. *)
  signatures : (string, string) Hashtbl.t;
      (* observable-state key -> candidate signature digest.  The
         digest folds every surviving core id into a hash; memoizing it
         spares a revisited state that whole-pool walk.  The stored
         value is exactly what the full computation produced, so
         journal signatures stay bit-identical. *)
  ids : (string, int) Hashtbl.t; (* core qualified-id -> dense id *)
  mutable next_id : int;
  mutable next_gen : int;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable survivor_hits : int;
  mutable survivor_misses : int;
}

(* The survivor table is keyed by full state signatures, which an
   unbounded exploration could mint without limit; past this many
   distinct states the table restarts (verdict slots, the expensive part
   of a recompute, are unaffected). *)
let max_survivor_entries = 128

(* Same pressure-release valve for the generation memo: past this many
   distinct constraint states the memo restarts, and revisited states
   simply mint fresh generations again (a cache miss, never a wrong
   answer — distinct states can never share a generation because the
   key embeds the constraint's relevant binding values). *)
let max_gen_entries = 1024

let create () =
  {
    lock = Mutex.create ();
    slots = Hashtbl.create 16;
    survivors = Hashtbl.create 32;
    gens = Hashtbl.create 32;
    summaries = Hashtbl.create 32;
    signatures = Hashtbl.create 32;
    ids = Hashtbl.create 256;
    next_id = 0;
    next_gen = 0;
    verdict_hits = 0;
    verdict_misses = 0;
    survivor_hits = 0;
    survivor_misses = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let fresh_generation t =
  locked t (fun () ->
      t.next_gen <- t.next_gen + 1;
      t.next_gen)

let generation_for t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.gens key with
      | Some gen -> gen
      | None ->
        if Hashtbl.length t.gens >= max_gen_entries then Hashtbl.reset t.gens;
        t.next_gen <- t.next_gen + 1;
        Hashtbl.add t.gens key t.next_gen;
        t.next_gen)

let intern t qid =
  match Hashtbl.find_opt t.ids qid with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.add t.ids qid id;
    id

let core_id t qid = locked t (fun () -> intern t qid)

let core_ids t qids = locked t (fun () -> Array.map (intern t) qids)

module Slot = struct
  type nonrec t = {
    cache : t;
    slot : slot;
    gen : int; (* the stamp this handle was resolved at *)
    focus : string;
  }

  let unknown = '\000'
  let inferior = '\001'
  let kept = '\002'

  let view s = s.slot.verdicts

  let peek view ~id =
    let b = if id < Bytes.length view then Bytes.unsafe_get view id else unknown in
    if b = unknown then None else Some (b = inferior)

  let merge s writes ~hits ~misses =
    if hits > 0 then Obs.add m_verdict_hits hits;
    if misses > 0 then Obs.add m_verdict_misses misses;
    locked s.cache (fun () ->
        s.cache.verdict_hits <- s.cache.verdict_hits + hits;
        s.cache.verdict_misses <- s.cache.verdict_misses + misses;
        (* an invalidation (fresh generation or focus move) between this
           sweep's [view] and now makes its verdicts stale: drop them *)
        if s.slot.gen = s.gen && String.equal s.slot.focus s.focus then begin
          let v = s.slot.verdicts in
          List.iter
            (fun (id, verdict) ->
              if id < Bytes.length v then
                Bytes.unsafe_set v id (if verdict then inferior else kept))
            writes
        end)
end

let slot t ~cc ~gen ~focus =
  locked t (fun () ->
      let s =
        match Hashtbl.find_opt t.slots cc with
        | Some s ->
          if s.gen <> gen || not (String.equal s.focus focus) then begin
            (* the old stamp's verdicts are unreachable under
               latest-generation-wins; drop them now.  A fresh buffer
               (not a fill) so a sweep still reading the old one keeps a
               consistent view of the stamp it resolved. *)
            s.verdicts <- Bytes.make (Stdlib.max 64 t.next_id) Slot.unknown;
            s.gen <- gen;
            s.focus <- focus
          end;
          s
        | None ->
          let s = { gen; focus; verdicts = Bytes.empty } in
          Hashtbl.add t.slots cc s;
          s
      in
      (* grow to cover every id interned so far, so the sweep can read
         and the merge can write without the buffer moving mid-query *)
      if Bytes.length s.verdicts < t.next_id then begin
        let cap = Stdlib.max (2 * Bytes.length s.verdicts) (Stdlib.max 64 t.next_id) in
        let v' = Bytes.make cap Slot.unknown in
        Bytes.blit s.verdicts 0 v' 0 (Bytes.length s.verdicts);
        s.verdicts <- v'
      end;
      { Slot.cache = t; slot = s; gen; focus })

let find_survivors t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.survivors key with
      | Some _ as r ->
        t.survivor_hits <- t.survivor_hits + 1;
        Obs.incr m_survivor_hits;
        r
      | None ->
        t.survivor_misses <- t.survivor_misses + 1;
        Obs.incr m_survivor_misses;
        None)

let store_survivors t ~key cores =
  locked t (fun () ->
      if Hashtbl.length t.survivors >= max_survivor_entries then Hashtbl.reset t.survivors;
      Hashtbl.replace t.survivors key cores)

let find_summary t ~key = locked t (fun () -> Hashtbl.find_opt t.summaries key)

let store_summary t ~key summary =
  locked t (fun () ->
      if Hashtbl.length t.summaries >= max_survivor_entries then Hashtbl.reset t.summaries;
      Hashtbl.replace t.summaries key summary)

let find_signature t ~key = locked t (fun () -> Hashtbl.find_opt t.signatures key)

let store_signature t ~key digest =
  locked t (fun () ->
      if Hashtbl.length t.signatures >= max_survivor_entries then Hashtbl.reset t.signatures;
      Hashtbl.replace t.signatures key digest)

type stats = {
  verdict_hits : int;
  verdict_misses : int;
  survivor_hits : int;
  survivor_misses : int;
  generations : int;
}

let stats (t : t) =
  locked t (fun () ->
      {
        verdict_hits = t.verdict_hits;
        verdict_misses = t.verdict_misses;
        survivor_hits = t.survivor_hits;
        survivor_misses = t.survivor_misses;
        generations = t.next_gen;
      })

let hit_rate s =
  let lookups = s.verdict_hits + s.verdict_misses in
  if lookups = 0 then 0. else float_of_int s.verdict_hits /. float_of_int lookups
