(* One verdict slot per constraint.  The stamp is the (generation,
   focus) pair the stored verdicts were computed under; a store with a
   different stamp clears the slot first, so each constraint holds at
   most one generation's verdicts (latest wins — interactive queries
   revisit the current state, not past ones).

   Verdicts are packed two bits per core (0 = unknown, 1 = inferior,
   2 = kept), sixteen cores per [int array] word, indexed by dense core
   id.  The hot path of a warm query is one array read per (constraint,
   32-core word): {!Slot.peek_word} unpacks a whole word into
   known/inferior masks that combine with the sweep's keep bitset
   branchlessly.  The classic (per-core closure) path still reads one
   verdict at a time through {!Slot.peek}.

   Concurrency: one table serves a session lineage, and since the
   exploration service stopped serializing requests globally, several
   domains can query (and thus populate) the same lineage at once.  All
   table mutation happens under [lock].  The per-core sweep itself runs
   lockless against a {!Slot.view}: [slot] pre-grows the word array to
   cover every core id while holding the lock, so the buffer a query
   reads is never reallocated under it, and new verdicts are buffered
   by the sweep and written back in one {!Slot.merge} /
   {!Slot.merge_bits} — which re-checks the stamp, so a sweep that
   overlapped an invalidation discards its write-back instead of
   poisoning the new generation.  A lockless reader sees each word
   atomically (OCaml array elements never tear), and every word a
   racing merge can publish holds only codes that sweep would itself
   compute (closures are deterministic), so racing merges at one stamp
   are idempotent.

   The memo tables (survivor sets, merit summaries, signature digests,
   generation numbers) are bounded by second-chance {!Clock_cache}s:
   past capacity each insert evicts one cold entry — observable through
   the [dse_engine_*_evictions_total] counters — instead of the
   whole-table reset the first version used.  Eviction is always safe:
   every entry is a memo whose key determines its value, so a lost
   entry costs a recompute (or a fresh generation), never a wrong
   answer. *)
module Obs = Ds_obs.Obs

(* Process-wide cache traffic, aggregated across every lineage's cache
   into the global telemetry registry (DESIGN.md 13).  The per-cache
   [stats] record below stays the per-lineage view. *)
let m_verdict_hits = Obs.counter Obs.default "dse_engine_verdict_cache_hits_total"
let m_verdict_misses = Obs.counter Obs.default "dse_engine_verdict_cache_misses_total"
let m_survivor_hits = Obs.counter Obs.default "dse_engine_survivor_cache_hits_total"
let m_survivor_misses = Obs.counter Obs.default "dse_engine_survivor_cache_misses_total"
let m_survivor_evictions = Obs.counter Obs.default "dse_engine_survivor_evictions_total"
let m_summary_evictions = Obs.counter Obs.default "dse_engine_summary_evictions_total"
let m_signature_evictions = Obs.counter Obs.default "dse_engine_signature_evictions_total"
let m_gen_evictions = Obs.counter Obs.default "dse_engine_gen_evictions_total"

type slot = {
  mutable gen : int;
  mutable focus : string;
  mutable verdicts : int array; (* 16 two-bit codes per word, by core id *)
}

type survivors = {
  sv_bits : Bitset.t; (* over the index's dense-id universe *)
  mutable sv_count : int; (* memoized popcount; -1 until first asked *)
  mutable sv_list : (string * Ds_reuse.Core.t) list option;
      (* memoized materialization in ascending-id (= index insertion)
         order; filled lazily, so count/range queries on large layers
         never build the list at all *)
}

type survivor_set =
  | S_list of (string * Ds_reuse.Core.t) list (* classic sweep *)
  | S_bits of survivors (* columnar sweep *)

type t = {
  lock : Mutex.t;
  slots : (string, slot) Hashtbl.t; (* constraint name -> verdicts *)
  survivors : survivor_set Clock_cache.t;
      (* full state signature -> surviving candidates *)
  gens : int Clock_cache.t;
      (* constraint-state key (constraint name + the values of every
         property it mentions) -> the generation minted for that state.
         Re-entering a state reuses its generation, so the state
         signature — and with it the survivor table — recognises
         revisited states instead of treating each visit as new. *)
  summaries : Evaluation.merit_summary Clock_cache.t;
      (* state signature + merit name -> that state's merit summary.
         Merit values are immutable per core and the candidate set is a
         function of the signature, so the summary is too; this spares
         a revisited state the full fold over the surviving pool. *)
  signatures : string Clock_cache.t;
      (* observable-state key -> candidate signature digest.  The
         digest folds every surviving core id into a hash; memoizing it
         spares a revisited state that whole-pool walk.  The stored
         value is exactly what the full computation produced, so
         journal signatures stay bit-identical. *)
  ids : (string, int) Hashtbl.t; (* core qualified-id -> dense id *)
  mutable next_id : int;
  mutable next_gen : int;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable survivor_hits : int;
  mutable survivor_misses : int;
}

(* The survivor table is keyed by full state signatures, which an
   unbounded exploration could mint without limit; past this many
   distinct states the clock hand starts evicting cold entries
   (verdict slots, the expensive part of a recompute, are
   unaffected). *)
let max_survivor_entries = 128

(* Same pressure bound for the generation memo: an evicted state simply
   mints a fresh generation on revisit (a cache miss, never a wrong
   answer — distinct states can never share a generation because the
   key embeds the constraint's relevant binding values). *)
let max_gen_entries = 1024

let create () =
  {
    lock = Mutex.create ();
    slots = Hashtbl.create 16;
    survivors =
      Clock_cache.create ~capacity:max_survivor_entries
        ~on_evict:(fun () -> Obs.incr m_survivor_evictions)
        ();
    gens =
      Clock_cache.create ~capacity:max_gen_entries
        ~on_evict:(fun () -> Obs.incr m_gen_evictions)
        ();
    summaries =
      Clock_cache.create ~capacity:max_survivor_entries
        ~on_evict:(fun () -> Obs.incr m_summary_evictions)
        ();
    signatures =
      Clock_cache.create ~capacity:max_survivor_entries
        ~on_evict:(fun () -> Obs.incr m_signature_evictions)
        ();
    ids = Hashtbl.create 256;
    next_id = 0;
    next_gen = 0;
    verdict_hits = 0;
    verdict_misses = 0;
    survivor_hits = 0;
    survivor_misses = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let fresh_generation t =
  locked t (fun () ->
      t.next_gen <- t.next_gen + 1;
      t.next_gen)

let generation_for t ~key =
  locked t (fun () ->
      match Clock_cache.find t.gens key with
      | Some gen -> gen
      | None ->
        t.next_gen <- t.next_gen + 1;
        Clock_cache.store t.gens key t.next_gen;
        t.next_gen)

let intern t qid =
  match Hashtbl.find_opt t.ids qid with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.add t.ids qid id;
    id

let core_id t qid = locked t (fun () -> intern t qid)

let core_ids t qids = locked t (fun () -> Array.map (intern t) qids)

module Slot = struct
  type nonrec t = {
    cache : t;
    slot : slot;
    gen : int; (* the stamp this handle was resolved at *)
    focus : string;
  }

  let codes_per_word = 16
  let unknown = 0
  let inferior = 1
  let kept = 2

  let view s = s.slot.verdicts

  let peek view ~id =
    let w = id lsr 4 in
    if w >= Array.length view then None
    else begin
      let c = (Array.unsafe_get view w lsr ((id land 15) * 2)) land 3 in
      if c = unknown then None else Some (c = inferior)
    end

  (* The verdicts of the 32 cores [32w, 32w+32) as (known, inferior)
     masks, pure and lock-free like {!peek}.  A bitset keep-word spans
     exactly two verdict words; pairs fold to single bits through the
     even-position spread (code 1 = 0b01 carries inferior on the even
     bit, code 2 = 0b10 doesn't, code 0 sets neither). *)
  let peek_word view ~w =
    let nv = Array.length view in
    let v0 = if 2 * w < nv then Array.unsafe_get view (2 * w) else 0 in
    let v1 = if (2 * w) + 1 < nv then Array.unsafe_get view ((2 * w) + 1) else 0 in
    let known v = Bitset.unspread16 ((v lor (v lsr 1)) land 0x55555555) in
    let inf v = Bitset.unspread16 (v land 0x55555555) in
    (known v0 lor (known v1 lsl 16), inf v0 lor (inf v1 lsl 16))

  (* Call under the cache lock. *)
  let write_code v id code =
    let w = id lsr 4 in
    let sh = (id land 15) * 2 in
    v.(w) <- (v.(w) land lnot (3 lsl sh)) lor (code lsl sh)

  let record_counters s ~hits ~misses =
    if hits > 0 then Obs.add m_verdict_hits hits;
    if misses > 0 then Obs.add m_verdict_misses misses;
    s.cache.verdict_hits <- s.cache.verdict_hits + hits;
    s.cache.verdict_misses <- s.cache.verdict_misses + misses

  let stamp_live s = s.slot.gen = s.gen && String.equal s.slot.focus s.focus

  let merge s writes ~hits ~misses =
    locked s.cache (fun () ->
        record_counters s ~hits ~misses;
        (* an invalidation (fresh generation or focus move) between this
           sweep's [view] and now makes its verdicts stale: drop them *)
        if stamp_live s then begin
          let v = s.slot.verdicts in
          let nw = Array.length v in
          List.iter
            (fun (id, verdict) ->
              if id lsr 4 < nw then write_code v id (if verdict then inferior else kept))
            writes
        end)

  (* The columnar write-back: [touched]/[inferior_bits] are position
     bitsets over the sweep's pool; [ids] maps positions to core ids
     ([None] = the pool is the whole universe, positions are ids).  On
     the identity pool each 32-position word updates its two verdict
     words with five logical ops — no per-core loop. *)
  let merge_bits s ~touched ~inferior_bits ~ids ~hits ~misses =
    locked s.cache (fun () ->
        record_counters s ~hits ~misses;
        if stamp_live s then begin
          let v = s.slot.verdicts in
          let nv = Array.length v in
          match ids with
          | None ->
            let half vi t16 i16 =
              if t16 <> 0 && vi < nv then begin
                let tm = Bitset.spread16 t16 in
                let im = Bitset.spread16 i16 in
                let pairmask = tm lor (tm lsl 1) in
                (* inferior code (1) contributes the even bit, kept
                   code (2) the odd bit *)
                v.(vi) <- v.(vi) land lnot pairmask lor im lor ((tm land lnot im) lsl 1)
              end
            in
            for w = 0 to Bitset.word_count touched - 1 do
              let t32 = Bitset.word touched w in
              if t32 <> 0 then begin
                let i32 = Bitset.word inferior_bits w in
                half (2 * w) (t32 land 0xFFFF) (i32 land 0xFFFF);
                half ((2 * w) + 1) (t32 lsr 16) (i32 lsr 16)
              end
            done
          | Some ids ->
            Bitset.iter_true
              (fun k ->
                let id = ids.(k) in
                if id lsr 4 < nv then
                  write_code v id (if Bitset.mem inferior_bits k then inferior else kept))
              touched
        end)
end

let words_for n = (n + Slot.codes_per_word - 1) / Slot.codes_per_word

let slot ?(universe = 0) t ~cc ~gen ~focus =
  locked t (fun () ->
      let need = words_for (Stdlib.max t.next_id universe) in
      let s =
        match Hashtbl.find_opt t.slots cc with
        | Some s ->
          if s.gen <> gen || not (String.equal s.focus focus) then begin
            (* the old stamp's verdicts are unreachable under
               latest-generation-wins; drop them now.  A fresh buffer
               (not a fill) so a sweep still reading the old one keeps a
               consistent view of the stamp it resolved. *)
            s.verdicts <- Array.make (Stdlib.max 4 need) Slot.unknown;
            s.gen <- gen;
            s.focus <- focus
          end;
          s
        | None ->
          let s = { gen; focus; verdicts = [||] } in
          Hashtbl.add t.slots cc s;
          s
      in
      (* grow to cover every core id the sweep can touch, so the sweep
         can read and the merge can write without the buffer moving
         mid-query *)
      if Array.length s.verdicts < need then begin
        let cap = Stdlib.max (2 * Array.length s.verdicts) (Stdlib.max 4 need) in
        let v' = Array.make cap Slot.unknown in
        Array.blit s.verdicts 0 v' 0 (Array.length s.verdicts);
        s.verdicts <- v'
      end;
      { Slot.cache = t; slot = s; gen; focus })

let find_survivor_set t ~key =
  locked t (fun () ->
      match Clock_cache.find t.survivors key with
      | Some _ as r ->
        t.survivor_hits <- t.survivor_hits + 1;
        Obs.incr m_survivor_hits;
        r
      | None ->
        t.survivor_misses <- t.survivor_misses + 1;
        Obs.incr m_survivor_misses;
        None)

let store_survivor_list t ~key cores =
  locked t (fun () -> Clock_cache.store t.survivors key (S_list cores))

let store_survivor_bits t ~key bits =
  let sv = { sv_bits = bits; sv_count = -1; sv_list = None } in
  locked t (fun () -> Clock_cache.store t.survivors key (S_bits sv));
  sv

(* The memo writes below are idempotent (deterministic value per
   immutable bitset), so the unsynchronized mutation is benign even
   when two domains race on one entry. *)
let survivor_count sv =
  if sv.sv_count >= 0 then sv.sv_count
  else begin
    let c = Bitset.count sv.sv_bits in
    sv.sv_count <- c;
    c
  end

let survivor_list sv ~entry_at =
  match sv.sv_list with
  | Some l -> l
  | None ->
    let l = List.rev (Bitset.fold_true (fun acc i -> entry_at i :: acc) [] sv.sv_bits) in
    sv.sv_list <- Some l;
    l

let find_summary t ~key = locked t (fun () -> Clock_cache.find t.summaries key)
let store_summary t ~key summary = locked t (fun () -> Clock_cache.store t.summaries key summary)
let find_signature t ~key = locked t (fun () -> Clock_cache.find t.signatures key)
let store_signature t ~key digest = locked t (fun () -> Clock_cache.store t.signatures key digest)

type stats = {
  verdict_hits : int;
  verdict_misses : int;
  survivor_hits : int;
  survivor_misses : int;
  generations : int;
  evictions : int;
}

let stats (t : t) =
  locked t (fun () ->
      {
        verdict_hits = t.verdict_hits;
        verdict_misses = t.verdict_misses;
        survivor_hits = t.survivor_hits;
        survivor_misses = t.survivor_misses;
        generations = t.next_gen;
        evictions =
          Clock_cache.evictions t.survivors
          + Clock_cache.evictions t.gens
          + Clock_cache.evictions t.summaries
          + Clock_cache.evictions t.signatures;
      })

let hit_rate s =
  let lookups = s.verdict_hits + s.verdict_misses in
  if lookups = 0 then 0. else float_of_int s.verdict_hits /. float_of_int lookups
