(* One verdict slot per constraint.  The stamp is the (generation,
   focus) pair the stored verdicts were computed under; a store with a
   different stamp clears the slot first, so each constraint holds at
   most one generation's verdicts (latest wins — interactive queries
   revisit the current state, not past ones).

   Verdicts live in a byte array indexed by interned core id (0 =
   unknown, 1 = inferior, 2 = kept): the hot path of a warm query is
   one array read per (constraint, core), with the single string-hash
   probe per core paid once in {!core_id}, not per constraint. *)
type slot = {
  mutable gen : int;
  mutable focus : string;
  mutable verdicts : Bytes.t; (* interned core id -> verdict byte *)
}

type t = {
  slots : (string, slot) Hashtbl.t; (* constraint name -> verdicts *)
  survivors : (string, (string * Ds_reuse.Core.t) list) Hashtbl.t;
      (* full state signature -> candidate list *)
  ids : (string, int) Hashtbl.t; (* core qualified-id -> dense id *)
  mutable next_id : int;
  next_gen : int ref;
  mutable verdict_hits : int;
  mutable verdict_misses : int;
  mutable survivor_hits : int;
  mutable survivor_misses : int;
}

(* The survivor table is keyed by full state signatures, which an
   unbounded exploration could mint without limit; past this many
   distinct states the table restarts (verdict slots, the expensive part
   of a recompute, are unaffected). *)
let max_survivor_entries = 128

let create () =
  {
    slots = Hashtbl.create 16;
    survivors = Hashtbl.create 32;
    ids = Hashtbl.create 256;
    next_id = 0;
    next_gen = ref 0;
    verdict_hits = 0;
    verdict_misses = 0;
    survivor_hits = 0;
    survivor_misses = 0;
  }

let fresh_generation t =
  incr t.next_gen;
  !(t.next_gen)

let core_id t qid =
  match Hashtbl.find_opt t.ids qid with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.add t.ids qid id;
    id

module Slot = struct
  type nonrec t = { cache : t; slot : slot }

  let unknown = '\000'
  let inferior = '\001'
  let kept = '\002'

  let find s ~id =
    let v = s.slot.verdicts in
    let b = if id < Bytes.length v then Bytes.unsafe_get v id else unknown in
    if b = unknown then begin
      s.cache.verdict_misses <- s.cache.verdict_misses + 1;
      None
    end
    else begin
      s.cache.verdict_hits <- s.cache.verdict_hits + 1;
      Some (b = inferior)
    end

  let store s ~id verdict =
    let v = s.slot.verdicts in
    let v =
      if id < Bytes.length v then v
      else begin
        (* amortized doubling, sized to the session's interned cores *)
        let cap = max (2 * Bytes.length v) (max 64 s.cache.next_id) in
        let v' = Bytes.make cap unknown in
        Bytes.blit v 0 v' 0 (Bytes.length v);
        s.slot.verdicts <- v';
        v'
      end
    in
    Bytes.unsafe_set v id (if verdict then inferior else kept)
end

let slot t ~cc ~gen ~focus =
  let s =
    match Hashtbl.find_opt t.slots cc with
    | Some s ->
      if s.gen <> gen || not (String.equal s.focus focus) then begin
        (* the old stamp's verdicts are unreachable under
           latest-generation-wins; drop them now *)
        Bytes.fill s.verdicts 0 (Bytes.length s.verdicts) Slot.unknown;
        s.gen <- gen;
        s.focus <- focus
      end;
      s
    | None ->
      let s = { gen; focus; verdicts = Bytes.empty } in
      Hashtbl.add t.slots cc s;
      s
  in
  { Slot.cache = t; slot = s }

let find_survivors t ~key =
  match Hashtbl.find_opt t.survivors key with
  | Some _ as r ->
    t.survivor_hits <- t.survivor_hits + 1;
    r
  | None ->
    t.survivor_misses <- t.survivor_misses + 1;
    None

let store_survivors t ~key cores =
  if Hashtbl.length t.survivors >= max_survivor_entries then Hashtbl.reset t.survivors;
  Hashtbl.replace t.survivors key cores

type stats = {
  verdict_hits : int;
  verdict_misses : int;
  survivor_hits : int;
  survivor_misses : int;
  generations : int;
}

let stats (t : t) =
  {
    verdict_hits = t.verdict_hits;
    verdict_misses = t.verdict_misses;
    survivor_hits = t.survivor_hits;
    survivor_misses = t.survivor_misses;
    generations = !(t.next_gen);
  }

let hit_rate s =
  let lookups = s.verdict_hits + s.verdict_misses in
  if lookups = 0 then 0. else float_of_int s.verdict_hits /. float_of_int lookups
