(** Fixed-length bitsets over [int array] words (32 payload bits per
    word) — the survivor-set and sweep-mask representation of the
    columnar engine.

    32 bits per word (not the full 63 an OCaml int offers) so one
    bitset word corresponds to exactly two packed two-bit verdict words
    of {!Compliance.Slot}; the sweep converts between the two with
    {!spread16}/{!unspread16} instead of per-core stores.

    Mutation is unsynchronized.  Reads/writes of a single word are
    atomic (OCaml guarantees no tearing on array elements), so parallel
    chunks may write {e disjoint word ranges} of a shared bitset
    without locks — {!Parallel.map_chunks} with a [quantum] that is a
    multiple of {!bits_per_word} produces exactly such ranges.  Out of
    that regime, callers must synchronize. *)

type t

val bits_per_word : int
(** 32. *)

val create : int -> t
(** All-zero bitset of the given length (>= 0). *)

val create_full : int -> t
(** All-one bitset; trailing bits of the last word stay zero. *)

val length : t -> int

val word_count : t -> int
(** Number of backing words, [ceil (length / 32)]. *)

val mem : t -> int -> bool
(** Unchecked: the index must be within [0, length). *)

val set : t -> int -> unit
val clear : t -> int -> unit

val word : t -> int -> int
(** The 32-bit payload of word [w] (unchecked). *)

val set_word : t -> int -> int -> unit
(** Replace word [w]; payload is masked to 32 bits. *)

val popcount32 : int -> int
(** Set bits in a 32-bit payload. *)

val count : t -> int
(** Total set bits. *)

val iter_true : (int -> unit) -> t -> unit
(** Set indices in ascending order — how bitset survivor sets
    materialize into candidate lists in index (insertion) order. *)

val fold_true : ('a -> int -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
(** Same length and same bits. *)

val copy : t -> t

val of_ids : length:int -> int array -> t

val spread16 : int -> int
(** Low 16 bits to the even positions of a 32-bit word. *)

val unspread16 : int -> int
(** Even positions of a 32-bit word back to the low 16 bits. *)
