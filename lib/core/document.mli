(** Self-documentation of a design space layer.

    "The layer is self-documented and highly compartmentalized into
    hierarchies of classes of design objects" (abstract).  Everything a
    layer author declares — CDOs with their documentation strings,
    properties with kinds, domains, units and defaults, generalized
    issues with their specializations, consistency constraints with
    their comments — carries enough metadata to regenerate a complete
    specification document.  This module does exactly that, producing a
    markdown document with one section per CDO in preorder plus the
    constraint catalogue. *)

val render : ?title:string -> ?constraints:Consistency.t list -> Hierarchy.t -> string
(** The full specification as markdown. *)

val pp :
  ?title:string -> ?constraints:Consistency.t list -> Format.formatter -> Hierarchy.t -> unit

val save :
  ?title:string ->
  ?constraints:Consistency.t list ->
  Hierarchy.t ->
  path:string ->
  (unit, string) result
