(* Fixed-length bitsets over plain [int array] words, 32 payload bits
   per word.  32 (not 63) so that one bitset word maps onto exactly two
   packed-verdict words of {!Compliance.Slot} (16 two-bit codes each)
   and onto whole cache lines of the columnar float arrays — the sweep
   kernel walks all three in lockstep.  Every operation is plain
   unboxed [int] arithmetic: no [Int64] boxing in the hot loop.

   Concurrency contract (what the columnar sweep relies on): reads and
   writes of one array element are atomic in OCaml (no tearing), so
   distinct words may be written by distinct domains without
   synchronization.  {!Parallel.map_chunks} with [quantum] a multiple
   of {!bits_per_word} hands each chunk a disjoint word range, which is
   exactly that regime. *)

type t = { words : int array; length : int }

let bits_per_word = 32
let word_count_for length = (length + bits_per_word - 1) / bits_per_word

let create length =
  if length < 0 then invalid_arg "Bitset.create: negative length";
  { words = Array.make (word_count_for length) 0; length }

(* Mask of the valid bits of the last word ([lnot 0] when the length is
   word-aligned, including 0). *)
let last_word_mask length =
  let r = length mod bits_per_word in
  if r = 0 then lnot 0 else (1 lsl r) - 1

let create_full length =
  let t = create length in
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw ((1 lsl bits_per_word) - 1);
    t.words.(nw - 1) <- t.words.(nw - 1) land last_word_mask length
  end;
  t

let length t = t.length
let word_count t = Array.length t.words

let mem t i = Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let set t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl (i land 31)))

let clear t i =
  let w = i lsr 5 in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w land lnot (1 lsl (i land 31)))

let word t w = Array.unsafe_get t.words w
let set_word t w v = Array.unsafe_set t.words w (v land 0xFFFFFFFF)

(* SWAR popcount over a 32-bit payload; the multiply stays well inside
   OCaml's 63-bit int, but unlike a C uint32 it keeps product bits
   above 31, so the byte-accumulator shift needs an explicit final
   mask. *)
let popcount32 x =
  let x = x land 0xFFFFFFFF in
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let count t = Array.fold_left (fun acc w -> acc + popcount32 w) 0 t.words

(* Spread the low 16 bits of [x] to the even positions of a 32-bit
   word (0babcd -> 0b0a0b0c0d), and back.  The sweep uses the pair to
   convert between survivor-mask bits and packed two-bit verdict
   codes. *)
let spread16 x =
  let x = x land 0xFFFF in
  let x = (x lor (x lsl 8)) land 0x00FF00FF in
  let x = (x lor (x lsl 4)) land 0x0F0F0F0F in
  let x = (x lor (x lsl 2)) land 0x33333333 in
  (x lor (x lsl 1)) land 0x55555555

let unspread16 x =
  let x = x land 0x55555555 in
  let x = (x lor (x lsr 1)) land 0x33333333 in
  let x = (x lor (x lsr 2)) land 0x0F0F0F0F in
  let x = (x lor (x lsr 4)) land 0x00FF00FF in
  (x lor (x lsr 8)) land 0x0000FFFF

let iter_true f t =
  let nw = Array.length t.words in
  for w = 0 to nw - 1 do
    let bits = ref (Array.unsafe_get t.words w) in
    let base = w * bits_per_word in
    while !bits <> 0 do
      let b = !bits land - !bits in
      (* index of the lowest set bit: popcount of the bits below it *)
      f (base + popcount32 (b - 1));
      bits := !bits land (!bits - 1)
    done
  done

let fold_true f init t =
  let acc = ref init in
  iter_true (fun i -> acc := f !acc i) t;
  !acc

let equal a b =
  a.length = b.length
  &&
  let rec go w = w < 0 || (a.words.(w) = b.words.(w) && go (w - 1)) in
  go (Array.length a.words - 1)

let copy t = { words = Array.copy t.words; length = t.length }

let of_ids ~length ids =
  let t = create length in
  Array.iter (fun i -> set t i) ids;
  t
