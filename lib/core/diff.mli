(** Comparing exploration branches.

    Sessions are immutable, so a designer naturally holds several
    branches of the same exploration (Montgomery vs Brickell, hardware
    vs software...).  This module reports what distinguishes two
    branches rooted in the same hierarchy and population: which
    properties are bound differently, which cores only one branch
    keeps, and how the figure-of-merit ranges moved — the raw material
    of a trade-off discussion. *)

type binding_diff = {
  name : string;
  left : Value.t option;  (** [None] = unbound in that branch *)
  right : Value.t option;
}

type merit_diff = {
  merit : string;
  left_range : (float * float) option;
  right_range : (float * float) option;
}

type t = {
  focus_left : string list;
  focus_right : string list;
  binding_diffs : binding_diff list;  (** only the properties that differ *)
  only_left : string list;  (** qualified core ids kept only by the left *)
  only_right : string list;
  shared : int;  (** candidates both branches keep *)
  merit_diffs : merit_diff list;
}

val compare : ?merits:string list -> Session.t -> Session.t -> t
(** [merits] selects the ranges to tabulate (default none). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering ("left"/"right" follow the argument
    order). *)
