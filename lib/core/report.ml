let render ?(title = "Exploration report") ?(merits = []) ?pareto session =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# %s\n\n" title;
  add "Focus: `%s`\n\n" (String.concat " . " (Session.focus session));

  add "## Bindings\n\n";
  add "| property | value | source |\n|---|---|---|\n";
  List.iter
    (fun b ->
      add "| %s | %s | %s |\n" b.Session.prop.Property.name
        (Value.to_string b.Session.value)
        (match b.Session.source with
        | Session.Designer -> "designer"
        | Session.Default_value -> "default"
        | Session.Derived cc -> Printf.sprintf "derived by %s" cc))
    (List.rev (Session.bindings session));

  add "\n## Exploration trail\n\n";
  List.iter
    (fun event ->
      match event with
      | Session.Requirement_entered { name; value } ->
        add "1. requirement **%s** := %s\n" name (Value.to_string value)
      | Session.Decision_made { name; value } ->
        add "1. decision **%s** := %s\n" name (Value.to_string value)
      | Session.Focus_descended { path; candidates_before; candidates_after } ->
        add "1. specialized to `%s` (candidates %d -> %d)\n" (String.concat "." path)
          candidates_before candidates_after
      | Session.Binding_derived { name; value; by } ->
        add "1. derived **%s** := %s (%s)\n" name (Value.to_string value) by
      | Session.Binding_retracted { name; invalidated } ->
        add "1. retracted **%s**%s\n" name
          (if invalidated = [] then ""
           else Printf.sprintf " (invalidated: %s)" (String.concat ", " invalidated))
      | Session.Note s -> add "1. note: %s\n" s
      | Session.Constraint_faulted { name; op; detail } ->
        add "1. constraint **%s** faulted during %s: %s\n" name op detail
      | Session.Constraint_quarantined { name; op; reason } ->
        add "1. constraint **%s** quarantined during %s: %s\n" name op reason)
    (Session.events session);

  let candidates = Session.candidates session in
  add "\n## Surviving candidates (%d)\n\n" (List.length candidates);
  (match merits with
  | [] -> List.iter (fun (qid, _) -> add "- %s\n" qid) candidates
  | merits ->
    add "| core |%s\n" (String.concat "" (List.map (fun m -> " " ^ m ^ " |") merits));
    add "|---|%s\n" (String.concat "" (List.map (fun _ -> "---|") merits));
    List.iter
      (fun (qid, core) ->
        add "| %s |%s\n" qid
          (String.concat ""
             (List.map
                (fun m ->
                  match Ds_reuse.Core.merit core m with
                  | Some v -> Printf.sprintf " %.4g |" v
                  | None -> " - |")
                merits)))
      candidates;
    add "\n### Ranges\n\n";
    List.iter
      (fun m ->
        (* over the [candidates] computed once above — one pruning pass
           serves the table, every range and the pareto section *)
        let summary = Evaluation.merit_summary candidates ~merit:m in
        let skipped =
          if summary.Evaluation.skipped_non_finite = 0 then ""
          else
            Printf.sprintf " (%d core%s with non-finite values skipped)"
              summary.Evaluation.skipped_non_finite
              (if summary.Evaluation.skipped_non_finite = 1 then "" else "s")
        in
        match summary.Evaluation.merit_range with
        | Some (lo, hi) -> add "- %s: %.4g .. %.4g%s\n" m lo hi skipped
        | None -> if skipped <> "" then add "- %s: no finite values%s\n" m skipped)
      merits);

  (match pareto with
  | None -> ()
  | Some (x, y) ->
    let front = Evaluation.pareto_front (Evaluation.of_cores ~x ~y candidates) in
    add "\n## Pareto front (%s vs %s)\n\n" x y;
    List.iter
      (fun p -> add "- %s (%.4g, %.4g)\n" p.Evaluation.label p.Evaluation.x p.Evaluation.y)
      front);

  (match Session.estimates session with
  | [] -> ()
  | estimates ->
    add "\n## Active estimator contexts\n\n";
    List.iter
      (fun (tool, metrics) ->
        List.iter (fun (m, v) -> add "- %s: %s = %.4g\n" tool m v) metrics)
      estimates);

  (* absent from fault-free reports, so those stay byte-identical *)
  (match List.filter (fun (_, s) -> s <> Guard.Healthy) (Session.health session) with
  | [] -> ()
  | faulty ->
    add "\n## Constraint health\n\n";
    add "Faulty constraints are excluded conservatively: the candidate set may be\n";
    add "wider than a fully consistent layer would allow.\n\n";
    List.iter
      (fun (name, status) ->
        match status with
        | Guard.Quarantined { reason; at_event } ->
          add "- **%s**: quarantined (%s; diagnostic #%d)\n" name reason at_event
        | Guard.Degraded -> add "- **%s**: degraded (still evaluated)\n" name
        | Guard.Healthy -> ())
      faulty;
    match Session.diagnostics session with
    | [] -> ()
    | diags ->
      add "\n%d fault%s recorded; first: %s\n" (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (Guard.describe_diag (List.hd diags)));
  Buffer.contents buf

let save ?title ?merits ?pareto session ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render ?title ?merits ?pareto session));
    Ok ()
  with Sys_error msg -> Error msg
