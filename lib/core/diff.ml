type binding_diff = { name : string; left : Value.t option; right : Value.t option }

type merit_diff = {
  merit : string;
  left_range : (float * float) option;
  right_range : (float * float) option;
}

type t = {
  focus_left : string list;
  focus_right : string list;
  binding_diffs : binding_diff list;
  only_left : string list;
  only_right : string list;
  shared : int;
  merit_diffs : merit_diff list;
}

let compare ?(merits = []) left right =
  let names session =
    List.map (fun b -> b.Session.prop.Property.name) (Session.bindings session)
  in
  let all_names = List.sort_uniq String.compare (names left @ names right) in
  let binding_diffs =
    List.filter_map
      (fun name ->
        let l = Session.value_of left name and r = Session.value_of right name in
        let same =
          match (l, r) with
          | Some a, Some b -> Value.equal a b
          | None, None -> true
          | Some _, None | None, Some _ -> false
        in
        if same then None else Some { name; left = l; right = r })
      all_names
  in
  let ids session = List.map fst (Session.candidates session) in
  let left_ids = ids left and right_ids = ids right in
  let only_left = List.filter (fun id -> not (List.mem id right_ids)) left_ids in
  let only_right = List.filter (fun id -> not (List.mem id left_ids)) right_ids in
  let shared = List.length (List.filter (fun id -> List.mem id right_ids) left_ids) in
  let merit_diffs =
    List.map
      (fun merit ->
        {
          merit;
          left_range = Session.merit_range left ~merit;
          right_range = Session.merit_range right ~merit;
        })
      merits
  in
  {
    focus_left = Session.focus left;
    focus_right = Session.focus right;
    binding_diffs;
    only_left;
    only_right;
    shared;
    merit_diffs;
  }

let pp_value fmt = function
  | Some v -> Value.pp fmt v
  | None -> Format.pp_print_string fmt "(unbound)"

let pp_range fmt = function
  | Some (lo, hi) -> Format.fprintf fmt "%.4g..%.4g" lo hi
  | None -> Format.pp_print_string fmt "(none)"

let pp fmt d =
  Format.fprintf fmt "left focus:  %s@." (String.concat "." d.focus_left);
  Format.fprintf fmt "right focus: %s@." (String.concat "." d.focus_right);
  if d.binding_diffs = [] then Format.fprintf fmt "bindings: identical@."
  else
    List.iter
      (fun bd ->
        Format.fprintf fmt "  %-28s %a | %a@." bd.name pp_value bd.left pp_value bd.right)
      d.binding_diffs;
  Format.fprintf fmt "candidates: %d shared, %d only left, %d only right@." d.shared
    (List.length d.only_left) (List.length d.only_right);
  List.iter
    (fun md ->
      Format.fprintf fmt "  %-14s %a | %a@." md.merit pp_range md.left_range pp_range
        md.right_range)
    d.merit_diffs
