module Core = Ds_reuse.Core

type point = { label : string; coords : float array }

let point ~label coords =
  if Array.length coords = 0 then invalid_arg "Multi_objective.point: no coordinates";
  { label; coords }

let of_cores ~merits cores =
  if merits = [] then invalid_arg "Multi_objective.of_cores: no merits";
  List.filter_map
    (fun (_, core) ->
      let values = List.map (fun merit -> Core.merit core merit) merits in
      if List.for_all Option.is_some values then
        Some { label = core.Core.name; coords = Array.of_list (List.map Option.get values) }
      else None)
    cores

let dominates a b =
  let n = Array.length a.coords in
  if Array.length b.coords <> n then invalid_arg "Multi_objective.dominates: dimension mismatch";
  let no_worse = ref true and strictly = ref false in
  for i = 0 to n - 1 do
    if a.coords.(i) > b.coords.(i) then no_worse := false;
    if a.coords.(i) < b.coords.(i) then strictly := true
  done;
  !no_worse && !strictly

let pareto_front points =
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points)) points

let dominated_count points = List.length points - List.length (pareto_front points)

let ideal = function
  | [] -> None
  | first :: rest ->
    let acc = Array.copy first.coords in
    List.iter
      (fun p -> Array.iteri (fun i v -> if v < acc.(i) then acc.(i) <- v) p.coords)
      rest;
    Some acc

let nearest_to_ideal points =
  match (points, ideal points) with
  | [], _ | _, None -> None
  | _ :: _, Some ideal_coords ->
    let n = Array.length ideal_coords in
    (* normalise each axis to [0,1] before measuring distance *)
    let maxs = Array.copy ideal_coords in
    List.iter
      (fun p -> Array.iteri (fun i v -> if v > maxs.(i) then maxs.(i) <- v) p.coords)
      points;
    let dist p =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let span = maxs.(i) -. ideal_coords.(i) in
        let d = if span <= 0.0 then 0.0 else (p.coords.(i) -. ideal_coords.(i)) /. span in
        acc := !acc +. (d *. d)
      done;
      !acc
    in
    let front = pareto_front points in
    List.fold_left
      (fun best p ->
        match best with
        | None -> Some p
        | Some q -> if dist p < dist q then Some p else best)
      None front

let pp_point fmt p =
  Format.fprintf fmt "%s (%s)" p.label
    (String.concat ", "
       (Array.to_list (Array.map (fun v -> Printf.sprintf "%.4g" v) p.coords)))
