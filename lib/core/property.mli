(** Properties — the finest-grain modelling construct of the layer
    (Section 4).

    The paper classifies properties into behavioral/structural
    descriptions, design requirements and design decisions (design
    issues); generalized design issues are the subset of issues that
    partition the design space and create specializations.  A property
    here is metadata: name, classification, value domain, optional
    default and unit, plus its documentation string — the layer is meant
    to be self-documenting. *)

type kind =
  | Requirement
      (** a problem given or target the designer enters from the spec
          (Fig 8's Req1..Req5) *)
  | Design_issue of { generalized : bool }
      (** an area of design decision; generalized issues partition the
          space and spawn child CDOs (DI1, DI2 in the case study) *)
  | Behavioral_description
      (** reference to an algorithm-level description (Fig 10) *)
  | Behavioral_decomposition
      (** the "select a BD for every operator used by this BD" issue
          (DI7) *)

val kind_name : kind -> string

type t = private {
  name : string;  (** e.g. "EffectiveOperandLength", "Algorithm" *)
  kind : kind;
  domain : Domain.t;
  unit_ : string option;  (** e.g. "bits", "usec" *)
  default : Value.t option;
  doc : string;
}

val make :
  name:string ->
  kind:kind ->
  domain:Domain.t ->
  ?unit_:string ->
  ?default:Value.t ->
  ?doc:string ->
  unit ->
  (t, string) result
(** Rejects an empty name and a default outside the domain. *)

val make_exn :
  name:string ->
  kind:kind ->
  domain:Domain.t ->
  ?unit_:string ->
  ?default:Value.t ->
  ?doc:string ->
  unit ->
  t

val requirement :
  name:string -> domain:Domain.t -> ?unit_:string -> ?default:Value.t -> ?doc:string -> unit -> t
(** Convenience for {!make_exn} with [kind = Requirement]. *)

val design_issue :
  ?generalized:bool ->
  name:string ->
  domain:Domain.t ->
  ?default:Value.t ->
  ?doc:string ->
  unit ->
  t
(** Convenience for design issues (default: not generalized). *)

val is_generalized : t -> bool
val is_design_issue : t -> bool
val is_requirement : t -> bool

val accepts : t -> Value.t -> bool
(** Domain membership of a candidate value. *)

val pp : Format.formatter -> t -> unit
(** The Fig 8 / Fig 11 style: name, type, SetOfValues, default, unit. *)
