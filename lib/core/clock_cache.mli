(** Bounded string-keyed cache with second-chance (clock) eviction.

    The compliance caches (survivor sets, merit summaries, signature
    digests, generation memos) used to relieve memory pressure by
    resetting the whole table at a cap — every live entry lost at once.
    This replaces that valve: at capacity each insert evicts exactly
    one entry that has not been touched since the clock hand last
    passed it, so hot entries survive and churn is visible (each
    eviction fires [on_evict], which the compliance layer wires to a
    [dse_engine_*_evictions_total] counter).

    Eviction is always semantically safe for these caches: every entry
    is a memo whose key determines its value, so a lost entry costs a
    recompute (or a fresh generation), never a wrong answer.

    Not internally synchronized — callers hold their own lock. *)

type 'a t

val create : ?on_evict:(unit -> unit) -> capacity:int -> unit -> 'a t
(** [capacity >= 1]; [on_evict] fires once per evicted entry. *)

val find : 'a t -> string -> 'a option
(** Marks the entry recently-used (sets its reference bit). *)

val mem : 'a t -> string -> bool
(** Presence probe without touching the reference bit. *)

val store : 'a t -> string -> 'a -> unit
(** Insert or overwrite; at capacity evicts one cold entry first. *)

val length : 'a t -> int
val capacity : 'a t -> int

val evictions : 'a t -> int
(** Total entries evicted since creation. *)
