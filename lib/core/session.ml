module Core = Ds_reuse.Core
module Obs = Ds_obs.Obs

(* Engine telemetry (DESIGN.md 13): counters/histograms always record;
   spans ([engine.sweep], [cc.eliminate], [engine.derive_fixpoint],
   [cc.derive], [session.set], [session.retract]) record when tracing
   is enabled and carry the pruning story — which constraint eliminated
   how many cores — as structured data. *)
let m_sweeps = Obs.counter Obs.default "dse_engine_sweeps_total"
let m_sweep_us = Obs.histogram Obs.default "dse_engine_sweep_us"
let m_eliminated = Obs.counter Obs.default "dse_engine_eliminated_total"
let m_derive_rounds = Obs.counter Obs.default "dse_engine_derive_rounds_total"

type sweep_mode = Columnar | Classic

(* Columnar is the default; DSE_SWEEP=classic flips a whole process to
   the retained pre-columnar path (the bench's same-run reference). *)
let default_sweep_mode () =
  match Sys.getenv_opt "DSE_SWEEP" with
  | Some "classic" -> Classic
  | Some _ | None -> Columnar

type source = Designer | Default_value | Derived of string

type binding = {
  defined_at : string list;
  prop : Property.t;
  value : Value.t;
  source : source;
}

type event =
  | Requirement_entered of { name : string; value : Value.t }
  | Decision_made of { name : string; value : Value.t }
  | Focus_descended of {
      path : string list;
      candidates_before : int;
      candidates_after : int;
    }
  | Binding_derived of { name : string; value : Value.t; by : string }
  | Binding_retracted of { name : string; invalidated : string list }
  | Note of string
  | Constraint_faulted of { name : string; op : string; detail : string }
  | Constraint_quarantined of { name : string; op : string; reason : string }

(* Events are pushed newest-first (O(1)) but always read oldest-first.
   Each push allocates a fresh memo cell, so the rendered list is
   computed once per session value and never shared stale across
   exploration branches. *)
module Trail = struct
  type 'e t = { rev : 'e list; memo : 'e list option ref }

  let empty () = { rev = []; memo = ref (Some []) }
  let push trail e = { rev = e :: trail.rev; memo = ref None }

  let render trail =
    match !(trail.memo) with
    | Some es -> es
    | None ->
      let es = List.rev trail.rev in
      trail.memo := Some es;
      es
end

type t = {
  hierarchy : Hierarchy.t;
  constraints : Consistency.t list;
  index : Index.t;
  focus : string list;
  bindings : binding list;
  trail : event Trail.t;
  guard : Guard.registry;
      (* shared by every session derived from this one: a faulty closure
         is faulty on every exploration branch, so quarantine carries
         across branches (and is monotone) *)
  cache : Compliance.t;
      (* shared like [guard]; per-branch generations keep entries
         disjoint where branches diverge *)
  use_cache : bool;
  mode : sweep_mode;
      (* fixed per lineage: Columnar sweeps address verdict slots by the
         index's dense ids, Classic by the compliance table's interned
         ids — the two id spaces must never mix in one cache *)
  gens : (string * int) list;
      (* constraint name -> verdict generation on this branch; absent =
         0.  Bumped (to a globally fresh number) when a binding of a
         property the constraint declares changes. *)
}

let create ~hierarchy ?(constraints = []) ?(use_cache = true) ?sweep_mode ~cores () =
  {
    hierarchy;
    constraints;
    index = Index.build hierarchy cores;
    focus = [ (Hierarchy.root hierarchy).Cdo.name ];
    bindings = [];
    trail = Trail.empty ();
    guard = Guard.registry ();
    cache = Compliance.create ();
    use_cache;
    mode = (match sweep_mode with Some m -> m | None -> default_sweep_mode ());
    gens = [];
  }

(* A fresh session over an already-built layer: shares the immutable
   structure (hierarchy, constraints, candidate index) but none of the
   mutable lineage state (guard registry, verdict cache, trail,
   bindings, generations).  Observably identical to [create] over the
   same inputs, minus the index build — what makes caching parsed
   layers across service sessions safe. *)
let pristine t =
  {
    t with
    focus = [ (Hierarchy.root t.hierarchy).Cdo.name ];
    bindings = [];
    trail = Trail.empty ();
    guard = Guard.registry ();
    cache = Compliance.create ();
    gens = [];
  }

let hierarchy t = t.hierarchy
let sweep_mode t = t.mode
let focus t = t.focus

let focus_cdo t =
  match Hierarchy.find t.hierarchy t.focus with
  | Some cdo -> cdo
  | None -> assert false (* focus is maintained as a valid path *)

let bindings t = t.bindings
let binding t name = List.find_opt (fun b -> String.equal b.prop.Property.name name) t.bindings
let value_of t name = Option.map (fun b -> b.value) (binding t name)

(* Guard diagnostics are recorded in the shared registry (queries like
   [candidates] evaluate closures too but return no new session); they
   are rendered into the event trail on the fly, after the session's own
   events. *)
let diag_event (d : Guard.diag) =
  let detail = Guard.describe_fault d.Guard.fault in
  if d.Guard.quarantines then
    Constraint_quarantined { name = d.Guard.cc; op = d.Guard.op; reason = detail }
  else Constraint_faulted { name = d.Guard.cc; op = d.Guard.op; detail }

let events t =
  let own = Trail.render t.trail in
  if Guard.diag_count t.guard = 0 then own
  else own @ List.map diag_event (Guard.diags t.guard)

let health t =
  List.map (fun cc -> (cc.Consistency.name, Guard.status_of t.guard cc.Consistency.name)) t.constraints

let diagnostics t = Guard.diags t.guard

let quarantined_cc t cc = Guard.quarantined t.guard cc.Consistency.name

let record_fault t cc ~op fault =
  ignore (Guard.record t.guard ~cc:cc.Consistency.name ~op fault)

(* {2 Verdict generations}

   Each constraint carries a per-branch generation number; memoized
   elimination verdicts are only valid at the generation they were
   computed under.  A binding change re-opens exactly the constraints
   whose declared independent or dependent set mentions the property
   (the paper's re-assessment rule), by moving them to a globally fresh
   generation. *)

let generation_of t cc_name =
  match List.assoc_opt cc_name t.gens with Some g -> g | None -> 0

let cc_mentions cc name =
  let refs_name = List.exists (fun p -> String.equal p.Propref.property name) in
  refs_name cc.Consistency.indep || refs_name cc.Consistency.dep

let value_signature = function
  (* kind-tagged so e.g. [Str "8."] and [Real 8.] cannot collide *)
  | Value.Str s -> "s" ^ s
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Real f -> "r" ^ string_of_float f
  | Value.Flag b -> if b then "f1" else "f0"

(* The state key a constraint's generation is memoized on: its name
   plus the current value (or absence) of every property it mentions.
   Generations exist to invalidate memoized verdicts when a relevant
   binding changes; keying them on the relevant values themselves means
   re-entering a previously-visited state (undo/redo, A/B comparison
   loops) reuses the generation minted there instead of minting a fresh
   one — so the state signature recurs and the survivor cache serves
   the revisit without a sweep.  Distinct value states still get
   distinct generations (the key embeds the values), which preserves
   the invariant that one generation = one assessment context. *)
let cc_state_key t cc =
  let buf = Buffer.create 64 in
  Buffer.add_string buf cc.Consistency.name;
  let add p =
    Buffer.add_char buf '|';
    Buffer.add_string buf p.Propref.property;
    Buffer.add_char buf '=';
    match binding t p.Propref.property with
    | Some b -> Buffer.add_string buf (value_signature b.value)
    | None -> Buffer.add_char buf '?'
  in
  List.iter add cc.Consistency.indep;
  List.iter add cc.Consistency.dep;
  Buffer.contents buf

let bump_generations t name =
  if not t.use_cache then t
  else begin
    let gens =
      List.fold_left
        (fun gens cc ->
          if cc_mentions cc name then
            (cc.Consistency.name, Compliance.generation_for t.cache ~key:(cc_state_key t cc))
            :: List.remove_assoc cc.Consistency.name gens
          else gens)
        t.gens t.constraints
    in
    { t with gens }
  end

let ancestor_paths t =
  let rec prefixes acc cur = function
    | [] -> List.rev acc
    | seg :: rest ->
      let cur = cur @ [ seg ] in
      prefixes (cur :: acc) cur rest
  in
  prefixes [] [] t.focus

(* A property reference applies in this session when its pattern
   addresses the focus node or one of its ancestors (by path or by
   abbreviation). *)
let ref_applies t pref =
  List.exists
    (fun path -> Hierarchy.ref_matches t.hierarchy pref ~path ~property:pref.Propref.property)
    (ancestor_paths t)

let env t =
  {
    Consistency.value =
      (fun pref -> if ref_applies t pref then value_of t pref.Propref.property else None);
    Consistency.value_of = (fun name -> value_of t name);
    Consistency.focus = t.focus;
  }

let bound_fn t pref = ref_applies t pref && value_of t pref.Propref.property <> None

(* Constraints whose dependent set includes this property at the current
   focus. *)
let governing t name =
  List.filter
    (fun cc ->
      List.exists
        (fun pref -> String.equal pref.Propref.property name && ref_applies t pref)
        cc.Consistency.dep)
    t.constraints

(* Inconsistent-options constraints with every referenced property bound
   are "active" and must hold.  A quarantined predicate is skipped: the
   designer keeps working with a sound-but-wider space and the registry
   carries the warning (conservative: warn instead of reject). *)
let active_violations t =
  let bound = bound_fn t in
  List.filter_map
    (fun cc ->
      match cc.Consistency.relation with
      | Consistency.Inconsistent _ ->
        if
          (not (quarantined_cc t cc))
          && List.for_all bound cc.Consistency.indep
          && List.for_all bound cc.Consistency.dep
        then
          match Guard.run (fun () -> Consistency.check cc (env t)) with
          | Ok violation -> violation
          | Error fault ->
            record_fault t cc ~op:"check" fault;
            None
        else None
      | Consistency.Derive _ | Consistency.Estimator_context _ | Consistency.Eliminate _ -> None)
    t.constraints

let violations = active_violations

(* Run Derive constraints to a fixpoint, adding derived bindings for
   properties that are visible and unbound.  Each compute closure runs
   guarded: a fault (exception, non-finite derived value, exhausted step
   budget) drops that constraint's contribution for this round and is
   recorded in the registry.  A fixpoint that still produces new
   bindings when the round budget runs out is not truncated silently:
   the constraints that fed the final round are quarantined with a
   divergence diagnostic. *)
let derive_fixpoint t =
  let rounds = ref 0 and derived = ref 0 in
  let rec step t budget =
    incr rounds;
    let added_by = ref [] in
    let t' =
      List.fold_left
        (fun t cc ->
          match cc.Consistency.relation with
          | Consistency.Derive { compute }
            when (not (quarantined_cc t cc)) && Consistency.ready cc ~bound:(bound_fn t) -> (
            match Result.bind (Guard.run (fun () -> compute (env t))) Guard.finite_values with
            | Error fault ->
              record_fault t cc ~op:"derive" fault;
              t
            | Ok values ->
              List.fold_left
                (fun t (name, value) ->
                  match binding t name with
                  | Some _ -> t
                  | None -> (
                    match Hierarchy.find_property t.hierarchy t.focus name with
                    | None -> t
                    | Some (defined_at, prop) ->
                      if Property.accepts prop value then begin
                        added_by := cc.Consistency.name :: !added_by;
                        incr derived;
                        if Obs.recording () then
                          Obs.instant "cc.derive"
                            ~attrs:
                              [
                                ("cc", cc.Consistency.name);
                                ("name", name);
                                ("value", Value.to_string value);
                              ];
                        bump_generations
                          {
                            t with
                            bindings =
                              { defined_at; prop; value; source = Derived cc.Consistency.name }
                              :: t.bindings;
                            trail =
                              Trail.push t.trail
                                (Binding_derived { name; value; by = cc.Consistency.name });
                          }
                          name
                      end
                      else t))
                t values)
          | Consistency.Derive _ | Consistency.Inconsistent _ | Consistency.Estimator_context _
          | Consistency.Eliminate _ ->
            t)
        t t.constraints
    in
    if !added_by = [] then t'
    else if budget = 0 then begin
      List.iter
        (fun name ->
          ignore
            (Guard.force_quarantine t'.guard ~cc:name ~op:"derive"
               (Guard.Diverged
                  "derive fixpoint exhausted its round budget (non-convergence or oscillation)")))
        (List.sort_uniq String.compare !added_by);
      t'
    end
    else step t' (budget - 1)
  in
  let sp = Obs.span_begin "engine.derive_fixpoint" in
  Fun.protect
    ~finally:(fun () ->
      Obs.add m_derive_rounds !rounds;
      Obs.span_end sp
        ~attrs:[ ("rounds", string_of_int !rounds); ("derived", string_of_int !derived) ])
    (fun () -> step t (List.length t.constraints + 8))

(* Candidate cores: under the focus, complying with every bound design
   issue, surviving the elimination constraints. *)
let issue_filter t =
  let issue_bindings = List.filter (fun b -> Property.is_design_issue b.prop) t.bindings in
  fun (_, core) ->
    List.for_all
      (fun b ->
        Core.matches_property core ~key:b.prop.Property.name ~value:(Value.to_string b.value))
      issue_bindings

(* The reference pruning path: every elimination closure re-runs against
   every core on every query.  Kept verbatim behind [use_cache:false] as
   the oracle for the equivalence suite and the bench baseline. *)
let candidates_naive t =
  let complies = issue_filter t in
  (* A faulting or quarantined elimination predicate never discards a
     core: the space may only stay the same or widen. *)
  let eliminated core =
    List.exists
      (fun cc ->
        match cc.Consistency.relation with
        | Consistency.Eliminate { inferior; _ } ->
          (not (quarantined_cc t cc))
          && Consistency.ready cc ~bound:(bound_fn t)
          && (match Guard.run (fun () -> inferior (env t) core) with
             | Ok inferior -> inferior
             | Error fault ->
               record_fault t cc ~op:"eliminate" fault;
               false)
        | Consistency.Inconsistent _ | Consistency.Derive _ | Consistency.Estimator_context _ ->
          false)
      t.constraints
  in
  Index.under t.index t.focus
  |> List.filter complies
  |> List.filter (fun (_, core) -> not (eliminated core))

let focus_key t = String.concat "." t.focus

(* Everything the candidate set depends on: the focus, the design-issue
   bindings (compliance filter), and per elimination constraint its
   verdict generation (covers binding changes to declared properties)
   and quarantine flag (quarantine is monotone, so a pre-quarantine
   signature can never recur and serve a stale set). *)
let state_signature t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (focus_key t);
  t.bindings
  |> List.filter (fun b -> Property.is_design_issue b.prop)
  |> List.sort (fun a b -> String.compare a.prop.Property.name b.prop.Property.name)
  |> List.iter (fun b ->
         Buffer.add_char buf '|';
         Buffer.add_string buf b.prop.Property.name;
         Buffer.add_char buf '=';
         Buffer.add_string buf (value_signature b.value));
  List.iter
    (fun cc ->
      match cc.Consistency.relation with
      | Consistency.Eliminate _ ->
        Buffer.add_char buf '|';
        Buffer.add_string buf cc.Consistency.name;
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int (generation_of t cc.Consistency.name));
        if quarantined_cc t cc then Buffer.add_char buf 'q'
      | Consistency.Inconsistent _ | Consistency.Derive _ | Consistency.Estimator_context _ -> ())
    t.constraints;
  Buffer.contents buf

(* One resolved elimination constraint of a sweep: its verdict view
   (see {!Compliance.Slot}), its closure, its resolved columnar kernel
   (columnar sweeps only; [None] on the classic path or when the
   constraint offers none), and its quarantine flag as of the last
   refresh. *)
type elim = {
  e_cc : Consistency.t;
  e_slot : Compliance.Slot.t;
  e_view : int array;
  e_inferior : Consistency.env -> Core.t -> bool;
  e_kernel : (int -> bool) option;
  mutable e_quarantined : bool;
}

exception Sweep_fault

(* The memoized sweep: chunked over the {!Parallel} pool when the pool
   is worth it, sequential otherwise — the same code either way, so the
   single-domain result is by construction what the chunked one
   concatenates to.

   The optimistic chunk evaluates misses without recording faults: a
   fault aborts the whole sweep (all chunks' private verdicts are
   discarded, nothing was stored) and the query re-runs on
   [sweep_recording], the pre-parallel path that records faults,
   strikes and quarantines in exact sequential encounter order.  This
   keeps fault semantics bit-identical to the sequential path: faulted
   evaluations were never cached, successful verdicts are
   deterministic, so re-running them is free of side effects. *)
let sweep_optimistic environment ids arr elims lo hi =
  let keep = Array.make (hi - lo) true in
  let stores = Array.make (Array.length elims) [] in
  let elimc = Array.make (Array.length elims) 0 in
  let hits = ref 0 and misses = ref 0 in
  let faulted = ref false in
  (try
     for i = lo to hi - 1 do
       let id = ids.(i) and core = snd arr.(i) in
       let eliminated = ref false in
       let j = ref 0 in
       let n_elims = Array.length elims in
       while (not !eliminated) && !j < n_elims do
         let e = elims.(!j) in
         (if not e.e_quarantined then
            match Compliance.Slot.peek e.e_view ~id with
            | Some verdict ->
              incr hits;
              if verdict then begin
                eliminated := true;
                elimc.(!j) <- elimc.(!j) + 1
              end
            | None -> (
              incr misses;
              match Guard.run (fun () -> e.e_inferior environment core) with
              | Ok verdict ->
                stores.(!j) <- (id, verdict) :: stores.(!j);
                if verdict then begin
                  eliminated := true;
                  elimc.(!j) <- elimc.(!j) + 1
                end
              | Error _ -> raise_notrace Sweep_fault));
         incr j
       done;
       keep.(i - lo) <- not !eliminated
     done
   with Sweep_fault -> faulted := true);
  (lo, keep, stores, elimc, !hits, !misses, !faulted)

(* The recording sweep (also the fault-fallback path of the optimistic
   one).  Readiness is hoisted (it depends only on bindings and focus,
   both fixed within a query).  Quarantine flags are snapshot per query
   and refreshed whenever the guard registry records anything new —
   quarantine can only change when a fault is recorded, so one integer
   compare per core replaces a registry probe per (constraint, core)
   while a constraint quarantined by a cache miss mid-query still stops
   evaluating immediately, exactly as on the naive path.  A quarantined
   constraint's memoized verdicts are skipped, never served.  Faulted
   evaluations are never stored. *)
let sweep_recording t environment ids core_at elims =
  let n = Array.length ids in
  let keep = Array.make (Stdlib.max 1 n) true in
  let stores = Array.make (Array.length elims) [] in
  let elimc = Array.make (Array.length elims) 0 in
  let hits = ref 0 and misses = ref 0 in
  Array.iter (fun e -> e.e_quarantined <- quarantined_cc t e.e_cc) elims;
  let diag_mark = ref (Guard.diag_count t.guard) in
  let refresh_quarantine () =
    let now = Guard.diag_count t.guard in
    if now <> !diag_mark then begin
      diag_mark := now;
      Array.iter (fun e -> e.e_quarantined <- quarantined_cc t e.e_cc) elims
    end
  in
  for i = 0 to n - 1 do
    refresh_quarantine ();
    let id = ids.(i) and core = core_at i in
    let eliminated = ref false in
    Array.iteri
      (fun j e ->
        if (not !eliminated) && not e.e_quarantined then
          match Compliance.Slot.peek e.e_view ~id with
          | Some verdict ->
            incr hits;
            if verdict then begin
              eliminated := true;
              elimc.(j) <- elimc.(j) + 1
            end
          | None -> (
            incr misses;
            match Guard.run (fun () -> e.e_inferior environment core) with
            | Ok verdict ->
              stores.(j) <- (id, verdict) :: stores.(j);
              if verdict then begin
                eliminated := true;
                elimc.(j) <- elimc.(j) + 1
              end
            | Error fault -> record_fault t e.e_cc ~op:"eliminate" fault))
      elims;
    keep.(i) <- not !eliminated
  done;
  (keep, stores, elimc, !hits, !misses)

let candidates_memo t =
  let fkey = focus_key t in
  let environment = env t in
  let bound = bound_fn t in
  let pool = Index.under t.index t.focus in
  let pool =
    (* every binding is checked by [issue_filter], but an all-requirement
       binding set (common while entering the spec) filters nothing *)
    if List.exists (fun b -> Property.is_design_issue b.prop) t.bindings then
      List.filter (issue_filter t) pool
    else pool
  in
  let elim_ccs =
    List.filter_map
      (fun cc ->
        match cc.Consistency.relation with
        | Consistency.Eliminate { inferior; _ } when Consistency.ready cc ~bound ->
          Some (cc, inferior)
        | Consistency.Eliminate _ | Consistency.Inconsistent _ | Consistency.Derive _
        | Consistency.Estimator_context _ ->
          None)
      t.constraints
  in
  if elim_ccs = [] then pool
  else begin
    let arr = Array.of_list pool in
    let n = Array.length arr in
    let ids = Compliance.core_ids t.cache (Array.map fst arr) in
    let elims =
      Array.of_list
        (List.map
           (fun (cc, inferior) ->
             let slot =
               Compliance.slot t.cache ~cc:cc.Consistency.name
                 ~gen:(generation_of t cc.Consistency.name)
                 ~focus:fkey
             in
             {
               e_cc = cc;
               e_slot = slot;
               e_view = Compliance.Slot.view slot;
               e_inferior = inferior;
               e_kernel = None;
               e_quarantined = quarantined_cc t cc;
             })
           elim_ccs)
    in
    (* counters ride the first constraint's merge only, so a sweep's
       lookups are counted once, not per constraint *)
    let merge_stores stores ~hits ~misses =
      Array.iteri
        (fun j writes ->
          Compliance.Slot.merge elims.(j).e_slot writes
            ~hits:(if j = 0 then hits else 0)
            ~misses:(if j = 0 then misses else 0))
        stores
    in
    (* per-constraint elimination totals, cache traffic and the
       fallback flag, accumulated for the sweep span and the registry *)
    let elim_total = Array.make (Array.length elims) 0 in
    let hits_total = ref 0 and misses_total = ref 0 in
    let was_fallback = ref false in
    let sp =
      Obs.span_begin "engine.sweep"
        ~attrs:
          [
            ("focus", fkey);
            ("pool", string_of_int n);
            ("constraints", string_of_int (Array.length elims));
          ]
    in
    let t0 = Obs.now_us () in
    Fun.protect
      ~finally:(fun () ->
        Obs.incr m_sweeps;
        Obs.observe m_sweep_us (Obs.now_us () -. t0);
        let eliminated = Array.fold_left ( + ) 0 elim_total in
        Obs.add m_eliminated eliminated;
        (* only constraints that did something: a span per no-op
           constraint per sweep would bury the pruning story *)
        if Obs.recording () then
          Array.iteri
            (fun j e ->
              if elim_total.(j) > 0 || e.e_quarantined then
                Obs.instant "cc.eliminate"
                  ~attrs:
                    [
                      ("cc", e.e_cc.Consistency.name);
                      ("eliminated", string_of_int elim_total.(j));
                      ("quarantined", if e.e_quarantined then "true" else "false");
                    ])
            elims;
        Obs.span_end sp
          ~attrs:
            [
              ("survivors", string_of_int (n - eliminated));
              ("hits", string_of_int !hits_total);
              ("misses", string_of_int !misses_total);
              ("fallback", if !was_fallback then "true" else "false");
            ])
      (fun () ->
        let chunks = Parallel.map_chunks ~n (sweep_optimistic environment ids arr elims) in
        if List.exists (fun (_, _, _, _, _, _, faulted) -> faulted) chunks then begin
          (* a closure faulted: discard every chunk's private verdicts and
             counters and replay sequentially, recording faults in exact
             sequential encounter order — bit-identical to the pre-parallel
             path (successful verdicts are deterministic and were never
             published, so re-evaluating them has no side effects) *)
          was_fallback := true;
          let keep, stores, elimc, hits, misses =
            sweep_recording t environment ids (fun i -> snd arr.(i)) elims
          in
          merge_stores stores ~hits ~misses;
          Array.blit elimc 0 elim_total 0 (Array.length elimc);
          hits_total := hits;
          misses_total := misses;
          let acc = ref [] in
          for k = n - 1 downto 0 do
            if keep.(k) then acc := arr.(k) :: !acc
          done;
          !acc
        end
        else begin
          List.iter
            (fun (_, _, stores, elimc, hits, misses, _) ->
              merge_stores stores ~hits ~misses;
              Array.iteri (fun j c -> elim_total.(j) <- elim_total.(j) + c) elimc;
              hits_total := !hits_total + hits;
              misses_total := !misses_total + misses)
            chunks;
          List.concat_map
            (fun (lo, keep, _, _, _, _, _) ->
              let acc = ref [] in
              for k = Array.length keep - 1 downto 0 do
                if keep.(k) then acc := arr.(lo + k) :: !acc
              done;
              !acc)
            chunks
        end)
  end

(* The columnar sweep: the same query as [candidates_memo], computed
   over the index's flat columns and answered as a survivor {!Bitset}
   over the dense-id universe instead of a core list.

   The pool is an ascending dense-id array ([Index.under_ids], then the
   design-issue compliance filter over property columns).  The keep
   mask and the per-constraint touched/inferior masks are position
   bitsets over that pool; when the pool {e is} the whole universe
   (root focus, no issue filter — the million-core bench shape),
   positions coincide with ids and each (constraint, 32-core word) of a
   warm query costs one {!Compliance.Slot.peek_word} plus a handful of
   mask ops, with no per-core control flow at all.

   Evaluation-set parity with the classic core-major/early-exit sweep:
   the word loop applies constraints in declaration order and strips
   eliminated cores from the keep word after each one, so a core is
   evaluated by constraint [j] exactly when it survived constraints
   [0..j-1] — the same (core, constraint) pairs, in a different
   iteration order, which is invisible because successful verdicts are
   deterministic and faults abort to the sequential recording path
   before anything is published. *)
let candidates_bits_memo t =
  let fkey = focus_key t in
  let environment = env t in
  let bound = bound_fn t in
  let store = Index.columnar t.index in
  let universe = Index.size t.index in
  let pool = Index.under_ids t.index t.focus in
  let pool =
    if not (List.exists (fun b -> Property.is_design_issue b.prop) t.bindings) then pool
    else begin
      (* [Columnar.property_matches] is [Core.matches_property] over the
         interned column: [None] means no core declares the key, which
         the per-core filter treats as all-match *)
      let preds =
        List.filter_map
          (fun b ->
            if Property.is_design_issue b.prop then
              Columnar.property_matches store ~key:b.prop.Property.name
                ~value:(Value.to_string b.value)
            else None)
          t.bindings
      in
      if preds = [] then pool
      else begin
        let matches i = List.for_all (fun p -> p i) preds in
        let cnt = ref 0 in
        Array.iter (fun i -> if matches i then incr cnt) pool;
        if !cnt = Array.length pool then pool
        else begin
          let out = Array.make !cnt 0 in
          let k = ref 0 in
          Array.iter
            (fun i ->
              if matches i then begin
                out.(!k) <- i;
                incr k
              end)
            pool;
          out
        end
      end
    end
  in
  let m = Array.length pool in
  (* the pool is strictly ascending within [0, universe), so full
     length means it is the identity — positions are dense ids and the
     verdict words line up with the mask words *)
  let identity = m = universe in
  let elim_ccs =
    List.filter_map
      (fun cc ->
        match cc.Consistency.relation with
        | Consistency.Eliminate { inferior; vectorized } when Consistency.ready cc ~bound ->
          Some (cc, inferior, vectorized)
        | Consistency.Eliminate _ | Consistency.Inconsistent _ | Consistency.Derive _
        | Consistency.Estimator_context _ ->
          None)
      t.constraints
  in
  if elim_ccs = [] then Bitset.of_ids ~length:universe pool
  else begin
    let elims =
      Array.of_list
        (List.map
           (fun (cc, inferior, vectorized) ->
             let slot =
               Compliance.slot ~universe t.cache ~cc:cc.Consistency.name
                 ~gen:(generation_of t cc.Consistency.name)
                 ~focus:fkey
             in
             let kernel =
               (* kernel resolution is layer code too: a throw here just
                  means no fast path for this query *)
               match vectorized with
               | None -> None
               | Some resolve -> ( try resolve environment store with _ -> None)
             in
             {
               e_cc = cc;
               e_slot = slot;
               e_view = Compliance.Slot.view slot;
               e_inferior = inferior;
               e_kernel = kernel;
               e_quarantined = quarantined_cc t cc;
             })
           elim_ccs)
    in
    let n_elims = Array.length elims in
    let keep = Bitset.create_full m in
    let touched = Array.init n_elims (fun _ -> Bitset.create m) in
    let inferior_bits = Array.init n_elims (fun _ -> Bitset.create m) in
    (* one chunk sweeps positions [lo, hi); quantum 32 makes chunks own
       disjoint words of [keep]/[touched]/[inferior_bits], so their
       lockless word writes cannot race *)
    let sweep_chunk lo hi =
      let elimc = Array.make n_elims 0 in
      let hits = ref 0 and misses = ref 0 in
      let faulted = ref false in
      (try
         for w = lo lsr 5 to ((hi + 31) lsr 5) - 1 do
           let kw = ref (Bitset.word keep w) in
           if !kw <> 0 then begin
             for j = 0 to n_elims - 1 do
               let e = elims.(j) in
               if !kw <> 0 && not e.e_quarantined then begin
                 let known, inf =
                   if identity then Compliance.Slot.peek_word e.e_view ~w
                   else begin
                     (* scattered pool: gather the alive positions'
                        verdicts one id at a time *)
                     let known = ref 0 and inf = ref 0 in
                     let bits = ref !kw in
                     while !bits <> 0 do
                       let b = !bits land - !bits in
                       let k = (w lsl 5) + Bitset.popcount32 (b - 1) in
                       (match
                          Compliance.Slot.peek e.e_view ~id:(Array.unsafe_get pool k)
                        with
                       | Some v ->
                         known := !known lor b;
                         if v then inf := !inf lor b
                       | None -> ());
                       bits := !bits land (!bits - 1)
                     done;
                     (!known, !inf)
                   end
                 in
                 let cached_known = !kw land known in
                 let unknown = !kw land lnot known in
                 hits := !hits + Bitset.popcount32 cached_known;
                 misses := !misses + Bitset.popcount32 unknown;
                 let new_elim = ref 0 in
                 if unknown <> 0 then begin
                   let tw = ref (Bitset.word touched.(j) w) in
                   let iw = ref (Bitset.word inferior_bits.(j) w) in
                   let eval =
                     match e.e_kernel with
                     | Some kernel -> fun id -> kernel id
                     | None ->
                       fun id -> (
                         match
                           Guard.run (fun () -> e.e_inferior environment (Columnar.core store id))
                         with
                         | Ok v -> v
                         | Error _ -> raise_notrace Sweep_fault)
                   in
                   let bits = ref unknown in
                   while !bits <> 0 do
                     let b = !bits land - !bits in
                     let k = (w lsl 5) + Bitset.popcount32 (b - 1) in
                     let id = if identity then k else Array.unsafe_get pool k in
                     tw := !tw lor b;
                     if eval id then begin
                       iw := !iw lor b;
                       new_elim := !new_elim lor b
                     end;
                     bits := !bits land (!bits - 1)
                   done;
                   Bitset.set_word touched.(j) w !tw;
                   Bitset.set_word inferior_bits.(j) w !iw
                 end;
                 let elim_w = (cached_known land inf) lor !new_elim in
                 if elim_w <> 0 then begin
                   elimc.(j) <- elimc.(j) + Bitset.popcount32 elim_w;
                   kw := !kw land lnot elim_w
                 end
               end
             done;
             Bitset.set_word keep w !kw
           end
         done
       with
      | Sweep_fault -> faulted := true
      | _ ->
        (* a kernel (layer code running outside Guard) threw: degrade
           to the recording fallback, where every evaluation runs a
           guarded closure *)
        faulted := true);
      (elimc, !hits, !misses, !faulted)
    in
    let merge_all ~hits ~misses =
      Array.iteri
        (fun j e ->
          Compliance.Slot.merge_bits e.e_slot ~touched:touched.(j)
            ~inferior_bits:inferior_bits.(j)
            ~ids:(if identity then None else Some pool)
            ~hits:(if j = 0 then hits else 0)
            ~misses:(if j = 0 then misses else 0))
        elims
    in
    let elim_total = Array.make n_elims 0 in
    let hits_total = ref 0 and misses_total = ref 0 in
    let was_fallback = ref false in
    let sp =
      Obs.span_begin "engine.sweep"
        ~attrs:
          [
            ("focus", fkey);
            ("pool", string_of_int m);
            ("constraints", string_of_int n_elims);
          ]
    in
    let t0 = Obs.now_us () in
    Fun.protect
      ~finally:(fun () ->
        Obs.incr m_sweeps;
        Obs.observe m_sweep_us (Obs.now_us () -. t0);
        let eliminated = Array.fold_left ( + ) 0 elim_total in
        Obs.add m_eliminated eliminated;
        if Obs.recording () then
          Array.iteri
            (fun j e ->
              if elim_total.(j) > 0 || e.e_quarantined then
                Obs.instant "cc.eliminate"
                  ~attrs:
                    [
                      ("cc", e.e_cc.Consistency.name);
                      ("eliminated", string_of_int elim_total.(j));
                      ("quarantined", if e.e_quarantined then "true" else "false");
                    ])
            elims;
        Obs.span_end sp
          ~attrs:
            [
              ("survivors", string_of_int (m - eliminated));
              ("hits", string_of_int !hits_total);
              ("misses", string_of_int !misses_total);
              ("fallback", if !was_fallback then "true" else "false");
            ])
      (fun () ->
        let chunks =
          Parallel.map_chunks ~quantum:Bitset.bits_per_word ~n:m sweep_chunk
        in
        if List.exists (fun (_, _, _, faulted) -> faulted) chunks then begin
          (* same fault protocol as the classic sweep: discard every
             chunk's masks and replay sequentially with the guarded
             closures, recording faults/strikes/quarantines in exact
             sequential encounter order *)
          was_fallback := true;
          let keep_arr, stores, elimc, hits, misses =
            sweep_recording t environment pool
              (fun k -> Columnar.core store pool.(k))
              elims
          in
          Array.iteri
            (fun j writes ->
              Compliance.Slot.merge elims.(j).e_slot writes
                ~hits:(if j = 0 then hits else 0)
                ~misses:(if j = 0 then misses else 0))
            stores;
          Array.blit elimc 0 elim_total 0 n_elims;
          hits_total := hits;
          misses_total := misses;
          let bits = Bitset.create universe in
          for k = 0 to m - 1 do
            if keep_arr.(k) then Bitset.set bits pool.(k)
          done;
          bits
        end
        else begin
          List.iter
            (fun (elimc, hits, misses, _) ->
              Array.iteri (fun j c -> elim_total.(j) <- elim_total.(j) + c) elimc;
              hits_total := !hits_total + hits;
              misses_total := !misses_total + misses)
            chunks;
          merge_all ~hits:!hits_total ~misses:!misses_total;
          if identity then keep
          else begin
            let bits = Bitset.create universe in
            Bitset.iter_true (fun k -> Bitset.set bits (Array.unsafe_get pool k)) keep;
            bits
          end
        end)
  end

(* The survivor set of the current state, served from the lineage cache
   or computed by the mode's sweep.  Quarantine may advance while
   computing, but it is monotone: the pre-computation key can never
   recur, so storing under it is safe (the entry just goes dead). *)
let survivor_set t =
  let key = state_signature t in
  match Compliance.find_survivor_set t.cache ~key with
  | Some s -> s
  | None -> (
    match t.mode with
    | Classic ->
      let survivors = candidates_memo t in
      Compliance.store_survivor_list t.cache ~key survivors;
      Compliance.S_list survivors
    | Columnar ->
      let bits = candidates_bits_memo t in
      Compliance.S_bits (Compliance.store_survivor_bits t.cache ~key bits))

let candidates t =
  if not t.use_cache then candidates_naive t
  else
    match survivor_set t with
    | Compliance.S_list survivors -> survivors
    | Compliance.S_bits sv -> Compliance.survivor_list sv ~entry_at:(Index.entry_at t.index)

let cache_stats t = Compliance.stats t.cache
let population t = Index.all t.index

let candidate_count t =
  if not t.use_cache then List.length (candidates_naive t)
  else
    (* bitset sets answer by popcount — no million-cons list just to
       take its length *)
    match survivor_set t with
    | Compliance.S_list survivors -> List.length survivors
    | Compliance.S_bits sv -> Compliance.survivor_count sv

(* Memoized like the survivor list itself (and on the same key): a
   revisited state serves its ranges without re-folding the pool. *)
let merit_summary t ~merit =
  if not t.use_cache then Evaluation.merit_summary (candidates t) ~merit
  else begin
    let key = state_signature t ^ "#" ^ merit in
    match Compliance.find_summary t.cache ~key with
    | Some summary ->
      if Obs.recording () then
        Obs.instant "eval.merit_summary" ~attrs:[ ("merit", merit); ("cached", "true") ];
      summary
    | None ->
      let summary =
        Obs.with_span "eval.merit_summary"
          ~attrs:[ ("merit", merit); ("cached", "false") ]
          (fun () ->
            match survivor_set t with
            | Compliance.S_list survivors -> Evaluation.merit_summary survivors ~merit
            | Compliance.S_bits sv ->
              (* straight off the merit column — no candidate list *)
              Evaluation.merit_summary_columnar (Index.columnar t.index)
                sv.Compliance.sv_bits ~merit)
      in
      Compliance.store_summary t.cache ~key summary;
      summary
  end

let merit_range t ~merit = (merit_summary t ~merit).Evaluation.merit_range

let eligible t name =
  List.for_all (fun cc -> Consistency.ready cc ~bound:(bound_fn t)) (governing t name)

let open_issues t =
  Hierarchy.visible_properties t.hierarchy t.focus
  |> List.filter_map (fun (_, prop) ->
         if Property.is_design_issue prop && binding t prop.Property.name = None then
           Some (prop, eligible t prop.Property.name)
         else None)

let source_label = function
  | Designer -> "designer"
  | Default_value -> "default"
  | Derived by -> "derived:" ^ by

let set_with_source_unspanned t name value source =
  match Hierarchy.find_property t.hierarchy t.focus name with
  | None -> Error (Printf.sprintf "property %S is not visible at %s" name (String.concat "." t.focus))
  | Some (defined_at, prop) ->
    if binding t name <> None then Error (Printf.sprintf "property %S is already bound" name)
    else if not (Property.accepts prop value) then
      Error
        (Printf.sprintf "value %s outside the domain %s of %S" (Value.to_string value)
           (Domain.describe prop.Property.domain) name)
    else if Property.is_design_issue prop && not (eligible t name) then begin
      let blocking =
        governing t name
        |> List.filter (fun cc -> not (Consistency.ready cc ~bound:(bound_fn t)))
        |> List.map (fun cc -> cc.Consistency.name)
      in
      Error
        (Printf.sprintf "issue %S cannot be addressed yet: independent set of %s unbound" name
           (String.concat ", " blocking))
    end
    else begin
      let event =
        if Property.is_requirement prop then Requirement_entered { name; value }
        else Decision_made { name; value }
      in
      let t' =
        bump_generations
          {
            t with
            bindings = { defined_at; prop; value; source } :: t.bindings;
            trail = Trail.push t.trail event;
          }
          name
      in
      match active_violations t' with
      | { Consistency.message; _ } :: _ -> Error message
      | [] -> (
        (* Generalized issue of the focus node: descend. *)
        let focus_issue =
          match Cdo.generalized_issue (focus_cdo t') with
          | Some issue when String.equal issue.Property.name name -> Some issue
          | Some _ | None -> None
        in
        match focus_issue with
        | None -> Ok (derive_fixpoint t')
        | Some _ -> (
          match Value.as_str value with
          | None -> Error "generalized issue options are strings"
          | Some opt -> (
            match Cdo.child_for_option (focus_cdo t') opt with
            | None -> Error (Printf.sprintf "no specialization for option %S" opt)
            | Some child ->
              let before = candidate_count t' in
              let t'' = { t' with focus = t'.focus @ [ child.Cdo.name ] } in
              let after = candidate_count t'' in
              let t'' =
                {
                  t'' with
                  trail =
                    Trail.push t''.trail
                      (Focus_descended
                         { path = t''.focus; candidates_before = before; candidates_after = after });
                }
              in
              Ok (derive_fixpoint t''))))
    end

let set_with_source t name value source =
  if not (Obs.recording ()) then set_with_source_unspanned t name value source
  else begin
    let sp =
      Obs.span_begin "session.set"
        ~attrs:
          [ ("name", name); ("value", Value.to_string value); ("source", source_label source) ]
    in
    Fun.protect
      ~finally:(fun () -> Obs.span_end sp)
      (fun () ->
        match set_with_source_unspanned t name value source with
        | Ok _ as r ->
          Obs.span_add sp [ ("ok", "true") ];
          r
        | Error e as r ->
          Obs.span_add sp [ ("ok", "false"); ("error", e) ];
          r)
  end

let set t name value = set_with_source t name value Designer
let annotate t note = { t with trail = Trail.push t.trail (Note note) }

type option_preview = {
  option_value : string;
  outcome : [ `Explored of int * (float * float) option | `Rejected of string ];
}

let preview_options t ~issue ~merit =
  match Hierarchy.find_property t.hierarchy t.focus issue with
  | None ->
    Error (Printf.sprintf "property %S is not visible at %s" issue (String.concat "." t.focus))
  | Some (_, prop) -> (
    if not (Property.is_design_issue prop) then
      Error (Printf.sprintf "%S is not a design issue" issue)
    else if binding t issue <> None then Error (Printf.sprintf "%S is already bound" issue)
    else begin
      match Domain.options prop.Property.domain with
      | None -> Error (Printf.sprintf "%S is not an enumerated issue" issue)
      | Some options ->
        Ok
          (List.map
             (fun option_value ->
               match set t issue (Value.Str option_value) with
               | Ok t' ->
                 {
                   option_value;
                   outcome = `Explored (candidate_count t', merit_range t' ~merit);
                 }
               | Error reason -> { option_value; outcome = `Rejected reason })
             options)
    end)

let set_default t name =
  match Hierarchy.find_property t.hierarchy t.focus name with
  | None -> Error (Printf.sprintf "property %S is not visible at %s" name (String.concat "." t.focus))
  | Some (_, prop) -> (
    match prop.Property.default with
    | None -> Error (Printf.sprintf "property %S declares no default" name)
    | Some v -> set_with_source t name v Default_value)

(* Retract: drop the binding, recompute every derived binding from the
   survivors, and pop the focus when a generalized decision goes away. *)
let retract_unspanned t name =
  match binding t name with
  | None -> Error (Printf.sprintf "property %S is not bound" name)
  | Some b -> (
    match b.source with
    | Derived by ->
      Error (Printf.sprintf "%S was derived by %s; retract one of its inputs instead" name by)
    | Designer | Default_value ->
      (* New focus: if the retracted property is the generalized issue of
         a node on the focus path, cut the path at that node. *)
      let new_focus =
        let rec walk acc = function
          | [] -> List.rev acc
          | seg :: rest -> (
            let path = List.rev (seg :: acc) in
            match Hierarchy.find t.hierarchy path with
            | None -> List.rev acc @ (seg :: rest)
            | Some cdo -> (
              match Cdo.generalized_issue cdo with
              | Some issue when String.equal issue.Property.name name -> path
              | Some _ | None -> walk (seg :: acc) rest))
        in
        walk [] t.focus
      in
      let still_visible prop_name =
        Hierarchy.find_property t.hierarchy new_focus prop_name <> None
      in
      let survivors, dropped =
        List.partition
          (fun b' ->
            (not (String.equal b'.prop.Property.name name))
            && (match b'.source with Derived _ -> false | Designer | Default_value -> true)
            && still_visible b'.prop.Property.name)
          t.bindings
      in
      let invalidated =
        List.filter_map
          (fun b' ->
            if String.equal b'.prop.Property.name name then None
            else Some b'.prop.Property.name)
          dropped
      in
      let t' =
        {
          t with
          focus = new_focus;
          bindings = survivors;
          trail = Trail.push t.trail (Binding_retracted { name; invalidated });
        }
      in
      (* every dropped binding re-opens the constraints that mention it *)
      let t' = List.fold_left bump_generations t' (name :: invalidated) in
      Ok (derive_fixpoint t'))

let retract t name =
  if not (Obs.recording ()) then retract_unspanned t name
  else begin
    let sp = Obs.span_begin "session.retract" ~attrs:[ ("name", name) ] in
    Fun.protect
      ~finally:(fun () -> Obs.span_end sp)
      (fun () ->
        match retract_unspanned t name with
        | Ok _ as r ->
          Obs.span_add sp [ ("ok", "true") ];
          r
        | Error e as r ->
          Obs.span_add sp [ ("ok", "false"); ("error", e) ];
          r)
  end

let estimates t =
  List.filter_map
    (fun cc ->
      match cc.Consistency.relation with
      | Consistency.Estimator_context { tool; estimate } ->
        if (not (quarantined_cc t cc)) && Consistency.ready cc ~bound:(bound_fn t) then
          match Result.bind (Guard.run (fun () -> estimate (env t))) Guard.finite_metrics with
          | Ok metrics -> Some (tool, metrics)
          | Error fault ->
            record_fault t cc ~op:"estimate" fault;
            None
        else None
      | Consistency.Inconsistent _ | Consistency.Derive _ | Consistency.Eliminate _ -> None)
    t.constraints

(* The designer-visible state, digested.  Unlike [state_signature]
   (cache-keying, includes verdict generations that differ between
   lineages), this covers exactly what a client of the exploration
   service can observe: focus, all bindings with their sources, and the
   candidate ids.  Replaying a journal into a fresh lineage must
   reproduce it bit for bit. *)
let candidate_signature t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (focus_key t);
  t.bindings
  |> List.map (fun b ->
         let src =
           match b.source with
           | Designer -> "!"
           | Default_value -> "d"
           | Derived cc -> "<" ^ cc
         in
         b.prop.Property.name ^ "=" ^ value_signature b.value ^ src)
  |> List.sort String.compare
  |> List.iter (fun entry ->
         Buffer.add_char buf '|';
         Buffer.add_string buf entry);
  let prefix = Buffer.contents buf in
  let compute () =
    (* ascending dense ids are index insertion order, so the bitset
       walk appends exactly the bytes the candidate-list walk would *)
    (if not t.use_cache then
       List.iter
         (fun (qid, _) ->
           Buffer.add_char buf '#';
           Buffer.add_string buf qid)
         (candidates t)
     else
       match survivor_set t with
       | Compliance.S_list survivors ->
         List.iter
           (fun (qid, _) ->
             Buffer.add_char buf '#';
             Buffer.add_string buf qid)
           survivors
       | Compliance.S_bits sv ->
         let store = Index.columnar t.index in
         Bitset.iter_true
           (fun i ->
             Buffer.add_char buf '#';
             Buffer.add_string buf (Columnar.qid store i))
           sv.Compliance.sv_bits);
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  if not t.use_cache then compute ()
  else begin
    (* The candidate list is a function of the state signature (that is
       the survivor cache's contract), so (observable prefix, state
       signature) determines the digest; a memo hit returns exactly the
       bytes the full walk over the pool would have produced. *)
    let key = prefix ^ "\x01" ^ state_signature t in
    match Compliance.find_signature t.cache ~key with
    | Some digest -> digest
    | None ->
      let digest = compute () in
      Compliance.store_signature t.cache ~key digest;
      digest
  end

let script t =
  (* Walk the event log: set events append; a retraction removes the
     latest entry for its property and every entry whose binding it
     invalidated (decisions that lived below a popped focus). *)
  let remove_last name entries =
    let rec go = function
      | [] -> []
      | (n, _) :: rest when String.equal n name -> rest
      | kept :: rest -> kept :: go rest
    in
    List.rev (go (List.rev entries))
  in
  List.fold_left
    (fun entries event ->
      match event with
      | Requirement_entered { name; value } | Decision_made { name; value } ->
        entries @ [ (name, value) ]
      | Binding_retracted { name; invalidated } ->
        List.fold_left (fun acc n -> remove_last n acc) entries (name :: invalidated)
      | Focus_descended _ | Binding_derived _ | Note _ | Constraint_faulted _
      | Constraint_quarantined _ ->
        entries)
    [] (events t)

let replay t entries =
  List.fold_left
    (fun acc (name, value) -> Result.bind acc (fun s -> set s name value))
    (Ok t) entries

let pp_source fmt = function
  | Designer -> Format.pp_print_string fmt "designer"
  | Default_value -> Format.pp_print_string fmt "default"
  | Derived cc -> Format.fprintf fmt "derived by %s" cc

let pp_trace fmt t =
  Format.fprintf fmt "focus: %s@." (String.concat "." t.focus);
  Format.fprintf fmt "bindings:@.";
  List.iter
    (fun b ->
      Format.fprintf fmt "  %s = %s (%a)@." b.prop.Property.name (Value.to_string b.value)
        pp_source b.source)
    (List.rev t.bindings);
  Format.fprintf fmt "events:@.";
  List.iter
    (fun event ->
      match event with
      | Requirement_entered { name; value } ->
        Format.fprintf fmt "  requirement %s := %s@." name (Value.to_string value)
      | Decision_made { name; value } ->
        Format.fprintf fmt "  decision %s := %s@." name (Value.to_string value)
      | Focus_descended { path; candidates_before; candidates_after } ->
        Format.fprintf fmt "  focus -> %s (candidates %d -> %d)@." (String.concat "." path)
          candidates_before candidates_after
      | Binding_derived { name; value; by } ->
        Format.fprintf fmt "  derived %s := %s (by %s)@." name (Value.to_string value) by
      | Binding_retracted { name; invalidated } ->
        Format.fprintf fmt "  retracted %s%s@." name
          (if invalidated = [] then ""
           else " (invalidated: " ^ String.concat ", " invalidated ^ ")")
      | Note s -> Format.fprintf fmt "  note: %s@." s
      | Constraint_faulted { name; op; detail } ->
        Format.fprintf fmt "  constraint %s faulted during %s: %s@." name op detail
      | Constraint_quarantined { name; op; reason } ->
        Format.fprintf fmt "  constraint %s quarantined during %s: %s@." name op reason)
    (events t);
  (* only non-healthy constraints are listed, so a fault-free trace is
     byte-identical to the unguarded one *)
  match List.filter (fun (_, s) -> s <> Guard.Healthy) (health t) with
  | [] -> ()
  | faulty ->
    Format.fprintf fmt "constraint health:@.";
    List.iter
      (fun (name, status) ->
        match status with
        | Guard.Quarantined { reason; at_event } ->
          Format.fprintf fmt "  %s: quarantined (%s; diagnostic #%d)@." name reason at_event
        | Guard.Degraded -> Format.fprintf fmt "  %s: degraded@." name
        | Guard.Healthy -> ())
      faulty
