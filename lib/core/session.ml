module Core = Ds_reuse.Core

type source = Designer | Default_value | Derived of string

type binding = {
  defined_at : string list;
  prop : Property.t;
  value : Value.t;
  source : source;
}

type event =
  | Requirement_entered of { name : string; value : Value.t }
  | Decision_made of { name : string; value : Value.t }
  | Focus_descended of {
      path : string list;
      candidates_before : int;
      candidates_after : int;
    }
  | Binding_derived of { name : string; value : Value.t; by : string }
  | Binding_retracted of { name : string; invalidated : string list }
  | Note of string

type t = {
  hierarchy : Hierarchy.t;
  constraints : Consistency.t list;
  index : Index.t;
  focus : string list;
  bindings : binding list;
  events : event list; (* newest first *)
}

let create ~hierarchy ?(constraints = []) ~cores () =
  {
    hierarchy;
    constraints;
    index = Index.build hierarchy cores;
    focus = [ (Hierarchy.root hierarchy).Cdo.name ];
    bindings = [];
    events = [];
  }

let hierarchy t = t.hierarchy
let focus t = t.focus

let focus_cdo t =
  match Hierarchy.find t.hierarchy t.focus with
  | Some cdo -> cdo
  | None -> assert false (* focus is maintained as a valid path *)

let bindings t = t.bindings
let binding t name = List.find_opt (fun b -> String.equal b.prop.Property.name name) t.bindings
let value_of t name = Option.map (fun b -> b.value) (binding t name)
let events t = List.rev t.events

let ancestor_paths t =
  let rec prefixes acc cur = function
    | [] -> List.rev acc
    | seg :: rest ->
      let cur = cur @ [ seg ] in
      prefixes (cur :: acc) cur rest
  in
  prefixes [] [] t.focus

(* A property reference applies in this session when its pattern
   addresses the focus node or one of its ancestors (by path or by
   abbreviation). *)
let ref_applies t pref =
  List.exists
    (fun path -> Hierarchy.ref_matches t.hierarchy pref ~path ~property:pref.Propref.property)
    (ancestor_paths t)

let env t =
  {
    Consistency.value =
      (fun pref -> if ref_applies t pref then value_of t pref.Propref.property else None);
    Consistency.value_of = (fun name -> value_of t name);
    Consistency.focus = t.focus;
  }

let bound_fn t pref = ref_applies t pref && value_of t pref.Propref.property <> None

(* Constraints whose dependent set includes this property at the current
   focus. *)
let governing t name =
  List.filter
    (fun cc ->
      List.exists
        (fun pref -> String.equal pref.Propref.property name && ref_applies t pref)
        cc.Consistency.dep)
    t.constraints

(* Inconsistent-options constraints with every referenced property bound
   are "active" and must hold. *)
let active_violations t =
  let bound = bound_fn t in
  List.filter_map
    (fun cc ->
      match cc.Consistency.relation with
      | Consistency.Inconsistent _ ->
        if List.for_all bound cc.Consistency.indep && List.for_all bound cc.Consistency.dep then
          Consistency.check cc (env t)
        else None
      | Consistency.Derive _ | Consistency.Estimator_context _ | Consistency.Eliminate _ -> None)
    t.constraints

let violations = active_violations

(* Run Derive constraints to a fixpoint, adding derived bindings for
   properties that are visible and unbound. *)
let derive_fixpoint t =
  let rec step t budget =
    if budget = 0 then t
    else begin
      let added = ref false in
      let t' =
        List.fold_left
          (fun t cc ->
            match cc.Consistency.relation with
            | Consistency.Derive { compute } when Consistency.ready cc ~bound:(bound_fn t) ->
              List.fold_left
                (fun t (name, value) ->
                  match binding t name with
                  | Some _ -> t
                  | None -> (
                    match Hierarchy.find_property t.hierarchy t.focus name with
                    | None -> t
                    | Some (defined_at, prop) ->
                      if Property.accepts prop value then begin
                        added := true;
                        {
                          t with
                          bindings =
                            { defined_at; prop; value; source = Derived cc.Consistency.name }
                            :: t.bindings;
                          events =
                            Binding_derived { name; value; by = cc.Consistency.name } :: t.events;
                        }
                      end
                      else t))
                t (compute (env t))
            | Consistency.Derive _ | Consistency.Inconsistent _ | Consistency.Estimator_context _
            | Consistency.Eliminate _ ->
              t)
          t t.constraints
      in
      if !added then step t' (budget - 1) else t'
    end
  in
  step t (List.length t.constraints + 8)

(* Candidate cores: under the focus, complying with every bound design
   issue, surviving the elimination constraints. *)
let candidates t =
  let issue_bindings = List.filter (fun b -> Property.is_design_issue b.prop) t.bindings in
  let complies (_, core) =
    List.for_all
      (fun b ->
        (not (Property.is_design_issue b.prop))
        || Core.matches_property core ~key:b.prop.Property.name ~value:(Value.to_string b.value))
      issue_bindings
  in
  let eliminated core =
    List.exists
      (fun cc ->
        match cc.Consistency.relation with
        | Consistency.Eliminate { inferior } ->
          Consistency.ready cc ~bound:(bound_fn t) && inferior (env t) core
        | Consistency.Inconsistent _ | Consistency.Derive _ | Consistency.Estimator_context _ ->
          false)
      t.constraints
  in
  Index.under t.index t.focus
  |> List.filter complies
  |> List.filter (fun (_, core) -> not (eliminated core))

let population t = Index.all t.index

let candidate_count t = List.length (candidates t)
let merit_range t ~merit = Evaluation.merit_range (candidates t) ~merit

let eligible t name =
  List.for_all (fun cc -> Consistency.ready cc ~bound:(bound_fn t)) (governing t name)

let open_issues t =
  Hierarchy.visible_properties t.hierarchy t.focus
  |> List.filter_map (fun (_, prop) ->
         if Property.is_design_issue prop && binding t prop.Property.name = None then
           Some (prop, eligible t prop.Property.name)
         else None)

let set_with_source t name value source =
  match Hierarchy.find_property t.hierarchy t.focus name with
  | None -> Error (Printf.sprintf "property %S is not visible at %s" name (String.concat "." t.focus))
  | Some (defined_at, prop) ->
    if binding t name <> None then Error (Printf.sprintf "property %S is already bound" name)
    else if not (Property.accepts prop value) then
      Error
        (Printf.sprintf "value %s outside the domain %s of %S" (Value.to_string value)
           (Domain.describe prop.Property.domain) name)
    else if Property.is_design_issue prop && not (eligible t name) then begin
      let blocking =
        governing t name
        |> List.filter (fun cc -> not (Consistency.ready cc ~bound:(bound_fn t)))
        |> List.map (fun cc -> cc.Consistency.name)
      in
      Error
        (Printf.sprintf "issue %S cannot be addressed yet: independent set of %s unbound" name
           (String.concat ", " blocking))
    end
    else begin
      let event =
        if Property.is_requirement prop then Requirement_entered { name; value }
        else Decision_made { name; value }
      in
      let t' =
        {
          t with
          bindings = { defined_at; prop; value; source } :: t.bindings;
          events = event :: t.events;
        }
      in
      match active_violations t' with
      | { Consistency.message; _ } :: _ -> Error message
      | [] -> (
        (* Generalized issue of the focus node: descend. *)
        let focus_issue =
          match Cdo.generalized_issue (focus_cdo t') with
          | Some issue when String.equal issue.Property.name name -> Some issue
          | Some _ | None -> None
        in
        match focus_issue with
        | None -> Ok (derive_fixpoint t')
        | Some _ -> (
          match Value.as_str value with
          | None -> Error "generalized issue options are strings"
          | Some opt -> (
            match Cdo.child_for_option (focus_cdo t') opt with
            | None -> Error (Printf.sprintf "no specialization for option %S" opt)
            | Some child ->
              let before = candidate_count t' in
              let t'' = { t' with focus = t'.focus @ [ child.Cdo.name ] } in
              let after = candidate_count t'' in
              let t'' =
                {
                  t'' with
                  events =
                    Focus_descended
                      { path = t''.focus; candidates_before = before; candidates_after = after }
                    :: t''.events;
                }
              in
              Ok (derive_fixpoint t''))))
    end

let set t name value = set_with_source t name value Designer
let annotate t note = { t with events = Note note :: t.events }

type option_preview = {
  option_value : string;
  outcome : [ `Explored of int * (float * float) option | `Rejected of string ];
}

let preview_options t ~issue ~merit =
  match Hierarchy.find_property t.hierarchy t.focus issue with
  | None ->
    Error (Printf.sprintf "property %S is not visible at %s" issue (String.concat "." t.focus))
  | Some (_, prop) -> (
    if not (Property.is_design_issue prop) then
      Error (Printf.sprintf "%S is not a design issue" issue)
    else if binding t issue <> None then Error (Printf.sprintf "%S is already bound" issue)
    else begin
      match Domain.options prop.Property.domain with
      | None -> Error (Printf.sprintf "%S is not an enumerated issue" issue)
      | Some options ->
        Ok
          (List.map
             (fun option_value ->
               match set t issue (Value.Str option_value) with
               | Ok t' ->
                 {
                   option_value;
                   outcome = `Explored (candidate_count t', merit_range t' ~merit);
                 }
               | Error reason -> { option_value; outcome = `Rejected reason })
             options)
    end)

let set_default t name =
  match Hierarchy.find_property t.hierarchy t.focus name with
  | None -> Error (Printf.sprintf "property %S is not visible at %s" name (String.concat "." t.focus))
  | Some (_, prop) -> (
    match prop.Property.default with
    | None -> Error (Printf.sprintf "property %S declares no default" name)
    | Some v -> set_with_source t name v Default_value)

(* Retract: drop the binding, recompute every derived binding from the
   survivors, and pop the focus when a generalized decision goes away. *)
let retract t name =
  match binding t name with
  | None -> Error (Printf.sprintf "property %S is not bound" name)
  | Some b -> (
    match b.source with
    | Derived by ->
      Error (Printf.sprintf "%S was derived by %s; retract one of its inputs instead" name by)
    | Designer | Default_value ->
      (* New focus: if the retracted property is the generalized issue of
         a node on the focus path, cut the path at that node. *)
      let new_focus =
        let rec walk acc = function
          | [] -> List.rev acc
          | seg :: rest -> (
            let path = List.rev (seg :: acc) in
            match Hierarchy.find t.hierarchy path with
            | None -> List.rev acc @ (seg :: rest)
            | Some cdo -> (
              match Cdo.generalized_issue cdo with
              | Some issue when String.equal issue.Property.name name -> path
              | Some _ | None -> walk (seg :: acc) rest))
        in
        walk [] t.focus
      in
      let still_visible prop_name =
        Hierarchy.find_property t.hierarchy new_focus prop_name <> None
      in
      let survivors, dropped =
        List.partition
          (fun b' ->
            (not (String.equal b'.prop.Property.name name))
            && (match b'.source with Derived _ -> false | Designer | Default_value -> true)
            && still_visible b'.prop.Property.name)
          t.bindings
      in
      let invalidated =
        List.filter_map
          (fun b' ->
            if String.equal b'.prop.Property.name name then None
            else Some b'.prop.Property.name)
          dropped
      in
      let t' =
        {
          t with
          focus = new_focus;
          bindings = survivors;
          events = Binding_retracted { name; invalidated } :: t.events;
        }
      in
      Ok (derive_fixpoint t'))

let estimates t =
  List.filter_map
    (fun cc ->
      match cc.Consistency.relation with
      | Consistency.Estimator_context { tool; estimate } ->
        if Consistency.ready cc ~bound:(bound_fn t) then Some (tool, estimate (env t)) else None
      | Consistency.Inconsistent _ | Consistency.Derive _ | Consistency.Eliminate _ -> None)
    t.constraints

let script t =
  (* Walk the event log: set events append; a retraction removes the
     latest entry for its property and every entry whose binding it
     invalidated (decisions that lived below a popped focus). *)
  let remove_last name entries =
    let rec go = function
      | [] -> []
      | (n, _) :: rest when String.equal n name -> rest
      | kept :: rest -> kept :: go rest
    in
    List.rev (go (List.rev entries))
  in
  List.fold_left
    (fun entries event ->
      match event with
      | Requirement_entered { name; value } | Decision_made { name; value } ->
        entries @ [ (name, value) ]
      | Binding_retracted { name; invalidated } ->
        List.fold_left (fun acc n -> remove_last n acc) entries (name :: invalidated)
      | Focus_descended _ | Binding_derived _ | Note _ -> entries)
    [] (events t)

let replay t entries =
  List.fold_left
    (fun acc (name, value) -> Result.bind acc (fun s -> set s name value))
    (Ok t) entries

let pp_source fmt = function
  | Designer -> Format.pp_print_string fmt "designer"
  | Default_value -> Format.pp_print_string fmt "default"
  | Derived cc -> Format.fprintf fmt "derived by %s" cc

let pp_trace fmt t =
  Format.fprintf fmt "focus: %s@." (String.concat "." t.focus);
  Format.fprintf fmt "bindings:@.";
  List.iter
    (fun b ->
      Format.fprintf fmt "  %s = %s (%a)@." b.prop.Property.name (Value.to_string b.value)
        pp_source b.source)
    (List.rev t.bindings);
  Format.fprintf fmt "events:@.";
  List.iter
    (fun event ->
      match event with
      | Requirement_entered { name; value } ->
        Format.fprintf fmt "  requirement %s := %s@." name (Value.to_string value)
      | Decision_made { name; value } ->
        Format.fprintf fmt "  decision %s := %s@." name (Value.to_string value)
      | Focus_descended { path; candidates_before; candidates_after } ->
        Format.fprintf fmt "  focus -> %s (candidates %d -> %d)@." (String.concat "." path)
          candidates_before candidates_after
      | Binding_derived { name; value; by } ->
        Format.fprintf fmt "  derived %s := %s (by %s)@." name (Value.to_string value) by
      | Binding_retracted { name; invalidated } ->
        Format.fprintf fmt "  retracted %s%s@." name
          (if invalidated = [] then ""
           else " (invalidated: " ^ String.concat ", " invalidated ^ ")")
      | Note s -> Format.fprintf fmt "  note: %s@." s)
    (events t)
