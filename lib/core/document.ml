let render_property buf prop =
  let p = (prop : Property.t) in
  Buffer.add_string buf
    (Printf.sprintf "- **%s**%s — %s\n" p.Property.name
       (match p.Property.unit_ with None -> "" | Some u -> Printf.sprintf " [%s]" u)
       (Property.kind_name p.Property.kind));
  Buffer.add_string buf
    (Printf.sprintf "  - SetOfValues = %s\n" (Domain.describe p.Property.domain));
  (match p.Property.default with
  | Some d -> Buffer.add_string buf (Printf.sprintf "  - Default = %s\n" (Value.to_string d))
  | None -> ());
  if not (String.equal p.Property.doc "") then
    Buffer.add_string buf (Printf.sprintf "  - %s\n" p.Property.doc)

let render_cdo buf depth path (cdo : Cdo.t) =
  let hashes = String.make (Stdlib.min 6 (depth + 2)) '#' in
  Buffer.add_string buf
    (Printf.sprintf "\n%s %s%s\n\n" hashes
       (String.concat " . " path)
       (match cdo.Cdo.abbrev with None -> "" | Some a -> Printf.sprintf " (%s)" a));
  if not (String.equal cdo.Cdo.doc "") then Buffer.add_string buf (cdo.Cdo.doc ^ "\n\n");
  (match cdo.Cdo.properties with
  | [] -> ()
  | properties -> List.iter (render_property buf) properties);
  match cdo.Cdo.specialization with
  | None -> Buffer.add_string buf "\nLeaf class: no further specialization.\n"
  | Some spec ->
    render_property buf spec.Cdo.issue;
    Buffer.add_string buf
      (Printf.sprintf "  - specializations: %s\n"
         (String.concat ", " (List.map fst spec.Cdo.children)))

let render ?(title = "Design Space Layer") ?(constraints = []) hierarchy =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  Buffer.add_string buf
    (Printf.sprintf "%d classes of design objects, depth %d, %d leaves.\n"
       (Hierarchy.size hierarchy) (Hierarchy.depth hierarchy)
       (List.length (Hierarchy.leaf_paths hierarchy)));
  List.iter
    (fun path ->
      match Hierarchy.find hierarchy path with
      | Some cdo -> render_cdo buf (List.length path - 1) path cdo
      | None -> ())
    (Hierarchy.node_paths hierarchy);
  if constraints <> [] then begin
    Buffer.add_string buf "\n## Consistency constraints\n\n";
    List.iter
      (fun cc ->
        Buffer.add_string buf (Format.asprintf "```\n%a```\n\n" Consistency.pp cc))
      constraints
  end;
  Buffer.contents buf

let pp ?title ?constraints fmt hierarchy =
  Format.pp_print_string fmt (render ?title ?constraints hierarchy)

let save ?title ?constraints hierarchy ~path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render ?title ?constraints hierarchy));
    Ok ()
  with Sys_error msg -> Error msg
