(** Guarded evaluation of consistency-constraint closures.

    The four relation kinds of {!Consistency} are arbitrary layer-author
    closures.  Executed bare, one exception, one NaN or one runaway loop
    in a formula crashes whatever session operation happened to evaluate
    it.  This module is the containment layer: every closure invocation
    goes through {!run}, which converts exceptions into {!fault} values,
    and the produced numbers are vetted with {!finite_metrics} /
    {!finite_values} so non-finite results are rejected before they
    poison bindings or merit ranges.

    {2 Step budget}

    [run] also enforces a per-evaluation step budget.  Steps are
    cooperative: library code that loops (and the divergence wrappers of
    {!Faultsim}) calls {!tick} once per iteration; when the enclosing
    [run] runs out of fuel the evaluation is aborted with
    [Budget_exhausted].  Closures that never tick are unaffected — the
    budget can only stop code that participates, which keeps the guard
    deterministic and free of signals or threads.

    {2 Health registry}

    A {!registry} accumulates the faults of one session lineage (it is
    created by [Session.create] and shared by every session derived from
    it — a faulty closure is faulty on every exploration branch, so
    quarantine is deliberately monotone across branches).  Each
    constraint is [Healthy] until its first fault, [Degraded] while
    faults stay under {!strikes_to_quarantine}, and [Quarantined] from
    then on; budget exhaustion (divergence) quarantines immediately.
    Quarantined constraints are skipped by the session with conservative
    semantics — see the "Failure model" section of DESIGN.md. *)

type fault =
  | Raised of string  (** the closure raised; payload is [Printexc.to_string] *)
  | Non_finite of string
      (** a produced value was NaN or infinite; payload names it *)
  | Budget_exhausted of int
      (** the cooperative step budget ran out; payload is the budget *)
  | Diverged of string
      (** non-convergence detected by the caller (e.g. a derive fixpoint
          that keeps producing new bindings past its round budget) *)

val describe_fault : fault -> string
(** One-line human rendering, e.g. ["raised: Division_by_zero"]. *)

val default_budget : int
(** Steps allowed per {!run} when [?budget] is omitted. *)

val tick : unit -> unit
(** Consume one step of the innermost enclosing {!run}.  A no-op outside
    any [run]. *)

val run : ?budget:int -> (unit -> 'a) -> ('a, fault) result
(** Evaluate the thunk under a fresh step budget, converting any raised
    exception (including [Stack_overflow], excluding [Out_of_memory])
    into a [fault].  Nested [run]s each get their own budget. *)

val is_finite : float -> bool

val finite_metrics : (string * float) list -> ((string * float) list, fault) result
(** All metric values finite, or the [Non_finite] fault naming the first
    offender. *)

val finite_values : (string * Value.t) list -> ((string * Value.t) list, fault) result
(** Like {!finite_metrics} for derived bindings: [Real] values must be
    finite ([Str]/[Int]/[Flag] always pass). *)

(** Per-constraint health, the session-facing view. *)
type status =
  | Healthy
  | Degraded  (** faulted, still evaluated (faults < {!strikes_to_quarantine}) *)
  | Quarantined of { reason : string; at_event : int }
      (** excluded from evaluation; [at_event] is the diagnostic
          sequence number at which quarantine happened *)

val status_label : status -> string
(** ["healthy"] | ["degraded"] | ["quarantined"]. *)

(** One recorded fault. *)
type diag = {
  cc : string;  (** constraint name *)
  op : string;  (** session operation that was evaluating it *)
  fault : fault;
  quarantines : bool;  (** this fault pushed the constraint into quarantine *)
  seq : int;  (** position in the registry's trail, from 0 *)
}

val describe_diag : diag -> string

type registry
(** Mutable fault trail and per-constraint status for one session
    lineage. *)

val registry : unit -> registry

val strikes_to_quarantine : int
(** Number of [Raised]/[Non_finite] faults that quarantines a
    constraint (budget exhaustion quarantines on the first). *)

val record : registry -> cc:string -> op:string -> fault -> diag
(** Append a fault and update the constraint's status per the policy
    above.  Returns the recorded diagnostic. *)

val force_quarantine : registry -> cc:string -> op:string -> fault -> diag option
(** Quarantine unconditionally, whatever the strike count (used for
    derive non-convergence, where the offending constraint must stop
    being evaluated at once).  [None] when the constraint is already
    quarantined. *)

val status_of : registry -> string -> status
val quarantined : registry -> string -> bool

val diags : registry -> diag list
(** Every recorded diagnostic, oldest first. *)

val diag_count : registry -> int
(** [List.length (diags reg)] without building the list (the common
    fault-free case is a cheap [0]). *)

val faulty : registry -> (string * status) list
(** Constraints that are not [Healthy], in first-fault order. *)
