(** A fixed pool of worker domains for chunked fork-join sweeps.

    The hot loops of the layer — the Eliminate verdict sweep behind
    {!Session.candidates} and the {!Evaluation} merit passes — are
    embarrassingly parallel over the core table.  This module gives them
    one shared pool of OCaml 5 domains (no external dependency): a sweep
    splits its index range into chunks, the pool computes the tail
    chunks while the caller computes chunk 0, and the per-chunk results
    come back in index order, so concatenating them preserves the
    sequential result exactly.

    Sizing: the pool holds [domain_count () - 1] workers (the caller is
    the remaining compute context).  The default is
    [min 8 (Stdlib.Domain.recommended_domain_count ())] — on a
    single-core host that is 1 and every sweep runs sequentially with no
    pool interaction at all.  The [DSE_DOMAINS] environment variable
    overrides the default at startup; {!set_domain_count} overrides it
    at runtime (the differential test suite pins it to force or forbid
    the pool).  Workers are spawned lazily on first use and joined at
    process exit.

    Inputs below {!chunk_threshold} elements stay sequential: a fork
    costs two condition-variable round trips per chunk, which only pays
    for itself on sweeps that run closures over thousands of cores.

    Do not call {!map_chunks} from inside a chunk function: tasks never
    nest (a worker waiting on sub-chunks could deadlock the pool).  The
    layer's sweeps are leaf computations, so this never arises in
    ds_layer itself. *)

val domain_count : unit -> int
(** Compute contexts a sweep may use, caller included (>= 1). *)

val set_domain_count : int -> unit
(** Resize the pool (clamped to [1, 64]).  [1] disables the pool:
    every subsequent sweep runs sequentially on the caller.  Surplus
    workers exit; missing ones spawn on the next parallel sweep. *)

val chunk_threshold : unit -> int

val set_chunk_threshold : int -> unit
(** Minimum input size before a sweep is split (default 512, minimum 1).
    Tests lower it to drive the parallel path on small fixtures. *)

val use_pool : int -> bool
(** Whether a sweep over [n] items would be split across the pool
    ([domain_count () > 1] and [n >= chunk_threshold ()]).  Callers
    that keep a dedicated sequential code path branch on this. *)

val map_chunks : ?quantum:int -> n:int -> (int -> int -> 'a) -> 'a list
(** [map_chunks ~n f] partitions [0, n) into contiguous chunks and
    returns [f lo hi] per chunk, in index order.  Sequential inputs
    (below the threshold, or a pool of 1) yield the single chunk
    [[f 0 n]] — same code path, no pool traffic.  An exception escaping
    any chunk is re-raised in the caller after all chunks finish.

    [quantum] (default 1) snaps interior chunk boundaries down to
    multiples of that size, so every quantum-sized block belongs to
    exactly one chunk — the columnar sweep passes the bitset word width
    (32) and chunks then own disjoint mask words, making their lockless
    word writes race-free.  Chunks may come out empty ([lo = hi]); [f]
    must tolerate that. *)
