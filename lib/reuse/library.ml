type t = { name : string; cores : Core.t list }

let duplicate_id cores =
  let seen = Hashtbl.create 16 in
  List.find_map
    (fun core ->
      let id = core.Core.id in
      if Hashtbl.mem seen id then Some id
      else begin
        Hashtbl.add seen id ();
        None
      end)
    cores

let make ~name cores =
  if String.equal name "" then Error "library name must not be empty"
  else begin
    match duplicate_id cores with
    | Some id -> Error (Printf.sprintf "duplicate core id %S" id)
    | None -> Ok { name; cores }
  end

let make_exn ~name cores =
  match make ~name cores with
  | Ok lib -> lib
  | Error msg -> invalid_arg ("Library.make_exn: " ^ msg)

let add lib core =
  if List.exists (fun c -> String.equal c.Core.id core.Core.id) lib.cores then
    Error (Printf.sprintf "core id %S already present" core.Core.id)
  else Ok { lib with cores = lib.cores @ [ core ] }

let find lib ~id = List.find_opt (fun c -> String.equal c.Core.id id) lib.cores
let filter lib pred = List.filter pred lib.cores
let size lib = List.length lib.cores

let to_text lib =
  String.concat "\n"
    (Printf.sprintf "reuse-library\t%s\t%d" lib.name (size lib)
    :: List.map Core.to_line lib.cores)
  ^ "\n"

let of_text text =
  match String.split_on_char '\n' (String.trim text) with
  | [] -> Error "empty library text"
  | header :: lines -> (
    match String.split_on_char '\t' header with
    | [ "reuse-library"; name; count ] -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | "" :: rest -> parse acc rest
        | line :: rest -> (
          match Core.of_line line with
          | Ok core -> parse (core :: acc) rest
          | Error msg -> Error (Printf.sprintf "bad core line: %s" msg))
      in
      match parse [] lines with
      | Error _ as e -> e
      | Ok cores -> (
        match int_of_string_opt count with
        | Some n when n <> List.length cores ->
          Error (Printf.sprintf "header says %d cores, found %d" n (List.length cores))
        | _ -> make ~name cores))
    | _ -> Error "bad library header")

let save lib ~path =
  try
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_text lib));
    Ok ()
  with Sys_error msg -> Error msg

let load ~path =
  try
    let ic = open_in path in
    let content =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_text content
  with Sys_error msg -> Error msg
