type t = { libs : Library.t list }

let empty = { libs = [] }

let register t lib =
  if List.exists (fun l -> String.equal l.Library.name lib.Library.name) t.libs then
    Error (Printf.sprintf "library %S already registered" lib.Library.name)
  else Ok { libs = t.libs @ [ lib ] }

let register_exn t lib =
  match register t lib with
  | Ok t -> t
  | Error msg -> invalid_arg ("Registry.register_exn: " ^ msg)

let libraries t = t.libs
let library t ~name = List.find_opt (fun l -> String.equal l.Library.name name) t.libs

let qualified lib core = lib.Library.name ^ "/" ^ core.Core.id

let all_cores t =
  List.concat_map (fun lib -> List.map (fun core -> (qualified lib core, core)) lib.Library.cores) t.libs

let find_core t ~qualified_id =
  match String.index_opt qualified_id '/' with
  | None -> None
  | Some i ->
    let lib_name = String.sub qualified_id 0 i in
    let id = String.sub qualified_id (i + 1) (String.length qualified_id - i - 1) in
    Option.bind (library t ~name:lib_name) (fun lib -> Library.find lib ~id)

let size t = List.fold_left (fun acc lib -> acc + Library.size lib) 0 t.libs
