(** A reuse library: a named collection of cores, typically owned by one
    IP provider (the "Library A/B/C" boxes of the paper's Fig 1). *)

type t = private { name : string; cores : Core.t list }

val make : name:string -> Core.t list -> (t, string) result
(** Rejects an empty name and duplicate core ids. *)

val make_exn : name:string -> Core.t list -> t
val add : t -> Core.t -> (t, string) result
val find : t -> id:string -> Core.t option
val filter : t -> (Core.t -> bool) -> Core.t list
val size : t -> int

val to_text : t -> string
(** Text serialisation: a header line followed by one line per core. *)

val of_text : string -> (t, string) result

val save : t -> path:string -> (unit, string) result
val load : path:string -> (t, string) result
