(** A reusable design — the paper's "core": a macro-cell, soft macro or
    software routine living in a reuse library.

    In the design space layer's terms a core is a {e point} of the
    design space: it binds a concrete option to each design issue that
    applies to it ({!properties}) and exhibits concrete figures of merit
    ({!merits}).  The layer never looks inside a core; it indexes and
    filters cores through these two maps, which is what makes the layer
    connectable to any number of third-party libraries (Fig 1). *)

type kind = Hard_core | Soft_core | Software_routine

val kind_name : kind -> string
(** "hard-core" | "soft-core" | "software-routine". *)

val kind_of_name : string -> kind option

(** Interned-key lookup tables: keys are interned into dense integer ids
    shared across all cores, and each core keeps its pairs as parallel
    arrays sorted by key id, so {!property}/{!merit} cost one hash probe
    on the key plus a binary search instead of an assoc-list walk.
    Abstract: built by {!make}, queried only through {!property} and
    {!merit}. *)
module Lookup : sig
  type 'a t
end

type t = private {
  id : string;  (** unique within a registry, e.g. "hw-lib/#2_64" *)
  name : string;  (** human name, e.g. "#2_64" *)
  provider : string;  (** the IP provider that owns the detailed data *)
  kind : kind;
  properties : (string * string) list;
      (** design-issue bindings, e.g. [("implementation-style",
          "hardware"); ("algorithm", "Montgomery")] — sorted by key *)
  merits : (string * float) list;
      (** figures of merit, e.g. [("area-um2", 40231.)] — sorted by key *)
  views : (string * string) list;
      (** the detailed design data at its abstraction levels (the
          paper's Fig 2(b) partitioning): view name ("algorithm",
          "structure", ...) to document — sorted by key *)
  doc : string;
  prop_lookup : string Lookup.t;  (** fast-path index over [properties] *)
  merit_lookup : float Lookup.t;  (** fast-path index over [merits] *)
}

val make :
  id:string ->
  name:string ->
  provider:string ->
  kind:kind ->
  properties:(string * string) list ->
  merits:(string * float) list ->
  ?views:(string * string) list ->
  ?doc:string ->
  unit ->
  (t, string) result
(** Rejects an empty id and duplicate property, merit or view keys. *)

val make_exn :
  id:string ->
  name:string ->
  provider:string ->
  kind:kind ->
  properties:(string * string) list ->
  merits:(string * float) list ->
  ?views:(string * string) list ->
  ?doc:string ->
  unit ->
  t

val property : t -> string -> string option
val merit : t -> string -> float option

val view : t -> string -> string option
(** The detailed design data of one abstraction level. *)

val view_names : t -> string list

val matches_property : t -> key:string -> value:string -> bool
(** True when the core binds [key] to [value]; a core that does not
    declare [key] at all also matches (it is not discriminated by that
    issue — the paper's cores only carry the issues that apply to
    them). *)

val to_line : t -> string
(** One-line serialisation (tab-separated, stable ordering). *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line}. *)

val pp : Format.formatter -> t -> unit
