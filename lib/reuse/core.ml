type kind = Hard_core | Soft_core | Software_routine

let kind_name = function
  | Hard_core -> "hard-core"
  | Soft_core -> "soft-core"
  | Software_routine -> "software-routine"

let all_kinds = [ Hard_core; Soft_core; Software_routine ]
let kind_of_name n = List.find_opt (fun k -> String.equal (kind_name k) n) all_kinds

(* Property and merit keys are drawn from a small shared vocabulary (the
   layer's design issues and figures of merit), while cores number in
   the thousands.  Interning every key once into a dense integer id lets
   each core carry its key/value pairs as parallel arrays sorted by key
   id; a lookup is then one hash probe on the (short) key string plus a
   binary search over a handful of ints, instead of walking an assoc
   list of string comparisons per core per query. *)
module Key = struct
  (* Copy-on-write snapshot: lookups (the hot path — one per property
     probe) read the published table without locking; interning a new
     key (rare after warm-up: the vocabulary is small and fixed per
     layer) copies, extends and republishes under the lock.  A stale
     reader at worst misses a key another domain is interning right now
     and takes the slow path, where the re-check under the lock settles
     the id. *)
  let published : (string, int) Hashtbl.t Atomic.t = Atomic.make (Hashtbl.create 256)
  let lock = Mutex.create ()
  let next = ref 0

  let intern key =
    match Hashtbl.find_opt (Atomic.get published) key with
    | Some id -> id
    | None ->
      Mutex.lock lock;
      let snapshot = Atomic.get published in
      let id =
        match Hashtbl.find_opt snapshot key with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          let next_table = Hashtbl.copy snapshot in
          Hashtbl.add next_table key id;
          Atomic.set published next_table;
          id
      in
      Mutex.unlock lock;
      id

  (* Read-only probe: a key never interned by any core cannot be present
     in any lookup table, so unknown queries stay out of the table. *)
  let find key = Hashtbl.find_opt (Atomic.get published) key
end

module Lookup = struct
  type 'a t = { keys : int array; vals : 'a array }

  (* [kvs] comes from {!sorted_unique}: sorted by key string, no
     duplicates.  Re-sorted here by interned id, the order binary search
     needs. *)
  let of_assoc kvs =
    let arr = Array.of_list (List.map (fun (k, v) -> (Key.intern k, v)) kvs) in
    Array.sort (fun (a, _) (b, _) -> compare (a : int) b) arr;
    { keys = Array.map fst arr; vals = Array.map snd arr }

  let find t id =
    let rec go lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let k = Array.unsafe_get t.keys mid in
        if k = id then Some (Array.unsafe_get t.vals mid)
        else if k < id then go (mid + 1) hi
        else go lo mid
      end
    in
    go 0 (Array.length t.keys)
end

type t = {
  id : string;
  name : string;
  provider : string;
  kind : kind;
  properties : (string * string) list;
  merits : (string * float) list;
  views : (string * string) list;
  doc : string;
  prop_lookup : string Lookup.t;
  merit_lookup : float Lookup.t;
}

let sorted_unique what kvs =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if String.equal a b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  match dup sorted with
  | Some key -> Error (Printf.sprintf "duplicate %s key %S" what key)
  | None -> Ok sorted

let make ~id ~name ~provider ~kind ~properties ~merits ?(views = []) ?(doc = "") () =
  if String.equal id "" then Error "core id must not be empty"
  else begin
    match sorted_unique "property" properties with
    | Error _ as e -> e
    | Ok properties -> (
      match sorted_unique "merit" merits with
      | Error _ as e -> e
      | Ok merits -> (
        match sorted_unique "view" views with
        | Error _ as e -> e
        | Ok views ->
          Ok
            {
              id;
              name;
              provider;
              kind;
              properties;
              merits;
              views;
              doc;
              prop_lookup = Lookup.of_assoc properties;
              merit_lookup = Lookup.of_assoc merits;
            }))
  end

let make_exn ~id ~name ~provider ~kind ~properties ~merits ?views ?doc () =
  match make ~id ~name ~provider ~kind ~properties ~merits ?views ?doc () with
  | Ok core -> core
  | Error msg -> invalid_arg ("Core.make_exn: " ^ msg)

let property core key =
  match Key.find key with None -> None | Some id -> Lookup.find core.prop_lookup id

let merit core key =
  match Key.find key with None -> None | Some id -> Lookup.find core.merit_lookup id
let view core key = List.assoc_opt key core.views
let view_names core = List.map fst core.views

let matches_property core ~key ~value =
  match property core key with None -> true | Some v -> String.equal v value

(* Line format:
   id \t name \t provider \t kind \t p1=v1;p2=v2 \t m1=f1;m2=f2 \t doc
   [\t v1=d1;v2=d2]
   The trailing views field is optional so older files still parse. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '\t' -> "\\t"
         | '\n' -> "\\n"
         | '\\' -> "\\\\"
         | ';' -> "\\;"
         | '=' -> "\\="
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let unescape s =
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i >= String.length s then Buffer.contents buf
    else if s.[i] = '\\' && i + 1 < String.length s then begin
      (match s.[i + 1] with
      | 't' -> Buffer.add_char buf '\t'
      | 'n' -> Buffer.add_char buf '\n'
      | c -> Buffer.add_char buf c);
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let to_line core =
  let kvs pairs render =
    String.concat ";" (List.map (fun (key, v) -> escape key ^ "=" ^ render v) pairs)
  in
  String.concat "\t"
    ([
       escape core.id;
       escape core.name;
       escape core.provider;
       kind_name core.kind;
       kvs core.properties escape;
       kvs core.merits (fun f -> Printf.sprintf "%.17g" f);
       escape core.doc;
     ]
    @ if core.views = [] then [] else [ kvs core.views escape ])

(* Split on unescaped separators. *)
let split_unescaped sep s =
  let parts = ref [] and buf = Buffer.create 16 in
  let rec go i =
    if i >= String.length s then parts := Buffer.contents buf :: !parts
    else if s.[i] = '\\' && i + 1 < String.length s then begin
      Buffer.add_char buf s.[i];
      Buffer.add_char buf s.[i + 1];
      go (i + 2)
    end
    else if s.[i] = sep then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      go (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  List.rev !parts

let parse_kvs field parse_value =
  if String.equal field "" then Ok []
  else begin
    let entries = split_unescaped ';' field in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | entry :: rest -> (
        match split_unescaped '=' entry with
        | [ key; v ] -> (
          match parse_value v with
          | Some v -> go ((unescape key, v) :: acc) rest
          | None -> Error (Printf.sprintf "bad value in %S" entry))
        | _ -> Error (Printf.sprintf "bad key=value entry %S" entry))
    in
    go [] entries
  end

let of_line line =
  let build id name provider kind props merits doc views_field =
    match kind_of_name kind with
    | None -> Error (Printf.sprintf "unknown core kind %S" kind)
    | Some kind -> (
      match parse_kvs props (fun v -> Some (unescape v)) with
      | Error _ as e -> e
      | Ok properties -> (
        match parse_kvs merits float_of_string_opt with
        | Error _ as e -> e
        | Ok merits -> (
          match parse_kvs views_field (fun v -> Some (unescape v)) with
          | Error _ as e -> e
          | Ok views ->
            make ~id:(unescape id) ~name:(unescape name) ~provider:(unescape provider) ~kind
              ~properties ~merits ~views ~doc:(unescape doc) ())))
  in
  match String.split_on_char '\t' line with
  | [ id; name; provider; kind; props; merits; doc ] ->
    build id name provider kind props merits doc ""
  | [ id; name; provider; kind; props; merits; doc; views_field ] ->
    build id name provider kind props merits doc views_field
  | _ -> Error "expected 7 or 8 tab-separated fields"

let pp fmt core =
  Format.fprintf fmt "%s (%s, %s) [%s] {%s}" core.name core.provider (kind_name core.kind)
    (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) core.properties))
    (String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%s=%.3g" k v) core.merits))
