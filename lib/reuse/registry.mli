(** A registry of reuse libraries — the design space layer connects to
    "any number of reuse libraries" (Fig 1) through one of these.

    Core ids are qualified as ["library-name/core-id"] when looked up
    through a registry, so independently-maintained provider libraries
    cannot collide. *)

type t

val empty : t
val register : t -> Library.t -> (t, string) result
(** Rejects a second library with the same name. *)

val register_exn : t -> Library.t -> t
val libraries : t -> Library.t list
val library : t -> name:string -> Library.t option

val all_cores : t -> (string * Core.t) list
(** Every core with its qualified id, library registration order. *)

val find_core : t -> qualified_id:string -> Core.t option
(** ["lib/core-id"] lookup. *)

val size : t -> int
(** Total cores across libraries. *)
