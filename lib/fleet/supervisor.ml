type spec = {
  w_name : string;
  w_socket : string;
  w_argv : string array;
  w_log : string option;
}

type worker = {
  spec : spec;
  probe_target : Backend.t;  (* probe-only; never pools connections *)
  mutable pid : int;
  mutable restarts : int;
  mutable probe_failures : int;
  mutable spawned_at : float;
}

type t = {
  workers : worker list;  (* sorted by name, fixed at start *)
  health_interval : float;
  health_timeout : float;
  max_probe_failures : int;
  boot_grace : float;
  on_restart : string -> unit;
  lock : Mutex.t;
  stop_flag : bool Atomic.t;
  mutable monitor : Thread.t option;
}

let spawn spec =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let log =
    match spec.w_log with
    | Some path ->
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    | None -> Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close devnull with Unix.Unix_error _ -> ());
      try Unix.close log with Unix.Unix_error _ -> ())
    (fun () -> Unix.create_process spec.w_argv.(0) spec.w_argv devnull log log)

let try_kill pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* Reap without blocking; [`Dead] covers both a real exit and a pid we
   have already reaped (ECHILD). *)
let reap_nohang pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> `Alive
  | _ -> `Dead
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Dead
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Alive

let restart_locked t w =
  (* remove the stale socket before the replacement binds: a connect to
     the old inode would hang instead of failing fast *)
  (try Unix.unlink w.spec.w_socket with Unix.Unix_error _ -> ());
  w.pid <- spawn w.spec;
  w.restarts <- w.restarts + 1;
  w.probe_failures <- 0;
  w.spawned_at <- Unix.gettimeofday ();
  t.on_restart w.spec.w_name

let monitor_tick t =
  List.iter
    (fun w ->
      Mutex.lock t.lock;
      let pid = w.pid in
      Mutex.unlock t.lock;
      match reap_nohang pid with
      | `Dead ->
        Mutex.lock t.lock;
        if w.pid = pid && not (Atomic.get t.stop_flag) then restart_locked t w;
        Mutex.unlock t.lock
      | `Alive -> (
        match Backend.probe ~timeout:t.health_timeout w.probe_target with
        | Ok _ ->
          Mutex.lock t.lock;
          w.probe_failures <- 0;
          Mutex.unlock t.lock
        | Error _ ->
          Mutex.lock t.lock;
          (* a worker that is still booting (binding its socket,
             resuming journals) fails probes without being wedged:
             counting those failures turns every restart into a
             restart storm, because the wedge threshold can elapse
             before the replacement ever becomes reachable *)
          let booting = Unix.gettimeofday () -. w.spawned_at < t.boot_grace in
          if not booting then w.probe_failures <- w.probe_failures + 1;
          let wedged = w.probe_failures >= t.max_probe_failures in
          Mutex.unlock t.lock;
          if wedged then begin
            (* alive but unresponsive: no graceful path left *)
            try_kill pid Sys.sigkill;
            ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
            Mutex.lock t.lock;
            if not (Atomic.get t.stop_flag) then restart_locked t w;
            Mutex.unlock t.lock
          end))
    t.workers

let start ?(health_interval = 0.5) ?(health_timeout = 1.0) ?(max_probe_failures = 3)
    ?(boot_grace = 5.0) ?(on_restart = fun _ -> ()) specs =
  let workers =
    specs
    |> List.sort (fun a b -> String.compare a.w_name b.w_name)
    |> List.map (fun spec ->
           {
             spec;
             probe_target = Backend.create ~slots:1 ~name:spec.w_name ~socket:spec.w_socket ();
             pid = spawn spec;
             restarts = 0;
             probe_failures = 0;
             spawned_at = Unix.gettimeofday ();
           })
  in
  let t =
    {
      workers;
      health_interval;
      health_timeout;
      max_probe_failures;
      boot_grace;
      on_restart;
      lock = Mutex.create ();
      stop_flag = Atomic.make false;
      monitor = None;
    }
  in
  let monitor () =
    while not (Atomic.get t.stop_flag) do
      monitor_tick t;
      Thread.delay t.health_interval
    done
  in
  t.monitor <- Some (Thread.create monitor ());
  t

let await_ready ?(timeout = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait_for w =
    match Backend.probe ~timeout:t.health_timeout w.probe_target with
    | Ok _ -> Ok ()
    | Error msg ->
      if Unix.gettimeofday () >= deadline then
        Error (Printf.sprintf "worker %s not ready: %s" w.spec.w_name msg)
      else begin
        Thread.delay 0.05;
        wait_for w
      end
  in
  List.fold_left
    (fun acc w -> match acc with Ok () -> wait_for w | e -> e)
    (Ok ()) t.workers

let find t name = List.find_opt (fun w -> String.equal w.spec.w_name name) t.workers

let pid t name =
  Option.map
    (fun w ->
      Mutex.lock t.lock;
      let p = w.pid in
      Mutex.unlock t.lock;
      p)
    (find t name)

let restarts t =
  List.map
    (fun w ->
      Mutex.lock t.lock;
      let r = w.restarts in
      Mutex.unlock t.lock;
      (w.spec.w_name, r))
    t.workers

let workers t = List.map (fun w -> (w.spec.w_name, w.spec.w_socket)) t.workers

let stop t =
  Atomic.set t.stop_flag true;
  (match t.monitor with Some th -> Thread.join th | None -> ());
  List.iter (fun w -> try_kill w.pid Sys.sigterm) t.workers;
  let deadline = Unix.gettimeofday () +. 5.0 in
  List.iter
    (fun w ->
      let rec wait () =
        match reap_nohang w.pid with
        | `Dead -> ()
        | `Alive ->
          if Unix.gettimeofday () >= deadline then begin
            try_kill w.pid Sys.sigkill;
            ignore
              (try Unix.waitpid [] w.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
          end
          else begin
            Thread.delay 0.05;
            wait ()
          end
      in
      wait ();
      Backend.close w.probe_target)
    t.workers
