(** The router's side of one worker: a small pool of persistent
    upstream connections.

    A worker serves one connection per pool worker, so the router must
    not open a connection per client — hundreds of clients would
    starve a worker's accept queue.  Instead each backend keeps up to
    [slots] connections open and multiplexes every client request for
    that shard over them; the protocol's strict one-reply-per-line
    discipline makes a slot safe to hand from request to request.
    The flip side is an invariant the deployment must hold: the
    worker's pool must {e exceed} [slots], because a pool thread owns a
    persistent connection for its whole lifetime — with [slots >= pool]
    the surplus connections are accepted but never served, and every
    request multiplexed onto one wedges.  [dse fleet serve] sizes
    worker pools as [slots + 2]; the spares keep health probes and
    direct admin connections answerable under full routed load.  The
    wait for a free slot is the router-side queueing delay, recorded in
    the router registry as [dse_router_upstream_wait_us].

    A transport failure mid-request (the worker crashed) closes the
    slot and retries once on a fresh connection — that heals a reaped
    or restarted-in-the-meantime connection transparently.  If the
    reconnect or the resend also fails the request is reported
    {!outcome.Down}, which the router translates into the structured
    retryable [session_unavailable] error. *)

type t

val create : ?slots:int -> name:string -> socket:string -> unit -> t
(** [slots] (default 8) bounds concurrent in-flight requests to this
    worker.  No I/O happens until the first {!round_trip}. *)

val name : t -> string
val socket : t -> string

type outcome = Reply of string | Down of string

val round_trip : ?wait_hist:Ds_obs.Obs.histogram -> t -> string -> outcome
(** Send one request line, block for the reply line.  Blocks first for
    a free slot ([wait_hist], µs, observes that wait).  [Down] means
    the request may or may not have been applied — exactly the
    at-most-once ambiguity the protocol's [session_unavailable] code
    communicates to clients. *)

val round_trip_many : ?wait_hist:Ds_obs.Obs.histogram -> t -> string list -> outcome list
(** Coalesced group send over {e one} slot: every line goes out in a
    single flush, and the replies come back in request order — result
    [k] answers line [k].  A whole-group transport loss on a cached
    connection (zero replies read) is retried once on a fresh
    connection, exactly as {!round_trip}; once any reply has arrived
    the group has partially executed upstream and the unanswered tail
    is reported {!outcome.Down} instead of being re-sent. *)

val probe : ?timeout:float -> t -> (string, string) result
(** Health probe outside the slot pool: its own throwaway connection,
    a [healthz] line, and a kernel-side receive timeout (default 1s) —
    a wedged worker fails the probe instead of eating a slot. *)

val close : t -> unit
(** Close every pooled connection (in-flight requests fail). *)
