(** Worker process lifecycle: spawn, health-check, restart in place.

    The supervisor owns N worker processes, each a fresh [exec] of this
    (or any) binary's worker entry point — never a bare [fork], which
    is unsafe in a threaded OCaml runtime.  A monitor thread watches
    two signals per worker:

    - {b exit}: [waitpid WNOHANG] notices a dead child (crash, OOM
      kill, SIGKILL) on the next tick and respawns it immediately;
    - {b health}: a [healthz] probe over the worker's socket with a
      receive timeout; {!consecutive_failures_before_kill} consecutive
      probe failures mean the process is alive but wedged, so it is
      SIGKILLed and respawned.

    Restart-in-place is what makes a crash cheap: the replacement
    worker gets the same socket path and the same journal directory,
    and PR 6's transparent rehydration rebuilds each session from its
    journal on first touch — a SIGKILL costs only the requests that
    were in flight, which the router answers with the retryable
    [session_unavailable] error.  Nothing acknowledged is lost.

    Restart counts are exposed per worker (the fleet bench asserts the
    kill leg restarted exactly the killed shard). *)

type spec = {
  w_name : string;  (** shard name — the ring member *)
  w_socket : string;  (** the socket the worker must listen on *)
  w_argv : string array;  (** command to exec (argv.(0) = program) *)
  w_log : string option;  (** worker stdout+stderr destination *)
}

type t

val start :
  ?health_interval:float ->
  ?health_timeout:float ->
  ?max_probe_failures:int ->
  ?boot_grace:float ->
  ?on_restart:(string -> unit) ->
  spec list ->
  t
(** Spawn every worker and the monitor thread.  [health_interval]
    (default 0.5s) is the tick; [health_timeout] (default 1s) the probe
    receive timeout; [max_probe_failures] (default 3) the wedged
    threshold; [boot_grace] (default 5s) is how long after a (re)spawn
    probe failures are forgiven while the worker binds its socket and
    resumes journals — without it a slow boot under load reads as
    wedged and the supervisor kills its own replacement in a loop;
    [on_restart] fires after a replacement worker has been spawned (the
    router uses it to log). *)

val await_ready : ?timeout:float -> t -> (unit, string) result
(** Block until every worker answers a probe (default timeout 30s) —
    the "fleet is up" barrier [dse fleet serve] waits on before
    accepting clients. *)

val pid : t -> string -> int option
(** Current pid of the named worker ([None]: unknown name). *)

val restarts : t -> (string * int) list
(** (worker, restart count), sorted by name. *)

val workers : t -> (string * string) list
(** (name, socket), sorted by name. *)

val stop : t -> unit
(** Stop monitoring, SIGTERM every worker, wait up to 5s each, SIGKILL
    stragglers, reap. *)
