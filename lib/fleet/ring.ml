type t = string list  (* sorted, deduplicated *)

let create names = List.sort_uniq String.compare names
let nodes t = t
let size = List.length
let add t name = List.sort_uniq String.compare (name :: t)
let remove t name = List.filter (fun n -> not (String.equal n name)) t

(* FNV-1a 64-bit, then a splitmix64-style finalizer: FNV alone is fast
   but its low bits correlate for short similar keys (s1, s2, s3 ...),
   which would skew the spread; the mixer avalanches them. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 seed s =
  let h = ref seed in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let score ~node ~key =
  (* NUL separator: ("ab","c") and ("a","bc") must not collide *)
  mix (fnv1a64 (fnv1a64 (fnv1a64 fnv_offset node) "\x00") key)

let route t key =
  List.fold_left
    (fun best node ->
      let s = score ~node ~key in
      match best with
      | Some (_, bs) when Int64.unsigned_compare s bs <= 0 -> best
      | _ -> Some (node, s))
    None t
  |> Option.map fst
