(** The fleet's front door: one socket, N shards behind it.

    The router accepts client connections (thread per connection — it
    only shuffles lines, so hundreds of mostly-idle connections cost
    file descriptors, not CPU), reads each request line, extracts the
    session id, and forwards the line verbatim to the worker the
    {!Ring} assigns that id — over the worker's {!Backend} slot pool.
    Replies stream back on the same connection, one line per line.

    What the router owns (vs. what workers own):

    - {b placement}: session id -> worker is pure ring arithmetic; the
      router never stores a session and has no state to lose — restart
      it freely;
    - {b id generation}: an [open] without a session id gets one minted
      here (workers can't mint — they don't know the ring); a [branch]
      without ["as"] gets a {e colocated} id, one that hashes to the
      same worker as its parent, because a branch journal lives in the
      parent's journal directory.  An explicit cross-shard ["as"] is
      refused with [bad_request] rather than stranding a journal where
      its worker would never look;
    - {b fan-out}: [stats], [metrics] and [trace spans] go to every
      worker and merge — counters and session counts sum, histograms
      merge bucket-wise ({!Ds_obs.Obs.merge_hsnapshots}' invariant:
      every histogram shares one bound table), uptime is the oldest
      worker's, and the unmerged per-shard payloads ride along under
      ["shards"].  [healthz] is answered by the router itself with a
      live probe of every worker;
    - {b failure translation}: a dead backend (crashed worker, mid-
      flight connection loss) answers [session_unavailable] — a
      structured, retryable error — while the supervisor restarts the
      shard.  Workers own everything else: stores, journals, layers,
      per-request semantics.

    The hot path is {e pass-through}: a thin parse scans the raw line
    for the top-level ["op"]/["session"] string fields and, when the op
    is one the full dispatch would forward verbatim anyway, skips the
    JSON tree entirely — the bytes go to the shard untouched.  Anything
    unusual (escapes, missing fields, ops with router-side semantics)
    falls back to the full parse, so the fast path is an optimization,
    never a semantic fork ([dse_router_passthrough_total] counts the
    hits).  Each connection is pipelined: after blocking for the first
    request line the router drains whatever else has arrived (up to the
    pipeline depth), coalesces same-shard forwards into one upstream
    flush ({!Backend.round_trip_many}), and writes every reply — in
    arrival order — through a single downstream flush.

    The router records its own registry (request latency, upstream
    slot wait, unavailable counts) and injects it into merged [metrics]
    replies as the ["router"] registry. *)

type t

val create :
  socket:string ->
  workers:(string * string) list ->
  ?slots:int ->
  ?max_request:int ->
  ?pipeline_depth:int ->
  ?thin_parse:bool ->
  ?idle_timeout:float ->
  unit ->
  t
(** [workers]: (ring name, socket path) per shard.  [slots] (default
    8) bounds in-flight requests per worker.  [max_request] and
    [idle_timeout] mirror {!Ds_serve.Server.create} (the idle default
    also honours [DSE_IDLE_TIMEOUT]).  [pipeline_depth] (default 16,
    clamped to 1..1024, env [DSE_PIPELINE_DEPTH]) bounds how many
    already-arrived request lines one drain answers together;
    [thin_parse] (default [true]) enables the pass-through fast path —
    the differential test turns it off to compare both paths.
    @raise Unix.Unix_error when [socket] cannot be bound. *)

val handle_line : t -> string -> string
(** Route one request line to one reply line — the testable core (and
    the full-parse slow path); [serve] wraps it in the pipelined
    per-connection loop.

    Trace propagation (DESIGN.md 18): a top-level ["trace"] member
    rides the forwarded bytes verbatim on both paths; the router opens
    a [router.route] span under the propagated context (remote-parented
    via {!Ds_obs.Obs.span_begin_remote}, head-sampled) so the fleet
    trace shows the router hop.  The thin parse bails to the full parse
    on an escaped or duplicated ["trace"] member — never a semantic
    fork. *)

val http_routes : t -> string -> Ds_serve.Httpd.reply option
(** The router's HTTP observability plane: [/metrics] (concatenated
    per-shard Prometheus expositions plus the router's own),
    [/healthz] (the live worker probe roll-up, JSON), [/tracez] (the
    merged fleet span stream, JSON).  Mount with
    {!Ds_serve.Httpd.start_from_env}. *)

val registry : t -> Ds_obs.Obs.registry

val serve : t -> unit
(** Accept until {!shutdown}; joins connection threads, closes
    backends, unlinks the socket. *)

val shutdown : t -> unit
(** Idempotent, signal-handler safe. *)

val install_signal_handlers : t -> unit

val connections_served : t -> int
